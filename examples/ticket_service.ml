(* A realistic scenario: a cluster-wide ticket dispenser.

   Every node of a cluster occasionally needs a globally unique,
   monotonically increasing ticket number (request ids, log sequence
   numbers, ...). This is exactly a distributed counter; the question the
   paper answers is how to serve it without melting one node. We dispense
   tickets under a mixed workload from every counter in the registry and
   report the hottest node of each — the operational metric an SRE would
   watch.

     dune exec examples/ticket_service.exe
*)

let () =
  let n = 81 in
  let requests = 200 in
  Printf.printf
    "ticket service on a %d-node cluster, %d ticket requests (mixed \
     workload)\n\n"
    n requests;

  let table =
    Analysis.Table.create
      ~columns:
        [
          "dispenser"; "nodes"; "messages"; "msgs/ticket"; "hottest node";
          "hottest load"; "gini";
        ]
  in
  List.iter
    (fun ((module C : Counter.Counter_intf.S) as c) ->
      (* A mixed workload: some nodes are chattier than others. *)
      let schedule = Counter.Schedule.Random requests in
      let r = Counter.Driver.run ~seed:2024 c ~n ~schedule in
      assert (r.Counter.Driver.values_exact && r.Counter.Driver.sequentially_ordered);
      let profile = Counter.Driver.load_profile ~seed:2024 c ~n ~schedule in
      let loads = Array.sub profile 1 (Array.length profile - 1) in
      Analysis.Table.add_row table
        [
          C.name;
          string_of_int r.Counter.Driver.n;
          string_of_int r.Counter.Driver.total_messages;
          Analysis.Table.cell_float
            (float_of_int r.Counter.Driver.total_messages
            /. float_of_int requests);
          "node " ^ string_of_int r.Counter.Driver.bottleneck_proc;
          string_of_int r.Counter.Driver.bottleneck_load;
          Analysis.Table.cell_float ~decimals:3 (Analysis.Stats.gini loads);
        ])
    Baselines.Registry.all;
  Format.printf "%a@." Analysis.Table.pp table;
  print_endline
    "reading guide: low 'hottest load' and low gini = the work is spread; \
     the retirement tree pays more messages per ticket but no node is hot.";
  print_endline
    "(central is message-optimal and maximally hot - the trade-off the \
     paper formalises.)"
