(* Quorum systems under crashes: who survives, and at what probe cost?

   The paper's related-work section ties its intersection argument to
   quorum theory. This example stresses the four classical constructions
   with growing crash rates: for each, a client searches for a fully-live
   quorum by probing elements one at a time (Peleg-Wool probe
   complexity), and we record success rates and probe counts.

     dune exec examples/quorum_failover.exe
*)

let systems : (string * Quorum.Quorum_intf.system) list =
  [
    ("majority", (module Quorum.Majority));
    ("grid", (module Quorum.Grid));
    ("tree", (module Quorum.Tree_quorum));
    ("crumbling-wall", (module Quorum.Crumbling_wall));
  ]

let () =
  let n = 100 in
  let trials = 300 in
  Printf.printf
    "probe-based failover on ~%d elements, %d random crash sets per point\n\n"
    n trials;
  let table =
    Analysis.Table.create
      ~columns:
        ("system"
        :: List.concat_map
             (fun f ->
               let pct = Printf.sprintf "%.0f%%" (100. *. f) in
               [ "probes@" ^ pct; "ok@" ^ pct ])
             [ 0.02; 0.1; 0.3 ])
  in
  List.iter
    (fun (name, ((module _ : Quorum.Quorum_intf.S) as q)) ->
      let cells =
        List.concat_map
          (fun fraction ->
            let mean, success =
              Quorum.Probe.expected_probes q ~n ~fraction ~trials ~seed:7
            in
            [
              Printf.sprintf "%.1f" mean; Printf.sprintf "%.0f%%" (100. *. success);
            ])
          [ 0.02; 0.1; 0.3 ]
      in
      Analysis.Table.add_row table (name :: cells))
    systems;
  Format.printf "%a@." Analysis.Table.pp table;
  print_endline
    "reading guide: tree quorums probe the fewest elements but their root \
     makes them fragile AND a load hot spot; majorities tolerate the most \
     crashes at the highest cost. The same tension the paper resolves for \
     counting: spreading work vs concentrating knowledge.";

  (* A concrete failover walkthrough on the grid. *)
  print_newline ();
  let (module G : Quorum.Quorum_intf.S) = (module Quorum.Grid) in
  let n = G.supported_n 100 in
  let dead = [ 1; 12; 23; 34; 45 ] in
  Printf.printf "grid walkthrough: n = %d, crashed elements: %s\n" n
    (String.concat ", " (List.map string_of_int dead));
  let outcome =
    Quorum.Probe.search (module Quorum.Grid) ~n
      ~failed:(fun e -> List.mem e dead)
      ()
  in
  (match outcome.Quorum.Probe.found with
  | Some members ->
      Printf.printf "found a live quorum after %d probes (%d quorums examined): {%s}\n"
        outcome.Quorum.Probe.probes outcome.Quorum.Probe.quorums_examined
        (String.concat ", " (List.map string_of_int members))
  | None -> Printf.printf "no live quorum (unexpected at this crash rate)\n")
