(* The evaluation harness: regenerates every experiment of DESIGN.md /
   EXPERIMENTS.md (E1-E20) as printed tables, then runs Bechamel timing
   micro-benchmarks for each counter.

   Usage:  dune exec bench/main.exe [-- --only E5 [--only E9 ...]]
                                    [-- --big]       (adds the k=5 column)
                                    [-- --no-timing] (skip bechamel)
*)

let section title =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let print_table t = Format.printf "%a@." Analysis.Table.pp t

let counter_name (module C : Counter.Counter_intf.S) = C.name

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 / Fig. 2 — the process DAG of one inc and its
   communication list. *)

let exp1_dag () =
  section
    "E1 (Fig. 1 & 2): process of a single inc on the paper's counter, k = 2";
  let module R = Core.Retire_counter in
  let c = R.create ~n:8 () in
  (* Run a few operations so the printed one includes a retirement. *)
  for i = 1 to 5 do
    ignore (R.inc c ~origin:i)
  done;
  let traces = R.traces c in
  let interesting =
    List.fold_left
      (fun best t ->
        if Sim.Trace.message_count t > Sim.Trace.message_count best then t
        else best)
      (List.hd traces) traces
  in
  Format.printf "%a@." Sim.Trace.pp interesting;
  let list = Sim.Comm_list.of_trace interesting in
  Format.printf "communication list (Fig. 2): %a@." Sim.Comm_list.pp list;
  Format.printf "list length l = %d arcs; I_p = {%s}@."
    (Sim.Comm_list.length list)
    (String.concat ", "
       (List.map string_of_int (Sim.Trace.processors interesting)))

(* ------------------------------------------------------------------ *)
(* E2: Hot Spot Lemma checked mechanically on every counter. *)

let exp2_hotspot () =
  section
    "E2 (Hot Spot Lemma): I_p of consecutive ops intersect, every counter";
  let t =
    Analysis.Table.create
      ~columns:[ "counter"; "n"; "ops"; "violations"; "verdict" ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun n ->
          let r = Counter.Driver.run_each_once c ~n in
          Analysis.Table.add_row t
            [
              counter_name c;
              string_of_int r.Counter.Driver.n;
              string_of_int r.Counter.Driver.ops;
              string_of_int r.Counter.Driver.hotspot_violations;
              (if r.Counter.Driver.hotspot_ok then "holds" else "VIOLATED");
            ])
        [ 27; 81 ])
    Baselines.Registry.all;
  print_table t

(* ------------------------------------------------------------------ *)
(* E3: the Lower Bound Theorem — adversarial sequences and the weight
   function. *)

let exp3_lowerbound () =
  section "E3 (Lower Bound Theorem): adversarial each-once sequences";
  Format.printf "theory: bottleneck >= k where k*k^k = n@.%a@."
    Core.Lower_bound.pp_table
    [ 8; 81; 1024; 15625; 279936 ];
  let t =
    Analysis.Table.create
      ~columns:
        [
          "counter"; "n"; "k"; "bottleneck"; ">=k"; "avg list L"; "l_i<=L_i";
          "w monotone"; "correct";
        ]
  in
  List.iter
    (fun (c, n) ->
      let r = Core.Adversary.run ~sample:12 c ~n in
      Analysis.Table.add_row t
        [
          r.Core.Adversary.counter_name;
          string_of_int r.Core.Adversary.n;
          string_of_int r.Core.Adversary.k;
          string_of_int r.Core.Adversary.bottleneck_load;
          Analysis.Table.cell_bool r.Core.Adversary.bound_satisfied;
          Analysis.Table.cell_float r.Core.Adversary.average_list_length;
          Analysis.Table.cell_bool r.Core.Adversary.li_never_exceeds_big_li;
          Analysis.Table.cell_bool r.Core.Adversary.weights_monotone;
          Analysis.Table.cell_bool r.Core.Adversary.correct;
        ])
    [
      (Baselines.Registry.central, 27);
      (Baselines.Registry.static_tree, 8);
      (Baselines.Registry.retire_tree, 8);
      (Baselines.Registry.counting_network, 27);
      (Baselines.Registry.quorum_grid, 25);
      (Baselines.Registry.quorum_majority, 27);
    ];
  print_table t;
  (* Weight trajectory for the paper's counter at n = 8. *)
  let r = Core.Adversary.run ~sample:8 Baselines.Registry.retire_tree ~n:8 in
  Format.printf
    "weight trajectory of the distinguished processor q=p%d (base %.0f):@."
    r.Core.Adversary.q r.Core.Adversary.weight_base;
  List.iter
    (fun o -> Format.printf "  %a@." Core.Weights.pp_observation o)
    r.Core.Adversary.q_observations

(* ------------------------------------------------------------------ *)
(* E4: the Section 4 construction at its design points. *)

let exp4_upperbound ~big () =
  section "E4 (Bottleneck Theorem): the paper's counter at n = k*k^k";
  let ks = if big then [ 2; 3; 4; 5 ] else [ 2; 3; 4 ] in
  let t =
    Analysis.Table.create
      ~columns:
        [
          "k"; "n"; "messages"; "bottleneck"; "bneck/k"; "avg load";
          "retires"; "stale"; "overflow"; "believed-ok";
        ]
  in
  let runs = ref [] in
  List.iter
    (fun k ->
      let module R = Core.Retire_counter in
      let n = Core.Params.n_of_k k in
      let c = R.create ~n () in
      for i = 1 to n do
        ignore (R.inc c ~origin:i)
      done;
      let m = R.metrics c in
      let _, bottleneck = Sim.Metrics.bottleneck m in
      Analysis.Table.add_row t
        [
          string_of_int k;
          string_of_int n;
          string_of_int (Sim.Metrics.total_messages m);
          string_of_int bottleneck;
          Analysis.Table.cell_float (float_of_int bottleneck /. float_of_int k);
          Analysis.Table.cell_float (Sim.Metrics.average_load m);
          string_of_int (R.total_retirements c);
          string_of_int (R.stale_forwards c);
          string_of_int (Sim.Metrics.overflow_processors m);
          Analysis.Table.cell_bool (R.believed_consistent c);
        ];
      runs := (k, c) :: !runs)
    ks;
  print_table t;
  Format.printf
    "Number of Retirements Lemma: per-node maxima vs the paper's supply \
     k^(k-i) - 1@.";
  List.iter
    (fun (k, c) ->
      let module R = Core.Retire_counter in
      let tree = R.tree c in
      Format.printf "  k=%d:" k;
      for level = 0 to Core.Tree.depth tree do
        let measured = R.max_retirements_at_level c level in
        if level = 0 then Format.printf " L0=%d(root)" measured
        else
          Format.printf " L%d=%d(supply %d)" level measured
            (Core.Ids.capacity tree ~level - 1)
      done;
      Format.printf "@.")
    (List.rev !runs)

(* ------------------------------------------------------------------ *)
(* E5: the headline comparison — bottleneck load of every counter vs n,
   with growth-shape fits. *)

let exp5_comparison ~big () =
  section "E5 (headline): bottleneck message load vs n, all counters";
  let ns = [ 8; 81; 1024 ] @ if big then [ 15625 ] else [] in
  let t =
    Analysis.Table.create
      ~columns:
        (("counter" :: List.map (fun n -> "n=" ^ string_of_int n) ns)
        @ [ "best fit" ])
  in
  List.iter
    (fun c ->
      let points = ref [] in
      let cells =
        List.map
          (fun n ->
            let skip_large =
              (* majority/tree quorums at n=15625 cost hundreds of
                 millions of messages; skip the extended point. *)
              n > 2000
              && List.mem (counter_name c)
                   [ "quorum-majority"; "quorum-tree"; "quorum-crumbling-wall" ]
            in
            if skip_large then "-"
            else begin
              let r = Counter.Driver.run_each_once c ~n in
              points :=
                ( float_of_int r.Counter.Driver.n,
                  float_of_int r.Counter.Driver.bottleneck_load )
                :: !points;
              string_of_int r.Counter.Driver.bottleneck_load
            end)
          ns
      in
      let fit_cell =
        match !points with
        | _ :: _ :: _ ->
            let best, _ = Analysis.Growth.best_fit (List.rev !points) in
            Printf.sprintf "%s (c=%.1f)"
              (Analysis.Growth.shape_name best.Analysis.Growth.shape)
              best.Analysis.Growth.scale
        | _ -> "-"
      in
      Analysis.Table.add_row t ((counter_name c :: cells) @ [ fit_cell ]))
    Baselines.Registry.all;
  print_table t;
  Format.printf
    "(expected: retire-tree ~ k(n); counting-net ~ n/width; grid ~ sqrt n; \
     central/static/combining/majority/tree ~ n)@."

(* ------------------------------------------------------------------ *)
(* E6: load distribution — "does not scale" made visible. *)

let exp6_distribution () =
  section
    "E6 (scaling claim): load distribution, central vs the paper's counter";
  let n = 1024 in
  List.iter
    (fun c ->
      let profile =
        Counter.Driver.load_profile c ~n ~schedule:Counter.Schedule.Each_once
      in
      let loads = Array.sub profile 1 (Array.length profile - 1) in
      let s = Analysis.Stats.summarize loads in
      Format.printf "%s at n=%d: %a@.  gini=%.3f@." (counter_name c) n
        Analysis.Stats.pp_summary s
        (Analysis.Stats.gini loads);
      Format.printf "%a@."
        (Analysis.Histogram.pp ~bar_width:44)
        (Analysis.Histogram.of_samples ~buckets:10 loads))
    [ Baselines.Registry.central; Baselines.Registry.retire_tree ]

(* ------------------------------------------------------------------ *)
(* E7: counting networks — step property and balancer load profile. *)

let exp7_network () =
  section "E7 (related work): counting network profiles (bitonic vs periodic)";
  let t =
    Analysis.Table.create
      ~columns:
        [ "network"; "width"; "depth"; "balancers"; "msgs/op"; "bottleneck";
          "step-property" ]
  in
  let n = 256 in
  let profile kind c =
      for i = 1 to n do
        ignore (Baselines.Counting_network.inc c ~origin:i)
      done;
      let m = Baselines.Counting_network.metrics c in
      let _, bottleneck = Sim.Metrics.bottleneck m in
      Analysis.Table.add_row t
        [
          kind;
          string_of_int (Baselines.Counting_network.width c);
          string_of_int (Baselines.Counting_network.network_depth c);
          string_of_int (Baselines.Counting_network.balancer_count c);
          Analysis.Table.cell_float
            (float_of_int (Sim.Metrics.total_messages m) /. float_of_int n);
          string_of_int bottleneck;
          Analysis.Table.cell_bool
            (Baselines.Counting_network.step_property_held c);
        ]
  in
  List.iter
    (fun width ->
      profile "bitonic" (Baselines.Counting_network.create_width ~n ~width ());
      profile "periodic"
        (Baselines.Counting_network.create_custom ~n
           ~network:(Baselines.Periodic.build ~width)
           ()))
    [ 2; 4; 8; 16; 32 ];
  print_table t;
  Format.printf
    "(wider network: more msgs/op [depth grows as lg^2 w] but lower \
     bottleneck [n/w per balancer])@."

(* ------------------------------------------------------------------ *)
(* E8: quorum systems — load and probe complexity. *)

let exp8_quorum () =
  section "E8 (related work): quorum-system load and probe complexity";
  let systems : Quorum.Quorum_intf.system list =
    [
      (module Quorum.Majority);
      (module Quorum.Grid);
      (module Quorum.Tree_quorum);
      (module Quorum.Crumbling_wall);
      (module Quorum.Projective_plane);
    ]
  in
  let t =
    Analysis.Table.create
      ~columns:
        [
          "system"; "n"; "|Q| mean"; "load"; "probes @5%"; "success @5%";
          "probes @25%"; "success @25%";
        ]
  in
  List.iter
    (fun ((module Q : Quorum.Quorum_intf.S) as q) ->
      let n = Q.supported_n 100 in
      let profile = Quorum.Load.measure q ~n () in
      let p5, s5 =
        Quorum.Probe.expected_probes q ~n ~fraction:0.05 ~trials:200 ~seed:1
      in
      let p25, s25 =
        Quorum.Probe.expected_probes q ~n ~fraction:0.25 ~trials:200 ~seed:2
      in
      Analysis.Table.add_row t
        [
          Q.name;
          string_of_int n;
          Analysis.Table.cell_float profile.Quorum.Load.quorum_size_mean;
          Analysis.Table.cell_float ~decimals:3 profile.Quorum.Load.load;
          Analysis.Table.cell_float p5;
          Analysis.Table.cell_float ~decimals:2 s5;
          Analysis.Table.cell_float p25;
          Analysis.Table.cell_float ~decimals:2 s25;
        ])
    systems;
  print_table t;
  Format.printf
    "(tree quorums: smallest quorums but load 1.0 at the root — the \
     quorum-world hot spot)@."

(* ------------------------------------------------------------------ *)
(* E9: ablation — the retirement threshold. *)

let exp9_ablation () =
  section "E9 (ablation): retirement threshold c*k on the k=4 tree (n=1024)";
  let k = 4 in
  let n = Core.Params.n_of_k k in
  let t =
    Analysis.Table.create
      ~columns:
        [
          "threshold"; "bottleneck"; "messages"; "retirements"; "overflow";
          "max interval excess";
        ]
  in
  List.iter
    (fun (label, threshold) ->
      let module R = Core.Retire_counter in
      let c =
        R.create_with { (R.paper_config ~k) with retire_threshold = threshold }
      in
      for i = 1 to n do
        ignore (R.inc c ~origin:i)
      done;
      let m = R.metrics c in
      let _, bottleneck = Sim.Metrics.bottleneck m in
      let tree = R.tree c in
      let excess =
        List.fold_left
          (fun acc level ->
            let supply = Core.Ids.capacity tree ~level - 1 in
            let measured = R.max_retirements_at_level c level in
            max acc (measured - supply))
          0
          (List.init (Core.Tree.depth tree) (fun i -> i + 1))
      in
      Analysis.Table.add_row t
        [
          label;
          string_of_int bottleneck;
          string_of_int (Sim.Metrics.total_messages m);
          string_of_int (R.total_retirements c);
          string_of_int (Sim.Metrics.overflow_processors m);
          string_of_int excess;
        ])
    [
      ("2k (paper)", 2 * k);
      ("3k", 3 * k);
      ("4k", 4 * k);
      ("8k", 8 * k);
      ("infinite (static)", max_int);
    ];
  print_table t;
  Format.printf
    "(low threshold: flat load but heavy retirement traffic and interval \
     overflow; infinite threshold degenerates to the Theta(n) static tree)@."

(* ------------------------------------------------------------------ *)
(* E10: ablation — tree shape at fixed n = 1024. *)

let exp10_arity () =
  section "E10 (ablation): tree shape at n = 1024 (paper: arity = depth = k)";
  let t =
    Analysis.Table.create
      ~columns:
        [ "arity"; "depth"; "bottleneck"; "messages"; "retirements"; "note" ]
  in
  List.iter
    (fun (arity, depth, note) ->
      let module R = Core.Retire_counter in
      let cfg =
        { R.arity; depth; retire_threshold = max (2 * arity) (arity + 2) }
      in
      let n = R.config_n cfg in
      assert (n = 1024);
      let c = R.create_with cfg in
      for i = 1 to n do
        ignore (R.inc c ~origin:i)
      done;
      let m = R.metrics c in
      let _, bottleneck = Sim.Metrics.bottleneck m in
      Analysis.Table.add_row t
        [
          string_of_int arity;
          string_of_int depth;
          string_of_int bottleneck;
          string_of_int (Sim.Metrics.total_messages m);
          string_of_int (R.total_retirements c);
          note;
        ])
    [
      (2, 9, "deep binary");
      (4, 4, "paper's k=4");
      (32, 1, "flat two-level");
      (1024, 0, "root only (~central)");
    ];
  print_table t

(* ------------------------------------------------------------------ *)
(* E11: concurrency — combining and diffraction under batches. *)

let exp11_concurrent () =
  section "E11 (extension): combining & diffracting trees under concurrency";
  let n = 64 in
  let t =
    Analysis.Table.create
      ~columns:
        [
          "batch"; "comb root msgs/op"; "comb rate"; "diff root msgs/op";
          "diffractions"; "toggle hits";
        ]
  in
  List.iter
    (fun batch ->
      let ct = Baselines.Combining_tree.create ~n () in
      let batches = n / batch in
      for b = 0 to batches - 1 do
        let origins = List.init batch (fun i -> (b * batch) + i + 1) in
        ignore (Baselines.Combining_tree.run_batch ct ~origins)
      done;
      let comb_root =
        float_of_int (Sim.Metrics.load (Baselines.Combining_tree.metrics ct) 1)
        /. float_of_int n
      in
      let dt = Baselines.Diffracting_tree.create_width ~n ~width:8 () in
      for b = 0 to batches - 1 do
        let origins = List.init batch (fun i -> (b * batch) + i + 1) in
        ignore (Baselines.Diffracting_tree.run_batch dt ~origins)
      done;
      let diff_root =
        float_of_int
          (Sim.Metrics.load (Baselines.Diffracting_tree.metrics dt) 1)
        /. float_of_int n
      in
      Analysis.Table.add_row t
        [
          string_of_int batch;
          Analysis.Table.cell_float comb_root;
          Analysis.Table.cell_float (Baselines.Combining_tree.combining_rate ct);
          Analysis.Table.cell_float diff_root;
          string_of_int (Baselines.Diffracting_tree.diffractions dt);
          string_of_int (Baselines.Diffracting_tree.toggle_hits dt);
        ])
    [ 1; 4; 16; 64 ];
  print_table t;
  Format.printf
    "(bigger batches: combining absorbs requests below the root; prisms \
     divert tokens from the toggles)@."

(* ------------------------------------------------------------------ *)
(* E12: the generalisation — any sequential object on the retirement
   spine. *)

let exp12_structures () =
  section
    "E12 (generalisation): flip-bit, max-register, priority-queue on the \
     retirement spine vs a central server";
  let n = 81 in
  let t =
    Analysis.Table.create
      ~columns:
        [
          "object"; "impl"; "messages"; "bottleneck"; "correct vs spec";
          "hotspot";
        ]
  in
  let row (object_name : string) (impl : string) ~messages ~bottleneck
      ~correct ~hotspot =
    Analysis.Table.add_row t
      [
        object_name;
        impl;
        string_of_int messages;
        string_of_int bottleneck;
        Analysis.Table.cell_bool correct;
        Analysis.Table.cell_bool hotspot;
      ]
  in
  (* Flip-bit. *)
  let module Spine_bit = Structures.Retire_spine.Make (Structures.Flip_bit) in
  let module Central_bit = Structures.Central_object.Make (Structures.Flip_bit) in
  let spine = Spine_bit.create ~n () in
  let reference = ref Structures.Flip_bit.initial in
  let ok = ref true in
  for i = 1 to n do
    let st, expected = Structures.Flip_bit.apply !reference Structures.Flip_bit.Flip in
    reference := st;
    if Spine_bit.execute spine ~origin:i Structures.Flip_bit.Flip <> expected
    then ok := false
  done;
  row "flip-bit" "retire-spine"
    ~messages:(Sim.Metrics.total_messages (Spine_bit.metrics spine))
    ~bottleneck:(snd (Sim.Metrics.bottleneck (Spine_bit.metrics spine)))
    ~correct:!ok
    ~hotspot:(Counter.Hotspot.holds (Spine_bit.traces spine));
  let central = Central_bit.create ~n () in
  let reference = ref Structures.Flip_bit.initial in
  let ok = ref true in
  for i = 1 to n do
    let st, expected = Structures.Flip_bit.apply !reference Structures.Flip_bit.Flip in
    reference := st;
    if Central_bit.execute central ~origin:i Structures.Flip_bit.Flip <> expected
    then ok := false
  done;
  row "flip-bit" "central"
    ~messages:(Sim.Metrics.total_messages (Central_bit.metrics central))
    ~bottleneck:(snd (Sim.Metrics.bottleneck (Central_bit.metrics central)))
    ~correct:!ok
    ~hotspot:(Counter.Hotspot.holds (Central_bit.traces central));
  (* Max-register. *)
  let module Spine_max = Structures.Retire_spine.Make (Structures.Max_register) in
  let spine = Spine_max.create ~n () in
  let reference = ref Structures.Max_register.initial in
  let ok = ref true in
  for i = 1 to n do
    let op = Structures.Max_register.Write_max ((i * 37) mod 100) in
    let st, expected = Structures.Max_register.apply !reference op in
    reference := st;
    if Spine_max.execute spine ~origin:i op <> expected then ok := false
  done;
  row "max-register" "retire-spine"
    ~messages:(Sim.Metrics.total_messages (Spine_max.metrics spine))
    ~bottleneck:(snd (Sim.Metrics.bottleneck (Spine_max.metrics spine)))
    ~correct:!ok
    ~hotspot:(Counter.Hotspot.holds (Spine_max.traces spine));
  (* Priority queue. *)
  let module Spine_pq =
    Structures.Retire_spine.Make (Structures.Priority_queue_obj) in
  let spine = Spine_pq.create ~n () in
  let reference = ref Structures.Priority_queue_obj.initial in
  let ok = ref true in
  for i = 1 to n do
    let op =
      if i mod 3 = 0 then Structures.Priority_queue_obj.Extract_min
      else Structures.Priority_queue_obj.Insert ((i * 53) mod 200)
    in
    let st, expected = Structures.Priority_queue_obj.apply !reference op in
    reference := st;
    if Spine_pq.execute spine ~origin:i op <> expected then ok := false
  done;
  row "priority-queue" "retire-spine"
    ~messages:(Sim.Metrics.total_messages (Spine_pq.metrics spine))
    ~bottleneck:(snd (Sim.Metrics.bottleneck (Spine_pq.metrics spine)))
    ~correct:!ok
    ~hotspot:(Counter.Hotspot.holds (Spine_pq.traces spine));
  print_table t;
  Format.printf
    "(Section 2's remark, realised: any operation-depends-on-predecessor \
     object gets the O(k) bottleneck from the same machinery)@."

(* ------------------------------------------------------------------ *)
(* E13: message lengths — the paper's O(log n) bits claim. *)

let exp13_message_bits ~big () =
  section "E13 (message length): largest message vs n (paper: O(log n) bits)";
  let ks = if big then [ 2; 3; 4; 5 ] else [ 2; 3; 4 ] in
  let t =
    Analysis.Table.create
      ~columns:
        [ "k"; "n"; "log2 n"; "max msg bits"; "mean msg bits"; "bits/log2n" ]
  in
  List.iter
    (fun k ->
      let module R = Core.Retire_counter in
      let n = Core.Params.n_of_k k in
      let c = R.create ~n () in
      for i = 1 to n do
        ignore (R.inc c ~origin:i)
      done;
      let messages = Sim.Metrics.total_messages (R.metrics c) in
      let log2n = log (float_of_int n) /. log 2. in
      let max_bits = R.max_message_bits c in
      Analysis.Table.add_row t
        [
          string_of_int k;
          string_of_int n;
          Analysis.Table.cell_float log2n;
          string_of_int max_bits;
          Analysis.Table.cell_float
            (float_of_int (R.total_bits c) /. float_of_int messages);
          Analysis.Table.cell_float (float_of_int max_bits /. log2n);
        ])
    ks;
  print_table t;
  Format.printf
    "(the bits/log2n column converging to a constant ~3 is the O(log n) \
     claim: every message carries at most a few identifiers)@."

(* ------------------------------------------------------------------ *)
(* E14: the price of flatness — operation latency. *)

let exp14_latency () =
  section
    "E14 (latency): virtual-time cost per op (unit delays) — flat load is \
     bought with tree depth";
  let t =
    Analysis.Table.create
      ~columns:
        [ "counter"; "n"; "mean latency"; "max latency"; "bottleneck" ]
  in
  List.iter
    (fun c ->
      let r = Counter.Driver.run_each_once c ~n:81 in
      Analysis.Table.add_row t
        [
          counter_name c;
          string_of_int r.Counter.Driver.n;
          Analysis.Table.cell_float r.Counter.Driver.mean_op_latency;
          Analysis.Table.cell_float r.Counter.Driver.max_op_latency;
          string_of_int r.Counter.Driver.bottleneck_load;
        ])
    Baselines.Registry.all;
  print_table t;
  Format.printf
    "(central answers in 2 time units but melts one processor; the paper's \
     counter pays ~k+2 units — the message-load/latency trade-off)@."

(* ------------------------------------------------------------------ *)
(* E15: how far does the construction stretch beyond the paper's
   sequential model? Concurrent batches on the retirement tree. *)

let exp15_concurrency () =
  section
    "E15 (model boundary): the retirement tree under concurrent batches \
     (the paper assumes sequential ops)";
  let module R = Core.Retire_counter in
  let n = 1024 in
  let t =
    Analysis.Table.create
      ~columns:
        [ "batch"; "bottleneck"; "messages"; "msgs/op"; "values ok" ]
  in
  List.iter
    (fun batch ->
      let c = R.create ~n () in
      let all = ref [] in
      for i = 0 to (n / batch) - 1 do
        let origins = List.init batch (fun j -> (i * batch) + j + 1) in
        all := List.map snd (R.run_batch c ~origins) @ !all
      done;
      let ok = List.sort compare !all = List.init n Fun.id in
      let m = R.metrics c in
      let _, bottleneck = Sim.Metrics.bottleneck m in
      Analysis.Table.add_row t
        [
          string_of_int batch;
          string_of_int bottleneck;
          string_of_int (Sim.Metrics.total_messages m);
          Analysis.Table.cell_float
            (float_of_int (Sim.Metrics.total_messages m) /. float_of_int n);
          Analysis.Table.cell_bool ok;
        ])
    [ 1; 8; 64; 256; 1024 ];
  print_table t;
  Format.printf
    "(values stay exact at any concurrency, but the O(k) bottleneck needs \
     the sequential model: with b concurrent requests the retirement \
     announcements race the request flood and stale traffic piles onto \
     recent workers — combining (E11) is the established fix)@."

(* ------------------------------------------------------------------ *)
(* E16: long-lived counting — m rounds of each-processor-once. *)

let exp16_long_lived () =
  section
    "E16 (long-lived counting): m rounds of each-processor-once at n = 81";
  let module R = Core.Retire_counter in
  let n = 81 in
  let t =
    Analysis.Table.create
      ~columns:
        [
          "rounds"; "ops"; "bottleneck"; "bneck/round"; "overflow hires";
          "retirements";
        ]
  in
  List.iter
    (fun rounds ->
      let c = R.create ~n () in
      for _ = 1 to rounds do
        for i = 1 to n do
          ignore (R.inc c ~origin:i)
        done
      done;
      let m = R.metrics c in
      let _, bottleneck = Sim.Metrics.bottleneck m in
      Analysis.Table.add_row t
        [
          string_of_int rounds;
          string_of_int (rounds * n);
          string_of_int bottleneck;
          Analysis.Table.cell_float
            (float_of_int bottleneck /. float_of_int rounds);
          string_of_int (Sim.Metrics.overflow_processors m);
          string_of_int (R.total_retirements c);
        ])
    [ 1; 2; 4; 8; 16 ];
  print_table t;
  Format.printf
    "(the paper sizes replacement intervals for exactly one round; across m \
     rounds retirement keeps amortising — the bottleneck grows only \
     additively (~4 per extra round, the per-round leaf traffic) with \
     replacements drawn from the overflow pool)@."

(* ------------------------------------------------------------------ *)
(* E17: robustness — the headline numbers across seeds and delay
   models, replicated in parallel across domains. *)

let exp17_robustness () =
  section
    "E17 (robustness): bottleneck across 10 seeds x 3 delay models, n = 81 \
     (mean +- 95% CI; runs parallelised over domains)";
  let seeds = List.init 10 (fun i -> 100 + i) in
  let t =
    Analysis.Table.create
      ~columns:[ "counter"; "delay"; "bottleneck (mean +- ci)"; "sd" ]
  in
  let delays =
    [
      Sim.Delay.Constant 1.0;
      Sim.Delay.Exponential 1.0;
      Sim.Delay.Adversarial_jitter 0.5;
    ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun delay ->
          let summary =
            Analysis.Replicate.across_seeds_parallel ~seeds (fun seed ->
                let r =
                  Counter.Driver.run ~seed ~delay c ~n:81
                    ~schedule:Counter.Schedule.Each_once_shuffled
                in
                assert
                  (r.Counter.Driver.values_exact
                  && r.Counter.Driver.sequentially_ordered);
                float_of_int r.Counter.Driver.bottleneck_load)
          in
          Analysis.Table.add_row t
            [
              counter_name c;
              Format.asprintf "%a" Sim.Delay.pp delay;
              Printf.sprintf "%.1f +- %.1f" summary.Analysis.Replicate.mean
                summary.Analysis.Replicate.ci95;
              Analysis.Table.cell_float summary.Analysis.Replicate.stddev;
            ])
        delays)
    [
      Baselines.Registry.retire_tree;
      Baselines.Registry.central;
      Baselines.Registry.counting_network;
      Baselines.Registry.quorum_grid;
    ];
  print_table t;
  Format.printf
    "(the bounds are about message counts, so the delay model moves the \
     numbers by at most a few percent — the paper's theorems are \
     delay-free and so are the measurements)@."

(* ------------------------------------------------------------------ *)
(* E18: fidelity — shared-state simulation vs strictly processor-local
   protocol. *)

let exp18_fidelity () =
  section
    "E18 (fidelity): shared-state Retire_counter vs strictly \
     processor-local Retire_local";
  let t =
    Analysis.Table.create
      ~columns:
        [
          "k"; "n"; "impl"; "messages"; "bottleneck"; "stale fwd";
          "buffered"; "identical";
        ]
  in
  List.iter
    (fun k ->
      let n = Core.Params.n_of_k k in
      let r = Core.Retire_counter.create ~n () in
      let l = Core.Retire_local.create ~n () in
      for i = 1 to n do
        ignore (Core.Retire_counter.inc r ~origin:i);
        ignore (Core.Retire_local.inc l ~origin:i)
      done;
      let mr = Core.Retire_counter.metrics r in
      let ml = Core.Retire_local.metrics l in
      let identical =
        Sim.Metrics.total_messages mr = Sim.Metrics.total_messages ml
        && snd (Sim.Metrics.bottleneck mr) = snd (Sim.Metrics.bottleneck ml)
      in
      Analysis.Table.add_row t
        [
          string_of_int k;
          string_of_int n;
          "shared-state";
          string_of_int (Sim.Metrics.total_messages mr);
          string_of_int (snd (Sim.Metrics.bottleneck mr));
          string_of_int (Core.Retire_counter.stale_forwards r);
          "-";
          Analysis.Table.cell_bool identical;
        ];
      Analysis.Table.add_row t
        [
          string_of_int k;
          string_of_int n;
          "processor-local";
          string_of_int (Sim.Metrics.total_messages ml);
          string_of_int (snd (Sim.Metrics.bottleneck ml));
          string_of_int (Core.Retire_local.stale_forwards l);
          string_of_int (Core.Retire_local.buffered_messages l);
          Analysis.Table.cell_bool identical;
        ])
    [ 2; 3; 4 ];
  print_table t;
  (* Under heavy jitter the handshake races become visible. *)
  let l =
    Core.Retire_local.create ~delay:(Sim.Delay.Adversarial_jitter 0.5) ~n:1024 ()
  in
  for i = 1 to 1024 do
    ignore (Core.Retire_local.inc l ~origin:i)
  done;
  Format.printf
    "under jitter delays (n=1024): %d messages, %d buffered by the \
     handshake, %d stale-forward hops — still every value exact@."
    (Sim.Metrics.total_messages (Core.Retire_local.metrics l))
    (Core.Retire_local.buffered_messages l)
    (Core.Retire_local.stale_forwards l)

(* ------------------------------------------------------------------ *)
(* E19: exhaustive verification at k = 2 — every operation order. *)

let exp19_exhaustive () =
  section
    "E19 (exhaustive): ALL 8! = 40320 each-once orders at n = 8 (k = 2)";
  let t =
    Analysis.Table.create
      ~columns:
        [
          "counter"; "orders"; "correct"; "hotspot"; "m_b>=k";
          "bottleneck range"; "messages range";
        ]
  in
  List.iter
    (fun c ->
      let s = Core.Exhaustive.verify_counter c ~n:8 in
      Analysis.Table.add_row t
        [
          counter_name c;
          string_of_int s.Core.Exhaustive.orders;
          Analysis.Table.cell_bool s.Core.Exhaustive.all_correct;
          Analysis.Table.cell_bool s.Core.Exhaustive.all_hotspot;
          Analysis.Table.cell_bool s.Core.Exhaustive.all_bound;
          Printf.sprintf "%d..%d" s.Core.Exhaustive.min_bottleneck
            s.Core.Exhaustive.max_bottleneck;
          Printf.sprintf "%d..%d" s.Core.Exhaustive.min_messages
            s.Core.Exhaustive.max_messages;
        ])
    [
      Baselines.Registry.retire_tree;
      Baselines.Registry.central;
      Baselines.Registry.counting_network;
    ];
  print_table t;
  Format.printf
    "(not sampling: every possible each-once schedule at this size — the \
     lower bound m_b >= k holds on all of them, and even the best-case \
     order cannot push the retirement tree's bottleneck below the range \
     shown)@."

(* ------------------------------------------------------------------ *)
(* E20: linearizability under overlap — the HSW phenomenon, live. *)

let exp20_linearizability () =
  section
    "E20 (related work, HSW): linearizability under overlapping \
     operations (staggered injection, exponential delays)";
  let t =
    Analysis.Table.create
      ~columns:
        [
          "counter"; "stagger"; "peak overlap"; "contiguous";
          "linearizable (10 seeds)";
        ]
  in
  let seeds = List.init 10 (fun i -> i + 1) in
  let run_counting stagger seed =
    let c =
      Baselines.Counting_network.create_width ~n:64 ~width:8
        ~delay:(Sim.Delay.Exponential 1.0) ~seed ()
    in
    Baselines.Counting_network.run_batch_timed c ~stagger
      ~origins:(List.init 64 (fun i -> i + 1))
      ()
  in
  let run_retire stagger seed =
    let c =
      Core.Retire_counter.create ~n:81 ~delay:(Sim.Delay.Exponential 1.0)
        ~seed ()
    in
    Core.Retire_counter.run_batch_timed c ~stagger
      ~origins:(List.init 81 (fun i -> i + 1))
      ()
  in
  let row name run stagger =
    let histories = List.map (run stagger) seeds in
    let linearizable =
      List.length (List.filter Counter.History.is_linearizable histories)
    in
    let contiguous =
      List.for_all Counter.History.values_contiguous histories
    in
    let peak =
      List.fold_left
        (fun acc h -> max acc (Counter.History.concurrency_profile h))
        0 histories
    in
    Analysis.Table.add_row t
      [
        name;
        Analysis.Table.cell_float ~decimals:1 stagger;
        string_of_int peak;
        Analysis.Table.cell_bool contiguous;
        Printf.sprintf "%d/10" linearizable;
      ]
  in
  List.iter
    (fun stagger ->
      row "counting-net" run_counting stagger;
      row "retire-tree" run_retire stagger)
    [ 0.25; 0.5; 1.0; 4.0 ];
  print_table t;
  (* Exhibit one concrete violation. *)
  let h = run_counting 0.5 5 in
  (match Counter.History.check h with
  | Counter.History.Violation (a, b) ->
      Format.printf "a concrete violation (seed 5, stagger 0.5): %a, yet %a@."
        Counter.History.pp_op a Counter.History.pp_op b
  | Counter.History.Linearizable -> ());
  Format.printf
    "(counting networks hand out values in token-arrival order at the \
     output wires, which real-time order does not respect — the reason \
     Herlihy-Shavit-Waarts built linearizable variants; the paper's \
     counter serialises at the root, so real-time order is preserved and \
     every history is linearizable)@."

(* ------------------------------------------------------------------ *)
(* Bechamel timing. *)

let timing () =
  section "Timing (Bechamel): wall-clock cost of one inc, per counter";
  let open Bechamel in
  let make_counter_test (module C : Counter.Counter_intf.S) =
    let n = C.supported_n 81 in
    let counter = C.create ~n () in
    let next = ref 0 in
    Test.make ~name:C.name
      (Staged.stage (fun () ->
           let origin = (!next mod n) + 1 in
           incr next;
           ignore (C.inc counter ~origin)))
  in
  let tests =
    Test.make_grouped ~name:"inc@n=81"
      (List.map make_counter_test Baselines.Registry.all)
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let t = Analysis.Table.create ~columns:[ "bench"; "ns/op"; "r^2" ] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      Analysis.Table.add_row t [ name; est; r2 ])
    (List.sort compare rows);
  print_table t

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let big = List.mem "--big" args in
  let no_timing = List.mem "--no-timing" args in
  let only =
    let rec collect = function
      | "--only" :: e :: rest -> String.uppercase_ascii e :: collect rest
      | _ :: rest -> collect rest
      | [] -> []
    in
    collect args
  in
  let want name = only = [] || List.mem name only in
  Printf.printf
    "Reproduction harness: Wattenhofer & Widmayer, 'An Inherent Bottleneck \
     in Distributed Counting' (PODC 1997)\n";
  if want "E1" then exp1_dag ();
  if want "E2" then exp2_hotspot ();
  if want "E3" then exp3_lowerbound ();
  if want "E4" then exp4_upperbound ~big ();
  if want "E5" then exp5_comparison ~big ();
  if want "E6" then exp6_distribution ();
  if want "E7" then exp7_network ();
  if want "E8" then exp8_quorum ();
  if want "E9" then exp9_ablation ();
  if want "E10" then exp10_arity ();
  if want "E11" then exp11_concurrent ();
  if want "E12" then exp12_structures ();
  if want "E13" then exp13_message_bits ~big ();
  if want "E14" then exp14_latency ();
  if want "E15" then exp15_concurrency ();
  if want "E16" then exp16_long_lived ();
  if want "E17" then exp17_robustness ();
  if want "E18" then exp18_fidelity ();
  if want "E19" then exp19_exhaustive ();
  if want "E20" then exp20_linearizability ();
  if (not no_timing) && (only = [] || List.mem "TIMING" only) then timing ()
