(* The repository's ORIGINAL event queue, frozen verbatim as a benchmark
   baseline: a binary min-heap of boxed {prio; seq; value} entry records.
   bench/perf.ml races it against the structure-of-arrays Sim.Heap that
   replaced it, so the speedup and allocation numbers in BENCH_*.json are
   measured, not remembered. Do not "improve" this file — its whole value
   is staying exactly as slow as the seed. *)

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let size t = t.len

(* [a] sorts before [b]: smaller priority first, then smaller sequence. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let ensure_capacity t fill =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let new_cap = if cap = 0 then 16 else 2 * cap in
    let data = Array.make new_cap fill in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~prio value =
  let entry = { prio; seq = t.next_seq; value } in
  ensure_capacity t entry;
  t.data.(t.len) <- entry;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (e.prio, e.value)
  end
