(* Throughput benchmark suite for the simulation engine.

   Five sections, each reported as events (or ops) per second plus words
   allocated per event (from [Gc] counters):

   1. heap      — raw push/pop on the frozen seed binary heap
                  (bench/seed_heap.ml) vs the structure-of-arrays 4-ary
                  [Sim.Heap], identical priority streams. The headline
                  regression number: the rewrite must stay >= 2x.
   2. network   — end-to-end engine throughput: a message-relay protocol on
                  [Sim.Network] at n in {10^3, 10^4, 10^5}. Each scale runs
                  twice: the historical fixed-work load (~400k deliveries
                  regardless of n, comparable with BENCH_1) and a scaled
                  load whose delivery count grows with n, so per-event cost
                  at large n is not drowned by a tiny working set.
   3. par       — the sharded conservative engine [Sim.Par]: the same relay
                  at n up to 10^6 across a domain matrix {1, 2, 4, 8}, with
                  an in-run assertion that every domain count reproduces the
                  single-domain load checksum bit-for-bit.
   4. counters  — sequential increments/second for a representative counter
                  subset at the network scales.
   5. parallel  — a multi-seed sweep through [Analysis.Replicate], timed
                  sequentially and across domains.
   6. load      — the open-loop load engine [Counter.Driver.run_load]:
                  wall-clock ops/second simulating a fixed arrival-rate
                  run for a representative concurrent subset, plus the
                  virtual-time p99 latency and peak overlap each run
                  reports.
   7. byz       — the Byzantine resilience tax: sync-count's phase-king
                  msgs/op against the crash-tolerant retire-ft and
                  quorum-majority at the same n, plus a corrupted run
                  under the b = f king plan proving the message count is
                  fault-oblivious.

   [--json] additionally writes a machine-readable artefact (default
   BENCH_4.json; schema "dcount-bench/4" in docs/PERFORMANCE.md; the
   header records the dune profile and flambda flag the binary was built
   with). [--smoke] shrinks every section to seconds of total runtime for
   CI. [--validate FILE] re-parses an artefact and checks the schema
   instead of benchmarking. [--gate BASELINE] runs the suite and compares
   its rates against a stored artefact, exiting non-zero on regression
   (see [gate] below). *)

module Json = Analysis.Json

let now () = Unix.gettimeofday ()

(* Total words allocated so far by this domain. [promoted_words] is
   subtracted because promotion would otherwise count an allocation twice
   (once minor, once major). *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* Measured repetitions per benchmark (after one warm-up run); the fastest
   rep is reported. Best-of-k rather than mean because the regression gate
   compares rates across runs: scheduler preemption only ever makes a rep
   slower, so the minimum is the stable statistic on a shared machine.
   Smoke workloads are tiny and noisiest, so main bumps this to 3 there. *)
let reps = ref 2

(* Run [f] once as warm-up, then [!reps] times measured; returns
   (result, best seconds, words allocated during the best rep). *)
let measure f =
  ignore (f ());
  let result = ref None in
  let best_t = ref infinity and best_w = ref 0.0 in
  for _ = 1 to !reps do
    Gc.full_major ();
    let w0 = allocated_words () in
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    let dw = allocated_words () -. w0 in
    if dt < !best_t then begin
      best_t := dt;
      best_w := dw;
      result := Some r
    end
  done;
  (Option.get !result, !best_t, !best_w)

let rate count seconds = float_of_int count /. seconds

let pr fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Section 1: raw heap push/pop.

   Workload: pre-fill to a working set of [w] pending events, then for each
   remaining priority pop the minimum and push the next — the steady state
   of a discrete-event loop — and finally drain. Both heaps consume the
   same pre-generated priority array, so the comparison is purely the data
   structure. One "event" = one push + one pop. *)

(* Each benchmark folds the popped values into an order-sensitive integer
   checksum. Because (prio, seq) is a total order, both heaps must pop the
   exact same value sequence — a mismatch means one of them is broken.
   Values are immediate ints so the checksum itself allocates nothing;
   each heap pays only its own API's allocation (the seed heap's [pop]
   option/tuple is intrinsic — it is what the old engine called). *)

let bench_seed_heap prios w =
  let h = Seed_heap.create () in
  let total = Array.length prios in
  let acc = ref 0 in
  for i = 0 to w - 1 do
    Seed_heap.push h ~prio:prios.(i) i
  done;
  for i = w to total - 1 do
    (match Seed_heap.pop h with
    | Some (_, v) -> acc := (!acc * 31) + v
    | None -> assert false);
    Seed_heap.push h ~prio:prios.(i) i
  done;
  while Seed_heap.size h > 0 do
    match Seed_heap.pop h with
    | Some (_, v) -> acc := (!acc * 31) + v
    | None -> assert false
  done;
  !acc

let bench_soa_heap prios w =
  let h = Sim.Heap.create ~capacity:w () in
  let total = Array.length prios in
  let acc = ref 0 in
  for i = 0 to w - 1 do
    Sim.Heap.push h ~prio:prios.(i) i
  done;
  for i = w to total - 1 do
    let v = Sim.Heap.pop_top h in
    acc := (!acc * 31) + v;
    Sim.Heap.push h ~prio:prios.(i) i
  done;
  while not (Sim.Heap.is_empty h) do
    let v = Sim.Heap.pop_top h in
    acc := (!acc * 31) + v
  done;
  !acc

let heap_section ~smoke =
  let working_set = if smoke then 512 else 16_384 in
  let events = if smoke then 100_000 else 2_000_000 in
  let rng = Sim.Rng.create ~seed:2026 in
  let prios = Array.init events (fun _ -> Sim.Rng.float rng 1_000.0) in
  let seed_sum, seed_t, seed_w = measure (fun () -> bench_seed_heap prios working_set) in
  let soa_sum, soa_t, soa_w = measure (fun () -> bench_soa_heap prios working_set) in
  (* Same priorities + stable (prio, seq) order => identical pop streams. *)
  if seed_sum <> soa_sum then
    failwith "heap benchmark: seed and SoA heaps popped different streams";
  let per_event words = words /. float_of_int events in
  let speedup = seed_t /. soa_t in
  pr "== heap: %d events through a %d-entry working set ==\n" events
    working_set;
  pr "  seed (boxed binary):   %10.0f events/s  %6.2f words/event\n"
    (rate events seed_t) (per_event seed_w);
  pr "  SoA (unboxed 4-ary):   %10.0f events/s  %6.2f words/event\n"
    (rate events soa_t) (per_event soa_w);
  pr "  speedup: %.2fx   allocation: %.2f -> %.2f words/event\n\n" speedup
    (per_event seed_w) (per_event soa_w);
  Json.Obj
    [
      ("working_set", Json.int working_set);
      ("events", Json.int events);
      ( "seed_heap",
        Json.Obj
          [
            ("events_per_sec", Json.Num (rate events seed_t));
            ("words_per_event", Json.Num (per_event seed_w));
          ] );
      ( "soa_heap",
        Json.Obj
          [
            ("events_per_sec", Json.Num (rate events soa_t));
            ("words_per_event", Json.Num (per_event soa_w));
          ] );
      ("speedup", Json.Num speedup);
    ]

(* ------------------------------------------------------------------ *)
(* Section 2: engine throughput.

   A relay protocol: each message carries a hop budget; on delivery the
   receiver forwards it (hops - 1) to a deterministically scrambled next
   destination until the budget is spent. Measures the full delivery path:
   heap pop, FIFO bookkeeping, metrics charge, handler dispatch, re-send. *)

let bench_network ~n ~target_events =
  let net = Sim.Network.create ~seed:99 ~fifo:true ~n () in
  let injections = min n 256 in
  let hops = max 1 (target_events / injections) in
  Sim.Network.set_handler net (fun ~self ~src:_ hops ->
      if hops > 0 then
        let dst = 1 + (((self * 2654435761) + hops) mod n) in
        Sim.Network.send net ~src:self ~dst (hops - 1));
  for i = 1 to injections do
    Sim.Network.send net ~src:i ~dst:(1 + (i * 7919 mod n)) hops
  done;
  Sim.Network.run_to_quiescence net

(* Two loads per scale. "fixed" keeps the historical ~constant delivery
   count so rows stay comparable with BENCH_1-era artefacts; "scaled"
   grows deliveries linearly with n so the big-n rows actually exercise a
   working set proportional to the machine (a fixed 400k-event load at
   n = 10^5 touches each processor four times — cache effects vanish). *)
let network_section ~smoke ~sizes =
  let fixed_target = if smoke then 20_000 else 400_000 in
  let scaled_target n = if smoke then 20 * n else 40 * n in
  pr "== network: relay protocol (fixed ~%d deliveries; scaled %dx n) ==\n"
    fixed_target
    (if smoke then 20 else 40);
  let row ~n ~work ~target_events =
    let deliveries, t, w =
      measure (fun () -> bench_network ~n ~target_events)
    in
    let per_event = w /. float_of_int deliveries in
    pr
      "  n = %6d  %-6s: %8d deliveries  %10.0f events/s  %6.2f words/event\n"
      n work deliveries (rate deliveries t) per_event;
    Json.Obj
      [
        ("n", Json.int n);
        ("work", Json.Str work);
        ("deliveries", Json.int deliveries);
        ("events_per_sec", Json.Num (rate deliveries t));
        ("words_per_event", Json.Num per_event);
      ]
  in
  let rows =
    List.concat_map
      (fun n ->
        (* lets pin evaluation order: list elements evaluate right-to-left *)
        let fixed = row ~n ~work:"fixed" ~target_events:fixed_target in
        let scaled = row ~n ~work:"scaled" ~target_events:(scaled_target n) in
        [ fixed; scaled ])
      sizes
  in
  pr "\n";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* Section 3: sharded conservative engine.

   The same relay workload on [Sim.Par]: contiguous processor blocks per
   domain, per-link lookahead, barrier rounds to the safe horizon. The
   relay's next hop is a pure function of (receiver, hop budget), so the
   message multiset — and therefore the per-processor load vector — is
   independent of delivery interleaving: every domain count must produce
   the same [Sim.Metrics.checksum]. The benchmark asserts that on every
   row; a mismatch is an engine bug, not a slow run.

   Words/event is measured by this (coordinating) domain's Gc counters
   only — OCaml Gc statistics are per-domain, so for domains > 1 the
   figure undercounts worker allocation and is reported as such. *)

let bench_par ~n ~domains ~target_events =
  let t = Sim.Par.create ~seed:99 ~domains ~n () in
  Sim.Par.set_handler t (fun ctx ~src:_ hops ->
      if hops > 0 then
        let self = Sim.Par.self ctx in
        let dst = 1 + (((self * 2654435761) + hops) mod n) in
        Sim.Par.send ctx ~dst (hops - 1));
  let injections = min n 256 in
  let hops = max 1 (target_events / injections) in
  for i = 1 to injections do
    Sim.Par.inject t ~src:i ~dst:(1 + (i * 7919 mod n)) hops
  done;
  let events = Sim.Par.run_to_quiescence t in
  (events, Sim.Metrics.checksum (Sim.Par.metrics t))

let par_section ~smoke =
  let sizes = if smoke then [ 1_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let domain_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let target_events = if smoke then 20_000 else 400_000 in
  pr "== par: sharded relay, ~%d deliveries, domains in {%s} ==\n"
    target_events
    (String.concat ", " (List.map string_of_int domain_counts));
  let rows =
    List.concat_map
      (fun n ->
        let baseline = ref None in
        List.map
          (fun domains ->
            let (events, sum), t, w =
              measure (fun () -> bench_par ~n ~domains ~target_events)
            in
            (match !baseline with
            | None -> baseline := Some (sum, rate events t)
            | Some (base_sum, _) ->
                if sum <> base_sum then
                  failwith
                    (Printf.sprintf
                       "par benchmark: checksum diverged at n=%d domains=%d"
                       n domains));
            let speedup =
              match !baseline with
              | Some (_, base_rate) -> rate events t /. base_rate
              | None -> 1.0
            in
            pr
              "  n = %7d  domains = %d: %8d events  %10.0f events/s  \
               %5.2fx vs 1 domain\n"
              n domains events (rate events t) speedup;
            Json.Obj
              [
                ("n", Json.int n);
                ("domains", Json.int domains);
                ("deliveries", Json.int events);
                ("events_per_sec", Json.Num (rate events t));
                ("words_per_event", Json.Num (w /. float_of_int events));
                ("speedup_vs_1", Json.Num speedup);
                (* as a string: Json numbers are doubles, and a 63-bit
                   checksum would silently lose low bits *)
                ("checksum", Json.Str (string_of_int sum));
              ])
          domain_counts)
      sizes
  in
  pr "\n";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* Section 4: counters.

   Sequential increments/second for a representative subset: the central
   server (message-cheap, maximally contended), the paper's retire-tree,
   the static tree, and the bitonic counting network. Creation cost is
   excluded; the ops budget is capped so the largest scale stays seconds. *)

let counter_subset =
  [
    Baselines.Registry.central;
    Baselines.Registry.static_tree;
    Baselines.Registry.retire_tree;
    Baselines.Registry.counting_network;
  ]

let bench_counter (module C : Counter.Counter_intf.S) ~n ~ops =
  (* [measure] can't wrap the op loop alone — a counter's value stream is
     stateful — so each rep gets a fresh counter and times only the ops;
     creation doubles as the warm-up. Best-of-reps, like [measure]. *)
  let best_t = ref infinity and best_w = ref 0.0 and best_msgs = ref 0 in
  for _ = 1 to !reps do
    let c = C.create ~seed:5 ~n () in
    let out = ref 0 in
    Gc.full_major ();
    let w0 = allocated_words () in
    let t0 = now () in
    for i = 0 to ops - 1 do
      out := C.inc c ~origin:(1 + (i mod n))
    done;
    let dt = now () -. t0 in
    let dw = allocated_words () -. w0 in
    if dt < !best_t then begin
      best_t := dt;
      best_w := dw;
      best_msgs := Sim.Metrics.total_messages (C.metrics c)
    end
  done;
  (!best_t, !best_w, !best_msgs)

let counters_section ~smoke ~sizes =
  (* The smoke budget must still be long enough to time: 64 ops of the
     fastest counter is single-digit microseconds — pure timer noise —
     and the regression gate compares these rates across runs. *)
  let ops_budget = if smoke then 512 else 2_000 in
  pr "== counters: sequential increments (ops budget %d) ==\n" ops_budget;
  let rows =
    List.concat_map
      (fun (module C : Counter.Counter_intf.S) ->
        List.map
          (fun requested ->
            let n = C.supported_n requested in
            let ops = min n ops_budget in
            let dt, dw, msgs = bench_counter (module C) ~n ~ops in
            pr
              "  %-14s n = %6d: %8.0f ops/s  %7.1f msgs/op  %8.0f \
               words/op\n"
              C.name n (rate ops dt)
              (float_of_int msgs /. float_of_int ops)
              (dw /. float_of_int ops);
            Json.Obj
              [
                ("counter", Json.Str C.name);
                ("requested_n", Json.int requested);
                ("n", Json.int n);
                ("ops", Json.int ops);
                ("ops_per_sec", Json.Num (rate ops dt));
                ( "messages_per_op",
                  Json.Num (float_of_int msgs /. float_of_int ops) );
                ("words_per_op", Json.Num (dw /. float_of_int ops));
              ])
          sizes)
      counter_subset
  in
  pr "\n";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* Section 5: multi-seed sweep across domains. *)

let sweep_run ~n seed =
  let r =
    Counter.Driver.run ~seed Baselines.Registry.retire_tree ~n
      ~schedule:Counter.Schedule.Each_once_shuffled
  in
  float_of_int r.Counter.Driver.bottleneck_load

let parallel_section ~smoke =
  let n = if smoke then 81 else 2187 in
  let seeds = List.init (if smoke then 2 else 8) (fun i -> i + 1) in
  let runs = List.length seeds in
  let f = sweep_run ~n in
  ignore (f (List.hd seeds));
  let t0 = now () in
  let seq = Analysis.Replicate.across_seeds ~seeds f in
  let seq_t = now () -. t0 in
  let t0 = now () in
  let par = Analysis.Replicate.across_seeds_parallel ~seeds f in
  let par_t = now () -. t0 in
  if seq.Analysis.Replicate.mean <> par.Analysis.Replicate.mean then
    failwith "parallel sweep: sequential and parallel summaries disagree";
  let speedup = seq_t /. par_t in
  pr "== parallel: retire-tree each-once at n = %d, %d seeds ==\n" n runs;
  pr "  sequential: %.3f s   parallel: %.3f s   speedup: %.2fx\n" seq_t par_t
    speedup;
  pr "  bottleneck load: %s\n\n"
    (Format.asprintf "%a" Analysis.Replicate.pp_summary seq);
  Json.Obj
    [
      ("n", Json.int n);
      ("seeds", Json.int runs);
      ("sequential_sec", Json.Num seq_t);
      ("parallel_sec", Json.Num par_t);
      ("speedup", Json.Num speedup);
      ("mean_bottleneck", Json.Num seq.Analysis.Replicate.mean);
    ]

(* ------------------------------------------------------------------ *)
(* Section 6: open-loop load engine.

   [Driver.run_load] at fixed per-source arrival rates, exp:1 delays (the
   [dcount load] default, so the overlap regime is exercised rather than
   the constant-delay lock-step pipeline). The throughput number is
   wall-clock operations simulated per second — how fast the engine chews
   through an open-loop run — while p99 latency and peak overlap are the
   run's own virtual-time figures, pinned here so an artefact also
   documents the workload's shape. *)

let load_subset = [ "central"; "combining"; "counting-net"; "retire-tree" ]

let load_section ~smoke =
  let n = if smoke then 16 else 64 in
  let ops = if smoke then 256 else 2_000 in
  let rates = if smoke then [ 0.5 ] else [ 0.2; 2.0 ] in
  pr "== load: open-loop engine, n = %d, %d ops (rates per source) ==\n" n
    ops;
  let rows =
    List.concat_map
      (fun name ->
        let c =
          match Baselines.Registry.find_concurrent name with
          | Some c -> c
          | None -> failwith ("load benchmark: unknown counter " ^ name)
        in
        List.map
          (fun arrival_rate ->
            let report, t, w =
              measure (fun () ->
                  Counter.Driver.run_load ~seed:5
                    ~delay:(Sim.Delay.Exponential 1.0) c ~n
                    ~arrivals:(Sim.Arrivals.Poisson arrival_rate) ~ops)
            in
            let lat = report.Counter.Driver.latency in
            let a = report.Counter.Driver.analysis in
            pr
              "  %-14s rate = %4.2f: %8.0f ops/s  p99 = %6.2f  peak = %4d  \
               linearizable = %b\n"
              name arrival_rate (rate ops t) lat.Analysis.Histogram.p99
              a.Counter.History.peak_overlap a.Counter.History.linearizable;
            Json.Obj
              [
                ("counter", Json.Str name);
                ("n", Json.int report.Counter.Driver.n);
                ("rate", Json.Num arrival_rate);
                ("ops", Json.int ops);
                ("ops_per_sec", Json.Num (rate ops t));
                ("words_per_op", Json.Num (w /. float_of_int ops));
                ("p99_virtual", Json.Num lat.Analysis.Histogram.p99);
                ("peak_overlap", Json.int a.Counter.History.peak_overlap);
                ("linearizable", Json.Bool a.Counter.History.linearizable);
              ])
          rates)
      load_subset
  in
  pr "\n";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* Section 7: Byzantine resilience tax.

   What does tolerating f < n/3 corrupt processors cost per increment
   compared to counters that only survive crashes? sync-count's
   phase-king exchange is all-to-all in every round, so its msgs/op
   dwarfs the crash-tolerant baselines at the same n — the tax m_b this
   section pins: sync-count msgs/op divided by each baseline's. The
   faulted row re-runs sync-count under the chaos sweep's b = f king
   plan; the schedule is fault-oblivious, so the message count must not
   move — only the corruption counters — and the section asserts that. *)

let byz_king_plan ~n =
  let f = (n - 1) / 3 in
  let rules =
    [| Sim.Fault.Off_by 7; Sim.Fault.Max_int; Sim.Fault.Replay_stale |]
  in
  let victims = List.init f (fun i -> f + 1 - i) in
  {
    Sim.Fault.none with
    Sim.Fault.byz =
      List.map
        (fun p -> { Sim.Fault.processor = p; trigger = Sim.Fault.At 0. })
        victims;
    byz_rules = List.mapi (fun i p -> (p, rules.(i mod 3))) victims;
    byz_equiv = List.filteri (fun i _ -> i mod 2 = 0) victims;
  }

let bench_byz_counter (module C : Counter.Counter_intf.S) ?faults ~n ~ops ()
    =
  let best_t = ref infinity
  and best_w = ref 0.0
  and best_msgs = ref 0
  and best_corruptions = ref 0 in
  for _ = 1 to !reps do
    let c = C.create ~seed:5 ?faults ~n () in
    let out = ref 0 in
    Gc.full_major ();
    let w0 = allocated_words () in
    let t0 = now () in
    for i = 0 to ops - 1 do
      out := C.inc c ~origin:(1 + (i mod n))
    done;
    let dt = now () -. t0 in
    let dw = allocated_words () -. w0 in
    if dt < !best_t then begin
      best_t := dt;
      best_w := dw;
      best_msgs := Sim.Metrics.total_messages (C.metrics c);
      best_corruptions := Sim.Metrics.corruptions (C.metrics c)
    end
  done;
  (!best_t, !best_w, !best_msgs, !best_corruptions)

let byz_section ~smoke =
  let requested = if smoke then 7 else 13 in
  let ops = if smoke then 28 else 128 in
  pr "== byz: resilience tax at n = %d (%d ops) ==\n" requested ops;
  let row (module C : Counter.Counter_intf.S) ?faults label =
    let n = C.supported_n requested in
    let dt, dw, msgs, corruptions =
      bench_byz_counter (module C) ?faults ~n ~ops ()
    in
    let msgs_per_op = float_of_int msgs /. float_of_int ops in
    pr "  %-18s n = %3d: %8.0f ops/s  %8.1f msgs/op  corrupted = %d\n"
      label n (rate ops dt) msgs_per_op corruptions;
    let json =
      Json.Obj
        [
          ("counter", Json.Str label);
          ("requested_n", Json.int requested);
          ("n", Json.int n);
          ("ops", Json.int ops);
          ( "faults",
            Json.Str
              (match faults with
              | None -> ""
              | Some f -> Sim.Fault.to_string f) );
          ("ops_per_sec", Json.Num (rate ops dt));
          ("messages_per_op", Json.Num msgs_per_op);
          ("words_per_op", Json.Num (dw /. float_of_int ops));
          ("corruptions", Json.int corruptions);
        ]
    in
    (json, msgs_per_op, corruptions)
  in
  let sync, sync_mpo, _ = row (module Core.Sync_counter) "sync-count" in
  let (module Ft : Counter.Counter_intf.S) = Baselines.Registry.retire_ft in
  let ft, ft_mpo, _ = row (module Ft) "retire-ft" in
  let (module Qm : Counter.Counter_intf.S) =
    Baselines.Registry.quorum_majority
  in
  let qm, qm_mpo, _ = row (module Qm) "quorum-majority" in
  let n = Core.Sync_counter.supported_n requested in
  let faulted, faulted_mpo, corruptions =
    row (module Core.Sync_counter) ~faults:(byz_king_plan ~n) "sync-count+byz"
  in
  if faulted_mpo <> sync_mpo then
    failwith "byz bench: corruption changed the message count";
  if corruptions = 0 then
    failwith "byz bench: the b = f king plan corrupted nothing";
  let tax_ft = sync_mpo /. ft_mpo and tax_qm = sync_mpo /. qm_mpo in
  pr "  resilience tax m_b: %.1fx vs retire-ft, %.1fx vs quorum-majority\n\n"
    tax_ft tax_qm;
  let tag row extra =
    match row with
    | Json.Obj fields -> Json.Obj (fields @ extra)
    | other -> other
  in
  Json.List
    [
      tag sync
        [
          ("m_b_vs_retire_ft", Json.Num tax_ft);
          ("m_b_vs_quorum_majority", Json.Num tax_qm);
        ];
      ft;
      qm;
      faulted;
    ]

(* ------------------------------------------------------------------ *)
(* Artefact validation (the [make bench-smoke] gate). *)

let validate_field doc path extract =
  let rec walk v = function
    | [] -> Some v
    | key :: rest -> Option.bind (Json.member key v) (fun v -> walk v rest)
  in
  match Option.bind (walk doc path) extract with
  | Some x -> x
  | None ->
      Printf.eprintf "invalid artefact: missing or ill-typed %s\n"
        (String.concat "." path);
      exit 1

let load_doc file =
  let contents =
    match open_in_bin file with
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse contents with
  | Error msg ->
      Printf.eprintf "%s: JSON parse error: %s\n" file msg;
      exit 1
  | Ok doc -> doc

let validate file =
  let doc = load_doc file in
  let schema = validate_field doc [ "schema" ] Json.to_str in
  let version =
    match schema with
    | "dcount-bench/1" -> 1
    | "dcount-bench/2" -> 2
    | "dcount-bench/3" -> 3
    | "dcount-bench/4" -> 4
    | _ ->
        Printf.eprintf "%s: unknown schema %S\n" file schema;
        exit 1
  in
  let v2 = version >= 2 in
  let speedup = validate_field doc [ "heap"; "speedup" ] Json.to_float in
  let check_rows section required_nums required_strs =
    let rows = validate_field doc [ section ] Json.to_list in
    if rows = [] then begin
      Printf.eprintf "%s: empty %s section\n" file section;
      exit 1
    end;
    List.iter
      (fun row ->
        List.iter
          (fun key -> ignore (validate_field row [ key ] Json.to_float))
          required_nums;
        List.iter
          (fun key -> ignore (validate_field row [ key ] Json.to_str))
          required_strs)
      rows
  in
  check_rows "network"
    [ "n"; "events_per_sec"; "words_per_event" ]
    (if v2 then [ "work" ] else []);
  check_rows "counters" [ "n"; "ops_per_sec"; "messages_per_op" ] [];
  if v2 then begin
    check_rows "par"
      [ "n"; "domains"; "events_per_sec"; "speedup_vs_1" ]
      [ "checksum" ];
    ignore (validate_field doc [ "profile" ] Json.to_str)
  end;
  if version >= 3 then
    check_rows "load"
      [ "n"; "rate"; "ops_per_sec"; "p99_virtual"; "peak_overlap" ]
      [ "counter" ];
  if version >= 4 then
    check_rows "byz"
      [ "n"; "ops_per_sec"; "messages_per_op" ]
      [ "counter"; "faults" ];
  ignore (validate_field doc [ "parallel"; "speedup" ] Json.to_float);
  Printf.printf "%s: valid %s (heap speedup %.2fx)\n" file schema speedup;
  if Float.is_nan speedup || speedup <= 0.0 then exit 1

(* ------------------------------------------------------------------ *)
(* Regression gate ([make bench-smoke]).

   Flattens an artefact into (key, rate) samples — every throughput
   number the suite emits, each under a stable path-like key — then
   compares the freshly measured run against a stored baseline on the
   keys both sides share. A sample regresses when

     current < baseline * (1 - tolerance)

   Improvements always pass: the gate is one-sided. Cross-mode
   comparisons (a smoke run gated against a full artefact, which is what
   CI does — the committed baselines are full runs) double the tolerance,
   because smoke workloads are small enough for warm-up and timer
   granularity to move rates by more than run-to-run noise. [handicap]
   scales the current rates before comparison; CI uses it to inject a
   synthetic regression and prove the gate actually fails. Zero shared
   keys is itself a failure — a gate that compares nothing must not
   report success. *)

let samples_of_doc doc =
  let get o k extract = Option.bind (Json.member k o) extract in
  let rows section =
    match Option.bind (Json.member section doc) Json.to_list with
    | Some rows -> rows
    | None -> []
  in
  let heap =
    match
      Option.bind (Json.member "heap" doc) (fun h ->
          Option.bind (Json.member "soa_heap" h) (fun s ->
              Option.bind (Json.member "events_per_sec" s) Json.to_float))
    with
    | Some r -> [ ("heap/soa", r) ]
    | None -> []
  in
  let network =
    List.filter_map
      (fun row ->
        match (get row "n" Json.to_float, get row "events_per_sec" Json.to_float) with
        | Some n, Some r ->
            (* schema 1 rows predate the work tag and were fixed-work *)
            let work =
              Option.value (get row "work" Json.to_str) ~default:"fixed"
            in
            Some (Printf.sprintf "network/n=%.0f/%s" n work, r)
        | _ -> None)
      (rows "network")
  in
  let par =
    List.filter_map
      (fun row ->
        match
          ( get row "n" Json.to_float,
            get row "domains" Json.to_float,
            get row "events_per_sec" Json.to_float )
        with
        | Some n, Some d, Some r ->
            Some (Printf.sprintf "par/n=%.0f/domains=%.0f" n d, r)
        | _ -> None)
      (rows "par")
  in
  let counters =
    List.filter_map
      (fun row ->
        match
          ( get row "counter" Json.to_str,
            get row "requested_n" Json.to_float,
            get row "ops_per_sec" Json.to_float )
        with
        | Some c, Some n, Some r ->
            Some (Printf.sprintf "counters/%s/n=%.0f" c n, r)
        | _ -> None)
      (rows "counters")
  in
  let load =
    List.filter_map
      (fun row ->
        match
          ( get row "counter" Json.to_str,
            get row "rate" Json.to_float,
            get row "ops_per_sec" Json.to_float )
        with
        | Some c, Some arrival_rate, Some r ->
            Some (Printf.sprintf "load/%s/rate=%g" c arrival_rate, r)
        | _ -> None)
      (rows "load")
  in
  let byz =
    List.filter_map
      (fun row ->
        match
          ( get row "counter" Json.to_str,
            get row "requested_n" Json.to_float,
            get row "ops_per_sec" Json.to_float )
        with
        | Some c, Some n, Some r ->
            Some (Printf.sprintf "byz/%s/n=%.0f" c n, r)
        | _ -> None)
      (rows "byz")
  in
  heap @ network @ par @ counters @ load @ byz

let doc_mode doc =
  Option.value
    (Option.bind (Json.member "mode" doc) Json.to_str)
    ~default:"full"

let gate ~tolerance ~handicap ~baseline_file current =
  let baseline = load_doc baseline_file in
  let base_samples = samples_of_doc baseline in
  let cur_samples = samples_of_doc current in
  let cross_mode = doc_mode baseline <> doc_mode current in
  let tol = if cross_mode then 2.0 *. tolerance else tolerance in
  pr "== gate: vs %s (tolerance %.0f%%%s%s) ==\n" baseline_file
    (100.0 *. tol)
    (if cross_mode then ", cross-mode doubled" else "")
    (if handicap <> 1.0 then Printf.sprintf ", handicap %.2f" handicap
     else "");
  let compared = ref 0 and regressed = ref 0 in
  List.iter
    (fun (key, base_rate) ->
      match List.assoc_opt key cur_samples with
      | None -> ()
      | Some cur_rate ->
          incr compared;
          let cur_rate = cur_rate *. handicap in
          let floor_rate = base_rate *. (1.0 -. tol) in
          let ok = cur_rate >= floor_rate in
          if not ok then incr regressed;
          pr "  %-32s %10.0f -> %10.0f  %s\n" key base_rate cur_rate
            (if ok then "ok" else "REGRESSED"))
    base_samples;
  if !compared = 0 then begin
    Printf.eprintf
      "gate: no comparable samples between %s and the current run\n"
      baseline_file;
    exit 1
  end;
  if !regressed > 0 then begin
    Printf.eprintf "gate: %d of %d samples regressed beyond %.0f%%\n"
      !regressed !compared (100.0 *. tol);
    exit 1
  end;
  pr "  gate passed: %d samples within tolerance\n\n" !compared

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: perf.exe [--smoke] [--json] [--out FILE] [--validate FILE]\n\
    \       [--gate BASELINE] [--tolerance T] [--handicap H]";
  exit 2

let () =
  let smoke = ref false
  and json = ref false
  and out = ref "BENCH_4.json"
  and to_validate = ref None
  and gate_against = ref None
  and tolerance = ref 0.25
  and handicap = ref 1.0 in
  let float_arg name s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> f
    | _ ->
        Printf.eprintf "%s: expected a positive float, got %s\n" name s;
        usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--validate" :: file :: rest ->
        to_validate := Some file;
        parse rest
    | "--gate" :: file :: rest ->
        gate_against := Some file;
        parse rest
    | "--tolerance" :: t :: rest ->
        tolerance := float_arg "--tolerance" t;
        parse rest
    | "--handicap" :: h :: rest ->
        handicap := float_arg "--handicap" h;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !to_validate with
  | Some file -> validate file
  | None ->
      let smoke = !smoke in
      let sizes = if smoke then [ 100; 1_000 ] else [ 1_000; 10_000; 100_000 ] in
      if smoke then reps := 3;
      pr "build: profile=%s flambda=%b\n\n" Build_info.profile
        Build_info.flambda;
      let heap = heap_section ~smoke in
      let network = network_section ~smoke ~sizes in
      let par = par_section ~smoke in
      let counters = counters_section ~smoke ~sizes in
      let parallel = parallel_section ~smoke in
      let load = load_section ~smoke in
      let byz = byz_section ~smoke in
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "dcount-bench/4");
            ("mode", Json.Str (if smoke then "smoke" else "full"));
            ("profile", Json.Str Build_info.profile);
            ("flambda", Json.Bool Build_info.flambda);
            ("heap", heap);
            ("network", network);
            ("par", par);
            ("counters", counters);
            ("parallel", parallel);
            ("load", load);
            ("byz", byz);
          ]
      in
      if !json then begin
        let oc = open_out !out in
        output_string oc (Json.to_string doc);
        close_out oc;
        Printf.printf "wrote %s\n" !out
      end;
      match !gate_against with
      | Some baseline_file ->
          gate ~tolerance:!tolerance ~handicap:!handicap ~baseline_file doc
      | None -> ()
