(* Throughput benchmark suite for the simulation engine.

   Four sections, each reported as events (or ops) per second plus words
   allocated per event (from [Gc] counters):

   1. heap      — raw push/pop on the frozen seed binary heap
                  (bench/seed_heap.ml) vs the structure-of-arrays 4-ary
                  [Sim.Heap], identical priority streams. The headline
                  regression number: the rewrite must stay >= 2x.
   2. network   — end-to-end engine throughput: a message-relay protocol on
                  [Sim.Network] at n in {10^3, 10^4, 10^5}.
   3. counters  — sequential increments/second for a representative counter
                  subset at the same three scales.
   4. parallel  — a multi-seed sweep through [Analysis.Replicate], timed
                  sequentially and across domains.

   [--json] additionally writes a machine-readable artefact (default
   BENCH_1.json; schema in docs/PERFORMANCE.md). [--smoke] shrinks every
   section to seconds of total runtime for CI. [--validate FILE] re-parses
   an artefact and checks the schema instead of benchmarking. *)

module Json = Analysis.Json

let now () = Unix.gettimeofday ()

(* Total words allocated so far by this domain. [promoted_words] is
   subtracted because promotion would otherwise count an allocation twice
   (once minor, once major). *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* Run [f] once as warm-up, then once measured. Returns
   (result, seconds, words allocated). *)
let measure f =
  ignore (f ());
  Gc.full_major ();
  let w0 = allocated_words () in
  let t0 = now () in
  let r = f () in
  let dt = now () -. t0 in
  let dw = allocated_words () -. w0 in
  (r, dt, dw)

let rate count seconds = float_of_int count /. seconds

let pr fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Section 1: raw heap push/pop.

   Workload: pre-fill to a working set of [w] pending events, then for each
   remaining priority pop the minimum and push the next — the steady state
   of a discrete-event loop — and finally drain. Both heaps consume the
   same pre-generated priority array, so the comparison is purely the data
   structure. One "event" = one push + one pop. *)

(* Each benchmark folds the popped values into an order-sensitive integer
   checksum. Because (prio, seq) is a total order, both heaps must pop the
   exact same value sequence — a mismatch means one of them is broken.
   Values are immediate ints so the checksum itself allocates nothing;
   each heap pays only its own API's allocation (the seed heap's [pop]
   option/tuple is intrinsic — it is what the old engine called). *)

let bench_seed_heap prios w =
  let h = Seed_heap.create () in
  let total = Array.length prios in
  let acc = ref 0 in
  for i = 0 to w - 1 do
    Seed_heap.push h ~prio:prios.(i) i
  done;
  for i = w to total - 1 do
    (match Seed_heap.pop h with
    | Some (_, v) -> acc := (!acc * 31) + v
    | None -> assert false);
    Seed_heap.push h ~prio:prios.(i) i
  done;
  while Seed_heap.size h > 0 do
    match Seed_heap.pop h with
    | Some (_, v) -> acc := (!acc * 31) + v
    | None -> assert false
  done;
  !acc

let bench_soa_heap prios w =
  let h = Sim.Heap.create ~capacity:w () in
  let total = Array.length prios in
  let acc = ref 0 in
  for i = 0 to w - 1 do
    Sim.Heap.push h ~prio:prios.(i) i
  done;
  for i = w to total - 1 do
    let v = Sim.Heap.pop_top h in
    acc := (!acc * 31) + v;
    Sim.Heap.push h ~prio:prios.(i) i
  done;
  while not (Sim.Heap.is_empty h) do
    let v = Sim.Heap.pop_top h in
    acc := (!acc * 31) + v
  done;
  !acc

let heap_section ~smoke =
  let working_set = if smoke then 512 else 16_384 in
  let events = if smoke then 100_000 else 2_000_000 in
  let rng = Sim.Rng.create ~seed:2026 in
  let prios = Array.init events (fun _ -> Sim.Rng.float rng 1_000.0) in
  let seed_sum, seed_t, seed_w = measure (fun () -> bench_seed_heap prios working_set) in
  let soa_sum, soa_t, soa_w = measure (fun () -> bench_soa_heap prios working_set) in
  (* Same priorities + stable (prio, seq) order => identical pop streams. *)
  if seed_sum <> soa_sum then
    failwith "heap benchmark: seed and SoA heaps popped different streams";
  let per_event words = words /. float_of_int events in
  let speedup = seed_t /. soa_t in
  pr "== heap: %d events through a %d-entry working set ==\n" events
    working_set;
  pr "  seed (boxed binary):   %10.0f events/s  %6.2f words/event\n"
    (rate events seed_t) (per_event seed_w);
  pr "  SoA (unboxed 4-ary):   %10.0f events/s  %6.2f words/event\n"
    (rate events soa_t) (per_event soa_w);
  pr "  speedup: %.2fx   allocation: %.2f -> %.2f words/event\n\n" speedup
    (per_event seed_w) (per_event soa_w);
  Json.Obj
    [
      ("working_set", Json.int working_set);
      ("events", Json.int events);
      ( "seed_heap",
        Json.Obj
          [
            ("events_per_sec", Json.Num (rate events seed_t));
            ("words_per_event", Json.Num (per_event seed_w));
          ] );
      ( "soa_heap",
        Json.Obj
          [
            ("events_per_sec", Json.Num (rate events soa_t));
            ("words_per_event", Json.Num (per_event soa_w));
          ] );
      ("speedup", Json.Num speedup);
    ]

(* ------------------------------------------------------------------ *)
(* Section 2: engine throughput.

   A relay protocol: each message carries a hop budget; on delivery the
   receiver forwards it (hops - 1) to a deterministically scrambled next
   destination until the budget is spent. Measures the full delivery path:
   heap pop, FIFO bookkeeping, metrics charge, handler dispatch, re-send. *)

let bench_network ~n ~target_events =
  let net = Sim.Network.create ~seed:99 ~fifo:true ~n () in
  let injections = min n 256 in
  let hops = max 1 (target_events / injections) in
  Sim.Network.set_handler net (fun ~self ~src:_ hops ->
      if hops > 0 then
        let dst = 1 + (((self * 2654435761) + hops) mod n) in
        Sim.Network.send net ~src:self ~dst (hops - 1));
  for i = 1 to injections do
    Sim.Network.send net ~src:i ~dst:(1 + (i * 7919 mod n)) hops
  done;
  Sim.Network.run_to_quiescence net

let network_section ~smoke ~sizes =
  let target_events = if smoke then 20_000 else 400_000 in
  pr "== network: relay protocol, ~%d deliveries per scale ==\n"
    target_events;
  let rows =
    List.map
      (fun n ->
        let deliveries, t, w =
          measure (fun () -> bench_network ~n ~target_events)
        in
        let per_event = w /. float_of_int deliveries in
        pr "  n = %6d: %8d deliveries  %10.0f events/s  %6.2f words/event\n"
          n deliveries (rate deliveries t) per_event;
        Json.Obj
          [
            ("n", Json.int n);
            ("deliveries", Json.int deliveries);
            ("events_per_sec", Json.Num (rate deliveries t));
            ("words_per_event", Json.Num per_event);
          ])
      sizes
  in
  pr "\n";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* Section 3: counters.

   Sequential increments/second for a representative subset: the central
   server (message-cheap, maximally contended), the paper's retire-tree,
   the static tree, and the bitonic counting network. Creation cost is
   excluded; the ops budget is capped so the largest scale stays seconds. *)

let counter_subset =
  [
    Baselines.Registry.central;
    Baselines.Registry.static_tree;
    Baselines.Registry.retire_tree;
    Baselines.Registry.counting_network;
  ]

let bench_counter (module C : Counter.Counter_intf.S) ~n ~ops =
  let c = C.create ~seed:5 ~n () in
  let out = ref 0 in
  let run () =
    for i = 0 to ops - 1 do
      out := C.inc c ~origin:(1 + (i mod n))
    done
  in
  (* No warm-up run here: a counter's value stream is stateful, so [measure]
     would double-increment. Creation above is the warm-up. *)
  Gc.full_major ();
  let w0 = allocated_words () in
  let t0 = now () in
  run ();
  let dt = now () -. t0 in
  let dw = allocated_words () -. w0 in
  let m = C.metrics c in
  (dt, dw, Sim.Metrics.total_messages m)

let counters_section ~smoke ~sizes =
  let ops_budget = if smoke then 64 else 2_000 in
  pr "== counters: sequential increments (ops budget %d) ==\n" ops_budget;
  let rows =
    List.concat_map
      (fun (module C : Counter.Counter_intf.S) ->
        List.map
          (fun requested ->
            let n = C.supported_n requested in
            let ops = min n ops_budget in
            let dt, dw, msgs = bench_counter (module C) ~n ~ops in
            pr
              "  %-14s n = %6d: %8.0f ops/s  %7.1f msgs/op  %8.0f \
               words/op\n"
              C.name n (rate ops dt)
              (float_of_int msgs /. float_of_int ops)
              (dw /. float_of_int ops);
            Json.Obj
              [
                ("counter", Json.Str C.name);
                ("requested_n", Json.int requested);
                ("n", Json.int n);
                ("ops", Json.int ops);
                ("ops_per_sec", Json.Num (rate ops dt));
                ( "messages_per_op",
                  Json.Num (float_of_int msgs /. float_of_int ops) );
                ("words_per_op", Json.Num (dw /. float_of_int ops));
              ])
          sizes)
      counter_subset
  in
  pr "\n";
  Json.List rows

(* ------------------------------------------------------------------ *)
(* Section 4: multi-seed sweep across domains. *)

let sweep_run ~n seed =
  let r =
    Counter.Driver.run ~seed Baselines.Registry.retire_tree ~n
      ~schedule:Counter.Schedule.Each_once_shuffled
  in
  float_of_int r.Counter.Driver.bottleneck_load

let parallel_section ~smoke =
  let n = if smoke then 81 else 2187 in
  let seeds = List.init (if smoke then 2 else 8) (fun i -> i + 1) in
  let runs = List.length seeds in
  let f = sweep_run ~n in
  ignore (f (List.hd seeds));
  let t0 = now () in
  let seq = Analysis.Replicate.across_seeds ~seeds f in
  let seq_t = now () -. t0 in
  let t0 = now () in
  let par = Analysis.Replicate.across_seeds_parallel ~seeds f in
  let par_t = now () -. t0 in
  if seq.Analysis.Replicate.mean <> par.Analysis.Replicate.mean then
    failwith "parallel sweep: sequential and parallel summaries disagree";
  let speedup = seq_t /. par_t in
  pr "== parallel: retire-tree each-once at n = %d, %d seeds ==\n" n runs;
  pr "  sequential: %.3f s   parallel: %.3f s   speedup: %.2fx\n" seq_t par_t
    speedup;
  pr "  bottleneck load: %s\n\n"
    (Format.asprintf "%a" Analysis.Replicate.pp_summary seq);
  Json.Obj
    [
      ("n", Json.int n);
      ("seeds", Json.int runs);
      ("sequential_sec", Json.Num seq_t);
      ("parallel_sec", Json.Num par_t);
      ("speedup", Json.Num speedup);
      ("mean_bottleneck", Json.Num seq.Analysis.Replicate.mean);
    ]

(* ------------------------------------------------------------------ *)
(* Artefact validation (the [make bench-smoke] gate). *)

let validate_field doc path extract =
  let rec walk v = function
    | [] -> Some v
    | key :: rest -> Option.bind (Json.member key v) (fun v -> walk v rest)
  in
  match Option.bind (walk doc path) extract with
  | Some x -> x
  | None ->
      Printf.eprintf "invalid artefact: missing or ill-typed %s\n"
        (String.concat "." path);
      exit 1

let validate file =
  let contents =
    match open_in_bin file with
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse contents with
  | Error msg ->
      Printf.eprintf "%s: JSON parse error: %s\n" file msg;
      exit 1
  | Ok doc ->
      let schema = validate_field doc [ "schema" ] Json.to_str in
      if schema <> "dcount-bench/1" then begin
        Printf.eprintf "%s: unknown schema %S\n" file schema;
        exit 1
      end;
      let speedup =
        validate_field doc [ "heap"; "speedup" ] Json.to_float
      in
      let check_rows section required =
        let rows = validate_field doc [ section ] Json.to_list in
        if rows = [] then begin
          Printf.eprintf "%s: empty %s section\n" file section;
          exit 1
        end;
        List.iter
          (fun row ->
            List.iter
              (fun key -> ignore (validate_field row [ key ] Json.to_float))
              required)
          rows
      in
      check_rows "network" [ "n"; "events_per_sec"; "words_per_event" ];
      check_rows "counters" [ "n"; "ops_per_sec"; "messages_per_op" ];
      ignore (validate_field doc [ "parallel"; "speedup" ] Json.to_float);
      Printf.printf "%s: valid (heap speedup %.2fx)\n" file speedup;
      if Float.is_nan speedup || speedup <= 0.0 then exit 1

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: perf.exe [--smoke] [--json] [--out FILE] [--validate FILE]";
  exit 2

let () =
  let smoke = ref false
  and json = ref false
  and out = ref "BENCH_1.json"
  and to_validate = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--validate" :: file :: rest ->
        to_validate := Some file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !to_validate with
  | Some file -> validate file
  | None ->
      let smoke = !smoke in
      let sizes = if smoke then [ 100; 1_000 ] else [ 1_000; 10_000; 100_000 ] in
      let heap = heap_section ~smoke in
      let network = network_section ~smoke ~sizes in
      let counters = counters_section ~smoke ~sizes in
      let parallel = parallel_section ~smoke in
      if !json then begin
        let doc =
          Json.Obj
            [
              ("schema", Json.Str "dcount-bench/1");
              ("mode", Json.Str (if smoke then "smoke" else "full"));
              ("heap", heap);
              ("network", network);
              ("counters", counters);
              ("parallel", parallel);
            ]
        in
        let oc = open_out !out in
        output_string oc (Json.to_string doc);
        close_out oc;
        Printf.printf "wrote %s\n" !out
      end
