(* Beyond counting: a cluster-wide priority job queue on the same
   machinery.

   Section 2 of the paper notes its lower bound covers every distributed
   data structure whose operations depend on their predecessors — its
   examples are a flip-bit and a priority queue. The generic retirement
   spine (Structures.Retire_spine) turns any such sequential object into
   a distributed one with the O(k) bottleneck. Here: worker nodes submit
   prioritised jobs, dispatchers pull the most urgent one, and we check
   the full run against the pure sequential specification while watching
   who carried the message load.

     dune exec examples/job_queue.exe
*)

module Spine = Structures.Retire_spine.Make (Structures.Priority_queue_obj)
module Central = Structures.Central_object.Make (Structures.Priority_queue_obj)
open Structures.Priority_queue_obj

let () =
  let n = 81 in
  let rng = Sim.Rng.create ~seed:11 in
  Printf.printf
    "distributed priority job queue on %d nodes (retirement spine vs \
     central server)\n\n"
    n;

  (* A day of traffic: every node submits a couple of jobs; dispatcher
     nodes drain the most urgent ones in between. *)
  let script =
    List.concat_map
      (fun round ->
        List.concat_map
          (fun node ->
            let submit =
              [ (node, Insert (Sim.Rng.int rng 1000)) ]
            in
            let drain =
              if (node + round) mod 3 = 0 then [ (((node * 7) mod n) + 1, Extract_min) ]
              else []
            in
            submit @ drain)
          (List.init n (fun i -> i + 1)))
      [ 0; 1 ]
  in

  let spine = Spine.create ~n () in
  let central = Central.create ~n () in
  let reference = ref initial in
  let mismatches = ref 0 in
  List.iter
    (fun (origin, op) ->
      let expected_state, expected = apply !reference op in
      reference := expected_state;
      let got_spine = Spine.execute spine ~origin op in
      let got_central = Central.execute central ~origin op in
      if got_spine <> expected || got_central <> expected then incr mismatches)
    script;

  Printf.printf "operations executed: %d (checked against the sequential spec)\n"
    (List.length script);
  Printf.printf "specification mismatches: %d\n" !mismatches;
  Printf.printf "jobs still queued: %d\n\n"
    (Structures.Leftist_heap.size (Spine.state spine));

  let report label metrics =
    let proc, load = Sim.Metrics.bottleneck metrics in
    Printf.printf
      "%-16s messages=%6d   busiest node=%d with load %d\n" label
      (Sim.Metrics.total_messages metrics)
      proc load
  in
  report "retire-spine:" (Spine.metrics spine);
  report "central:" (Central.metrics central);
  Printf.printf
    "\nthe queue pays the same O(k) bottleneck as the counter — the \
     paper's bound (and its cure) is about *dependence between \
     operations*, not about counting specifically.\n"
