(* Concurrency is where combining and diffracting trees earn their keep.

   Sequentially, both degrade to a hot root (the paper's point: structure
   alone does not distribute work). Under concurrent batches, combining
   merges requests on the way up and the diffracting prisms pair tokens
   away from the toggles. This example sweeps the batch size and shows
   both effects, including the values staying a correct contiguous
   block.

     dune exec examples/concurrent_batches.exe
*)

let () =
  let n = 64 in
  Printf.printf "combining tree on %d processors, growing concurrency:\n\n" n;
  let table =
    Analysis.Table.create
      ~columns:
        [
          "batch size"; "messages"; "root msgs"; "combining rate";
          "values ok";
        ]
  in
  List.iter
    (fun batch ->
      let c = Baselines.Combining_tree.create ~n () in
      let all_values = ref [] in
      for b = 0 to (n / batch) - 1 do
        let origins = List.init batch (fun i -> (b * batch) + i + 1) in
        let results = Baselines.Combining_tree.run_batch c ~origins in
        all_values := List.map snd results @ !all_values
      done;
      let sorted = List.sort compare !all_values in
      let ok = sorted = List.init n Fun.id in
      let m = Baselines.Combining_tree.metrics c in
      Analysis.Table.add_row table
        [
          string_of_int batch;
          string_of_int (Sim.Metrics.total_messages m);
          string_of_int (Sim.Metrics.load m 1);
          Analysis.Table.cell_float (Baselines.Combining_tree.combining_rate c);
          Analysis.Table.cell_bool ok;
        ])
    [ 1; 2; 8; 32; 64 ];
  Format.printf "%a@." Analysis.Table.pp table;

  Printf.printf "\ndiffracting tree (width 8), same sweep:\n\n";
  let table =
    Analysis.Table.create
      ~columns:
        [
          "batch size"; "messages"; "toggle hits"; "diffractions";
          "step property"; "values ok";
        ]
  in
  List.iter
    (fun batch ->
      let c = Baselines.Diffracting_tree.create_width ~n ~width:8 () in
      let all_values = ref [] in
      for b = 0 to (n / batch) - 1 do
        let origins = List.init batch (fun i -> (b * batch) + i + 1) in
        let results = Baselines.Diffracting_tree.run_batch c ~origins in
        all_values := List.map snd results @ !all_values
      done;
      let sorted = List.sort compare !all_values in
      let ok = sorted = List.init n Fun.id in
      let m = Baselines.Diffracting_tree.metrics c in
      Analysis.Table.add_row table
        [
          string_of_int batch;
          string_of_int (Sim.Metrics.total_messages m);
          string_of_int (Baselines.Diffracting_tree.toggle_hits c);
          string_of_int (Baselines.Diffracting_tree.diffractions c);
          Analysis.Table.cell_bool
            (Baselines.Diffracting_tree.step_property_held c);
          Analysis.Table.cell_bool ok;
        ])
    [ 1; 2; 8; 32; 64 ];
  Format.printf "%a@." Analysis.Table.pp table;
  print_endline
    "reading guide: as batches grow, combining absorbs almost all requests \
     below the root, and the diffracting tree's toggle hits collapse to \
     zero while every value is still handed out exactly once."
