(* The lower-bound proof, executed.

   Section 3 of the paper proves that over n increments (one per
   processor) SOME processor must handle Omega(k) messages, k * k^k = n.
   The proof is constructive-adversarial: it picks, at every step, the
   processor whose operation would produce the longest communication
   list. This example runs that adversary against a real implementation
   and prints every artefact of the proof: the chosen order, the
   distinguished processor q, the weight function's growth, and the final
   bottleneck vs k.

     dune exec examples/adversary_demo.exe
*)

let () =
  let n = 27 in
  let counter = Baselines.Registry.counting_network in
  let (module C : Counter.Counter_intf.S) = counter in
  Printf.printf
    "running the Section-3 adversary against %S at n = %d (exact: every \
     candidate trial-run before each choice)\n\n"
    C.name n;
  let r = Core.Adversary.run ~sample:max_int ~seed:9 counter ~n in

  Printf.printf "adversarial operation order:\n ";
  Array.iter (fun p -> Printf.printf " p%d" p) r.Core.Adversary.order;
  Printf.printf "\n\n";

  Printf.printf "per-step choices (L_i = committed list length, l_i = q's):\n";
  List.iter
    (fun (s : Core.Adversary.step) ->
      Printf.printf "  op %2d: chose p%-3d L_i = %2d  l_i = %s\n"
        s.Core.Adversary.op_index s.Core.Adversary.chosen
        s.Core.Adversary.list_length
        (match s.Core.Adversary.q_list_length with
        | Some l -> string_of_int l
        | None -> "-"))
    r.Core.Adversary.steps;

  Printf.printf "\nweight trajectory of q = p%d (base %.0f > max load + 1):\n"
    r.Core.Adversary.q r.Core.Adversary.weight_base;
  List.iter
    (fun o -> Format.printf "  %a@." Core.Weights.pp_observation o)
    r.Core.Adversary.q_observations;

  Printf.printf "\nverdicts:\n";
  Printf.printf "  values correct:             %b\n" r.Core.Adversary.correct;
  Printf.printf "  hot spot lemma held:        %b\n" r.Core.Adversary.hotspot_ok;
  Printf.printf "  l_i <= L_i at every step:   %b\n"
    r.Core.Adversary.li_never_exceeds_big_li;
  Printf.printf "  weight never decreased:     %b\n"
    r.Core.Adversary.weights_monotone;
  Printf.printf "  average list length L:      %.2f\n"
    r.Core.Adversary.average_list_length;
  Printf.printf "  bottleneck: p%d with %d messages >= k = %d:  %b\n"
    r.Core.Adversary.bottleneck_proc r.Core.Adversary.bottleneck_load
    r.Core.Adversary.k r.Core.Adversary.bound_satisfied;
  if not r.Core.Adversary.bound_satisfied then exit 1
