examples/job_queue.mli:
