examples/adversary_demo.ml: Array Baselines Core Counter Format List Printf
