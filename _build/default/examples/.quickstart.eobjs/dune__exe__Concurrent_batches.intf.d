examples/concurrent_batches.mli:
