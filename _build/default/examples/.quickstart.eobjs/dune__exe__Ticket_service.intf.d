examples/ticket_service.mli:
