examples/concurrent_batches.ml: Analysis Baselines Format Fun List Printf Sim
