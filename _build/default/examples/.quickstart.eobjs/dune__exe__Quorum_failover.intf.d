examples/quorum_failover.mli:
