examples/quickstart.ml: Baselines Core Printf Sim
