examples/quickstart.mli:
