examples/quorum_failover.ml: Analysis Format List Printf Quorum String
