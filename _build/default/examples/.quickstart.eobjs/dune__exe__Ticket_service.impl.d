examples/ticket_service.ml: Analysis Array Baselines Counter Format List Printf
