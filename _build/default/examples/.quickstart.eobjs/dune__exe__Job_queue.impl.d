examples/job_queue.ml: List Printf Sim Structures
