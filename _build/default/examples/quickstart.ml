(* Quickstart: build the paper's counter, increment from every processor,
   and look at who did how much work.

     dune exec examples/quickstart.exe
*)

let () =
  (* The construction is built for n = k * k^k processors; k = 3 gives
     n = 81. [supported_n] rounds any requested size up to the grid. *)
  let n = Core.Retire_counter.supported_n 50 in
  Printf.printf "network size: %d processors (k = %d)\n" n
    (Core.Lower_bound.k_of_n n);

  let counter = Core.Retire_counter.create ~seed:1 ~n () in

  (* Every processor increments once — the sequence the paper's lower
     bound is stated for. [inc] returns the pre-increment value. *)
  for p = 1 to n do
    let v = Core.Retire_counter.inc counter ~origin:p in
    assert (v = p - 1)
  done;
  Printf.printf "performed %d increments, final value %d\n" n
    (Core.Retire_counter.value counter);

  (* Message loads: the paper's m_p, straight from the simulator. *)
  let metrics = Core.Retire_counter.metrics counter in
  let bottleneck_proc, bottleneck_load = Sim.Metrics.bottleneck metrics in
  Printf.printf "total messages: %d\n" (Sim.Metrics.total_messages metrics);
  Printf.printf "bottleneck: processor %d with load %d  (theory: Theta(k) = Theta(%d))\n"
    bottleneck_proc bottleneck_load
    (Core.Lower_bound.k_of_n n);

  (* The counter retires busy workers; that is where the flat load comes
     from. *)
  Printf.printf "retirements: %d total; root worker changed %d times\n"
    (Core.Retire_counter.total_retirements counter)
    (Core.Retire_counter.retirements_of_node counter Core.Tree.root);

  (* Compare with the strawman: one processor holds the value. *)
  let central = Baselines.Central.create ~n () in
  for p = 1 to n do
    ignore (Baselines.Central.inc central ~origin:p)
  done;
  let _, central_bottleneck =
    Sim.Metrics.bottleneck (Baselines.Central.metrics central)
  in
  Printf.printf
    "for contrast, the central counter's bottleneck at the same n: %d\n"
    central_bottleneck
