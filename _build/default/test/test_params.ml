(* Tests for Core.Params, Core.Tree and Core.Ids — the pure arithmetic
   underlying the paper's construction. *)

let check = Alcotest.check

module P = Core.Params
module T = Core.Tree
module I = Core.Ids

(* ------------------------------------------------------------------ *)
(* Params *)

let test_pow () =
  check Alcotest.int "3^4" 81 (P.pow 3 4);
  check Alcotest.int "x^0" 1 (P.pow 7 0);
  check Alcotest.int "0^5" 0 (P.pow 0 5);
  check Alcotest.int "1^big" 1 (P.pow 1 1000);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Params.pow: negative exponent") (fun () ->
      ignore (P.pow 2 (-1)))

let test_pow_overflow () =
  match P.pow 10 30 with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "expected overflow, got %d" v

let test_n_of_k_table () =
  (* The paper's grid: k * k^k = k^(k+1). *)
  List.iter
    (fun (k, n) -> check Alcotest.int (Printf.sprintf "k=%d" k) n (P.n_of_k k))
    [ (1, 1); (2, 8); (3, 81); (4, 1024); (5, 15625); (6, 279936) ]

let test_k_of_n_exact () =
  check (Alcotest.option Alcotest.int) "81 -> 3" (Some 3) (P.k_of_n_exact 81);
  check (Alcotest.option Alcotest.int) "1024 -> 4" (Some 4) (P.k_of_n_exact 1024);
  check (Alcotest.option Alcotest.int) "100 -> none" None (P.k_of_n_exact 100);
  check (Alcotest.option Alcotest.int) "0 -> none" None (P.k_of_n_exact 0)

let test_k_of_n_floor () =
  check Alcotest.int "n=81" 3 (P.k_of_n_floor 81);
  check Alcotest.int "n=82" 3 (P.k_of_n_floor 82);
  check Alcotest.int "n=1023" 3 (P.k_of_n_floor 1023);
  check Alcotest.int "n=1024" 4 (P.k_of_n_floor 1024);
  check Alcotest.int "n=1" 1 (P.k_of_n_floor 1);
  check Alcotest.int "n=7" 1 (P.k_of_n_floor 7)

let test_round_up_n () =
  check Alcotest.int "100 -> 1024" 1024 (P.round_up_n 100);
  check Alcotest.int "81 -> 81" 81 (P.round_up_n 81);
  check Alcotest.int "1 -> 1" 1 (P.round_up_n 1);
  check Alcotest.int "2 -> 8" 8 (P.round_up_n 2)

let test_k_continuous () =
  (* At exact grid points the continuous solution equals k. *)
  List.iter
    (fun k ->
      let x = P.k_continuous (float_of_int (P.n_of_k k)) in
      Alcotest.(check bool)
        (Printf.sprintf "k_continuous(%d^(%d+1)) ~ %d" k k k)
        true
        (abs_float (x -. float_of_int k) < 1e-6))
    [ 2; 3; 4; 5; 6 ]

let test_inner_nodes () =
  (* sum_{i=0..k} k^i *)
  check Alcotest.int "k=2" 7 (P.inner_nodes 2);
  check Alcotest.int "k=3" 40 (P.inner_nodes 3);
  check Alcotest.int "k=1" 2 (P.inner_nodes 1)

let prop_floor_consistent =
  QCheck2.Test.make ~name:"k_of_n_floor k satisfies k^(k+1) <= n < (k+1)^(k+2)"
    ~count:500
    QCheck2.Gen.(int_range 1 10_000_000)
    (fun n ->
      let k = P.k_of_n_floor n in
      P.n_of_k k <= n
      && (match P.n_of_k (k + 1) with
         | nk -> nk > n
         | exception Invalid_argument _ -> true))

let prop_round_up_minimal =
  QCheck2.Test.make ~name:"round_up_n returns the smallest grid point >= n"
    ~count:500
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun n ->
      let m = P.round_up_n n in
      m >= n
      && P.k_of_n_exact m <> None
      &&
      match P.k_of_n_exact m with
      | Some k -> k = 1 || P.n_of_k (k - 1) < n
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Tree *)

let test_tree_sizes () =
  let t = T.create_paper ~k:3 in
  check Alcotest.int "n" 81 (T.n t);
  check Alcotest.int "inner" 40 (T.inner_count t);
  check Alcotest.int "arity" 3 (T.arity t);
  check Alcotest.int "depth" 3 (T.depth t);
  check Alcotest.int "level 0" 1 (T.nodes_at_level t 0);
  check Alcotest.int "level 2" 9 (T.nodes_at_level t 2);
  check Alcotest.int "level 3" 27 (T.nodes_at_level t 3)

let test_tree_flat_roundtrip () =
  let t = T.create_paper ~k:3 in
  for level = 0 to T.depth t do
    for index = 0 to T.nodes_at_level t level - 1 do
      let id = T.flat_id t ~level ~index in
      check Alcotest.int "level roundtrip" level (T.level_of t id);
      check Alcotest.int "index roundtrip" index (T.index_of t id)
    done
  done

let test_tree_parent_child () =
  let t = T.create_paper ~k:2 in
  (* Root's children are the two level-1 nodes. *)
  let c = T.children t T.root in
  Alcotest.(check (list int))
    "root children"
    [ T.flat_id t ~level:1 ~index:0; T.flat_id t ~level:1 ~index:1 ]
    c;
  List.iter
    (fun id ->
      check (Alcotest.option Alcotest.int) "parent" (Some T.root)
        (T.parent t id))
    c;
  check (Alcotest.option Alcotest.int) "root has no parent" None
    (T.parent t T.root)

let test_tree_bottom_level () =
  let t = T.create_paper ~k:2 in
  let bottom = T.flat_id t ~level:2 ~index:1 in
  Alcotest.(check (list int)) "no inner children" [] (T.children t bottom);
  Alcotest.(check (list int)) "leaf children" [ 3; 4 ] (T.leaf_children t bottom)

let test_tree_leaf_parent () =
  let t = T.create_paper ~k:2 in
  (* n = 8; leaves 1,2 belong to bottom node 0; 3,4 to node 1; ... *)
  check Alcotest.int "leaf 1" (T.flat_id t ~level:2 ~index:0) (T.leaf_parent t ~leaf:1);
  check Alcotest.int "leaf 2" (T.flat_id t ~level:2 ~index:0) (T.leaf_parent t ~leaf:2);
  check Alcotest.int "leaf 3" (T.flat_id t ~level:2 ~index:1) (T.leaf_parent t ~leaf:3);
  check Alcotest.int "leaf 8" (T.flat_id t ~level:2 ~index:3) (T.leaf_parent t ~leaf:8)

let test_tree_path_to_root () =
  let t = T.create_paper ~k:3 in
  let path = T.path_to_root t ~leaf:81 in
  check Alcotest.int "path length = depth+1" 4 (List.length path);
  (match List.rev path with
  | root :: _ -> check Alcotest.int "ends at root" T.root root
  | [] -> Alcotest.fail "empty path");
  (* Each consecutive pair is child -> parent. *)
  let rec walk = function
    | a :: (b :: _ as rest) ->
        check (Alcotest.option Alcotest.int) "parent link" (Some b)
          (T.parent t a);
        walk rest
    | _ -> ()
  in
  walk path

let test_tree_generalised () =
  let t = T.create ~arity:2 ~depth:4 in
  check Alcotest.int "n = 2^5" 32 (T.n t);
  check Alcotest.int "inner = 31" 31 (T.inner_count t);
  let t0 = T.create ~arity:5 ~depth:0 in
  check Alcotest.int "depth 0: n = arity" 5 (T.n t0);
  check Alcotest.int "depth 0: only the root" 1 (T.inner_count t0);
  check Alcotest.int "leaf parent is root" T.root (T.leaf_parent t0 ~leaf:3)

let prop_tree_children_partition_leaves =
  QCheck2.Test.make
    ~name:"bottom-level leaf children partition the processors" ~count:20
    QCheck2.Gen.(int_range 1 4)
    (fun k ->
      let t = T.create_paper ~k in
      let bottom = T.depth t in
      let all =
        List.concat_map
          (fun index ->
            T.leaf_children t (T.flat_id t ~level:bottom ~index))
          (List.init (T.nodes_at_level t bottom) Fun.id)
      in
      List.sort compare all = List.init (T.n t) (fun i -> i + 1))

let prop_tree_parent_of_child =
  QCheck2.Test.make ~name:"children's parent is the node" ~count:20
    QCheck2.Gen.(pair (int_range 2 4) (int_range 0 1000))
    (fun (k, salt) ->
      let t = T.create_paper ~k in
      let id = salt mod T.inner_count t in
      List.for_all (fun c -> T.parent t c = Some id) (T.children t id))

(* ------------------------------------------------------------------ *)
(* Ids *)

let test_ids_paper_example () =
  (* k = 3, n = 81: the largest identifier used must be exactly n. *)
  let t = T.create_paper ~k:3 in
  check Alcotest.int "max id = n" 81 (I.max_identifier t);
  check Alcotest.int "root" 1 I.root_initial_worker;
  (* Level 1 node 0 starts at 1 with capacity 3^2 = 9. *)
  check Alcotest.int "initial L1.0" 1 (I.initial_worker t ~level:1 ~index:0);
  check Alcotest.int "capacity L1" 9 (I.capacity t ~level:1);
  (* Level 3 (bottom) capacity 3^0 = 1: no replacements. *)
  check Alcotest.int "capacity L3" 1 (I.capacity t ~level:3)

let test_ids_intervals_disjoint () =
  (* Within levels 1..k, all intervals are pairwise disjoint and lie in
     [1, n]. *)
  List.iter
    (fun k ->
      let t = T.create_paper ~k in
      let intervals = ref [] in
      for level = 1 to T.depth t do
        for index = 0 to T.nodes_at_level t level - 1 do
          intervals := I.interval t ~level ~index :: !intervals
        done
      done;
      let sorted = List.sort compare !intervals in
      let rec disjoint = function
        | (_, hi1) :: ((lo2, _) :: _ as rest) ->
            Alcotest.(check bool) "disjoint" true (hi1 < lo2);
            disjoint rest
        | _ -> ()
      in
      disjoint sorted;
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check bool) "within universe" true (lo >= 1 && hi <= T.n t))
        sorted)
    [ 2; 3; 4 ]

let test_ids_interval_count () =
  (* Levels 1..k intervals exactly tile [1, n] for the paper's shape. *)
  let t = T.create_paper ~k:3 in
  let covered = ref 0 in
  for level = 1 to T.depth t do
    for index = 0 to T.nodes_at_level t level - 1 do
      let lo, hi = I.interval t ~level ~index in
      covered := !covered + (hi - lo + 1)
    done
  done;
  check Alcotest.int "tiles n exactly" (T.n t) !covered

let test_ids_level_is_special () =
  let t = T.create_paper ~k:3 in
  Alcotest.check_raises "level 0 rejected"
    (Invalid_argument "Ids: level must be within 1 .. depth (the root is special)")
    (fun () -> ignore (I.capacity t ~level:0))

let prop_ids_initial_worker_in_interval =
  QCheck2.Test.make ~name:"initial worker = interval low end" ~count:50
    QCheck2.Gen.(pair (int_range 2 4) (int_range 0 10_000))
    (fun (k, salt) ->
      let t = T.create_paper ~k in
      let level = 1 + (salt mod T.depth t) in
      let index = salt mod T.nodes_at_level t level in
      let lo, hi = I.interval t ~level ~index in
      lo = I.initial_worker t ~level ~index
      && hi - lo + 1 = I.capacity t ~level)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "params-tree-ids"
    [
      ( "params",
        [
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "pow overflow" `Quick test_pow_overflow;
          Alcotest.test_case "n_of_k table" `Quick test_n_of_k_table;
          Alcotest.test_case "k_of_n_exact" `Quick test_k_of_n_exact;
          Alcotest.test_case "k_of_n_floor" `Quick test_k_of_n_floor;
          Alcotest.test_case "round_up_n" `Quick test_round_up_n;
          Alcotest.test_case "k_continuous" `Quick test_k_continuous;
          Alcotest.test_case "inner_nodes" `Quick test_inner_nodes;
          q prop_floor_consistent;
          q prop_round_up_minimal;
        ] );
      ( "tree",
        [
          Alcotest.test_case "sizes" `Quick test_tree_sizes;
          Alcotest.test_case "flat id roundtrip" `Quick test_tree_flat_roundtrip;
          Alcotest.test_case "parent/child" `Quick test_tree_parent_child;
          Alcotest.test_case "bottom level" `Quick test_tree_bottom_level;
          Alcotest.test_case "leaf parent" `Quick test_tree_leaf_parent;
          Alcotest.test_case "path to root" `Quick test_tree_path_to_root;
          Alcotest.test_case "generalised shapes" `Quick test_tree_generalised;
          q prop_tree_children_partition_leaves;
          q prop_tree_parent_of_child;
        ] );
      ( "ids",
        [
          Alcotest.test_case "paper example" `Quick test_ids_paper_example;
          Alcotest.test_case "intervals disjoint" `Quick test_ids_intervals_disjoint;
          Alcotest.test_case "intervals tile universe" `Quick test_ids_interval_count;
          Alcotest.test_case "root level special" `Quick test_ids_level_is_special;
          q prop_ids_initial_worker_in_interval;
        ] );
    ]
