(* Tests for the Section 3 machinery: the bound itself, the weight
   function, and the executable adversary. *)

let check = Alcotest.check

module LB = Core.Lower_bound
module W = Core.Weights
module A = Core.Adversary

let test_k_of_n_values () =
  List.iter
    (fun (n, k) -> check Alcotest.int (Printf.sprintf "n=%d" n) k (LB.k_of_n n))
    [ (1, 1); (7, 1); (8, 2); (80, 2); (81, 3); (1024, 4); (15625, 5) ]

let test_k_grows_slowly () =
  (* k = Theta(log n / log log n): doubling n rarely changes k. *)
  let k1 = LB.k_of_n 10_000 and k2 = LB.k_of_n 1_000_000 in
  Alcotest.(check bool) "k(1e4) <= k(1e6)" true (k1 <= k2);
  Alcotest.(check bool) "both tiny" true (k2 <= 6)

let test_satisfied_by () =
  Alcotest.(check bool) "20 >= k(81)=3" true
    (LB.satisfied_by ~n:81 ~bottleneck_load:20);
  Alcotest.(check bool) "2 < k(81)=3" false
    (LB.satisfied_by ~n:81 ~bottleneck_load:2)

(* ------------------------------------------------------------------ *)
(* Weights *)

let comm_list_of nodes =
  (* Build a comm list via a synthetic trace whose deliveries walk the
     node sequence. *)
  match nodes with
  | [] -> invalid_arg "comm_list_of: empty"
  | origin :: rest ->
      let t = Sim.Trace.create ~op_index:0 ~origin () in
      let _ =
        List.fold_left
          (fun (i, src) dst ->
            Sim.Trace.record t
              { Sim.Trace.seq = i + 1; time = float_of_int i; src; dst; tag = "m"; parent = i };
            (i + 1, dst))
          (0, origin) rest
      in
      Sim.Comm_list.of_trace t

let test_weight_geometric () =
  (* All loads zero: w = sum 1/base^j over positions. *)
  let l = comm_list_of [ 1; 2; 3 ] in
  let w = W.weight ~base:2. ~load:(fun _ -> 0) l in
  check (Alcotest.float 1e-9) "w = 1/2 + 1/4 + 1/8" 0.875 w

let test_weight_load_sensitive () =
  let l = comm_list_of [ 1; 2 ] in
  let load p = if p = 1 then 3 else 0 in
  (* (3+1)/2 + (0+1)/4 *)
  let w = W.weight ~base:2. ~load l in
  check (Alcotest.float 1e-9) "w" 2.25 w

let test_weight_position_discount () =
  (* The same load later in the list contributes less. *)
  let early = W.weight ~base:4. ~load:(fun p -> if p = 9 then 8 else 0)
      (comm_list_of [ 9; 1 ])
  and late = W.weight ~base:4. ~load:(fun p -> if p = 9 then 8 else 0)
      (comm_list_of [ 1; 9 ])
  in
  Alcotest.(check bool) "early > late" true (early > late)

let test_weight_base_guard () =
  let l = comm_list_of [ 1 ] in
  match W.weight ~base:1. ~load:(fun _ -> 0) l with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected base guard"

let test_trajectory_monotone () =
  let obs w =
    { W.op_index = 0; list_length = 1; weight = w; guaranteed_gain = 0. }
  in
  Alcotest.(check bool) "monotone" true
    (W.trajectory_monotone [ obs 1.; obs 1.5; obs 1.5; obs 2. ]);
  Alcotest.(check bool) "dip detected" false
    (W.trajectory_monotone [ obs 1.; obs 0.5 ])

let prop_weight_bounded_by_geometric_series =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"w <= (max load + 1) / (base - 1)" ~count:200
       QCheck2.Gen.(
         pair
           (list_size (int_range 1 20) (int_range 1 50))
           (list_size (int_range 1 20) (int_range 0 30)))
       (fun (nodes, loads) ->
         let l = comm_list_of nodes in
         let load p = List.nth loads (p mod List.length loads) in
         let max_load =
           List.fold_left (fun acc p -> max acc (load p)) 0
             (Sim.Comm_list.nodes l)
         in
         let base = 2. in
         W.weight ~base ~load l
         <= (float_of_int max_load +. 1.) /. (base -. 1.) +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Adversary *)

let adversary_result =
  (* The adversary is the most expensive fixture; run it once against the
     paper's counter at n = 8 and reuse. *)
  lazy (A.run ~sample:8 Baselines.Registry.retire_tree ~n:8)

let test_adversary_is_each_once () =
  let r = Lazy.force adversary_result in
  let order = List.sort compare (Array.to_list r.order) in
  Alcotest.(check (list int))
    "order is a permutation of processors" (List.init r.n (fun i -> i + 1))
    order

let test_adversary_correct_execution () =
  let r = Lazy.force adversary_result in
  Alcotest.(check bool) "values correct" true r.correct;
  Alcotest.(check bool) "hot spot" true r.hotspot_ok

let test_adversary_bound () =
  let r = Lazy.force adversary_result in
  Alcotest.(check bool) "bottleneck >= k" true r.bound_satisfied

let test_adversary_proof_invariants () =
  let r = Lazy.force adversary_result in
  Alcotest.(check bool) "l_i <= L_i" true r.li_never_exceeds_big_li;
  Alcotest.(check bool) "weights monotone" true r.weights_monotone;
  check Alcotest.int "one observation per op" r.n
    (List.length r.q_observations)

let test_adversary_q_is_last () =
  let r = Lazy.force adversary_result in
  check Alcotest.int "q = last chosen" r.order.(r.n - 1) r.q

let test_adversary_on_central () =
  (* Against the central counter the adversary's greedy choice is almost
     irrelevant: the holder is the bottleneck with ~2(n-1). *)
  let r = A.run ~sample:100 Baselines.Registry.central ~n:12 in
  Alcotest.(check bool) "correct" true r.correct;
  check Alcotest.int "bottleneck is the holder" 1 r.bottleneck_proc;
  Alcotest.(check bool) "load ~ 2(n-1)" true (r.bottleneck_load >= 2 * (r.n - 1));
  Alcotest.(check bool) "bound" true r.bound_satisfied

let test_adversary_weights_monotone_across_counters () =
  List.iter
    (fun c ->
      let r = A.run ~sample:6 c ~n:8 in
      let (module C : Counter.Counter_intf.S) = c in
      Alcotest.(check bool) (C.name ^ " weights monotone") true
        r.weights_monotone;
      Alcotest.(check bool) (C.name ^ " bound") true r.bound_satisfied)
    [
      Baselines.Registry.central;
      Baselines.Registry.static_tree;
      Baselines.Registry.counting_network;
      Baselines.Registry.quorum_grid;
    ]

let test_adversary_sample_caps_work () =
  let exact = A.run ~sample:max_int Baselines.Registry.central ~n:8 in
  let sampled = A.run ~sample:2 Baselines.Registry.central ~n:8 in
  (* Both are valid each-once sequences. *)
  Alcotest.(check bool) "exact correct" true exact.correct;
  Alcotest.(check bool) "sampled correct" true sampled.correct

let () =
  Alcotest.run "lower-bound"
    [
      ( "bound",
        [
          Alcotest.test_case "k table" `Quick test_k_of_n_values;
          Alcotest.test_case "k grows slowly" `Quick test_k_grows_slowly;
          Alcotest.test_case "satisfied_by" `Quick test_satisfied_by;
        ] );
      ( "weights",
        [
          Alcotest.test_case "geometric" `Quick test_weight_geometric;
          Alcotest.test_case "load sensitive" `Quick test_weight_load_sensitive;
          Alcotest.test_case "position discount" `Quick test_weight_position_discount;
          Alcotest.test_case "base guard" `Quick test_weight_base_guard;
          Alcotest.test_case "trajectory monotone" `Quick test_trajectory_monotone;
          prop_weight_bounded_by_geometric_series;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "each-once order" `Quick test_adversary_is_each_once;
          Alcotest.test_case "correct execution" `Quick test_adversary_correct_execution;
          Alcotest.test_case "bound satisfied" `Quick test_adversary_bound;
          Alcotest.test_case "proof invariants" `Quick test_adversary_proof_invariants;
          Alcotest.test_case "q is last" `Quick test_adversary_q_is_last;
          Alcotest.test_case "vs central" `Quick test_adversary_on_central;
          Alcotest.test_case "across counters" `Slow test_adversary_weights_monotone_across_counters;
          Alcotest.test_case "sampling" `Quick test_adversary_sample_caps_work;
        ] );
    ]
