(* Tests for the generalised sequential-object machinery: the leftist
   heap, the object specifications, the generic retirement spine (and its
   equivalence with the hand-written counter), and the central strawman. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Leftist heap *)

module H = Structures.Leftist_heap

let test_heap_basics () =
  let h = H.of_list [ 5; 1; 4; 1; 3 ] in
  check Alcotest.int "size" 5 (H.size h);
  check (Alcotest.option Alcotest.int) "min" (Some 1) (H.find_min h);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (H.to_sorted_list h)

let test_heap_empty () =
  Alcotest.(check bool) "empty" true (H.is_empty H.empty);
  Alcotest.(check bool) "find none" true (H.find_min H.empty = None);
  Alcotest.(check bool) "extract none" true (H.extract_min H.empty = None)

let test_heap_extract_order () =
  let h = H.of_list [ 9; -2; 7; 0 ] in
  match H.extract_min h with
  | Some (v, rest) ->
      check Alcotest.int "first" (-2) v;
      check (Alcotest.option Alcotest.int) "second" (Some 0) (H.find_min rest)
  | None -> Alcotest.fail "expected min"

let test_heap_persistence () =
  let h = H.of_list [ 3; 1 ] in
  let h2 = H.insert h 0 in
  (* The original heap is unchanged. *)
  check (Alcotest.option Alcotest.int) "old min" (Some 1) (H.find_min h);
  check (Alcotest.option Alcotest.int) "new min" (Some 0) (H.find_min h2)

let test_heap_merge () =
  let a = H.of_list [ 1; 5 ] and b = H.of_list [ 2; 0 ] in
  Alcotest.(check (list int))
    "merge" [ 0; 1; 2; 5 ]
    (H.to_sorted_list (H.merge a b))

let prop_heap_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"leftist invariants after random builds"
       ~count:300
       QCheck2.Gen.(list (int_range (-100) 100))
       (fun values ->
         let h = H.of_list values in
         H.check_invariants h && H.size h = List.length values))

let prop_heap_sorts =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"heap sort = List.sort" ~count:300
       QCheck2.Gen.(list (int_range (-1000) 1000))
       (fun values ->
         H.to_sorted_list (H.of_list values) = List.sort compare values))

let prop_heap_merge_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"merge preserves invariants and contents"
       ~count:200
       QCheck2.Gen.(pair (list small_int) (list small_int))
       (fun (a, b) ->
         let merged = H.merge (H.of_list a) (H.of_list b) in
         H.check_invariants merged
         && H.to_sorted_list merged = List.sort compare (a @ b)))

(* ------------------------------------------------------------------ *)
(* Object specifications *)

let test_flip_bit_spec () =
  let s0 = Structures.Flip_bit.initial in
  let s1, r1 = Structures.Flip_bit.apply s0 Structures.Flip_bit.Flip in
  let s2, r2 = Structures.Flip_bit.apply s1 Structures.Flip_bit.Flip in
  let _, r3 = Structures.Flip_bit.apply s2 Structures.Flip_bit.Read in
  Alcotest.(check bool) "first flip returns false" false r1;
  Alcotest.(check bool) "second flip returns true" true r2;
  Alcotest.(check bool) "read after two flips" false r3

let test_max_register_spec () =
  let open Structures.Max_register in
  let s1, r1 = apply initial (Write_max 5) in
  let s2, r2 = apply s1 (Write_max 3) in
  let _, r3 = apply s2 Read in
  check Alcotest.int "first write returns -inf" min_int r1;
  check Alcotest.int "second returns 5" 5 r2;
  check Alcotest.int "read" 5 r3

let test_priority_queue_spec () =
  let open Structures.Priority_queue_obj in
  let s, _ = apply initial (Insert 4) in
  let s, _ = apply s (Insert 2) in
  let s, r1 = apply s Extract_min in
  let _, r2 = apply s Find_min in
  Alcotest.(check bool) "extracted 2" true (r1 = Min (Some 2));
  Alcotest.(check bool) "next is 4" true (r2 = Min (Some 4))

let test_counter_spec () =
  let s1, r1 = Structures.Counter_obj.apply 0 Structures.Counter_obj.Inc in
  check Alcotest.int "returns old" 0 r1;
  check Alcotest.int "increments" 1 s1

(* ------------------------------------------------------------------ *)
(* Generic spine *)

module Spine_counter = Structures.Retire_spine.Make (Structures.Counter_obj)
module Spine_bit = Structures.Retire_spine.Make (Structures.Flip_bit)
module Spine_pq = Structures.Retire_spine.Make (Structures.Priority_queue_obj)
module Central_bit = Structures.Central_object.Make (Structures.Flip_bit)

let test_spine_counter_equals_handwritten () =
  (* The generic spine instantiated with the counter object must behave
     exactly like Core.Retire_counter: same values, same message count,
     same bottleneck. *)
  let n = 81 in
  let spine = Spine_counter.create ~seed:4 ~n () in
  let hand = Core.Retire_counter.create ~seed:4 ~n () in
  for i = 1 to n do
    let a = Spine_counter.execute spine ~origin:i Structures.Counter_obj.Inc in
    let b = Core.Retire_counter.inc hand ~origin:i in
    check Alcotest.int "same value" b a
  done;
  let ms = Spine_counter.metrics spine and mh = Core.Retire_counter.metrics hand in
  check Alcotest.int "same total messages"
    (Sim.Metrics.total_messages mh)
    (Sim.Metrics.total_messages ms);
  check Alcotest.int "same bottleneck"
    (snd (Sim.Metrics.bottleneck mh))
    (snd (Sim.Metrics.bottleneck ms));
  check Alcotest.int "same retirements"
    (Core.Retire_counter.total_retirements hand)
    (Spine_counter.total_retirements spine)

let test_spine_flip_bit_correct () =
  let n = 81 in
  let spine = Spine_bit.create ~n () in
  (* Each processor flips once: the i-th flip returns the parity of
     i-1. *)
  for i = 1 to n do
    let r = Spine_bit.execute spine ~origin:i Structures.Flip_bit.Flip in
    Alcotest.(check bool)
      (Printf.sprintf "flip %d" i)
      ((i - 1) mod 2 = 1)
      r
  done;
  Alcotest.(check bool) "final state: 81 flips = true" true
    (Spine_bit.state spine);
  Alcotest.(check bool) "believed consistent" true
    (Spine_bit.believed_consistent spine)

let test_spine_flip_bit_bottleneck_o_k () =
  let n = 81 in
  let spine = Spine_bit.create ~n () in
  for i = 1 to n do
    ignore (Spine_bit.execute spine ~origin:i Structures.Flip_bit.Flip)
  done;
  let _, bottleneck = Sim.Metrics.bottleneck (Spine_bit.metrics spine) in
  let k = Core.Lower_bound.k_of_n n in
  Alcotest.(check bool)
    (Printf.sprintf "bit bottleneck %d <= 25k+10" bottleneck)
    true
    (bottleneck <= (25 * k) + 10);
  Alcotest.(check bool) "and >= lower bound k" true (bottleneck >= k)

let test_spine_hotspot_lemma_flip_bit () =
  let n = 27 in
  let spine = Spine_bit.create ~n:(Spine_bit.supported_n n) () in
  for i = 1 to Spine_bit.n spine do
    ignore (Spine_bit.execute spine ~origin:i Structures.Flip_bit.Flip)
  done;
  Alcotest.(check bool) "hot spot lemma on flip-bit" true
    (Counter.Hotspot.holds (Spine_bit.traces spine))

let test_spine_priority_queue_sequence () =
  let n = 8 in
  let spine = Spine_pq.create ~n () in
  let open Structures.Priority_queue_obj in
  (* Interleave inserts and extracts from different processors; results
     must match the sequential specification. *)
  let r1 = Spine_pq.execute spine ~origin:1 (Insert 42) in
  let r2 = Spine_pq.execute spine ~origin:2 (Insert 7) in
  let r3 = Spine_pq.execute spine ~origin:3 Extract_min in
  let r4 = Spine_pq.execute spine ~origin:4 Find_min in
  let r5 = Spine_pq.execute spine ~origin:5 Extract_min in
  let r6 = Spine_pq.execute spine ~origin:6 Extract_min in
  Alcotest.(check bool) "acks" true (r1 = Ack && r2 = Ack);
  Alcotest.(check bool) "extract 7" true (r3 = Min (Some 7));
  Alcotest.(check bool) "find 42" true (r4 = Min (Some 42));
  Alcotest.(check bool) "extract 42" true (r5 = Min (Some 42));
  Alcotest.(check bool) "empty" true (r6 = Min None)

let prop_spine_pq_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"spine priority queue = sequential specification" ~count:20
       QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 1 8) (int_range 0 99)))
       (fun script ->
         let spine = Spine_pq.create ~n:8 () in
         let open Structures.Priority_queue_obj in
         let reference = ref initial in
         List.for_all
           (fun (origin, v) ->
             (* v < 30: extract; otherwise insert v. *)
             let op = if v < 30 then Extract_min else Insert v in
             let expected_state, expected = apply !reference op in
             reference := expected_state;
             Spine_pq.execute spine ~origin op = expected)
           script))

let prop_spine_bit_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"spine flip-bit = sequential specification"
       ~count:20
       QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 1 8) bool))
       (fun script ->
         let spine = Spine_bit.create ~n:8 () in
         let open Structures.Flip_bit in
         let reference = ref initial in
         List.for_all
           (fun (origin, flip) ->
             let op = if flip then Flip else Read in
             let expected_state, expected = apply !reference op in
             reference := expected_state;
             Spine_bit.execute spine ~origin op = expected)
           script))

module Spine_max = Structures.Retire_spine.Make (Structures.Max_register)

let test_spine_max_register_matches_reference () =
  let spine = Spine_max.create ~n:8 () in
  let open Structures.Max_register in
  let reference = ref initial in
  List.iter
    (fun (origin, v) ->
      let op = if v < 0 then Read else Write_max v in
      let st, expected = apply !reference op in
      reference := st;
      check Alcotest.int "result" expected (Spine_max.execute spine ~origin op))
    [ (1, 5); (2, 3); (3, -1); (4, 9); (5, -1); (6, 9); (7, 2); (8, -1) ];
  check Alcotest.int "final state" 9 (Spine_max.state spine)

let test_spine_threshold_guard () =
  match
    Spine_bit.create_with
      { Core.Retire_counter.arity = 3; depth = 3; retire_threshold = 2 }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected threshold guard"

let test_central_object_clone () =
  let c = Central_bit.create ~n:5 () in
  ignore (Central_bit.execute c ~origin:2 Structures.Flip_bit.Flip);
  let k = Central_bit.clone c in
  let a = Central_bit.execute c ~origin:3 Structures.Flip_bit.Flip in
  let b = Central_bit.execute k ~origin:3 Structures.Flip_bit.Flip in
  Alcotest.(check bool) "same result" a b;
  check Alcotest.int "independent metrics"
    (Sim.Metrics.total_messages (Central_bit.metrics c))
    (Sim.Metrics.total_messages (Central_bit.metrics k))

let test_spine_clone () =
  let spine = Spine_bit.create ~n:8 () in
  ignore (Spine_bit.execute spine ~origin:1 Structures.Flip_bit.Flip);
  let clone = Spine_bit.clone spine in
  let a = Spine_bit.execute spine ~origin:2 Structures.Flip_bit.Flip in
  let b = Spine_bit.execute clone ~origin:2 Structures.Flip_bit.Flip in
  Alcotest.(check bool) "same result" a b;
  check Alcotest.int "independent op counts" (Spine_bit.operations spine)
    (Spine_bit.operations clone)

let test_spine_rejects_bad_n () =
  match Spine_bit.create ~n:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* ------------------------------------------------------------------ *)
(* Central strawman *)

let test_central_object_correct_and_hot () =
  let n = 27 in
  let c = Central_bit.create ~n () in
  for i = 1 to n do
    let r = Central_bit.execute c ~origin:i Structures.Flip_bit.Flip in
    Alcotest.(check bool) "value" ((i - 1) mod 2 = 1) r
  done;
  let m = Central_bit.metrics c in
  let proc, load = Sim.Metrics.bottleneck m in
  check Alcotest.int "holder is bottleneck" 1 proc;
  check Alcotest.int "load 2(n-1)" (2 * (n - 1)) load

let test_spine_beats_central_for_bit () =
  let n = 81 in
  let spine = Spine_bit.create ~n () in
  let central = Central_bit.create ~n () in
  for i = 1 to n do
    ignore (Spine_bit.execute spine ~origin:i Structures.Flip_bit.Flip);
    ignore (Central_bit.execute central ~origin:i Structures.Flip_bit.Flip)
  done;
  let _, bs = Sim.Metrics.bottleneck (Spine_bit.metrics spine) in
  let _, bc = Sim.Metrics.bottleneck (Central_bit.metrics central) in
  Alcotest.(check bool)
    (Printf.sprintf "spine %d < central %d" bs bc)
    true (bs * 2 < bc)

let () =
  Alcotest.run "structures"
    [
      ( "leftist-heap",
        [
          Alcotest.test_case "basics" `Quick test_heap_basics;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "extract order" `Quick test_heap_extract_order;
          Alcotest.test_case "persistence" `Quick test_heap_persistence;
          Alcotest.test_case "merge" `Quick test_heap_merge;
          prop_heap_invariants;
          prop_heap_sorts;
          prop_heap_merge_invariants;
        ] );
      ( "specifications",
        [
          Alcotest.test_case "flip-bit" `Quick test_flip_bit_spec;
          Alcotest.test_case "max-register" `Quick test_max_register_spec;
          Alcotest.test_case "priority queue" `Quick test_priority_queue_spec;
          Alcotest.test_case "counter" `Quick test_counter_spec;
        ] );
      ( "retire-spine",
        [
          Alcotest.test_case "counter instance = hand-written counter" `Quick
            test_spine_counter_equals_handwritten;
          Alcotest.test_case "flip-bit correct" `Quick test_spine_flip_bit_correct;
          Alcotest.test_case "flip-bit O(k) bottleneck" `Quick
            test_spine_flip_bit_bottleneck_o_k;
          Alcotest.test_case "flip-bit hot spot lemma" `Quick
            test_spine_hotspot_lemma_flip_bit;
          Alcotest.test_case "priority queue sequence" `Quick
            test_spine_priority_queue_sequence;
          prop_spine_pq_matches_reference;
          prop_spine_bit_matches_reference;
          Alcotest.test_case "max-register matches reference" `Quick
            test_spine_max_register_matches_reference;
          Alcotest.test_case "threshold guard" `Quick test_spine_threshold_guard;
          Alcotest.test_case "clone" `Quick test_spine_clone;
          Alcotest.test_case "rejects bad n" `Quick test_spine_rejects_bad_n;
        ] );
      ( "central-object",
        [
          Alcotest.test_case "correct and hot" `Quick
            test_central_object_correct_and_hot;
          Alcotest.test_case "clone" `Quick test_central_object_clone;
          Alcotest.test_case "spine beats central" `Quick
            test_spine_beats_central_for_bit;
        ] );
    ]
