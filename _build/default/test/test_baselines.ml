(* Tests for the baseline counters' specific behaviours: the central
   hotspot, the bitonic network, combining and diffraction under
   concurrency, quorum counters' message geometry. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Central *)

let test_central_holder_is_bottleneck () =
  let r = Counter.Driver.run_each_once Baselines.Registry.central ~n:20 in
  check Alcotest.int "holder" Baselines.Central.holder r.bottleneck_proc;
  check Alcotest.int "load 2(n-1)" (2 * 19) r.bottleneck_load;
  (* Message-optimal: 2 messages per remote op, none for the holder. *)
  check Alcotest.int "messages" (2 * 19) r.total_messages

let test_central_local_op_free () =
  let c = Baselines.Central.create ~n:5 () in
  check Alcotest.int "value" 0 (Baselines.Central.inc c ~origin:1);
  check Alcotest.int "no messages"
    0
    (Sim.Metrics.total_messages (Baselines.Central.metrics c))

(* ------------------------------------------------------------------ *)
(* Static tree *)

let test_static_tree_root_theta_n () =
  let n = 81 in
  let r = Counter.Driver.run_each_once Baselines.Registry.static_tree ~n in
  (* The root's initial worker is processor 1 and it never retires: it
     receives every request and sends every reply. *)
  check Alcotest.int "root worker" 1 r.bottleneck_proc;
  Alcotest.(check bool)
    (Printf.sprintf "load %d >= 2n" r.bottleneck_load)
    true
    (r.bottleneck_load >= 2 * n)

(* ------------------------------------------------------------------ *)
(* Bitonic / counting network *)

let test_bitonic_depth_formula () =
  List.iter
    (fun w ->
      let lg =
        int_of_float (Float.round (log (float_of_int w) /. log 2.))
      in
      let net = Baselines.Bitonic.build ~width:w in
      check Alcotest.int
        (Printf.sprintf "depth w=%d" w)
        (lg * (lg + 1) / 2)
        (Baselines.Bitonic.depth net);
      check Alcotest.int
        (Printf.sprintf "balancers w=%d" w)
        (w / 2 * (lg * (lg + 1) / 2))
        (Array.length net.Baselines.Bitonic.balancers))
    [ 2; 4; 8; 16; 32 ]

let test_bitonic_rejects_non_power () =
  match Baselines.Bitonic.build ~width:6 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected power-of-two check"

let test_bitonic_single_wire_cycles_outputs () =
  let net = Baselines.Bitonic.build ~width:4 in
  let st = Baselines.Bitonic.fresh_state net in
  let outs = List.init 8 (fun _ -> Baselines.Bitonic.push net st ~wire:0) in
  Alcotest.(check (list int)) "round robin outputs" [ 0; 1; 2; 3; 0; 1; 2; 3 ] outs

let prop_bitonic_step_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"step property at every quiescent prefix (random wires)"
       ~count:60
       QCheck2.Gen.(
         pair (int_range 0 3)
           (list_size (int_range 1 200) (int_range 0 1000)))
       (fun (wi, wires) ->
         let width = List.nth [ 2; 4; 8; 16 ] wi in
         let net = Baselines.Bitonic.build ~width in
         let st = Baselines.Bitonic.fresh_state net in
         List.for_all
           (fun wire ->
             ignore (Baselines.Bitonic.push net st ~wire:(wire mod width));
             Baselines.Bitonic.step_property
               (Baselines.Bitonic.output_counts st))
           wires))

let prop_step_property_predicate =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"step_property predicate matches definition"
       ~count:300
       QCheck2.Gen.(array_size (int_range 1 8) (int_range 0 5))
       (fun counts ->
         let expected =
           let ok = ref true in
           Array.iteri
             (fun i yi ->
               Array.iteri
                 (fun j yj -> if i < j && (yi - yj < 0 || yi - yj > 1) then ok := false)
                 counts)
             counts;
           !ok
         in
         Baselines.Bitonic.step_property counts = expected))

let test_counting_network_sequential_linearizable () =
  let c = Baselines.Counting_network.create_width ~n:20 ~width:4 () in
  for i = 0 to 39 do
    check Alcotest.int "value" i
      (Baselines.Counting_network.inc c ~origin:((i mod 20) + 1))
  done;
  Alcotest.(check bool) "step property held" true
    (Baselines.Counting_network.step_property_held c)

let test_counting_network_cost_per_op () =
  (* Each op costs depth + 2 messages: entry hop, one hop per balancer
     after the first, exit hop, value reply. *)
  let c = Baselines.Counting_network.create_width ~n:20 ~width:8 () in
  ignore (Baselines.Counting_network.inc c ~origin:5);
  let depth = Baselines.Counting_network.network_depth c in
  match Baselines.Counting_network.traces c with
  | [ t ] -> check Alcotest.int "messages" (depth + 2) (Sim.Trace.message_count t)
  | _ -> Alcotest.fail "expected one trace"

let test_counting_network_batch () =
  let c = Baselines.Counting_network.create_width ~n:32 ~width:8 () in
  let results =
    Baselines.Counting_network.run_batch c
      ~origins:(List.init 32 (fun i -> i + 1))
  in
  check Alcotest.int "all done" 32 (List.length results);
  let values = List.sort compare (List.map snd results) in
  Alcotest.(check (list int)) "contiguous distinct block"
    (List.init 32 Fun.id) values;
  Alcotest.(check bool) "step property at quiescence" true
    (Baselines.Counting_network.step_property_held c);
  (* Sequential ops keep working afterwards. *)
  check Alcotest.int "next value" 32
    (Baselines.Counting_network.inc c ~origin:1)

let test_counting_network_batch_spreads_load () =
  (* No serialisation point: with width 8, the busiest host takes ~1/8 of
     the tokens' first-layer traffic rather than all of it. *)
  let c = Baselines.Counting_network.create_width ~n:64 ~width:8 () in
  ignore
    (Baselines.Counting_network.run_batch c
       ~origins:(List.init 64 (fun i -> i + 1)));
  let m = Baselines.Counting_network.metrics c in
  let _, bottleneck = Sim.Metrics.bottleneck m in
  Alcotest.(check bool)
    (Printf.sprintf "bottleneck %d << 2*64" bottleneck)
    true (bottleneck < 64)

let test_periodic_depth_formula () =
  List.iter
    (fun w ->
      let lg = int_of_float (Float.round (log (float_of_int w) /. log 2.)) in
      let net = Baselines.Periodic.build ~width:w in
      check Alcotest.int
        (Printf.sprintf "balancers w=%d" w)
        (w / 2 * Baselines.Periodic.depth ~width:w)
        (Array.length net.Baselines.Bitonic.balancers);
      check Alcotest.int
        (Printf.sprintf "depth w=%d" w)
        (lg * lg)
        (Baselines.Bitonic.depth net))
    [ 2; 4; 8; 16; 32 ]

let prop_periodic_step_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"periodic network: step property at every quiescent prefix"
       ~count:60
       QCheck2.Gen.(
         pair (int_range 0 3) (list_size (int_range 1 200) (int_range 0 1000)))
       (fun (wi, wires) ->
         let width = List.nth [ 2; 4; 8; 16 ] wi in
         let net = Baselines.Periodic.build ~width in
         let st = Baselines.Bitonic.fresh_state net in
         List.for_all
           (fun wire ->
             ignore (Baselines.Bitonic.push net st ~wire:(wire mod width));
             Baselines.Bitonic.step_property
               (Baselines.Bitonic.output_counts st))
           wires))

let test_periodic_counter_sequential () =
  let c = Baselines.Periodic_counter.create ~n:20 () in
  for i = 0 to 39 do
    check Alcotest.int "value" i
      (Baselines.Periodic_counter.inc c ~origin:((i mod 20) + 1))
  done

let test_counting_network_default_width () =
  let c = Baselines.Counting_network.create ~n:81 () in
  check Alcotest.int "width ~ sqrt n" 8 (Baselines.Counting_network.width c)

(* ------------------------------------------------------------------ *)
(* Combining tree *)

let test_combining_sequential_correct () =
  let c = Baselines.Combining_tree.create ~n:16 () in
  for i = 0 to 31 do
    check Alcotest.int "value" i
      (Baselines.Combining_tree.inc c ~origin:((i mod 16) + 1))
  done

let test_combining_batch_values_contiguous () =
  let c = Baselines.Combining_tree.create ~n:16 () in
  let results =
    Baselines.Combining_tree.run_batch c ~origins:(List.init 16 (fun i -> i + 1))
  in
  check Alcotest.int "all done" 16 (List.length results);
  let values = List.sort compare (List.map snd results) in
  Alcotest.(check (list int)) "contiguous block" (List.init 16 Fun.id) values

let test_combining_batch_combines () =
  let c = Baselines.Combining_tree.create ~n:16 () in
  ignore
    (Baselines.Combining_tree.run_batch c
       ~origins:(List.init 16 (fun i -> i + 1)));
  (* A full concurrent batch over a complete binary tree combines at
     every inner node: 15 inner nodes, the root cannot combine "up". *)
  Alcotest.(check bool)
    (Printf.sprintf "combining happened (%d)"
       (Baselines.Combining_tree.combined_requests c))
    true
    (Baselines.Combining_tree.combined_requests c >= 8);
  Alcotest.(check bool) "rate > 0.5" true
    (Baselines.Combining_tree.combining_rate c > 0.5)

let test_combining_batch_root_relief () =
  (* The root host sees far fewer messages under a combined batch than
     under 16 sequential ops. *)
  let batched = Baselines.Combining_tree.create ~n:16 () in
  ignore
    (Baselines.Combining_tree.run_batch batched
       ~origins:(List.init 16 (fun i -> i + 1)));
  let sequential = Baselines.Combining_tree.create ~n:16 () in
  for i = 1 to 16 do
    ignore (Baselines.Combining_tree.inc sequential ~origin:i)
  done;
  let root_load c = Sim.Metrics.load (Baselines.Combining_tree.metrics c) 1 in
  Alcotest.(check bool)
    (Printf.sprintf "batched root %d < sequential root %d" (root_load batched)
       (root_load sequential))
    true
    (root_load batched < root_load sequential)

let test_combining_batch_rejects_duplicates () =
  let c = Baselines.Combining_tree.create ~n:8 () in
  match Baselines.Combining_tree.run_batch c ~origins:[ 1; 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate check"

let test_combining_partial_batches () =
  let c = Baselines.Combining_tree.create ~n:16 () in
  let r1 = Baselines.Combining_tree.run_batch c ~origins:[ 1; 2; 3 ] in
  let r2 = Baselines.Combining_tree.run_batch c ~origins:[ 9; 16 ] in
  let values = List.sort compare (List.map snd (r1 @ r2)) in
  Alcotest.(check (list int)) "two batches contiguous" [ 0; 1; 2; 3; 4 ] values

(* ------------------------------------------------------------------ *)
(* Diffracting tree *)

let test_diffracting_sequential_correct () =
  let c = Baselines.Diffracting_tree.create_width ~n:16 ~width:4 () in
  for i = 0 to 31 do
    check Alcotest.int "value" i
      (Baselines.Diffracting_tree.inc c ~origin:((i mod 16) + 1))
  done;
  Alcotest.(check bool) "step property" true
    (Baselines.Diffracting_tree.step_property_held c)

let test_diffracting_sequential_never_diffracts () =
  let c = Baselines.Diffracting_tree.create_width ~n:16 ~width:4 () in
  for i = 1 to 16 do
    ignore (Baselines.Diffracting_tree.inc c ~origin:i)
  done;
  check Alcotest.int "no diffraction" 0
    (Baselines.Diffracting_tree.diffractions c);
  Alcotest.(check bool) "all toggle" true
    (Baselines.Diffracting_tree.toggle_hits c > 0)

let test_diffracting_batch_diffracts () =
  let c = Baselines.Diffracting_tree.create_width ~n:16 ~width:4 () in
  let results =
    Baselines.Diffracting_tree.run_batch c
      ~origins:(List.init 16 (fun i -> i + 1))
  in
  check Alcotest.int "all done" 16 (List.length results);
  let values = List.sort compare (List.map snd results) in
  Alcotest.(check (list int)) "contiguous" (List.init 16 Fun.id) values;
  Alcotest.(check bool)
    (Printf.sprintf "diffractions %d > 0" (Baselines.Diffracting_tree.diffractions c))
    true
    (Baselines.Diffracting_tree.diffractions c > 0)

let test_diffracting_batch_step_property () =
  let c = Baselines.Diffracting_tree.create_width ~n:32 ~width:8 () in
  ignore
    (Baselines.Diffracting_tree.run_batch c
       ~origins:(List.init 32 (fun i -> i + 1)));
  Alcotest.(check bool) "step property after batch" true
    (Baselines.Bitonic.step_property (Baselines.Diffracting_tree.output_counts c))

(* ------------------------------------------------------------------ *)
(* Quorum counters *)

let test_quorum_counter_message_geometry () =
  (* Grid quorum counter with origin-local slots: processor p's first
     access uses the quorum of grid element p (Maekawa's "my quorum"),
     which always contains p itself, so an op costs 4 * (|Q| - 1)
     messages: read+reply+write+ack for each of the 2r-2 remote
     members. *)
  let module QC = Baselines.Quorum_counter.Over_grid in
  let n = 16 in
  let c = QC.create ~n () in
  ignore (QC.inc c ~origin:16);
  check Alcotest.int "messages = 4 * (7-1)" 24
    (Sim.Metrics.total_messages (QC.metrics c));
  ignore (QC.inc c ~origin:6);
  check Alcotest.int "second op adds 24" 48
    (Sim.Metrics.total_messages (QC.metrics c))

let test_quorum_counter_slots_are_origin_local () =
  (* The quorum a processor uses depends only on its own history: other
     processors' operations must not change it (prefix stability, see
     Quorum_counter). Clone the counter, run unrelated ops on one copy,
     and check a probe operation costs the same messages on both. *)
  let module QC = Baselines.Quorum_counter.Over_grid in
  let a = QC.create ~n:16 () in
  let b = QC.clone a in
  ignore (QC.inc b ~origin:2);
  ignore (QC.inc b ~origin:3);
  let msgs_before c = Sim.Metrics.total_messages (QC.metrics c) in
  let before_a = msgs_before a and before_b = msgs_before b in
  ignore (QC.inc a ~origin:7);
  ignore (QC.inc b ~origin:7);
  check Alcotest.int "same probe cost"
    (msgs_before a - before_a)
    (msgs_before b - before_b)

let test_quorum_counter_majority_correct_under_rotation () =
  let module QC = Baselines.Quorum_counter.Over_majority in
  let c = QC.create ~n:9 () in
  for i = 0 to 26 do
    check Alcotest.int "value" i (QC.inc c ~origin:((i mod 9) + 1))
  done

let test_quorum_counter_singleton_universe () =
  let module QC = Baselines.Quorum_counter.Over_majority in
  let c = QC.create ~n:1 () in
  check Alcotest.int "local" 0 (QC.inc c ~origin:1);
  check Alcotest.int "local again" 1 (QC.inc c ~origin:1);
  check Alcotest.int "no messages" 0
    (Sim.Metrics.total_messages (QC.metrics c))

(* ------------------------------------------------------------------ *)
(* Cross-counter comparison: the headline ordering at n = 81. *)

let test_bottleneck_ordering_at_81 () =
  let bottleneck c =
    (Counter.Driver.run_each_once c ~n:81).Counter.Driver.bottleneck_load
  in
  let retire = bottleneck Baselines.Registry.retire_tree in
  let central = bottleneck Baselines.Registry.central in
  let static = bottleneck Baselines.Registry.static_tree in
  let grid = bottleneck Baselines.Registry.quorum_grid in
  Alcotest.(check bool)
    (Printf.sprintf "retire %d < grid %d" retire grid)
    true (retire < grid);
  Alcotest.(check bool)
    (Printf.sprintf "grid %d < central %d" grid central)
    true (grid < central);
  Alcotest.(check bool)
    (Printf.sprintf "retire %d << static %d" retire static)
    true (retire * 2 < static)

let () =
  Alcotest.run "baselines"
    [
      ( "central",
        [
          Alcotest.test_case "holder bottleneck" `Quick test_central_holder_is_bottleneck;
          Alcotest.test_case "local op free" `Quick test_central_local_op_free;
        ] );
      ( "static-tree",
        [ Alcotest.test_case "root Theta(n)" `Quick test_static_tree_root_theta_n ] );
      ( "bitonic",
        [
          Alcotest.test_case "depth formula" `Quick test_bitonic_depth_formula;
          Alcotest.test_case "rejects non-power" `Quick test_bitonic_rejects_non_power;
          Alcotest.test_case "single wire cycles" `Quick test_bitonic_single_wire_cycles_outputs;
          prop_bitonic_step_property;
          prop_step_property_predicate;
        ] );
      ( "counting-network",
        [
          Alcotest.test_case "sequentially linearizable" `Quick test_counting_network_sequential_linearizable;
          Alcotest.test_case "cost per op" `Quick test_counting_network_cost_per_op;
          Alcotest.test_case "concurrent batch" `Quick test_counting_network_batch;
          Alcotest.test_case "batch spreads load" `Quick test_counting_network_batch_spreads_load;
          Alcotest.test_case "default width" `Quick test_counting_network_default_width;
          Alcotest.test_case "periodic depth formula" `Quick test_periodic_depth_formula;
          prop_periodic_step_property;
          Alcotest.test_case "periodic counter sequential" `Quick test_periodic_counter_sequential;
        ] );
      ( "combining",
        [
          Alcotest.test_case "sequential correct" `Quick test_combining_sequential_correct;
          Alcotest.test_case "batch contiguous" `Quick test_combining_batch_values_contiguous;
          Alcotest.test_case "batch combines" `Quick test_combining_batch_combines;
          Alcotest.test_case "batch relieves root" `Quick test_combining_batch_root_relief;
          Alcotest.test_case "duplicate check" `Quick test_combining_batch_rejects_duplicates;
          Alcotest.test_case "partial batches" `Quick test_combining_partial_batches;
        ] );
      ( "diffracting",
        [
          Alcotest.test_case "sequential correct" `Quick test_diffracting_sequential_correct;
          Alcotest.test_case "sequential never diffracts" `Quick test_diffracting_sequential_never_diffracts;
          Alcotest.test_case "batch diffracts" `Quick test_diffracting_batch_diffracts;
          Alcotest.test_case "batch step property" `Quick test_diffracting_batch_step_property;
        ] );
      ( "quorum-counters",
        [
          Alcotest.test_case "message geometry" `Quick test_quorum_counter_message_geometry;
          Alcotest.test_case "origin-local slots" `Quick test_quorum_counter_slots_are_origin_local;
          Alcotest.test_case "majority rotation" `Quick test_quorum_counter_majority_correct_under_rotation;
          Alcotest.test_case "singleton universe" `Quick test_quorum_counter_singleton_universe;
        ] );
      ( "comparison",
        [ Alcotest.test_case "ordering at n=81" `Quick test_bottleneck_ordering_at_81 ] );
    ]
