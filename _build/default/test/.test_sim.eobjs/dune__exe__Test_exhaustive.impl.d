test/test_exhaustive.ml: Alcotest Baselines Core List Printf Seq
