test/test_params.ml: Alcotest Core Fun List Printf QCheck2 QCheck_alcotest
