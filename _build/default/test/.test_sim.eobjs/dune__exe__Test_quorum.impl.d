test/test_quorum.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Quorum Sim
