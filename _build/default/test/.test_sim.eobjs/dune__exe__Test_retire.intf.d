test/test_retire.mli:
