test/test_lower_bound.ml: Alcotest Array Baselines Core Counter Lazy List Printf QCheck2 QCheck_alcotest Sim
