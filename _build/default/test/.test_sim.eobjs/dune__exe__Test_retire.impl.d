test/test_retire.ml: Alcotest Array Core Counter Format Fun List Printf QCheck2 QCheck_alcotest Sim
