test/test_counters.ml: Alcotest Array Baselines Core Counter Format List Printf QCheck2 QCheck_alcotest Sim
