test/test_retire_local.ml: Alcotest Core Counter List Printf QCheck2 QCheck_alcotest Sim
