test/test_structures.ml: Alcotest Core Counter List Printf QCheck2 QCheck_alcotest Sim Structures
