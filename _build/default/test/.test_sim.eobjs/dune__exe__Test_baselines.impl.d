test/test_baselines.ml: Alcotest Array Baselines Counter Float Fun List Printf QCheck2 QCheck_alcotest Sim
