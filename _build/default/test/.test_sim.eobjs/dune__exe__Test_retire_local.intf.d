test/test_retire_local.mli:
