test/test_sim.ml: Alcotest Array Format Fun List QCheck2 QCheck_alcotest Sim String
