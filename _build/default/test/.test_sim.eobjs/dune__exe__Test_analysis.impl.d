test/test_analysis.ml: Alcotest Analysis Array Baselines Counter Format Fun List Printf QCheck2 QCheck_alcotest String
