(* Tests for the strictly processor-local implementation of the paper's
   counter, centred on its equivalence with the shared-state version. *)

let check = Alcotest.check

module L = Core.Retire_local
module R = Core.Retire_counter

let test_equivalent_to_shared_state () =
  (* Under the default constant-delay model the two implementations must
     produce identical executions: same values, same message totals, same
     bottleneck, same number of stale forwards. *)
  List.iter
    (fun k ->
      let n = Core.Params.n_of_k k in
      let l = L.create ~n () and r = R.create ~n () in
      for i = 1 to n do
        check Alcotest.int
          (Printf.sprintf "k=%d op %d" k i)
          (R.inc r ~origin:i) (L.inc l ~origin:i)
      done;
      let ml = L.metrics l and mr = R.metrics r in
      check Alcotest.int "same messages"
        (Sim.Metrics.total_messages mr)
        (Sim.Metrics.total_messages ml);
      check Alcotest.int "same bottleneck"
        (snd (Sim.Metrics.bottleneck mr))
        (snd (Sim.Metrics.bottleneck ml));
      check Alcotest.int "same stale forwards" (R.stale_forwards r)
        (L.stale_forwards l);
      check Alcotest.int "same retirements" (R.total_retirements r)
        (L.total_retirements l))
    [ 1; 2; 3 ]

let test_correct_under_reordering_delays () =
  (* Under exponential delays handoff pieces race requests; buffering
     must keep every value exact. *)
  List.iter
    (fun seed ->
      let l = L.create ~seed ~delay:(Sim.Delay.Exponential 1.0) ~n:81 () in
      for i = 0 to 80 do
        check Alcotest.int "value" i (L.inc l ~origin:(i + 1))
      done)
    [ 1; 2; 3 ]

let test_roles_conserved () =
  (* At quiescence exactly one processor works for each inner node. *)
  let l = L.create ~n:81 () in
  check Alcotest.int "initial roles" 40 (L.active_roles l);
  for i = 1 to 81 do
    ignore (L.inc l ~origin:i)
  done;
  check Alcotest.int "roles after run" 40 (L.active_roles l)

let test_hotspot_and_bound () =
  let l = L.create ~n:81 () in
  for i = 1 to 81 do
    ignore (L.inc l ~origin:i)
  done;
  Alcotest.(check bool) "hot spot lemma" true
    (Counter.Hotspot.holds (L.traces l));
  let _, bottleneck = Sim.Metrics.bottleneck (L.metrics l) in
  Alcotest.(check bool)
    (Printf.sprintf "O(k): %d" bottleneck)
    true
    (bottleneck <= (25 * 3) + 10 && bottleneck >= Core.Lower_bound.k_of_n 81)

let test_handshake_visible_under_async () =
  (* With heavy jitter some messages must arrive before their role is
     assembled — the buffering path is actually exercised. Accumulate
     over several seeds to avoid flakiness. *)
  let total = ref 0 in
  for seed = 1 to 5 do
    let l =
      L.create ~seed ~delay:(Sim.Delay.Adversarial_jitter 0.5) ~n:81 ()
    in
    for i = 1 to 81 do
      ignore (L.inc l ~origin:i)
    done;
    total := !total + L.buffered_messages l
  done;
  Alcotest.(check bool)
    (Printf.sprintf "buffering observed (%d)" !total)
    true (!total > 0)

let test_clone_continues () =
  let l = L.create ~n:8 () in
  for i = 1 to 4 do
    ignore (L.inc l ~origin:i)
  done;
  let c = L.clone l in
  check Alcotest.int "clone continues" 4 (L.inc c ~origin:5);
  check Alcotest.int "original unaffected" 4 (L.inc l ~origin:5)

let test_rejects_bad_n () =
  match L.create ~n:50 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let prop_random_schedule_matches_shared =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"local = shared on random schedules (values and messages)"
       ~count:15
       QCheck2.Gen.(list_size (int_range 1 50) (int_range 1 81))
       (fun origins ->
         let l = L.create ~n:81 () and r = R.create ~n:81 () in
         List.for_all
           (fun origin -> L.inc l ~origin = R.inc r ~origin)
           origins
         && Sim.Metrics.total_messages (L.metrics l)
            = Sim.Metrics.total_messages (R.metrics r)))

let () =
  Alcotest.run "retire-local"
    [
      ( "equivalence",
        [
          Alcotest.test_case "message-for-message vs shared state" `Quick
            test_equivalent_to_shared_state;
          prop_random_schedule_matches_shared;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "correct under reordering" `Quick
            test_correct_under_reordering_delays;
          Alcotest.test_case "roles conserved" `Quick test_roles_conserved;
          Alcotest.test_case "hotspot and bound" `Quick test_hotspot_and_bound;
          Alcotest.test_case "handshake buffering visible" `Quick
            test_handshake_visible_under_async;
        ] );
      ( "api",
        [
          Alcotest.test_case "clone" `Quick test_clone_continues;
          Alcotest.test_case "rejects bad n" `Quick test_rejects_bad_n;
        ] );
    ]
