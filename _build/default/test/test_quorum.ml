(* Tests for the quorum-system library: intersection (the defining
   property), construction shapes, load and probe complexity. *)

let check = Alcotest.check

let systems : (Quorum.Quorum_intf.system * int list) list =
  [
    ((module Quorum.Majority), [ 1; 2; 5; 10; 17 ]);
    ((module Quorum.Grid), [ 1; 4; 9; 16; 49 ]);
    ((module Quorum.Tree_quorum), [ 1; 3; 7; 15; 31 ]);
    ((module Quorum.Crumbling_wall), [ 1; 2; 5; 14; 20; 33 ]);
    ((module Quorum.Projective_plane), [ 7; 13; 31; 57 ]);
  ]

let test_well_formed () =
  List.iter
    (fun (((module Q : Quorum.Quorum_intf.S) as q), sizes) ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d" Q.name n)
            true
            (Quorum.Check.well_formed q ~n ~slots:40))
        sizes)
    systems

let test_pairwise_intersection () =
  List.iter
    (fun (((module Q : Quorum.Quorum_intf.S) as q), sizes) ->
      List.iter
        (fun n ->
          match Quorum.Check.first_violation q ~n ~slots:60 with
          | None -> ()
          | Some (i, j) ->
              Alcotest.failf "%s n=%d: quorums %d and %d disjoint" Q.name n i j)
        sizes)
    systems

let prop_intersection_random_slots =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random slot pairs intersect" ~count:300
       QCheck2.Gen.(
         tup3 (int_range 0 3) (int_range 1 60) (pair (int_range 0 500) (int_range 0 500)))
       (fun (sys_i, n, (s1, s2)) ->
         let (module Q : Quorum.Quorum_intf.S), _ = List.nth systems sys_i in
         let n = Q.supported_n n in
         let q = Q.create ~n in
         let a = Q.quorum q ~slot:s1 and b = Q.quorum q ~slot:s2 in
         List.exists (fun e -> List.mem e b) a))

let test_majority_size () =
  let q = Quorum.Majority.create ~n:10 in
  check Alcotest.int "size 6" 6 (Quorum.Majority.quorum_size q);
  check Alcotest.int "members" 6
    (List.length (Quorum.Majority.quorum q ~slot:3))

let test_grid_shape () =
  check Alcotest.int "supported 10 -> 16" 16 (Quorum.Grid.supported_n 10);
  let q = Quorum.Grid.create ~n:16 in
  check Alcotest.int "side" 4 (Quorum.Grid.side q);
  check Alcotest.int "|Q| = 2r-1" 7 (Quorum.Grid.quorum_size q);
  (* Element 1 (row 0, col 0): quorum = row {1,2,3,4} + column
     {1,5,9,13}. *)
  Alcotest.(check (list int))
    "row+column" [ 1; 2; 3; 4; 5; 9; 13 ]
    (Quorum.Grid.quorum q ~slot:0)

let test_tree_quorum_paths () =
  let q = Quorum.Tree_quorum.create ~n:7 in
  check Alcotest.int "levels" 3 (Quorum.Tree_quorum.levels q);
  (* Root-to-leaf paths in the heap layout 1..7: leaves 4..7. *)
  Alcotest.(check (list int)) "path 0" [ 1; 2; 4 ]
    (Quorum.Tree_quorum.path_quorum q ~leaf:0);
  Alcotest.(check (list int)) "path 3" [ 1; 3; 7 ]
    (Quorum.Tree_quorum.path_quorum q ~leaf:3)

let test_tree_quorum_root_everywhere () =
  (* The tree quorum's known weakness: the root is in every path. *)
  let q = Quorum.Tree_quorum.create ~n:15 in
  for slot = 0 to 20 do
    Alcotest.(check bool) "root present" true
      (List.mem 1 (Quorum.Tree_quorum.quorum q ~slot))
  done

let test_tree_recovery_avoids_failures () =
  let q = Quorum.Tree_quorum.create ~n:7 in
  (* Root dead: quorum must substitute both children's quorums. *)
  (match Quorum.Tree_quorum.recovery_quorum q ~failed:(fun e -> e = 1) with
  | Some members ->
      Alcotest.(check bool) "no dead member" true (not (List.mem 1 members));
      Alcotest.(check bool) "covers both subtrees" true
        (List.mem 2 members && List.mem 3 members)
  | None -> Alcotest.fail "recovery expected");
  (* All leaves dead: no quorum survives. *)
  match
    Quorum.Tree_quorum.recovery_quorum q ~failed:(fun e -> e >= 4)
  with
  | None -> ()
  | Some q -> Alcotest.failf "unexpected quorum of size %d" (List.length q)

let test_crumbling_wall_rows () =
  let w = Quorum.Crumbling_wall.create ~n:9 in
  (* Triangle widths 2,3,4. *)
  Alcotest.(check (list (list int)))
    "rows" [ [ 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8; 9 ] ]
    (Quorum.Crumbling_wall.rows w)

let test_crumbling_wall_explicit () =
  let w = Quorum.Crumbling_wall.create_rows ~widths:[ 3; 3 ] in
  check Alcotest.int "n" 6 (Quorum.Crumbling_wall.n w);
  (* A quorum using the top row = the whole row + one rep below. *)
  let q0 = Quorum.Crumbling_wall.quorum w ~slot:0 in
  Alcotest.(check bool) "contains full top row" true
    (List.for_all (fun e -> List.mem e q0) [ 1; 2; 3 ]);
  check Alcotest.int "size 4" 4 (List.length q0)

let test_projective_plane_structure () =
  (* Fano plane: q = 2, n = 7, lines of 3, pairwise intersections of
     exactly one point. *)
  let t = Quorum.Projective_plane.create ~n:7 in
  check Alcotest.int "order" 2 (Quorum.Projective_plane.order t);
  check Alcotest.int "|Q|" 3 (Quorum.Projective_plane.quorum_size t);
  let lines = Quorum.Projective_plane.lines t in
  check Alcotest.int "7 lines" 7 (List.length lines);
  List.iter
    (fun l -> check Alcotest.int "line size" 3 (List.length l))
    lines;
  let arr = Array.of_list lines in
  for i = 0 to 6 do
    for j = i + 1 to 6 do
      let common = List.filter (fun e -> List.mem e arr.(j)) arr.(i) in
      check Alcotest.int
        (Printf.sprintf "lines %d,%d meet in exactly one point" i j)
        1 (List.length common)
    done
  done

let test_projective_plane_supported_n () =
  check Alcotest.int "rounds to fano" 7 (Quorum.Projective_plane.supported_n 5);
  check Alcotest.int "q=3" 13 (Quorum.Projective_plane.supported_n 8);
  check Alcotest.int "q=5" 31 (Quorum.Projective_plane.supported_n 14);
  (* q = 4 is a prime power we do not construct; 21 rounds to q = 5. *)
  check Alcotest.int "skips prime powers" 31
    (Quorum.Projective_plane.supported_n 21)

let test_projective_plane_optimal_load () =
  (* Rotating through all lines, every point is used exactly q+1 times:
     load (q+1)/n ~ 1/sqrt n, Naor-Wool optimal. *)
  let n = 31 in
  let profile = Quorum.Load.measure (module Quorum.Projective_plane) ~n () in
  check (Alcotest.float 1e-9) "load = (q+1)/n" (6. /. 31.)
    profile.Quorum.Load.load;
  (* Strictly better than the grid at comparable size. *)
  let grid = Quorum.Load.measure (module Quorum.Grid) ~n:36 () in
  Alcotest.(check bool) "beats grid" true
    (profile.Quorum.Load.load < grid.Quorum.Load.load)

let test_load_profiles_ordering () =
  (* Grid load must be well below majority load at the same n. *)
  let n = 49 in
  let majority = Quorum.Load.measure (module Quorum.Majority) ~n () in
  let grid = Quorum.Load.measure (module Quorum.Grid) ~n () in
  Alcotest.(check bool)
    (Printf.sprintf "grid %.3f < majority %.3f" grid.Quorum.Load.load
       majority.Quorum.Load.load)
    true
    (grid.Quorum.Load.load < majority.Quorum.Load.load);
  (* Tree quorums have load 1 at the root. *)
  let tree = Quorum.Load.measure (module Quorum.Tree_quorum) ~n:31 () in
  check (Alcotest.float 1e-9) "tree root load = 1" 1.0 tree.Quorum.Load.load

let test_load_counts_sum () =
  let n = 16 in
  let accesses = 16 in
  let counts = Quorum.Load.counts (module Quorum.Grid) ~n ~accesses in
  let total = Array.fold_left ( + ) 0 counts in
  (* Every access touches exactly 2r-1 = 7 elements. *)
  check Alcotest.int "sum = accesses * |Q|" (accesses * 7) total

let test_probe_no_failures () =
  (* Without failures the first quorum certifies after |Q| probes. *)
  let outcome =
    Quorum.Probe.search (module Quorum.Grid) ~n:16 ~failed:(fun _ -> false) ()
  in
  (match outcome.Quorum.Probe.found with
  | Some members -> check Alcotest.int "probes = |Q|" (List.length members) outcome.Quorum.Probe.probes
  | None -> Alcotest.fail "expected a quorum");
  check Alcotest.int "one quorum examined" 1 outcome.Quorum.Probe.quorums_examined

let test_probe_skips_dead () =
  (* Kill a few scattered elements (killing a full grid row would hit
     every column and thus every quorum): the searcher must pay extra
     probes but still succeed. *)
  let dead = [ 1; 2; 5 ] in
  let outcome =
    Quorum.Probe.search (module Quorum.Grid) ~n:16
      ~failed:(fun e -> List.mem e dead)
      ()
  in
  match outcome.Quorum.Probe.found with
  | Some members ->
      Alcotest.(check bool) "no dead member" true
        (List.for_all (fun e -> not (List.mem e dead)) members)
  | None -> Alcotest.fail "expected recovery"

let test_probe_total_failure () =
  let outcome =
    Quorum.Probe.search (module Quorum.Majority) ~n:9 ~failed:(fun _ -> true) ()
  in
  Alcotest.(check bool) "no quorum" true (outcome.Quorum.Probe.found = None)

let test_probe_montecarlo_sane () =
  let mean, success =
    Quorum.Probe.expected_probes (module Quorum.Grid) ~n:25 ~fraction:0.1
      ~trials:50 ~seed:3
  in
  Alcotest.(check bool) "mean probes positive" true (mean > 0.);
  Alcotest.(check bool) "mostly succeeds at 10% failures" true (success > 0.5)

let prop_probe_found_quorums_are_live =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"probe results contain no dead elements"
       ~count:100
       QCheck2.Gen.(tup3 (int_range 0 3) (int_range 4 40) (int_range 0 1000))
       (fun (sys_i, n, seed) ->
         let (module Q : Quorum.Quorum_intf.S), _ = List.nth systems sys_i in
         let n = Q.supported_n n in
         let rng = Sim.Rng.create ~seed in
         let failures = Quorum.Probe.random_failures rng ~n ~fraction:0.2 in
         let outcome =
           Quorum.Probe.search (module Q) ~n ~failed:(fun e -> failures.(e)) ()
         in
         match outcome.Quorum.Probe.found with
         | None -> true
         | Some members -> List.for_all (fun e -> not failures.(e)) members))

let () =
  Alcotest.run "quorum"
    [
      ( "intersection",
        [
          Alcotest.test_case "well formed" `Quick test_well_formed;
          Alcotest.test_case "pairwise intersection" `Quick test_pairwise_intersection;
          prop_intersection_random_slots;
        ] );
      ( "constructions",
        [
          Alcotest.test_case "majority size" `Quick test_majority_size;
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
          Alcotest.test_case "tree paths" `Quick test_tree_quorum_paths;
          Alcotest.test_case "tree root everywhere" `Quick test_tree_quorum_root_everywhere;
          Alcotest.test_case "tree recovery" `Quick test_tree_recovery_avoids_failures;
          Alcotest.test_case "wall rows" `Quick test_crumbling_wall_rows;
          Alcotest.test_case "wall explicit" `Quick test_crumbling_wall_explicit;
          Alcotest.test_case "projective plane structure" `Quick test_projective_plane_structure;
          Alcotest.test_case "projective plane sizes" `Quick test_projective_plane_supported_n;
          Alcotest.test_case "projective plane optimal load" `Quick test_projective_plane_optimal_load;
        ] );
      ( "load",
        [
          Alcotest.test_case "profiles ordering" `Quick test_load_profiles_ordering;
          Alcotest.test_case "counts sum" `Quick test_load_counts_sum;
        ] );
      ( "probe",
        [
          Alcotest.test_case "no failures" `Quick test_probe_no_failures;
          Alcotest.test_case "skips dead" `Quick test_probe_skips_dead;
          Alcotest.test_case "total failure" `Quick test_probe_total_failure;
          Alcotest.test_case "monte carlo" `Quick test_probe_montecarlo_sane;
          prop_probe_found_quorums_are_live;
        ] );
    ]
