(** Binary min-heap keyed by float priority, with FIFO tie-breaking.

    This is the event queue of the discrete-event engine. Ties are broken by
    insertion order so that two messages scheduled for the same instant are
    delivered in the order they were sent — which keeps runs deterministic
    even under the [Constant] delay model where every delivery time
    collides. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> prio:float -> 'a -> unit
(** [push t ~prio x] inserts [x] with priority [prio]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element (earliest inserted among
    equals), or [None] when empty. O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Returns the element [pop] would return, without removing it. O(1). *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: all elements in pop order. O(n log n); for tests and
    debugging output. *)
