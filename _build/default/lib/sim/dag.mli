(** The exact process DAG of an operation (the paper's Fig. 1).

    Every delivered message knows its causal parent — the delivery during
    whose handling it was sent ({!Trace.event.parent}; local timers
    propagate the parent of the event that armed them). That turns a
    trace into the genuine partially-ordered set of events the paper
    models an [inc] process as, rather than the linear delivery-order
    approximation:

    - nodes are the message deliveries plus a virtual source for the
      initiating processor;
    - arcs go from the event that caused a message to the message's
      delivery;
    - the {e depth} of an event is its causal distance from the source —
      under the unit-delay convention, exactly the virtual time at which
      it happens;
    - the {!critical_path} is the longest causal message chain — the
      operation's inherent latency no matter how parallel the network is;
    - {!max_width} is the largest number of causally-incomparable
      same-depth events — how much the process fans out (retirement
      cascades do; a plain climb to the root does not).

    {!to_dot} renders the exact Fig. 1; {!Trace.to_dot} remains the
    occurrence-merging variant that needs no parent information. *)

type t

val of_trace : Trace.t -> t

val event_count : t -> int
(** Message deliveries in the process (the virtual source excluded). *)

val critical_path : t -> int
(** Length in messages of the longest causal chain ([0] for a local
    operation). *)

val max_width : t -> int
(** Maximum number of events at the same causal depth ([0] for a local
    operation): the process's peak parallelism. *)

val depth_profile : t -> int array
(** [depth_profile t].(d) = number of events at causal depth [d+1]. *)

val consistent_with_delivery_order : t -> bool
(** Every event's parent was delivered before it — the engine guarantees
    this (delivery order is a topological order); asserted in tests. *)

val to_dot : t -> string
(** Exact Graphviz rendering: one node per delivery (labelled with the
    receiving processor), the virtual source labelled with the origin. *)
