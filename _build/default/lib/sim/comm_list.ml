type t = { nodes : int array }

let of_trace trace =
  let origin = Trace.origin trace in
  (* Delivery order is a topological order of the process DAG. Each message
     adds its receiver as the next node; consecutive repeats of the same
     processor collapse into one node. The sender of the first message is
     the origin by construction of a process. *)
  let rev =
    List.fold_left
      (fun acc (e : Trace.event) ->
        match acc with
        | last :: _ when last = e.dst -> acc
        | _ -> e.dst :: acc)
      [ origin ]
      (Trace.events trace)
  in
  { nodes = Array.of_list (List.rev rev) }

let nodes t = Array.to_list t.nodes

let length t = Array.length t.nodes - 1

let origin t = t.nodes.(0)

let label t j =
  if j < 1 || j > Array.length t.nodes then
    invalid_arg "Comm_list.label: position out of range"
  else t.nodes.(j - 1)

let pp ppf t =
  Format.pp_print_string ppf
    (String.concat " -> " (List.map string_of_int (nodes t)))
