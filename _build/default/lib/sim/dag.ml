type t = {
  origin : int;
  events : Trace.event array;  (* delivery order *)
  depths : int array;  (* causal depth of each event; source = 0 *)
}

let of_trace trace =
  let events = Array.of_list (Trace.events trace) in
  (* Map seq -> position for parent lookups. *)
  let index = Hashtbl.create (Array.length events) in
  Array.iteri (fun i (e : Trace.event) -> Hashtbl.replace index e.seq i) events;
  let depths = Array.make (Array.length events) 1 in
  Array.iteri
    (fun i (e : Trace.event) ->
      match Hashtbl.find_opt index e.parent with
      | Some p when p < i -> depths.(i) <- depths.(p) + 1
      | Some _ | None -> depths.(i) <- 1)
    events;
  { origin = Trace.origin trace; events; depths }

let event_count t = Array.length t.events

let critical_path t = Array.fold_left max 0 t.depths

let depth_profile t =
  let deepest = critical_path t in
  let profile = Array.make deepest 0 in
  Array.iter (fun d -> profile.(d - 1) <- profile.(d - 1) + 1) t.depths;
  profile

let max_width t = Array.fold_left max 0 (depth_profile t)

let consistent_with_delivery_order t =
  let seen = Hashtbl.create (Array.length t.events) in
  Array.for_all
    (fun (e : Trace.event) ->
      let ok = e.parent = 0 || Hashtbl.mem seen e.parent in
      Hashtbl.replace seen e.seq ();
      ok)
    t.events

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph inc_process {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  Buffer.add_string buf
    (Printf.sprintf "  source [label=\"%d\", shape=doublecircle];\n" t.origin);
  Array.iteri
    (fun i (e : Trace.event) ->
      Buffer.add_string buf (Printf.sprintf "  e%d [label=\"%d\"];\n" i e.dst))
    t.events;
  let index = Hashtbl.create (Array.length t.events) in
  Array.iteri (fun i (e : Trace.event) -> Hashtbl.replace index e.seq i) t.events;
  Array.iteri
    (fun i (e : Trace.event) ->
      let parent_node =
        match Hashtbl.find_opt index e.parent with
        | Some p when p < i -> Printf.sprintf "e%d" p
        | Some _ | None -> "source"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> e%d [label=\"%s@%.1f\"];\n" parent_node i
           e.tag e.time))
    t.events;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
