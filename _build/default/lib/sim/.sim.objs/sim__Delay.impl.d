lib/sim/delay.ml: Format Printf Rng String
