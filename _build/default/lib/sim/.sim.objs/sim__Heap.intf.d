lib/sim/heap.mli:
