lib/sim/rng.mli:
