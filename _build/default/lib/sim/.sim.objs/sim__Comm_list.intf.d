lib/sim/comm_list.mli: Format Trace
