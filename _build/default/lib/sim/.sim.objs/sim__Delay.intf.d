lib/sim/delay.mli: Format Rng
