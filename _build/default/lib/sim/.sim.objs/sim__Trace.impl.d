lib/sim/trace.ml: Buffer Bytes Format Hashtbl Int List Printf Set String
