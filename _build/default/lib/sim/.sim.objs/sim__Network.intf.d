lib/sim/network.mli: Delay Metrics Rng Trace
