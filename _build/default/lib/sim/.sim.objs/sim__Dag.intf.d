lib/sim/dag.mli: Trace
