lib/sim/network.ml: Delay Hashtbl Heap Logs Metrics Option Printf Rng Trace
