lib/sim/comm_list.ml: Array Format List String Trace
