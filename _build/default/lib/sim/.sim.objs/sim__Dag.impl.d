lib/sim/dag.ml: Array Buffer Hashtbl Printf Trace
