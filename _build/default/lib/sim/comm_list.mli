(** Communication lists — the linearised process DAGs of the lower-bound
    proof (Fig. 2 of the paper).

    The proof of the Lower Bound Theorem replaces the communication DAG of
    an [inc] process by "a topologically sorted linear list of the nodes of
    the DAG", so that each DAG arc corresponds to a path in the list and the
    list's arc count lower-bounds nothing — it *equals* the number of list
    arcs, which is what the weight function is defined over. The list starts
    at the initiating processor (the source of the DAG).

    We build the list from a {!Trace}: delivery order is a valid topological
    order of the DAG, each delivered message contributes the receiving
    processor as the next node, and consecutive duplicate labels are merged
    (a processor performing several communications back-to-back is one DAG
    node performing "some communication"). The length of the list — its
    number of arcs — is what the adversary of {!Core.Adversary} maximises,
    and the per-position processor labels [p_i_j] are what the weight
    function [w_i = sum_j m(p_i_j) / 2^j] reads. *)

type t

val of_trace : Trace.t -> t
(** Linearise a process trace. A trace with no messages yields the singleton
    list [\[origin\]] of length 0. *)

val nodes : t -> int list
(** Processor labels [p_1; p_2; ...] in topological order. The head is the
    initiating processor. *)

val length : t -> int
(** Number of arcs, i.e. [List.length (nodes t) - 1]. This is the quantity
    called [l_i] / [L_i] in the proof. *)

val origin : t -> int
(** The initiating processor (head of {!nodes}). *)

val label : t -> int -> int
(** [label t j] is the processor at 1-based position [j] (the paper indexes
    list nodes from 1). Raises [Invalid_argument] if out of range. *)

val pp : Format.formatter -> t -> unit
(** Renders like the paper's Fig. 2: [11 -> 17 -> 7 -> 3 -> ...]. *)
