let log_src = Logs.Src.create "sim.network" ~doc:"Discrete-event network"

module Log = (val Logs.src_log log_src : Logs.LOG)

type 'msg envelope = { src : int; dst : int; payload : 'msg; parent : int }

(* Pending events: message deliveries (charged to metrics and traces) and
   local timer expirations (free — a processor consulting its own clock). *)
type 'msg event =
  | Deliver of 'msg envelope
  | Local of int * (unit -> unit)
      (* timer with the causal parent of the event that scheduled it *)

type 'msg t = {
  n : int;
  rng : Rng.t;
  delay : Delay.t;
  label : 'msg -> string;
  bits : 'msg -> int;
  queue : 'msg event Heap.t;
  metrics : Metrics.t;
  mutable handler : (self:int -> src:int -> 'msg -> unit) option;
  mutable clock : float;
  mutable deliveries : int;
  mutable trace : Trace.t option;
  mutable op_count : int;
  mutable total_bits : int;
  mutable max_message_bits : int;
  mutable current_event : int;
      (* seq of the delivery being handled; 0 outside handlers *)
  fifo_links : ((int * int), float) Hashtbl.t option;
      (* when FIFO links are on: last scheduled arrival per (src, dst) *)
}

let create ?(seed = 0xC0FFEE) ?(delay = Delay.default) ?label ?bits
    ?(fifo = false) ~n () =
  let label = match label with Some f -> f | None -> fun _ -> "msg" in
  let bits = match bits with Some f -> f | None -> fun _ -> 0 in
  {
    n;
    rng = Rng.create ~seed;
    delay;
    label;
    bits;
    queue = Heap.create ();
    metrics = Metrics.create ~n;
    handler = None;
    clock = 0.;
    deliveries = 0;
    trace = None;
    op_count = 0;
    total_bits = 0;
    max_message_bits = 0;
    current_event = 0;
    fifo_links = (if fifo then Some (Hashtbl.create 64) else None);
  }

let set_handler t h = t.handler <- Some h

let n t = t.n

let rng t = t.rng

let now t = t.clock

let metrics t = t.metrics

let pending t = Heap.size t.queue

let deliveries t = t.deliveries

let send t ~src ~dst payload =
  if src < 1 || dst < 1 then invalid_arg "Network.send: ids start at 1";
  Metrics.on_send t.metrics src;
  let size = t.bits payload in
  t.total_bits <- t.total_bits + size;
  if size > t.max_message_bits then t.max_message_bits <- size;
  let arrival = t.clock +. Delay.sample t.delay t.rng in
  let arrival =
    match t.fifo_links with
    | None -> arrival
    | Some last ->
        (* FIFO links: a message never overtakes an earlier one on the
           same (src, dst) channel. *)
        let a =
          match Hashtbl.find_opt last (src, dst) with
          | Some prev when prev >= arrival -> prev +. 1e-9
          | _ -> arrival
        in
        Hashtbl.replace last (src, dst) a;
        a
  in
  Heap.push t.queue ~prio:arrival
    (Deliver { src; dst; payload; parent = t.current_event })

let schedule_local t ~delay callback =
  if delay < 0. then invalid_arg "Network.schedule_local: negative delay";
  Heap.push t.queue ~prio:(t.clock +. delay) (Local (t.current_event, callback))

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, Local (parent, callback)) ->
      t.clock <- max t.clock at;
      (* The timer's effects are causal consequences of the event that
         armed it. *)
      let saved = t.current_event in
      t.current_event <- parent;
      callback ();
      t.current_event <- saved;
      true
  | Some (arrival, Deliver env) ->
      let handler =
        match t.handler with
        | Some h -> h
        | None -> failwith "Network.step: no handler installed"
      in
      t.clock <- max t.clock arrival;
      t.deliveries <- t.deliveries + 1;
      Log.debug (fun m ->
          m "t=%.3f deliver %d -> %d [%s]" t.clock env.src env.dst
            (t.label env.payload));
      Metrics.on_recv t.metrics env.dst;
      (match t.trace with
      | Some trace ->
          Trace.record trace
            {
              Trace.seq = t.deliveries;
              time = t.clock;
              src = env.src;
              dst = env.dst;
              tag = t.label env.payload;
              parent = env.parent;
            }
      | None -> ());
      let saved = t.current_event in
      t.current_event <- t.deliveries;
      handler ~self:env.dst ~src:env.src env.payload;
      t.current_event <- saved;
      true

let run_to_quiescence ?(max_steps = 100_000_000) t =
  let rec loop count =
    if count >= max_steps then
      failwith
        (Printf.sprintf
           "Network.run_to_quiescence: exceeded %d deliveries; protocol \
            probably diverges"
           max_steps)
    else if step t then loop (count + 1)
    else count
  in
  loop 0

let clone_quiescent t =
  if Heap.size t.queue > 0 then
    failwith "Network.clone_quiescent: messages pending";
  if t.trace <> None then
    failwith "Network.clone_quiescent: an operation is open";
  {
    n = t.n;
    rng = Rng.copy t.rng;
    delay = t.delay;
    label = t.label;
    bits = t.bits;
    queue = Heap.create ();
    metrics = Metrics.copy t.metrics;
    handler = None;
    clock = t.clock;
    deliveries = t.deliveries;
    trace = None;
    op_count = t.op_count;
    total_bits = t.total_bits;
    max_message_bits = t.max_message_bits;
    current_event = 0;
    fifo_links = Option.map Hashtbl.copy t.fifo_links;
  }

let in_op t = t.trace <> None

let begin_op t ~origin =
  if in_op t then failwith "Network.begin_op: an operation is already open";
  t.trace <-
    Some (Trace.create ~start_time:t.clock ~op_index:t.op_count ~origin ());
  t.op_count <- t.op_count + 1

let total_bits t = t.total_bits

let max_message_bits t = t.max_message_bits

let end_op t =
  match t.trace with
  | None -> failwith "Network.end_op: no operation open"
  | Some trace ->
      t.trace <- None;
      trace
