lib/quorum/crumbling_wall.ml: Array List
