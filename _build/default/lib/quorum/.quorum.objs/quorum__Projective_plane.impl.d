lib/quorum/projective_plane.ml: Array List
