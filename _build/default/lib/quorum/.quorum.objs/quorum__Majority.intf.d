lib/quorum/majority.mli: Quorum_intf
