lib/quorum/grid.ml: List
