lib/quorum/crumbling_wall.mli: Quorum_intf
