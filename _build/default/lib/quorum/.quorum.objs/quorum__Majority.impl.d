lib/quorum/majority.ml: List
