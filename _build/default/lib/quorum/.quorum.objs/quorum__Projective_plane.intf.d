lib/quorum/projective_plane.mli: Quorum_intf
