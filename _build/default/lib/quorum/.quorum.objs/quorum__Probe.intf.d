lib/quorum/probe.mli: Quorum_intf Sim
