lib/quorum/grid.mli: Quorum_intf
