lib/quorum/tree_quorum.ml: List Option
