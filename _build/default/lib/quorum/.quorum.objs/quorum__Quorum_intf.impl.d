lib/quorum/quorum_intf.ml:
