lib/quorum/load.ml: Array Format List Quorum_intf
