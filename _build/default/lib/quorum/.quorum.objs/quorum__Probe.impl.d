lib/quorum/probe.ml: Array List Quorum_intf Sim
