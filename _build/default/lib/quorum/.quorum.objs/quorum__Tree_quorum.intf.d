lib/quorum/tree_quorum.mli: Quorum_intf
