lib/quorum/load.mli: Format Quorum_intf
