lib/quorum/check.mli: Quorum_intf
