lib/quorum/check.ml: Array Int List Quorum_intf Set
