(** Grid (Maekawa-style) quorums: arrange the [n = r^2] elements in a
    square grid; the quorum of element [e] is [e]'s full row plus [e]'s
    full column ([2r - 1] elements). Any two row-plus-column sets
    intersect (a row of one crosses a column of the other), giving
    O(sqrt n) quorums — Maekawa's classic [sqrt N] mutual-exclusion
    algorithm (Maekawa 1985, cited by the paper). The access strategy
    cycles [e] through all [n] elements, which spreads load uniformly:
    each element appears in [2r - 1] of the [n] quorums. *)

include Quorum_intf.S

val side : t -> int
(** The grid side [r = sqrt n]. *)
