(** Crumbling walls (Peleg & Wool, PODC 1995 — cited by the paper).

    Elements are arranged in rows of (possibly different) widths; a
    quorum is one full row plus one representative from every row below
    it. Any two quorums intersect: if they use the same full row they
    share it; otherwise the one with the higher full row contains a
    representative in the other's full row. Small rows near the top give
    small quorums; the classic CW(1, 2, 3, ...) triangle wall achieves
    O(sqrt n) quorums with good load. Row 0 of width 1 would put that
    single element in every quorum (a wall with a "crack" — degenerate to
    a hot spot), so our default triangle starts at width 2 except for the
    trivial universe. *)

include Quorum_intf.S

val rows : t -> int list list
(** The wall's rows (top to bottom), each a list of element ids. *)

val create_rows : widths:int list -> t
(** Build a wall with explicit row widths (top to bottom); elements are
    numbered row-major. Requires all widths [>= 1]. *)
