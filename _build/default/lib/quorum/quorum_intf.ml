(** Quorum systems (related work, Section 1).

    A quorum system over a universe of elements is a collection of sets
    (quorums) every two of which intersect. The paper's Hot Spot Lemma is
    "closely related" to the intersection arguments of quorum theory
    (Garcia-Molina & Barbara 1985; Maekawa 1985), and its counting scheme
    "might be called a Dynamic Quorum System"; we implement the classical
    constructions to measure their load and probe complexity next to the
    paper's counter (experiments E5 and E8).

    A system also fixes an {e access strategy}: [quorum ~slot] returns the
    quorum to use for the [slot]-th access. Strategies rotate through the
    collection so that load spreads as evenly as the construction allows;
    the {!Load} module measures the result. *)

module type S = sig
  type t

  val name : string

  val describe : string

  val supported_n : int -> int
  (** Round a requested universe size up to the nearest supported one
      (e.g. a square for grids). *)

  val create : n:int -> t
  (** Requires [n = supported_n n]. *)

  val n : t -> int
  (** Universe size; elements are [1 .. n]. *)

  val quorum : t -> slot:int -> int list
  (** The quorum used for access number [slot] ([slot >= 0]); sorted,
      duplicate-free, non-empty, all within [1 .. n]. *)

  val distinct_quorums : t -> int
  (** Size of the quorum collection the strategy rotates through —
      [quorum ~slot] cycles with this period. *)

  val quorum_size : t -> int
  (** Size of the quorums this system produces (all our constructions are
      uniform; for crumbling walls this is the maximum). *)
end

type system = (module S)
