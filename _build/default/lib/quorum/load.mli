(** Load analysis of quorum systems (Naor & Wool's notion, measured
    empirically for our access strategies).

    The load of an access strategy is how often the busiest element is
    touched, as a fraction of accesses. Over one full rotation of the
    strategy we count, for every element, the number of quorums containing
    it; the maximum divided by the number of accesses is the empirical
    load. Lower is better: majority has load about 1/2; a grid about
    [2/sqrt n]; tree quorums put the root in every quorum (load 1) — the
    quorum-world hot spot. *)

type profile = {
  system_name : string;
  n : int;
  accesses : int;
  quorum_size_max : int;
  quorum_size_mean : float;
  busiest_element : int;
  busiest_count : int;
  load : float;  (** [busiest_count / accesses]. *)
  mean_count : float;  (** Average element participation count. *)
}

val measure : Quorum_intf.system -> n:int -> ?accesses:int -> unit -> profile
(** Measure over [accesses] slots (default: one full rotation,
    [distinct_quorums]). *)

val counts : Quorum_intf.system -> n:int -> accesses:int -> int array
(** Per-element participation counts (index 0 unused). *)

val pp_profile : Format.formatter -> profile -> unit
