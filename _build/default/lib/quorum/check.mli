(** Structural validation of quorum systems.

    The defining property of a quorum system is pairwise intersection;
    these checks are used by the test suite (deterministically over the
    strategy's full rotation, and property-based over random slot pairs)
    and by the E8 experiment as a preflight. *)

val well_formed : Quorum_intf.system -> n:int -> slots:int -> bool
(** Quorums over the first [slots] slots are non-empty, sorted,
    duplicate-free and within [1 .. n]. *)

val pairwise_intersecting : Quorum_intf.system -> n:int -> slots:int -> bool
(** Every pair among the first [slots] quorums intersects. O(slots^2 *
    size); keep [slots] modest. *)

val first_violation :
  Quorum_intf.system -> n:int -> slots:int -> (int * int) option
(** The first non-intersecting slot pair, if any. *)
