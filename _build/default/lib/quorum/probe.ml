type outcome = { found : int list option; probes : int; quorums_examined : int }

let search (module Q : Quorum_intf.S) ~n ~failed ?max_quorums () =
  let n = Q.supported_n n in
  let q = Q.create ~n in
  let max_quorums =
    match max_quorums with Some m -> m | None -> Q.distinct_quorums q
  in
  (* known.(e): None = unprobed, Some alive = probed answer. *)
  let known = Array.make (n + 1) None in
  let probes = ref 0 in
  let probe e =
    match known.(e) with
    | Some alive -> alive
    | None ->
        incr probes;
        let alive = not (failed e) in
        known.(e) <- Some alive;
        alive
  in
  let rec walk slot =
    if slot >= max_quorums then { found = None; probes = !probes; quorums_examined = slot }
    else
      let members = Q.quorum q ~slot in
      let known_dead =
        List.exists (fun e -> known.(e) = Some false) members
      in
      if known_dead then walk (slot + 1)
      else if List.for_all probe members then
        { found = Some members; probes = !probes; quorums_examined = slot + 1 }
      else walk (slot + 1)
  in
  walk 0

let random_failures rng ~n ~fraction =
  Array.init (n + 1) (fun e -> e > 0 && Sim.Rng.float rng 1.0 < fraction)

let expected_probes (module Q : Quorum_intf.S) ~n ~fraction ~trials ~seed =
  let rng = Sim.Rng.create ~seed in
  let total_probes = ref 0 and successes = ref 0 in
  for _ = 1 to trials do
    let failures = random_failures rng ~n:(Q.supported_n n) ~fraction in
    let outcome =
      search (module Q) ~n ~failed:(fun e -> failures.(e)) ()
    in
    total_probes := !total_probes + outcome.probes;
    if outcome.found <> None then incr successes
  done;
  ( float_of_int !total_probes /. float_of_int (max 1 trials),
    float_of_int !successes /. float_of_int (max 1 trials) )
