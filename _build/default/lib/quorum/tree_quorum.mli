(** Tree quorums (Agrawal & El Abbadi 1990).

    Elements are arranged in a complete binary tree. A quorum is obtained
    by the recursive rule: the quorum of a subtree is either its root plus
    a quorum of one child subtree, or quorums of both child subtrees
    (replacing the root). In the failure-free case the cheapest quorums
    are root-to-leaf paths of size [log2 (n+1)] — exponentially smaller
    than majorities — but every cheap quorum contains the tree root, so
    the root is a bottleneck carrying load Theta(1) per access: a nice
    quorum-world illustration of the hot-spot phenomenon the paper
    formalises. The access strategy rotates over the [ (n+1)/2 ]
    root-to-leaf paths. *)

include Quorum_intf.S

val levels : t -> int
(** Tree height: quorums (paths) have this size. *)

val path_quorum : t -> leaf:int -> int list
(** The root-to-leaf path quorum for a given leaf index (0-based among
    leaves). *)

val recovery_quorum : t -> failed:(int -> bool) -> int list option
(** A quorum avoiding failed elements, per the recursive substitution
    rule ([None] if the failures hit every quorum). Used by the probe
    experiment. *)
