(** Majority quorums: every set of [floor(n/2) + 1] elements.

    The oldest quorum system (Thomas 1979 / Gifford 1979 vote counting,
    foundations in Garcia-Molina & Barbara 1985). Optimal fault tolerance,
    terrible load: every access touches half the universe, so over [n]
    accesses every element carries Theta(n) messages. The access strategy
    rotates contiguous blocks [slot, slot + m) (mod n) so the load is at
    least spread evenly. *)

include Quorum_intf.S
