type profile = {
  system_name : string;
  n : int;
  accesses : int;
  quorum_size_max : int;
  quorum_size_mean : float;
  busiest_element : int;
  busiest_count : int;
  load : float;
  mean_count : float;
}

let counts (module Q : Quorum_intf.S) ~n ~accesses =
  let n = Q.supported_n n in
  let q = Q.create ~n in
  let counts = Array.make (n + 1) 0 in
  for slot = 0 to accesses - 1 do
    List.iter (fun e -> counts.(e) <- counts.(e) + 1) (Q.quorum q ~slot)
  done;
  counts

let measure (module Q : Quorum_intf.S) ~n ?accesses () =
  let n = Q.supported_n n in
  let q = Q.create ~n in
  let accesses =
    match accesses with Some a -> a | None -> Q.distinct_quorums q
  in
  let counts = Array.make (n + 1) 0 in
  let size_sum = ref 0 and size_max = ref 0 in
  for slot = 0 to accesses - 1 do
    let members = Q.quorum q ~slot in
    let size = List.length members in
    size_sum := !size_sum + size;
    size_max := max !size_max size;
    List.iter (fun e -> counts.(e) <- counts.(e) + 1) members
  done;
  let busiest_element = ref 0 and busiest_count = ref 0 in
  let total = ref 0 in
  for e = 1 to n do
    total := !total + counts.(e);
    if counts.(e) > !busiest_count then begin
      busiest_count := counts.(e);
      busiest_element := e
    end
  done;
  {
    system_name = Q.name;
    n;
    accesses;
    quorum_size_max = !size_max;
    quorum_size_mean = float_of_int !size_sum /. float_of_int (max 1 accesses);
    busiest_element = !busiest_element;
    busiest_count = !busiest_count;
    load = float_of_int !busiest_count /. float_of_int (max 1 accesses);
    mean_count = float_of_int !total /. float_of_int n;
  }

let pp_profile ppf p =
  Format.fprintf ppf
    "%-15s n=%4d accesses=%4d |Q|max=%3d |Q|mean=%6.2f busiest=e%d \
     (%d times, load %.3f) mean-participation=%.2f"
    p.system_name p.n p.accesses p.quorum_size_max p.quorum_size_mean
    p.busiest_element p.busiest_count p.load p.mean_count
