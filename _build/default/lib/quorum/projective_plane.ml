type t = { q : int; n : int; lines : int array array }

let name = "projective-plane"

let describe = "lines of PG(2,q): |Q| = q+1 ~ sqrt(n), optimal load"

let is_prime q =
  q >= 2
  &&
  let rec check d = d * d > q || (q mod d <> 0 && check (d + 1)) in
  check 2

let plane_size q = (q * q) + q + 1

let supported_n n =
  let n = max 3 n in
  let rec search q =
    if is_prime q && plane_size q >= n then plane_size q else search (q + 1)
  in
  search 2

(* Canonical homogeneous coordinates over GF(q): (1,a,b), (0,1,a) and
   (0,0,1) enumerate each projective point exactly once. *)
let points q =
  let pts = ref [] in
  pts := (0, 0, 1) :: !pts;
  for a = 0 to q - 1 do
    pts := (0, 1, a) :: !pts
  done;
  for a = 0 to q - 1 do
    for b = 0 to q - 1 do
      pts := (1, a, b) :: !pts
    done
  done;
  Array.of_list (List.rev !pts)

let create ~n =
  let q =
    let rec search q =
      if is_prime q && plane_size q = n then q
      else if plane_size q > n then
        invalid_arg
          "Projective_plane.create: n must be q^2+q+1, q prime (use \
           supported_n)"
      else search (q + 1)
    in
    search 2
  in
  let pts = points q in
  let dot (a, b, c) (x, y, z) = ((a * x) + (b * y) + (c * z)) mod q in
  (* Lines have the same canonical coordinates as points (duality);
     point P lies on line L iff <P, L> = 0 (mod q). *)
  let lines =
    Array.map
      (fun line ->
        let members = ref [] in
        Array.iteri
          (fun i p -> if dot line p = 0 then members := (i + 1) :: !members)
          pts;
        Array.of_list (List.rev !members))
      pts
  in
  { q; n; lines }

let n t = t.n

let order t = t.q

let quorum t ~slot =
  if slot < 0 then invalid_arg "Projective_plane.quorum: slot must be >= 0";
  Array.to_list t.lines.(slot mod t.n)

let distinct_quorums t = t.n

let quorum_size t = t.q + 1

let lines t = Array.to_list (Array.map Array.to_list t.lines)
