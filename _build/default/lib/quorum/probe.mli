(** Probe complexity of quorum systems (Peleg & Wool, PODC 1996 — "How to
    be an efficient snoop", cited by the paper).

    To use a quorum system under crash failures a client must first find a
    fully-live quorum by probing elements one at a time (each probe
    reveals whether the element is alive). The probe complexity is the
    number of probes the client needs. We implement the natural adaptive
    strategy: walk the strategy's quorums in rotation order, probe their
    members, remember every answer, and skip quorums already known to
    contain a dead element; report the total number of (distinct) probes
    until some quorum is certified live, or failure when the crash set
    hits every quorum examined.

    This is the one part of the repository where failures exist: the
    paper's counting model is failure-free, but its related-work
    comparison (and our E8 experiment) needs quorum behaviour under
    crashes. *)

type outcome = {
  found : int list option;  (** The certified-live quorum, if any. *)
  probes : int;  (** Distinct elements probed. *)
  quorums_examined : int;
}

val search :
  Quorum_intf.system ->
  n:int ->
  failed:(int -> bool) ->
  ?max_quorums:int ->
  unit ->
  outcome
(** Adaptive search as described above. [max_quorums] bounds the rotation
    walk (default: the system's [distinct_quorums]). *)

val random_failures : Sim.Rng.t -> n:int -> fraction:float -> bool array
(** Crash each element independently with probability [fraction];
    index 0 unused. *)

val expected_probes :
  Quorum_intf.system ->
  n:int ->
  fraction:float ->
  trials:int ->
  seed:int ->
  float * float
(** Monte-Carlo mean probes and success rate over [trials] random crash
    sets. *)
