(** Finite-projective-plane quorums — the load-optimal construction.

    The points of the projective plane PG(2, q) over GF(q) (q prime) form
    a universe of [n = q^2 + q + 1] elements; the quorums are the plane's
    lines. Every line has exactly [q + 1 ~ sqrt n] points, every point
    lies on exactly [q + 1] lines, and {e any two distinct lines meet in
    exactly one point} — the tightest possible intersection. Rotating
    through all [n] lines gives load [(q+1)/n ~ 1/sqrt n], which is
    optimal for any quorum system (Naor & Wool), making this the
    strongest quorum baseline against the paper's counter in E5/E8.

    Supported universe sizes are [q^2 + q + 1] for prime [q]
    ({!supported_n} rounds up). *)

include Quorum_intf.S

val order : t -> int
(** The plane's order [q]. *)

val lines : t -> int list list
(** All [n] lines (each sorted), for structural tests. *)
