(** Descriptive statistics over integer samples (message loads, list
    lengths, retirement counts). *)

type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;  (** Population standard deviation. *)
  median : float;
  p90 : float;
  p99 : float;
  total : int;
}

val summarize : int array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val percentile : int array -> float -> float
(** [percentile samples p] with [p] in [\[0, 100\]]; linear interpolation
    on the sorted samples. *)

val gini : int array -> float
(** Gini coefficient of the sample (0 = perfectly even, -> 1 = all mass on
    one element): our imbalance measure for load distributions
    (experiment E6). Zero-sum samples yield 0. *)

val mean_float : float array -> float

val pp_summary : Format.formatter -> summary -> unit
