(** Text histograms for load distributions (experiment E6). *)

type t

val of_samples : ?buckets:int -> int array -> t
(** Equal-width bucketing over the sample range (default 12 buckets). *)

val pp : ?bar_width:int -> Format.formatter -> t -> unit
(** Renders one line per bucket: range, count, and a proportional bar. *)

val bucket_counts : t -> (int * int * int) list
(** [(lo, hi, count)] per bucket (inclusive bounds). *)
