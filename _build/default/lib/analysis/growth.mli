(** Growth-shape fitting: which asymptotic curve does a measured series
    follow?

    The evaluation's central question is qualitative — does the paper's
    counter's bottleneck grow like [k(n) = Theta(log n / log log n)]
    while the baselines grow like [sqrt n] or [n]? We fit each candidate
    shape [f] by least-squares scale [c] (minimising [sum (y - c f(n))^2])
    and report the normalised residual; the best (smallest) residual
    names the shape. This is deliberately simple: with 3-5 data points a
    honest "which curve fits best" beats any pretence of precision. *)

type shape =
  | Constant
  | Log  (** [log2 n] *)
  | K_of_n  (** the paper's [k]: real solution of [x^(x+1) = n] *)
  | Log_squared
  | Sqrt
  | Linear

val all_shapes : shape list

val shape_name : shape -> string

val eval : shape -> float -> float
(** [eval shape n]. *)

type fit = {
  shape : shape;
  scale : float;  (** Fitted [c]. *)
  residual : float;  (** Normalised RMS residual (lower = better). *)
}

val fit_shape : shape -> (float * float) list -> fit
(** Least-squares [c] for one shape over [(n, y)] points. *)

val best_fit : (float * float) list -> fit * fit list
(** Best shape and all fits, sorted best-first. Requires >= 2 points with
    distinct [n]. *)

val pp_fit : Format.formatter -> fit -> unit
