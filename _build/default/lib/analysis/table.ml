type t = { columns : string list; mutable rows_rev : string list list }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows_rev = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows_rev <- row :: t.rows_rev

let add_int_row t row = add_row t (List.map string_of_int row)

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_bool b = if b then "yes" else "no"

let widths t =
  let rows = List.rev t.rows_rev in
  List.mapi
    (fun i h ->
      List.fold_left
        (fun acc row -> max acc (String.length (List.nth row i)))
        (String.length h) rows)
    t.columns

let pp ppf t =
  let widths = widths t in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Format.fprintf ppf "%-*s" w cell
        else Format.fprintf ppf "  %*s" w cell)
      cells;
    Format.pp_print_newline ppf ()
  in
  print_row t.columns;
  let rule = List.map (fun w -> String.make w '-') widths in
  print_row rule;
  List.iter print_row (List.rev t.rows_rev)

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows_rev))
  ^ "\n"
