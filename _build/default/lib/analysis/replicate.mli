(** Multi-seed replication and multicore fan-out for experiments.

    Single runs of a randomised experiment are anecdotes; {!across_seeds}
    turns a seeded measurement into mean / spread / 95% confidence
    interval. {!parallel_map} distributes independent runs across OCaml 5
    domains — every simulation in this repository is a self-contained
    value, so experiment sweeps parallelise trivially. *)

type summary = {
  runs : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  min : float;
  max : float;
  ci95 : float;  (** Half-width of the normal-approximation 95% CI. *)
}

val across_seeds : seeds:int list -> (int -> float) -> summary
(** [across_seeds ~seeds f] evaluates [f seed] for every seed and
    summarises. Requires a non-empty seed list. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] evaluates [f] over [xs] using up to [domains]
    (default: [Domain.recommended_domain_count ()], capped at the list
    length) additional domains, preserving order. [f] must not share
    mutable state across calls. Falls back to [List.map] for lists of
    length [<= 1]. Exceptions raised by [f] are re-raised. *)

val across_seeds_parallel :
  ?domains:int -> seeds:int list -> (int -> float) -> summary
(** {!across_seeds} with the runs spread over domains. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["mean +- ci95 (sd=..., n=...)"]. *)
