lib/analysis/histogram.ml: Array Format List String
