lib/analysis/growth.mli: Format
