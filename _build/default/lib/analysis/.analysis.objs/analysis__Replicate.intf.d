lib/analysis/replicate.mli: Format
