lib/analysis/table.ml: Format List Printf String
