lib/analysis/growth.ml: Format List
