lib/analysis/replicate.ml: Array Domain Float Format List
