(** Aligned ASCII tables — the output format of every experiment, so
    bench output reads like the tables a paper would print. *)

type t

val create : columns:string list -> t
(** Column headers; every row must match their arity. *)

val add_row : t -> string list -> unit

val add_int_row : t -> int list -> unit

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_bool : bool -> string

val pp : Format.formatter -> t -> unit
(** Prints header, separator, rows; columns right-aligned except the
    first. *)

val to_csv : t -> string
(** The same table as CSV (for EXPERIMENTS.md extraction / plotting). *)
