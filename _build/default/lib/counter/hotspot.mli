(** Mechanical Hot Spot Lemma checker.

    Hot Spot Lemma (Section 2): if processors [p] and [q] increment the
    counter in direct succession then [I_p], the set of processors that
    send or receive a message during [p]'s operation, must intersect
    [I_q] — otherwise no processor involved in [q]'s operation knows the
    new counter value and [q] would read a stale value.

    The lemma is a *necessary* property of any correct counter, so checking
    it on executions is a sanity check of both the implementations and the
    trace machinery: every correct counter must pass, and a deliberately
    broken counter (see the test suite's [Amnesiac] counter) must fail it
    and simultaneously return wrong values. *)

type violation = {
  first_op : int;  (** Index of the earlier operation. *)
  second_op : int;
  first_origin : int;
  second_origin : int;
}

val check : Sim.Trace.t list -> violation list
(** [check traces] examines every consecutive pair of operation traces
    (chronological order) and returns all pairs with disjoint processor
    sets. Empty result = lemma holds on this execution. *)

val holds : Sim.Trace.t list -> bool

val pp_violation : Format.formatter -> violation -> unit
