(** Concurrent operation histories and a linearizability check for
    fetch-and-increment.

    The paper's model is sequential, but its related work is not: Herlihy,
    Shavit & Waarts's "Linearizable counting networks" (cited in the
    paper) exists precisely because counting networks are {e not}
    linearizable under overlap. To measure that on our implementations,
    batch runs can be {e staggered}: operation [i] is injected at virtual
    time [i * stagger], so operations genuinely overlap and real-time
    order constrains the outcome.

    For fetch-and-increment the linearizability condition over a history
    of distinct values is exactly: whenever operation [a] completes before
    operation [b] is invoked, [a]'s value is smaller than [b]'s
    ({!check}). Histories whose operations all overlap are vacuously
    linearizable; the interesting violations appear at moderate stagger —
    experiment E20 exhibits them live on the counting network and shows
    the paper's counter (whose root serialises) staying linearizable. *)

type op = {
  origin : int;
  value : int;
  invoked_at : float;  (** Virtual time the request was injected. *)
  completed_at : float;  (** Virtual time the value reached the origin. *)
}

type verdict =
  | Linearizable
  | Violation of op * op
      (** [Violation (a, b)]: [a] completed before [b] was invoked, yet
          [a.value > b.value]. *)

val check : op list -> verdict
(** O(ops^2) scan of all real-time-ordered pairs. *)

val is_linearizable : op list -> bool

val values_contiguous : op list -> bool
(** The weaker guarantee every correct counter keeps even under overlap
    (quiescent consistency): the returned values are exactly
    [0 .. ops-1]. *)

val concurrency_profile : op list -> int
(** Maximum number of operations simultaneously in flight — how much
    overlap the history actually contains. *)

val pp_op : Format.formatter -> op -> unit

val pp_verdict : Format.formatter -> verdict -> unit
