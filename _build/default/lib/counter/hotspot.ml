type violation = {
  first_op : int;
  second_op : int;
  first_origin : int;
  second_origin : int;
}

let check traces =
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
        let acc =
          if Sim.Trace.intersects a b then acc
          else
            {
              first_op = Sim.Trace.op_index a;
              second_op = Sim.Trace.op_index b;
              first_origin = Sim.Trace.origin a;
              second_origin = Sim.Trace.origin b;
            }
            :: acc
        in
        walk acc rest
    | [ _ ] | [] -> List.rev acc
  in
  walk [] traces

let holds traces = check traces = []

let pp_violation ppf v =
  Format.fprintf ppf
    "ops #%d (by p%d) and #%d (by p%d) touch disjoint processor sets"
    v.first_op v.first_origin v.second_op v.second_origin
