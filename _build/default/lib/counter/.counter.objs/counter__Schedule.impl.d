lib/counter/schedule.ml: Array Format List Printf Sim
