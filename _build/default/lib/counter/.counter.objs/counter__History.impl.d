lib/counter/history.ml: Array Format Fun List
