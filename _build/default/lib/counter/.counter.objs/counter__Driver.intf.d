lib/counter/driver.mli: Counter_intf Format Schedule Sim
