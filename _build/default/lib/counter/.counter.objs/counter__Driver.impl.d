lib/counter/driver.ml: Array Counter_intf Float Format Hotspot List Schedule Sim
