lib/counter/schedule.mli: Format Sim
