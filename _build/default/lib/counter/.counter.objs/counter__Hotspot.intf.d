lib/counter/hotspot.mli: Format Sim
