lib/counter/history.mli: Format
