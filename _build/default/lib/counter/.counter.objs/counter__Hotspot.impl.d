lib/counter/hotspot.ml: Format List Sim
