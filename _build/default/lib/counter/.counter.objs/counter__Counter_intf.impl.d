lib/counter/counter_intf.ml: Sim
