type t =
  | Each_once
  | Each_once_shuffled
  | Round_robin of int
  | Random of int
  | Single_origin of int * int
  | Explicit of int list

let ops t ~n =
  match t with
  | Each_once | Each_once_shuffled -> n
  | Round_robin ops | Random ops -> ops
  | Single_origin (_, ops) -> ops
  | Explicit l -> List.length l

let check_range ~n origins =
  List.iter
    (fun p ->
      if p < 1 || p > n then
        invalid_arg
          (Printf.sprintf "Schedule: origin %d out of range 1..%d" p n))
    origins;
  origins

let origins t rng ~n =
  let l =
    match t with
    | Each_once -> List.init n (fun i -> i + 1)
    | Each_once_shuffled ->
        let a = Array.init n (fun i -> i + 1) in
        Sim.Rng.shuffle rng a;
        Array.to_list a
    | Round_robin ops -> List.init ops (fun i -> (i mod n) + 1)
    | Random ops -> List.init ops (fun _ -> 1 + Sim.Rng.int rng n)
    | Single_origin (p, ops) -> List.init ops (fun _ -> p)
    | Explicit l -> l
  in
  check_range ~n l

let name = function
  | Each_once -> "each-once"
  | Each_once_shuffled -> "each-once-shuffled"
  | Round_robin _ -> "round-robin"
  | Random _ -> "random"
  | Single_origin _ -> "single-origin"
  | Explicit _ -> "explicit"

let pp ppf t =
  match t with
  | Each_once -> Format.pp_print_string ppf "each-once"
  | Each_once_shuffled -> Format.pp_print_string ppf "each-once-shuffled"
  | Round_robin ops -> Format.fprintf ppf "round-robin(%d)" ops
  | Random ops -> Format.fprintf ppf "random(%d)" ops
  | Single_origin (p, ops) -> Format.fprintf ppf "single-origin(p%d,%d)" p ops
  | Explicit l -> Format.fprintf ppf "explicit(%d ops)" (List.length l)
