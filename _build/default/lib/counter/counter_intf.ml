(** The distributed-counter abstract data type (Section 2 of the paper).

    A distributed counter encapsulates an integer value [val] and supports
    one operation, [inc]: for any processor, [inc] returns the current
    counter value to the requesting processor and increments the counter by
    one (test-and-increment). Following the paper's model we assume enough
    time elapses between two [inc] requests that the preceding operation's
    process has finished before the next one starts; implementations run
    each operation's message exchange to quiescence before returning.

    Implementations own a {!Sim.Network} instance, so per-processor message
    loads and per-operation traces come for free and are comparable across
    counters. *)

module type S = sig
  type t

  val name : string
  (** Short stable identifier ("central", "retire-tree", ...). *)

  val describe : string
  (** One-line human description, shown by the CLI and benches. *)

  val supported_n : int -> int
  (** [supported_n n] rounds a requested network size up to the nearest
      size the construction supports (e.g. [k^(k+1)] for the paper's tree,
      a power of two for counting networks, a square for grids). The result
      is always [>= max 1 n]. *)

  val create : ?seed:int -> ?delay:Sim.Delay.t -> n:int -> unit -> t
  (** Build the counter for exactly [n] processors; callers should pass a
      value accepted by {!supported_n} (implementations raise
      [Invalid_argument] otherwise). [seed] makes runs reproducible. *)

  val n : t -> int
  (** Number of processors. *)

  val inc : t -> origin:int -> int
  (** [inc t ~origin] performs one test-and-increment initiated by
      processor [origin] (in [1 .. n t]), runs the resulting process to
      quiescence, and returns the value the counter had. *)

  val value : t -> int
  (** Current counter value = number of completed [inc]s. *)

  val metrics : t -> Sim.Metrics.t
  (** Cumulative per-processor message loads. *)

  val traces : t -> Sim.Trace.t list
  (** Traces of all completed operations, chronological. *)

  val clone : t -> t
  (** Deep copy of the quiescent counter state (same future behaviour).
      Used by the lower-bound adversary to evaluate hypothetical
      operations without committing them. *)
end

type counter = (module S)
