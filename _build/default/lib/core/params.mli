(** Arithmetic around the paper's magic quantity [k], defined by
    [k * k^k = n] (equivalently [k^(k+1) = n]).

    [k] is both the lower bound on the bottleneck load (Section 3) and the
    arity/depth parameter of the optimal communication tree (Section 4).
    Asymptotically [k = Theta(log n / log log n)].

    All functions work in exact integer arithmetic and raise
    [Invalid_argument] on overflow rather than silently wrapping; the
    supported range ([k <= 15] on 64-bit) vastly exceeds what any
    simulation can execute. *)

val pow : int -> int -> int
(** [pow b e] with [e >= 0]; raises [Invalid_argument] on negative
    exponent or overflow. *)

val n_of_k : int -> int
(** [n_of_k k = k^(k+1) = k * k^k], the network size the paper's
    construction is built for. Requires [k >= 1]. *)

val k_of_n_exact : int -> int option
(** [k_of_n_exact n = Some k] iff [n = k^(k+1)] exactly. *)

val k_of_n_floor : int -> int
(** Largest [k >= 1] with [k^(k+1) <= n]. This is the [k] of the Lower
    Bound Theorem ("... where k * k^k = n" read as the integer solution).
    Requires [n >= 1]. *)

val round_up_n : int -> int
(** Smallest [k^(k+1)] that is [>= n] — how the paper pads: "otherwise
    simply increase n to the next higher value of the form k * k^k". *)

val k_continuous : float -> float
(** Real solution [x >= 1] of [x^(x+1) = n], for plotting the theoretical
    curve against measured data. Requires [n >= 1.]. *)

val levels : int -> int
(** [levels k = k + 2]: inner levels [0..k] plus the leaf level [k+1]. *)

val inner_nodes : int -> int
(** Total number of inner nodes, [sum_{i=0..k} k^i]. *)
