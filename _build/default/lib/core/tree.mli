(** Pure index arithmetic for the paper's communication tree (Fig. 4).

    The paper's tree has arity [k] and inner levels [0 .. k]: every inner
    node has exactly [k] children, the root is on level 0, and the leaves —
    the [n = k^(k+1)] processors themselves — are the children of the
    level-[k] nodes ("all leaves are on level k+1"). For the arity/depth
    ablation (experiment E10) the module is generalised to any [arity >= 1]
    and [depth >= 0]: inner levels are [0 .. depth] and the leaf count is
    [n = arity^(depth+1)]. {!create_paper} instantiates the paper's
    balanced choice [arity = depth = k].

    Inner nodes are addressed two ways:
    - by [(level, index)] with [index] in [0 .. arity^level - 1], left to
      right;
    - by a flat id in [0 .. inner_count - 1], level by level (root = 0),
      convenient as an array index and as the node tag inside protocol
      messages.

    Leaves are identified with processor ids [1 .. n] (the paper numbers
    processors from 1). *)

type t

val create : arity:int -> depth:int -> t
(** Requires [arity >= 1] and [depth >= 0]. *)

val create_paper : k:int -> t
(** The paper's tree: [create ~arity:k ~depth:k], with [k^(k+1)] leaves. *)

val arity : t -> int

val depth : t -> int
(** Deepest inner level; its nodes' children are the leaves. *)

val n : t -> int
(** Number of leaves = processors = [arity^(depth+1)]. *)

val inner_count : t -> int
(** Number of inner nodes, [sum_{i=0..depth} arity^i]. *)

val nodes_at_level : t -> int -> int
(** [arity^i]. Requires [0 <= i <= depth]. *)

val flat_id : t -> level:int -> index:int -> int

val level_of : t -> int -> int
(** Level of a flat id. *)

val index_of : t -> int -> int
(** Within-level index of a flat id. *)

val root : int
(** Flat id of the root ([= 0]). *)

val parent : t -> int -> int option
(** Parent flat id; [None] for the root. *)

val children : t -> int -> int list
(** Inner-node children (flat ids); [\[\]] for bottom-level nodes, whose
    children are leaves — see {!leaf_children}. *)

val leaf_children : t -> int -> int list
(** For a bottom-level node: its [arity] leaf processors (1-based ids).
    Raises [Invalid_argument] for non-bottom nodes. *)

val leaf_parent : t -> leaf:int -> int
(** Flat id of the bottom-level node whose child is leaf processor [leaf]
    (1-based). *)

val path_to_root : t -> leaf:int -> int list
(** Flat ids from the leaf's parent up to and including the root — the
    route an [inc] request travels. Length [depth + 1]. *)

val pp_node : t -> Format.formatter -> int -> unit
(** Renders a flat id as ["L2.3"] (level 2, index 3). *)
