type observation = {
  op_index : int;
  list_length : int;
  weight : float;
  guaranteed_gain : float;
}

let weight ~base ~load list =
  if base <= 1. then invalid_arg "Weights.weight: base must be > 1";
  let _, w =
    List.fold_left
      (fun (denom, acc) p ->
        let denom = denom *. base in
        (denom, acc +. ((float_of_int (load p) +. 1.) /. denom)))
      (1., 0.)
      (Sim.Comm_list.nodes list)
  in
  w

let observe ~base ~load ~op_index list =
  let l = Sim.Comm_list.length list in
  {
    op_index;
    list_length = l;
    weight = weight ~base ~load list;
    guaranteed_gain = 2. /. (base ** float_of_int (max l 1));
  }

let trajectory_monotone observations =
  let rec walk = function
    | a :: (b : observation) :: rest ->
        (* Tolerate floating-point jitter at the 1e-12 scale. *)
        if b.weight +. 1e-12 < a.weight then false else walk (b :: rest)
    | [ _ ] | [] -> true
  in
  walk observations

let pp_observation ppf o =
  Format.fprintf ppf "op %4d: l_i=%3d w_i=%.6f (guaranteed gain %.2e)"
    o.op_index o.list_length o.weight o.guaranteed_gain
