(** The lower-bound adversary: an executable version of the operation
    sequence constructed in the proof of the Lower Bound Theorem.

    The proof defines the sequence as follows: "For each operation in the
    sequence we choose a processor (among those that have not been chosen
    yet) and a process such that the processor's communication list is
    longest." We realise this against any *implemented* counter: before
    each operation the adversary clones the quiescent counter state, trial
    -runs an [inc] from every remaining candidate processor on the clone,
    measures the resulting communication-list length, and commits the
    maximising candidate on the real counter. (The proof additionally
    ranges over all nondeterministic processes; our counters are
    deterministic given a seed, so the trial run evaluates exactly the
    process that would happen — a conservative adversary, which can only
    make the measured bound easier to satisfy, never harder.)

    A second pass replays the committed order and records the proof's
    measurements for the distinguished processor [q] := the processor
    chosen last: the length [l_i] of [q]'s hypothetical communication list
    before each operation and the weight [w_i] ({!Weights}). The paper's
    invariants checked on these measurements:

    - [l_i <= L_i]: [q]'s list never beats the chosen maximum;
    - the weight trajectory never decreases;
    - at the end, the bottleneck load is at least [k] with [k * k^k = n]
      ({!Lower_bound.satisfied_by}).

    For large [n] an exact adversary costs O(n^2) trial runs; [sample]
    caps the number of candidates evaluated per step (a uniformly sampled
    subset), which again only weakens the adversary. *)

type step = {
  op_index : int;  (** 1-based. *)
  chosen : int;  (** The committed processor. *)
  list_length : int;  (** [L_i] of the committed operation. *)
  q_list_length : int option;
      (** [l_i] of the distinguished processor (second pass). *)
  candidates_evaluated : int;
}

type result = {
  counter_name : string;
  n : int;
  order : int array;  (** The adversarial operation order. *)
  steps : step list;
  q : int;  (** The processor chosen last. *)
  q_observations : Weights.observation list;  (** Weight trajectory. *)
  weight_base : float;
  bottleneck_proc : int;
  bottleneck_load : int;
  q_load : int;
  average_list_length : float;  (** The proof's [L]. *)
  k : int;  (** {!Lower_bound.k_of_n}[ n]. *)
  bound_satisfied : bool;  (** [bottleneck_load >= k]. *)
  li_never_exceeds_big_li : bool;  (** [l_i <= L_i] for all [i]. *)
  weights_monotone : bool;
  correct : bool;  (** Returned values were [0 .. n-1] in order. *)
  hotspot_ok : bool;
}

val run :
  ?seed:int ->
  ?sample:int ->
  ?base:float ->
  Counter.Counter_intf.counter ->
  n:int ->
  result
(** [run (module C) ~n] builds the adversarial sequence on a fresh
    counter of [C.supported_n n] processors. [sample] (default 16; use
    [max_int] for the exact adversary) caps candidates per step. [base]
    overrides the weight base (default: final bottleneck load + 2, which
    satisfies the proof's requirement that the base exceed every load). *)

val pp_result : Format.formatter -> result -> unit
