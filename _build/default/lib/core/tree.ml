type t = {
  arity : int;
  depth : int;
  n : int;
  level_offsets : int array;  (* level_offsets.(i) = flat id of (i, 0) *)
  inner_count : int;
}

let create ~arity ~depth =
  if arity < 1 then invalid_arg "Tree.create: arity must be >= 1";
  if depth < 0 then invalid_arg "Tree.create: depth must be >= 0";
  let n = Params.pow arity (depth + 1) in
  let level_offsets = Array.make (depth + 1) 0 in
  let off = ref 0 in
  for i = 0 to depth do
    level_offsets.(i) <- !off;
    off := !off + Params.pow arity i
  done;
  { arity; depth; n; level_offsets; inner_count = !off }

let create_paper ~k =
  if k < 1 then invalid_arg "Tree.create_paper: k must be >= 1";
  create ~arity:k ~depth:k

let arity t = t.arity

let depth t = t.depth

let n t = t.n

let inner_count t = t.inner_count

let nodes_at_level t i =
  if i < 0 || i > t.depth then invalid_arg "Tree.nodes_at_level: bad level";
  Params.pow t.arity i

let flat_id t ~level ~index =
  if level < 0 || level > t.depth then invalid_arg "Tree.flat_id: bad level";
  if index < 0 || index >= nodes_at_level t level then
    invalid_arg "Tree.flat_id: bad index";
  t.level_offsets.(level) + index

let level_of t id =
  if id < 0 || id >= t.inner_count then invalid_arg "Tree.level_of: bad id";
  (* Levels are few (depth+1 of them); linear scan is clear and fast
     enough. *)
  let rec find i =
    if i = t.depth || t.level_offsets.(i + 1) > id then i else find (i + 1)
  in
  find 0

let index_of t id = id - t.level_offsets.(level_of t id)

let root = 0

let parent t id =
  let level = level_of t id in
  if level = 0 then None
  else Some (flat_id t ~level:(level - 1) ~index:(index_of t id / t.arity))

let children t id =
  let level = level_of t id in
  if level = t.depth then []
  else
    let base = index_of t id * t.arity in
    List.init t.arity (fun c -> flat_id t ~level:(level + 1) ~index:(base + c))

let leaf_children t id =
  let level = level_of t id in
  if level <> t.depth then
    invalid_arg "Tree.leaf_children: node is not on the bottom level";
  let base = index_of t id * t.arity in
  List.init t.arity (fun c -> base + c + 1)

let leaf_parent t ~leaf =
  if leaf < 1 || leaf > t.n then invalid_arg "Tree.leaf_parent: bad leaf";
  flat_id t ~level:t.depth ~index:((leaf - 1) / t.arity)

let path_to_root t ~leaf =
  let rec climb acc id =
    match parent t id with
    | None -> List.rev (id :: acc)
    | Some p -> climb (id :: acc) p
  in
  climb [] (leaf_parent t ~leaf)

let pp_node t ppf id =
  Format.fprintf ppf "L%d.%d" (level_of t id) (index_of t id)
