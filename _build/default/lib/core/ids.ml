let check tree ~level =
  if level < 1 || level > Tree.depth tree then
    invalid_arg "Ids: level must be within 1 .. depth (the root is special)"

let capacity tree ~level =
  check tree ~level;
  Params.pow (Tree.arity tree) (Tree.depth tree - level)

let level_range_size tree = Params.pow (Tree.arity tree) (Tree.depth tree)

let initial_worker tree ~level ~index =
  check tree ~level;
  if index < 0 || index >= Tree.nodes_at_level tree level then
    invalid_arg "Ids.initial_worker: bad index";
  ((level - 1) * level_range_size tree) + (index * capacity tree ~level) + 1

let root_initial_worker = 1

let interval tree ~level ~index =
  let first = initial_worker tree ~level ~index in
  (first, first + capacity tree ~level - 1)

let interval_of_flat tree id =
  let level = Tree.level_of tree id in
  interval tree ~level ~index:(Tree.index_of tree id)

let max_identifier tree = Tree.depth tree * level_range_size tree
