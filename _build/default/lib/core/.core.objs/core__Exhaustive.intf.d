lib/core/exhaustive.mli: Counter Format Seq
