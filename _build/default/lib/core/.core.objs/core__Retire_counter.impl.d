lib/core/retire_counter.ml: Array Counter Hashtbl Ids List Params Printf Sim Tree
