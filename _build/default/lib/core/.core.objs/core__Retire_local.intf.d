lib/core/retire_local.mli: Counter Retire_counter Sim
