lib/core/params.mli:
