lib/core/params.ml:
