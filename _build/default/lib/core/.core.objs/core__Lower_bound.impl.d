lib/core/lower_bound.ml: Format List Params
