lib/core/weights.ml: Format List Sim
