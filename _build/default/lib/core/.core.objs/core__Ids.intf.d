lib/core/ids.mli: Tree
