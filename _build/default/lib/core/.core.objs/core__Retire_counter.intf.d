lib/core/retire_counter.mli: Counter Sim Tree
