lib/core/weights.mli: Format Sim
