lib/core/exhaustive.ml: Array Counter Format Fun List Lower_bound Seq Sim
