lib/core/adversary.ml: Array Counter Format List Lower_bound Sim Weights
