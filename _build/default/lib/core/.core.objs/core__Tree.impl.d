lib/core/tree.ml: Array Format List Params
