lib/core/retire_local.ml: Array Hashtbl Ids List Option Params Printf Retire_counter Sim Tree
