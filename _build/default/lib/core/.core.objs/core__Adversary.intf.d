lib/core/adversary.mli: Counter Format Weights
