lib/core/tree.mli: Format
