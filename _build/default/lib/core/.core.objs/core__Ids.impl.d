lib/core/ids.ml: Params Tree
