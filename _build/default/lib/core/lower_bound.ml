let k_of_n = Params.k_of_n_floor

let k_of_n_continuous = Params.k_continuous

let satisfied_by ~n ~bottleneck_load = bottleneck_load >= k_of_n n

let pp_table ppf ns =
  Format.fprintf ppf "@[<v>%8s %6s %12s@," "n" "k" "k (real)";
  List.iter
    (fun n ->
      Format.fprintf ppf "%8d %6d %12.3f@," n (k_of_n n)
        (k_of_n_continuous (float_of_int n)))
    ns;
  Format.fprintf ppf "@]"
