(** The identifier scheme of Section 4, generalised to any tree shape.

    Each inner node's "current processor" is drawn from a reserved interval
    of processor identifiers, so that retirement ([id_new = id_old + 1])
    always lands on a fresh processor and every processor can compute all
    initial identifiers locally. In the paper's tree (arity = depth = k,
    [n = k^(k+1)]), node [j] (0-based) on level [i] ([1 <= i <= k]) has:

    - initial worker [(i-1)*k^k + j*k^(k-i) + 1];
    - reserved interval [(i-1)*k^k + j*k^(k-i) + 1 .. (i-1)*k^k +
      (j+1)*k^(k-i)] — the initial worker plus [k^(k-i) - 1] replacements.

    Levels occupy disjoint ranges [((i-1)*k^k, i*k^k]], nodes within a
    level occupy disjoint sub-ranges, and the largest identifier used is
    [(k-1)*k^k + k^k = k^(k+1) = n] — exactly the available processors.

    Generalised to arity [a], depth [d], [n = a^(d+1)]: capacity
    [a^(d-i)], level ranges of size [a^d = n/a] each; all of them fit
    inside [1 .. n] exactly when [d <= a] (the paper has equality).

    The root is special: it starts with identifier 1 (deliberately
    overlapping level 1's range — a processor may work once for the root
    and once for one other inner node, which the Bottleneck Theorem
    accounts for) and walks 1, 2, 3, ... as it retires, up to roughly
    [k^k] replacements.

    When a node exhausts its interval (possible because the retirement
    constants of the paper's lemmas are conservative — see DESIGN.md and
    experiment E4), the implementation hires an overflow processor with an
    identifier above [n]; {!Sim.Metrics.overflow_processors} reports how
    many such hires a run needed. *)

val capacity : Tree.t -> level:int -> int
(** Interval size [arity^(depth-level)] for levels [1 .. depth]. *)

val initial_worker : Tree.t -> level:int -> index:int -> int
(** Initial processor for an inner node on levels [1 .. depth]. The root
    (level 0) starts at processor 1 — use {!root_initial_worker}. *)

val root_initial_worker : int
(** [= 1]. *)

val interval : Tree.t -> level:int -> index:int -> int * int
(** Reserved inclusive identifier range for a node on levels
    [1 .. depth]. The first component equals {!initial_worker}. *)

val interval_of_flat : Tree.t -> int -> int * int
(** Interval of a non-root node given by flat id. *)

val max_identifier : Tree.t -> int
(** Largest identifier any non-root interval reaches:
    [depth * arity^depth] (equals [n] for the paper's shape). *)
