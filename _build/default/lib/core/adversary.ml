type step = {
  op_index : int;
  chosen : int;
  list_length : int;
  q_list_length : int option;
  candidates_evaluated : int;
}

type result = {
  counter_name : string;
  n : int;
  order : int array;
  steps : step list;
  q : int;
  q_observations : Weights.observation list;
  weight_base : float;
  bottleneck_proc : int;
  bottleneck_load : int;
  q_load : int;
  average_list_length : float;
  k : int;
  bound_satisfied : bool;
  li_never_exceeds_big_li : bool;
  weights_monotone : bool;
  correct : bool;
  hotspot_ok : bool;
}

let last_trace traces =
  match List.rev traces with [] -> None | t :: _ -> Some t

(* Trial-run an inc from [p] on a clone and return its communication-list
   length. *)
let trial (type a) (module C : Counter.Counter_intf.S with type t = a)
    (counter : a) p =
  let clone = C.clone counter in
  ignore (C.inc clone ~origin:p);
  match last_trace (C.traces clone) with
  | None -> 0
  | Some t -> Sim.Comm_list.length (Sim.Comm_list.of_trace t)

let choose_candidates rng ~sample remaining =
  let all = Array.of_list remaining in
  if Array.length all <= sample then all
  else begin
    Sim.Rng.shuffle rng all;
    Array.sub all 0 sample
  end

let greedy_order (type a) (module C : Counter.Counter_intf.S with type t = a)
    (counter : a) ~n ~sample ~rng =
  let remaining = ref (List.init n (fun i -> i + 1)) in
  let order = Array.make n 0 in
  let steps = ref [] in
  for i = 0 to n - 1 do
    let candidates =
      choose_candidates rng ~sample:(max 1 sample) !remaining
    in
    let best = ref candidates.(0) and best_len = ref (-1) in
    Array.iter
      (fun p ->
        let len = trial (module C) counter p in
        if len > !best_len || (len = !best_len && p < !best) then begin
          best := p;
          best_len := len
        end)
      candidates;
    ignore (C.inc counter ~origin:!best);
    let committed_len =
      match last_trace (C.traces counter) with
      | None -> 0
      | Some t -> Sim.Comm_list.length (Sim.Comm_list.of_trace t)
    in
    order.(i) <- !best;
    remaining := List.filter (fun p -> p <> !best) !remaining;
    steps :=
      {
        op_index = i + 1;
        chosen = !best;
        list_length = committed_len;
        q_list_length = None;
        candidates_evaluated = Array.length candidates;
      }
      :: !steps
  done;
  (order, List.rev !steps)

let replay_with_weights (type a)
    (module C : Counter.Counter_intf.S with type t = a) ~(fresh : unit -> a)
    ~order ~base =
  let counter = fresh () in
  let n = Array.length order in
  let q = order.(n - 1) in
  let observations = ref [] and q_lengths = ref [] and values = ref [] in
  Array.iteri
    (fun i p ->
      (* Measure q's hypothetical process and list before op i+1. *)
      let clone = C.clone counter in
      ignore (C.inc clone ~origin:q);
      let q_list =
        match last_trace (C.traces clone) with
        | None -> Sim.Comm_list.of_trace (Sim.Trace.create ~op_index:0 ~origin:q ())
        | Some t -> Sim.Comm_list.of_trace t
      in
      let metrics = C.metrics counter in
      let load p = Sim.Metrics.load metrics p in
      observations :=
        Weights.observe ~base ~load ~op_index:(i + 1) q_list :: !observations;
      q_lengths := Sim.Comm_list.length q_list :: !q_lengths;
      values := C.inc counter ~origin:p :: !values)
    order;
  let traces = C.traces counter in
  let metrics = C.metrics counter in
  ( List.rev !observations,
    List.rev !q_lengths,
    List.rev !values,
    traces,
    metrics,
    Sim.Metrics.load metrics q )

let run ?(seed = 42) ?(sample = 16) ?base (module C : Counter.Counter_intf.S)
    ~n =
  let n = C.supported_n n in
  let rng = Sim.Rng.create ~seed:(seed + 7) in
  let counter = C.create ~seed ~n () in
  let order, steps = greedy_order (module C) counter ~n ~sample ~rng in
  let q = order.(n - 1) in
  let metrics_pass1 = C.metrics counter in
  let _, bottleneck_pass1 = Sim.Metrics.bottleneck metrics_pass1 in
  let base =
    match base with Some b -> b | None -> float_of_int (bottleneck_pass1 + 2)
  in
  let fresh () = C.create ~seed ~n () in
  let observations, q_lengths, values, traces, metrics, q_load =
    replay_with_weights (module C) ~fresh ~order ~base
  in
  let steps =
    List.map2
      (fun s l -> { s with q_list_length = Some l })
      steps q_lengths
  in
  let bottleneck_proc, bottleneck_load = Sim.Metrics.bottleneck metrics in
  let total_len =
    List.fold_left (fun acc s -> acc + s.list_length) 0 steps
  in
  let li_ok =
    List.for_all
      (fun s ->
        match s.q_list_length with
        | Some l -> l <= s.list_length
        | None -> true)
      steps
  in
  let correct =
    List.for_all2 (fun v i -> v = i) values (List.init n (fun i -> i))
  in
  let k = Lower_bound.k_of_n n in
  {
    counter_name = C.name;
    n;
    order;
    steps;
    q;
    q_observations = observations;
    weight_base = base;
    bottleneck_proc;
    bottleneck_load;
    q_load;
    average_list_length = float_of_int total_len /. float_of_int n;
    k;
    bound_satisfied = Lower_bound.satisfied_by ~n ~bottleneck_load;
    li_never_exceeds_big_li = li_ok;
    weights_monotone = Weights.trajectory_monotone observations;
    correct;
    hotspot_ok = Counter.Hotspot.holds traces;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>adversary vs %s, n=%d (k=%d)@,\
     bottleneck: p%d with load %d  (bound k=%d: %s)@,\
     distinguished q=p%d, load %d@,\
     average list length L=%.2f@,\
     l_i <= L_i: %b   weights monotone: %b (base %.1f)@,\
     correct: %b   hotspot: %b@]"
    r.counter_name r.n r.k r.bottleneck_proc r.bottleneck_load r.k
    (if r.bound_satisfied then "satisfied" else "VIOLATED")
    r.q r.q_load r.average_list_length r.li_never_exceeds_big_li
    r.weights_monotone r.weight_base r.correct r.hotspot_ok
