let pow b e =
  if e < 0 then invalid_arg "Params.pow: negative exponent";
  let mul_checked x y =
    if x <> 0 && y <> 0 && abs y > max_int / abs x then
      invalid_arg "Params.pow: overflow"
    else x * y
  in
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_checked acc base else acc in
      if e lsr 1 = 0 then acc else go acc (mul_checked base base) (e lsr 1)
  in
  go 1 b e

let n_of_k k =
  if k < 1 then invalid_arg "Params.n_of_k: k must be >= 1";
  pow k (k + 1)

let k_of_n_exact n =
  if n < 1 then None
  else
    let rec search k =
      match n_of_k k with
      | exception Invalid_argument _ -> None
      | nk -> if nk = n then Some k else if nk > n then None else search (k + 1)
    in
    search 1

let k_of_n_floor n =
  if n < 1 then invalid_arg "Params.k_of_n_floor: n must be >= 1";
  let rec search k =
    match n_of_k (k + 1) with
    | exception Invalid_argument _ -> k
    | nk -> if nk <= n then search (k + 1) else k
  in
  search 1

let round_up_n n =
  if n < 1 then invalid_arg "Params.round_up_n: n must be >= 1";
  let rec search k =
    let nk = n_of_k k in
    if nk >= n then nk else search (k + 1)
  in
  search 1

let k_continuous n =
  if n < 1. then invalid_arg "Params.k_continuous: n must be >= 1";
  (* Solve (x+1) ln x = ln n by bisection: the LHS is increasing for
     x >= 1. *)
  let target = log n in
  let f x = (x +. 1.) *. log x in
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if f mid < target then bisect mid hi (iter - 1)
      else bisect lo mid (iter - 1)
  in
  if target <= 0. then 1.
  else
    let rec grow hi = if f hi < target then grow (2. *. hi) else hi in
    bisect 1. (grow 2.) 80

let levels k = k + 2

let inner_nodes k =
  let rec sum acc i = if i > k then acc else sum (acc + pow k i) (i + 1) in
  sum 0 0
