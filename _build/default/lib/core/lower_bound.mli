(** The Lower Bound Theorem (Section 3), as executable checks.

    {b Theorem.} In any algorithm that implements a distributed counter on
    [n] processors, over a sequence of [n] inc operations in which each
    processor increments exactly once, there is a bottleneck processor
    that sends and receives Omega(k) messages, where [k * k^k = n] — i.e.
    [k = Theta(log n / log log n)].

    The proof machinery (communication lists, the exponential weight
    function, the adversarial choice of operation order) lives in
    {!Sim.Comm_list}, {!Weights} and {!Adversary}; this module provides
    the bound itself and predicates that experiments and tests apply to
    measured runs. *)

val k_of_n : int -> int
(** The integer [k] of the theorem: the largest [k >= 1] with
    [k * k^k <= n]. *)

val k_of_n_continuous : float -> float
(** Real-valued [k] for smooth theory curves. *)

val satisfied_by : n:int -> bottleneck_load:int -> bool
(** [satisfied_by ~n ~bottleneck_load] — does a measured run obey the
    bound [m_b >= k]? Every correct counter implementation must satisfy
    this on each-processor-once sequences; it is asserted across the whole
    test suite. (The theorem's constant is 1 in the integer reading
    [m_b >= k]; we check exactly that.) *)

val pp_table : Format.formatter -> int list -> unit
(** Print [n -> k] for a list of network sizes (the theory table of
    experiment E3). *)
