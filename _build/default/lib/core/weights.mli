(** The exponential weight function of the lower-bound proof.

    The proof of the Lower Bound Theorem watches the communication list of
    one distinguished processor [q] (the processor chosen last by the
    adversary) evolve across the operation sequence. For the list before
    the [i]-th operation, with node labels [p_i_1 = q, p_i_2, ...], it
    defines

    {v w_i = sum_j (m(p_i_j) + 1) / base^j v}

    where [m(p)] is the message load of [p] before operation [i]. The Hot
    Spot Lemma forces every operation to deliver a message to some
    processor on the list, whose load therefore rises; positions after the
    first such delivery may be rewritten entirely, but the geometric
    denominators make the guaranteed gain at position [f] dominate the
    possible loss in the tail, provided [base] exceeds the largest load
    plus one. Summing the per-operation gains and comparing against the
    trivial upper bound [w <= (max load + 1) / (base - 1)] yields
    [m_b >= k] with [k * k^k = n].

    This module computes [w] for measured lists and loads, so experiments
    can display the trajectory and verify the proof's monotonicity
    argument numerically on real executions. (The paper's typeset formula
    is partially corrupted in the available scan; the reconstruction above
    preserves the proof's structure — geometric discounting by list
    position with base tied to the bottleneck load — and the experiments
    confirm the claimed behaviour, see EXPERIMENTS.md E3.) *)

type observation = {
  op_index : int;  (** 1-based position in the operation sequence. *)
  list_length : int;  (** [l_i]: arcs in [q]'s communication list. *)
  weight : float;  (** [w_i]. *)
  guaranteed_gain : float;  (** [2 / base^(l_i)] — the proof's step bound. *)
}

val weight :
  base:float -> load:(int -> int) -> Sim.Comm_list.t -> float
(** [weight ~base ~load list] computes [sum_j (load p_j + 1) / base^j]
    over the list's nodes, [j] starting at 1. Requires [base > 1]. *)

val observe :
  base:float ->
  load:(int -> int) ->
  op_index:int ->
  Sim.Comm_list.t ->
  observation

val trajectory_monotone : observation list -> bool
(** Whether the weight never decreased across the recorded trajectory —
    the qualitative content of the proof's per-step inequality. *)

val pp_observation : Format.formatter -> observation -> unit
