(** A priority queue — the paper's second example of a structure the
    lower bound extends to. Backed by the persistent {!Leftist_heap} so
    the root's state can be handed to a successor without copying. *)

type state = Leftist_heap.t

type operation = Insert of int | Extract_min | Find_min

type result = Ack | Min of int option

let name = "priority-queue"

let initial = Leftist_heap.empty

let apply state = function
  | Insert v -> (Leftist_heap.insert state v, Ack)
  | Find_min -> (state, Min (Leftist_heap.find_min state))
  | Extract_min -> (
      match Leftist_heap.extract_min state with
      | None -> (state, Min None)
      | Some (v, rest) -> (rest, Min (Some v)))

let operation_to_string = function
  | Insert v -> Printf.sprintf "insert(%d)" v
  | Extract_min -> "extract-min"
  | Find_min -> "find-min"

let result_to_string = function
  | Ack -> "ack"
  | Min None -> "min(empty)"
  | Min (Some v) -> Printf.sprintf "min(%d)" v
