(** Sequential objects — the paper's generalisation target.

    Section 2: "the argument in the Hot Spot Lemma can be made for the
    family of all distributed data structures in which an operation
    depends on the operation that immediately precedes it. Examples for
    such data structures are a bit that can be accessed and flipped, and
    a priority queue."

    An [OBJECT] is a deterministic sequential specification: a state, an
    operation type, and a transition function returning the new state and
    the value handed back to the caller. {!Retire_spine.Make} turns any
    such object into a distributed implementation with the paper's O(k)
    bottleneck, and {!Central_object.Make} into the Theta(n)-bottleneck
    strawman; the lower bound applies to both (and to anything else),
    which experiment E12 demonstrates. *)

module type OBJECT = sig
  type state

  type operation

  type result

  val name : string
  (** Short identifier ("counter", "flip-bit", ...). *)

  val initial : state

  val apply : state -> operation -> state * result
  (** The sequential specification. Must be pure. *)

  val operation_to_string : operation -> string
  (** For traces and debugging output. *)

  val result_to_string : result -> string
end
