module Make (O : Sequential_object.OBJECT) = struct
  type payload =
    | Request of { origin : int; operation : O.operation }
    | Reply of { result : O.result }

  let label = function
    | Request { operation; _ } -> O.operation_to_string operation
    | Reply _ -> "reply"

  let holder = 1

  type t = {
    net : payload Sim.Network.t;
    n : int;
    mutable object_state : O.state;
    mutable last_result : O.result option;
    mutable operations : int;
    mutable traces_rev : Sim.Trace.t list;
  }

  let supported_n n = max 1 n

  let handle st ~self:_ ~src = function
    | Request { origin; operation } ->
        ignore src;
        let state, result = O.apply st.object_state operation in
        st.object_state <- state;
        Sim.Network.send st.net ~src:holder ~dst:origin (Reply { result })
    | Reply { result } -> st.last_result <- Some result

  let create ?(seed = 42) ?delay ~n () =
    if n < 1 then invalid_arg "Central_object: n must be >= 1";
    let net = Sim.Network.create ~seed ?delay ~label ~n () in
    let st =
      {
        net;
        n;
        object_state = O.initial;
        last_result = None;
        operations = 0;
        traces_rev = [];
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle st ~self ~src payload);
    st

  let n t = t.n

  let state t = t.object_state

  let operations t = t.operations

  let metrics t = Sim.Network.metrics t.net

  let traces t = List.rev t.traces_rev

  let execute t ~origin operation =
    if origin < 1 || origin > t.n then
      invalid_arg "Central_object.execute: origin out of range";
    Sim.Network.begin_op t.net ~origin;
    let result =
      if origin = holder then begin
        let state, result = O.apply t.object_state operation in
        t.object_state <- state;
        result
      end
      else begin
        t.last_result <- None;
        Sim.Network.send t.net ~src:origin ~dst:holder
          (Request { origin; operation });
        ignore (Sim.Network.run_to_quiescence t.net);
        match t.last_result with
        | Some r -> r
        | None -> failwith "Central_object.execute: no reply"
      end
    in
    t.traces_rev <- Sim.Network.end_op t.net :: t.traces_rev;
    t.operations <- t.operations + 1;
    result

  let clone t =
    let net = Sim.Network.clone_quiescent t.net in
    let st =
      {
        net;
        n = t.n;
        object_state = t.object_state;
        last_result = t.last_result;
        operations = t.operations;
        traces_rev = t.traces_rev;
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle st ~self ~src payload);
    st
end
