(** The paper's Section-4 machinery, generalised: a retirement tree
    serving {e any} sequential object.

    The protocol is exactly {!Core.Retire_counter}'s — requests climb an
    arity-k tree to the root, which holds the object state, applies the
    operation, and replies to the origin; inner nodes age by the messages
    they handle and retire to the next processor of their reserved
    interval, so every processor's load stays O(k) over the
    each-processor-once sequence. Section 2's remark makes this more than
    an analogy: for every object whose operations depend on their
    predecessors, the Omega(k) lower bound holds — and this functor
    supplies the matching upper bound, turning the paper's counter into a
    general construction for distributed sequential objects (experiment
    E12 measures flip-bit, max-register and priority-queue).

    Instantiated with {!Counter_obj} the functor reproduces the
    hand-written counter message for message (asserted in the test
    suite). *)

module Make (O : Sequential_object.OBJECT) : sig
  type t

  val create_with :
    ?seed:int -> ?delay:Sim.Delay.t -> Core.Retire_counter.config -> t
  (** Same configuration space as the counter: arity, depth, retirement
      threshold. *)

  val create : ?seed:int -> ?delay:Sim.Delay.t -> n:int -> unit -> t
  (** Paper-shaped tree for [n = k^(k+1)] processors;
      raises [Invalid_argument] otherwise (see {!supported_n}). *)

  val supported_n : int -> int

  val n : t -> int

  val execute : t -> origin:int -> O.operation -> O.result
  (** Perform one operation from processor [origin], running its process
      to quiescence. *)

  val state : t -> O.state
  (** The object's current (root) state. *)

  val operations : t -> int
  (** Operations completed. *)

  val metrics : t -> Sim.Metrics.t

  val traces : t -> Sim.Trace.t list

  val total_retirements : t -> int

  val believed_consistent : t -> bool

  val clone : t -> t
end
