(** "A bit that can be accessed and flipped" — the paper's first example
    of a data structure the lower bound extends to: whether a flip
    returns [true] or [false] depends on every preceding flip, so
    consecutive operations must communicate (Hot Spot Lemma) and the
    Omega(k) bottleneck applies verbatim. *)

type state = bool

type operation = Flip | Read

type result = bool

let name = "flip-bit"

let initial = false

let apply state = function
  | Flip -> (not state, state)  (* returns the pre-flip value *)
  | Read -> (state, state)

let operation_to_string = function Flip -> "flip" | Read -> "read"

let result_to_string = string_of_bool
