lib/structures/priority_queue_obj.ml: Leftist_heap Printf
