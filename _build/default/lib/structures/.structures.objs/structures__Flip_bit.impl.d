lib/structures/flip_bit.ml:
