lib/structures/max_register.ml: Printf
