lib/structures/leftist_heap.ml: List
