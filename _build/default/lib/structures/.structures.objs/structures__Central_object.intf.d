lib/structures/central_object.mli: Sequential_object Sim
