lib/structures/central_object.ml: List Sequential_object Sim
