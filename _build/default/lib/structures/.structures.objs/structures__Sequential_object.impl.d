lib/structures/sequential_object.ml:
