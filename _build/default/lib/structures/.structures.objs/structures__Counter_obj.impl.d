lib/structures/counter_obj.ml:
