lib/structures/retire_spine.mli: Core Sequential_object Sim
