lib/structures/retire_spine.ml: Array Core List Printf Sequential_object Sim
