lib/structures/leftist_heap.mli:
