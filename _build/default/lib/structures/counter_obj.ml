(** The distributed counter as a {!Sequential_object.OBJECT} — the
    paper's structure, re-derived from the generic spine so the test
    suite can confirm the generic machinery reproduces the hand-written
    {!Core.Retire_counter} message for message. *)

type state = int

type operation = Inc

type result = int

let name = "counter"

let initial = 0

let apply state Inc = (state + 1, state)

let operation_to_string Inc = "inc"

let result_to_string = string_of_int
