(** Persistent leftist min-heaps — the purely functional priority queue
    backing {!Priority_queue_obj}.

    A leftist heap is a heap-ordered binary tree in which every node's
    right spine is at most as long as its left spine (the "rank"
    invariant), so melding two heaps walks only right spines: O(log n)
    [insert], [merge] and [extract_min]. Being persistent, states can be
    snapshotted freely — which the retirement spine relies on when the
    root hands its state to a successor. *)

type t

val empty : t

val is_empty : t -> bool

val size : t -> int

val insert : t -> int -> t

val merge : t -> t -> t

val find_min : t -> int option

val extract_min : t -> (int * t) option
(** Minimum and the remaining heap, or [None] when empty. *)

val of_list : int list -> t

val to_sorted_list : t -> int list
(** Ascending; O(n log n). *)

val check_invariants : t -> bool
(** Heap order plus the leftist rank invariant — for the test suite. *)
