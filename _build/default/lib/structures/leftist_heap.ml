type t = Leaf | Node of { rank : int; value : int; left : t; right : t; size : int }

let empty = Leaf

let is_empty t = t = Leaf

let rank = function Leaf -> 0 | Node { rank; _ } -> rank

let size = function Leaf -> 0 | Node { size; _ } -> size

(* Join a value with two heaps, putting the shorter right spine on the
   right. *)
let make value a b =
  let ra = rank a and rb = rank b in
  let size = 1 + size a + size b in
  if ra >= rb then Node { rank = rb + 1; value; left = a; right = b; size }
  else Node { rank = ra + 1; value; left = b; right = a; size }

let rec merge a b =
  match (a, b) with
  | Leaf, t | t, Leaf -> t
  | Node na, Node nb ->
      if na.value <= nb.value then make na.value na.left (merge na.right b)
      else make nb.value nb.left (merge a nb.right)

let insert t v = merge t (Node { rank = 1; value = v; left = Leaf; right = Leaf; size = 1 })

let find_min = function Leaf -> None | Node { value; _ } -> Some value

let extract_min = function
  | Leaf -> None
  | Node { value; left; right; _ } -> Some (value, merge left right)

let of_list l = List.fold_left insert empty l

let to_sorted_list t =
  let rec drain acc t =
    match extract_min t with
    | None -> List.rev acc
    | Some (v, rest) -> drain (v :: acc) rest
  in
  drain [] t

let rec check_invariants = function
  | Leaf -> true
  | Node { rank = r; value; left; right; size = s } ->
      let heap_ordered = function
        | Leaf -> true
        | Node { value = child; _ } -> value <= child
      in
      r = rank right + 1
      && rank left >= rank right
      && s = 1 + size left + size right
      && heap_ordered left && heap_ordered right
      && check_invariants left && check_invariants right
