module Make (O : Sequential_object.OBJECT) = struct
  type dest = To_node of int | To_leaf of int

  type payload =
    | Request of { origin : int; node : int; operation : O.operation }
    | Reply of { result : O.result }
    | Handoff of { node : int; piece : piece }
    | New_worker of { about : int; worker : int; dest : dest }

  and piece =
    | Parent_id of int
    | Child_id of int * int
    | Object_state  (* the root ships its state to the successor *)

  let label = function
    | Request { operation; _ } -> O.operation_to_string operation
    | Reply _ -> "reply"
    | Handoff _ -> "handoff"
    | New_worker _ -> "new-worker"

  type node_state = {
    flat : int;
    level : int;
    mutable worker : int;
    mutable age : int;
    mutable retirements : int;
    mutable believed_parent_worker : int;
    believed_child_workers : int array;
    interval_hi : int;
  }

  type t = {
    cfg : Core.Retire_counter.config;
    tree : Core.Tree.t;
    net : payload Sim.Network.t;
    nodes : node_state array;
    leaf_believed_parent : int array;
    mutable object_state : O.state;
    mutable last_result : O.result option;
    mutable operations : int;
    mutable overflow_next : int;
    mutable traces_rev : Sim.Trace.t list;
    mutable total_retirements : int;
  }

  let supported_n n = Core.Params.round_up_n (max 1 n)

  let make_nodes tree =
    Array.init (Core.Tree.inner_count tree) (fun flat ->
        let level = Core.Tree.level_of tree flat in
        let worker, interval_hi =
          if flat = Core.Tree.root then (Core.Ids.root_initial_worker, max_int)
          else
            let lo, hi = Core.Ids.interval_of_flat tree flat in
            (lo, hi)
        in
        let believed_parent_worker =
          match Core.Tree.parent tree flat with
          | None -> 0
          | Some p ->
              if p = Core.Tree.root then Core.Ids.root_initial_worker
              else fst (Core.Ids.interval_of_flat tree p)
        in
        let believed_child_workers =
          if level = Core.Tree.depth tree then
            Array.of_list (Core.Tree.leaf_children tree flat)
          else
            Array.of_list
              (List.map
                 (fun c -> fst (Core.Ids.interval_of_flat tree c))
                 (Core.Tree.children tree flat))
        in
        {
          flat;
          level;
          worker;
          age = 0;
          retirements = 0;
          believed_parent_worker;
          believed_child_workers;
          interval_hi;
        })

  let rec handle st ~self ~src:_ payload =
    match payload with
    | Reply { result } -> st.last_result <- Some result
    | Handoff _ -> ()
    | Request { origin; node; operation } ->
        let nd = st.nodes.(node) in
        if nd.worker <> self then
          Sim.Network.send st.net ~src:self ~dst:nd.worker payload
        else if nd.level = 0 then begin
          let state, result = O.apply st.object_state operation in
          st.object_state <- state;
          Sim.Network.send st.net ~src:self ~dst:origin (Reply { result });
          nd.age <- nd.age + 2;
          maybe_retire st nd
        end
        else begin
          let parent =
            match Core.Tree.parent st.tree node with
            | Some p -> p
            | None -> assert false
          in
          Sim.Network.send st.net ~src:self ~dst:nd.believed_parent_worker
            (Request { origin; node = parent; operation });
          nd.age <- nd.age + 2;
          maybe_retire st nd
        end
    | New_worker { about; worker; dest } -> (
        match dest with
        | To_leaf leaf -> st.leaf_believed_parent.(leaf - 1) <- worker
        | To_node node ->
            let nd = st.nodes.(node) in
            if nd.worker <> self then
              Sim.Network.send st.net ~src:self ~dst:nd.worker payload
            else begin
              (if nd.believed_parent_worker <> 0 then
                 match Core.Tree.parent st.tree node with
                 | Some p when p = about -> nd.believed_parent_worker <- worker
                 | _ -> ());
              (if nd.level < Core.Tree.depth st.tree then
                 List.iteri
                   (fun slot c ->
                     if c = about then nd.believed_child_workers.(slot) <- worker)
                   (Core.Tree.children st.tree node));
              nd.age <- nd.age + 1;
              maybe_retire st nd
            end)

  and maybe_retire st nd =
    if nd.age >= st.cfg.Core.Retire_counter.retire_threshold then retire st nd

  and retire st nd =
    let old_worker = nd.worker in
    let successor =
      if nd.flat = Core.Tree.root then
        if old_worker + 1 <= Core.Tree.n st.tree then old_worker + 1
        else begin
          let v = st.overflow_next in
          st.overflow_next <- v + 1;
          v
        end
      else if old_worker + 1 <= nd.interval_hi then old_worker + 1
      else begin
        let v = st.overflow_next in
        st.overflow_next <- v + 1;
        v
      end
    in
    nd.worker <- successor;
    nd.age <- 0;
    nd.retirements <- nd.retirements + 1;
    st.total_retirements <- st.total_retirements + 1;
    Array.iteri
      (fun slot child_worker ->
        Sim.Network.send st.net ~src:old_worker ~dst:successor
          (Handoff { node = nd.flat; piece = Child_id (slot, child_worker) }))
      nd.believed_child_workers;
    if nd.flat = Core.Tree.root then
      Sim.Network.send st.net ~src:old_worker ~dst:successor
        (Handoff { node = nd.flat; piece = Object_state })
    else
      Sim.Network.send st.net ~src:old_worker ~dst:successor
        (Handoff { node = nd.flat; piece = Parent_id nd.believed_parent_worker });
    (if nd.flat <> Core.Tree.root then
       match Core.Tree.parent st.tree nd.flat with
       | Some p ->
           Sim.Network.send st.net ~src:old_worker
             ~dst:nd.believed_parent_worker
             (New_worker { about = nd.flat; worker = successor; dest = To_node p })
       | None -> assert false);
    if nd.level = Core.Tree.depth st.tree then
      List.iter
        (fun leaf ->
          Sim.Network.send st.net ~src:old_worker ~dst:leaf
            (New_worker { about = nd.flat; worker = successor; dest = To_leaf leaf }))
        (Core.Tree.leaf_children st.tree nd.flat)
    else
      List.iteri
        (fun slot c ->
          Sim.Network.send st.net ~src:old_worker
            ~dst:nd.believed_child_workers.(slot)
            (New_worker { about = nd.flat; worker = successor; dest = To_node c }))
        (Core.Tree.children st.tree nd.flat)

  let create_with ?(seed = 42) ?delay (cfg : Core.Retire_counter.config) =
    let arity = cfg.Core.Retire_counter.arity in
    if cfg.Core.Retire_counter.retire_threshold < arity + 2 then
      invalid_arg "Retire_spine: retire_threshold must be >= arity + 2";
    let tree =
      Core.Tree.create ~arity ~depth:cfg.Core.Retire_counter.depth
    in
    let n = Core.Tree.n tree in
    let net = Sim.Network.create ~seed ?delay ~label ~n () in
    let nodes = make_nodes tree in
    let leaf_believed_parent =
      Array.init n (fun i ->
          nodes.(Core.Tree.leaf_parent tree ~leaf:(i + 1)).worker)
    in
    let st =
      {
        cfg;
        tree;
        net;
        nodes;
        leaf_believed_parent;
        object_state = O.initial;
        last_result = None;
        operations = 0;
        overflow_next = n + 1;
        traces_rev = [];
        total_retirements = 0;
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle st ~self ~src payload);
    st

  let create ?seed ?delay ~n () =
    match Core.Params.k_of_n_exact n with
    | Some k ->
        create_with ?seed ?delay (Core.Retire_counter.paper_config ~k)
    | None ->
        invalid_arg
          (Printf.sprintf
             "Retire_spine.create: n = %d is not of the form k^(k+1)" n)

  let n t = Core.Tree.n t.tree

  let state t = t.object_state

  let operations t = t.operations

  let metrics t = Sim.Network.metrics t.net

  let traces t = List.rev t.traces_rev

  let total_retirements t = t.total_retirements

  let believed_consistent t =
    let ok = ref true in
    Array.iter
      (fun nd ->
        (match Core.Tree.parent t.tree nd.flat with
        | None -> ()
        | Some p ->
            if nd.believed_parent_worker <> t.nodes.(p).worker then ok := false);
        if nd.level < Core.Tree.depth t.tree then
          List.iteri
            (fun slot c ->
              if nd.believed_child_workers.(slot) <> t.nodes.(c).worker then
                ok := false)
            (Core.Tree.children t.tree nd.flat))
      t.nodes;
    Array.iteri
      (fun i believed ->
        let p = Core.Tree.leaf_parent t.tree ~leaf:(i + 1) in
        if believed <> t.nodes.(p).worker then ok := false)
      t.leaf_believed_parent;
    !ok

  let execute t ~origin operation =
    if origin < 1 || origin > n t then
      invalid_arg "Retire_spine.execute: origin out of range";
    Sim.Network.begin_op t.net ~origin;
    t.last_result <- None;
    let parent = Core.Tree.leaf_parent t.tree ~leaf:origin in
    Sim.Network.send t.net ~src:origin
      ~dst:t.leaf_believed_parent.(origin - 1)
      (Request { origin; node = parent; operation });
    ignore (Sim.Network.run_to_quiescence t.net);
    let trace = Sim.Network.end_op t.net in
    t.traces_rev <- trace :: t.traces_rev;
    t.operations <- t.operations + 1;
    match t.last_result with
    | Some r -> r
    | None -> failwith "Retire_spine.execute: operation returned no result"

  let clone t =
    let net = Sim.Network.clone_quiescent t.net in
    let st =
      {
        cfg = t.cfg;
        tree = t.tree;
        net;
        nodes =
          Array.map
            (fun nd ->
              { nd with believed_child_workers = Array.copy nd.believed_child_workers })
            t.nodes;
        leaf_believed_parent = Array.copy t.leaf_believed_parent;
        object_state = t.object_state;
        last_result = t.last_result;
        operations = t.operations;
        overflow_next = t.overflow_next;
        traces_rev = t.traces_rev;
        total_retirements = t.total_retirements;
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle st ~self ~src payload);
    st
end
