(** A max-register: [Write_max v] folds [max] into the state and returns
    the previous maximum; [Read] returns the current one. Another member
    of the "operation depends on its predecessor" family (a write's
    return value reveals the history), included because max-registers are
    the classical foil to counters in the shared-memory literature. *)

type state = int

type operation = Write_max of int | Read

type result = int

let name = "max-register"

let initial = min_int

let apply state = function
  | Write_max v -> (max state v, state)
  | Read -> (state, state)

let operation_to_string = function
  | Write_max v -> Printf.sprintf "write-max(%d)" v
  | Read -> "read"

let result_to_string v = if v = min_int then "-inf" else string_of_int v
