(** The strawman server for any sequential object: processor 1 holds the
    state, everyone else sends the operation and receives the result.
    Message-optimal (2 per remote operation, 0 for the holder), bottleneck
    Theta(n) — the baseline experiment E12 compares the generic
    {!Retire_spine} against. *)

module Make (O : Sequential_object.OBJECT) : sig
  type t

  val create : ?seed:int -> ?delay:Sim.Delay.t -> n:int -> unit -> t

  val supported_n : int -> int

  val n : t -> int

  val execute : t -> origin:int -> O.operation -> O.result

  val state : t -> O.state

  val operations : t -> int

  val metrics : t -> Sim.Metrics.t

  val traces : t -> Sim.Trace.t list

  val clone : t -> t
end
