type link = To_balancer of int | To_output of int

type balancer = { id : int; out_top : link; out_bot : link }

type network = { width : int; entry : link array; balancers : balancer array }

let is_power_of_two w = w >= 1 && w land (w - 1) = 0

(* Builder with a growing balancer store. Networks are built back to
   front: a sub-network is given the links its outputs feed, and returns
   the links its inputs should be wired to. *)
type builder = { mutable store : balancer list; mutable next_id : int }

let alloc b ~out_top ~out_bot =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.store <- { id; out_top; out_bot } :: b.store;
  id

(* Merger[w]: merges two bitonic halves. [outputs] has length w. *)
let rec merger b w outputs =
  if w = 1 then outputs
  else if w = 2 then begin
    let id = alloc b ~out_top:outputs.(0) ~out_bot:outputs.(1) in
    [| To_balancer id; To_balancer id |]
  end
  else begin
    let k = w / 2 in
    (* Final layer: balancer o feeds output wires 2o (top) and 2o+1
       (bottom). *)
    let final =
      Array.init k (fun o ->
          alloc b ~out_top:outputs.(2 * o) ~out_bot:outputs.((2 * o) + 1))
    in
    let half_out = Array.init k (fun o -> To_balancer final.(o)) in
    let m_even = merger b k half_out in
    let m_odd = merger b k half_out in
    (* Input wire i < k (the first step sequence) goes to half[i mod 2];
       input wire i >= k (the second sequence) goes to half[1 - (i mod 2)]
       — AHS's even/odd split. In both cases the sub-merger wire is i/2,
       which places the first sequence on the sub-merger's lower half and
       the second sequence on its upper half, as the recursion requires. *)
    Array.init w (fun i ->
        if i < k then if i mod 2 = 0 then m_even.(i / 2) else m_odd.(i / 2)
        else if i mod 2 = 0 then m_odd.(i / 2)
        else m_even.(i / 2))
  end

let rec bitonic b w outputs =
  if w <= 2 then merger b w outputs
  else begin
    let k = w / 2 in
    let m_in = merger b w outputs in
    let top_in = bitonic b k (Array.sub m_in 0 k) in
    let bot_in = bitonic b k (Array.sub m_in k k) in
    Array.append top_in bot_in
  end

let build ~width =
  if not (is_power_of_two width) then
    invalid_arg "Bitonic.build: width must be a power of two";
  let b = { store = []; next_id = 0 } in
  let outputs = Array.init width (fun i -> To_output i) in
  let entry = bitonic b width outputs in
  let balancers = Array.make b.next_id { id = 0; out_top = To_output 0; out_bot = To_output 0 } in
  List.iter (fun bal -> balancers.(bal.id) <- bal) b.store;
  { width; entry; balancers }

let depth net =
  (* Longest path from any entry link to an output, in balancers. The
     graph is acyclic, so memoised depth-first search terminates. *)
  let memo = Array.make (Array.length net.balancers) (-1) in
  let rec dist = function
    | To_output _ -> 0
    | To_balancer id ->
        if memo.(id) >= 0 then memo.(id)
        else begin
          let bal = net.balancers.(id) in
          let d = 1 + max (dist bal.out_top) (dist bal.out_bot) in
          memo.(id) <- d;
          d
        end
  in
  Array.fold_left (fun acc l -> max acc (dist l)) 0 net.entry

type state = { toggles : bool array; counts : int array }

let fresh_state net =
  {
    toggles = Array.make (Array.length net.balancers) true;
    counts = Array.make net.width 0;
  }

let push net st ~wire =
  if wire < 0 || wire >= net.width then invalid_arg "Bitonic.push: bad wire";
  let rec go = function
    | To_output o ->
        st.counts.(o) <- st.counts.(o) + 1;
        o
    | To_balancer id ->
        let bal = net.balancers.(id) in
        let top = st.toggles.(id) in
        st.toggles.(id) <- not top;
        go (if top then bal.out_top else bal.out_bot)
  in
  go net.entry.(wire)

let output_counts st = Array.copy st.counts

let step_property counts =
  let w = Array.length counts in
  let ok = ref true in
  for i = 0 to w - 1 do
    for j = i + 1 to w - 1 do
      let d = counts.(i) - counts.(j) in
      if d < 0 || d > 1 then ok := false
    done
  done;
  !ok
