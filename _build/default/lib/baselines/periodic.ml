let is_power_of_two w = w >= 1 && w land (w - 1) = 0

let log2 w =
  let rec go acc w = if w <= 1 then acc else go (acc + 1) (w / 2) in
  go 0 w

(* Layers of one Block[w] on the wire range [lo, lo+w): the reflector
   layer followed, positionally merged, by the layers of the two
   half-blocks. Each layer is a list of disjoint wire pairs. *)
let rec block_layers lo w =
  if w < 2 then []
  else begin
    let reflector = List.init (w / 2) (fun i -> (lo + i, lo + w - 1 - i)) in
    let top = block_layers lo (w / 2) in
    let bottom = block_layers (lo + (w / 2)) (w / 2) in
    let rec zip a b =
      match (a, b) with
      | [], [] -> []
      | x :: xs, y :: ys -> (x @ y) :: zip xs ys
      | x :: xs, [] -> x :: zip xs []
      | [], y :: ys -> y :: zip [] ys
    in
    reflector :: zip top bottom
  end

let layers width =
  List.concat (List.init (max 1 (log2 width)) (fun _ -> block_layers 0 width))

let depth ~width = if width < 2 then 0 else log2 width * log2 width

let build ~width =
  if not (is_power_of_two width) then
    invalid_arg "Periodic.build: width must be a power of two";
  let store = ref [] in
  let next_id = ref 0 in
  let alloc ~out_top ~out_bot =
    let id = !next_id in
    incr next_id;
    store := { Bitonic.id; out_top; out_bot } :: !store;
    id
  in
  (* Wire the layers back to front: each layer's balancers point at the
     current continuation of their two wires. *)
  let entry =
    List.fold_left
      (fun outputs layer ->
        let next = Array.copy outputs in
        List.iter
          (fun (a, b) ->
            let id = alloc ~out_top:outputs.(a) ~out_bot:outputs.(b) in
            next.(a) <- Bitonic.To_balancer id;
            next.(b) <- Bitonic.To_balancer id)
          layer;
        next)
      (Array.init width (fun i -> Bitonic.To_output i))
      (List.rev (layers width))
  in
  let balancers =
    Array.make (max 1 !next_id)
      { Bitonic.id = 0; out_top = Bitonic.To_output 0; out_bot = Bitonic.To_output 0 }
  in
  List.iter (fun b -> balancers.(b.Bitonic.id) <- b) !store;
  { Bitonic.width; entry; balancers = Array.sub balancers 0 !next_id }
