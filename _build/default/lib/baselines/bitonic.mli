(** Pure construction of the bitonic counting network (Aspnes, Herlihy &
    Shavit, STOC 1991 — cited by the paper as the origin of counting
    networks).

    A balancer is a two-input/two-output toggle: tokens leave on its top
    and bottom output wires alternately. [Bitonic\[w\]] consists of two
    [Bitonic\[w/2\]] networks feeding a [Merger\[w\]]; [Merger\[w\]]
    splits its inputs between two half-width mergers (first-half evens and
    second-half odds to one, the rest to the other) whose outputs meet a
    final layer of balancers. Its depth is [lg w * (lg w + 1) / 2].

    The defining property is the {b step property}: in any quiescent
    state, the token counts [y_0 >= y_1 >= ... >= y_{w-1}] on the output
    wires satisfy [0 <= y_i - y_j <= 1] for [i < j]. The test suite
    validates it here (pure token pushing), and the simulator wrapper
    ({!Counting_network}) revalidates it on message-passing executions.

    This module is pure graph construction plus a reference token-pusher;
    it knows nothing about processors or messages. *)

type link =
  | To_balancer of int  (** Next stop: balancer with this id. *)
  | To_output of int  (** Exit on this output wire. *)

type balancer = { id : int; out_top : link; out_bot : link }

type network = {
  width : int;
  entry : link array;  (** First stop for a token entering on each wire. *)
  balancers : balancer array;
}

val build : width:int -> network
(** Requires [width] a power of two, [>= 1]. [width = 1] is the empty
    network (every token exits wire 0 immediately). *)

val depth : network -> int
(** Longest entry-to-output path measured in balancers;
    [lg w * (lg w + 1) / 2]. *)

(** Reference execution: toggle states outside the simulator. *)
type state

val fresh_state : network -> state

val push : network -> state -> wire:int -> int
(** Send one token in on [wire]; returns its output wire. *)

val output_counts : state -> int array

val step_property : int array -> bool
(** [step_property counts] — the AHS step property over output counts. *)
