(** The periodic counting network — AHS's second construction.

    [Periodic\[w\]] is [lg w] identical [Block\[w\]] networks in series.
    [Block\[w\]] starts with a {e reflector} layer (a balancer between
    wire [i] and wire [w-1-i] for each [i < w/2]) and recurses with two
    [Block\[w/2]] networks on the halves, giving depth [lg w] per block
    and [lg^2 w] overall — the same depth as the bitonic network but a
    strictly repeating structure, which is what made it attractive for
    hardware.

    The construction reuses {!Bitonic}'s graph representation, so the
    reference token-pusher, the step-property validator and the
    message-passing wrapper ({!Counting_network.create_custom}) all work
    on it unchanged. The test suite validates the step property at every
    quiescent prefix, exactly as for the bitonic network. *)

val build : width:int -> Bitonic.network
(** Requires [width] a power of two, [>= 1]. *)

val depth : width:int -> int
(** [lg w * lg w] for [w >= 2] (0 for width 1). *)
