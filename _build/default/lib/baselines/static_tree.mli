(** The paper's communication tree {e without} retirement — the ablation
    that isolates the retirement idea.

    Identical topology and routing to {!Core.Retire_counter} (arity [k],
    depth [k], an [inc] climbs from leaf to root and the root replies),
    but inner nodes keep their initial processors forever. The root
    processor then handles 3 messages per operation, for a Theta(n)
    bottleneck — asymptotically as bad as the {!Central} counter, despite
    the tree: distribution of the {e structure} is worthless without
    distribution of the {e work}, which is the paper's core observation.

    Implemented as a [Retire_counter] with an infinite retirement
    threshold, so any behavioural difference between the two counters is
    attributable to retirement alone. *)

include Counter.Counter_intf.S
