type payload =
  | Read_req
  | Read_rep of { value : int; version : int }
  | Write_req of { value : int; version : int }
  | Write_ack

let label = function
  | Read_req -> "read"
  | Read_rep _ -> "read-rep"
  | Write_req _ -> "write"
  | Write_ack -> "ack"

(* The in-flight operation of the (sequential) client. *)
type op_phase =
  | Idle
  | Reading of {
      origin : int;
      members : int list;
      mutable awaiting : int;
      mutable best_value : int;
      mutable best_version : int;
    }
  | Writing of { mutable awaiting : int; result : int }

module Make (Q : Quorum.Quorum_intf.S) = struct
  type t = {
    net : payload Sim.Network.t;
    n : int;
    system : Q.t;
    values : int array;  (* registers, index = processor *)
    versions : int array;
    local_ops : int array;
        (* per-processor operation counts: quorum choice must depend only
           on state the origin knows locally, or the process of a
           hypothetical operation would change when unrelated processors
           act — violating the prefix-stability the lower-bound proof
           relies on (and which any real distributed client satisfies) *)
    mutable phase : op_phase;
    mutable ops : int;
    mutable last_returned : int;
    mutable traces_rev : Sim.Trace.t list;
  }

  let name = "quorum-" ^ Q.name

  let describe = "read-max/write-back counter over " ^ Q.describe

  let supported_n = Q.supported_n

  let quorum_size t = Q.quorum_size t.system

  (* Apply a write locally at a member. *)
  let store t member ~value ~version =
    if version > t.versions.(member) then begin
      t.versions.(member) <- version;
      t.values.(member) <- value
    end

  let start_write t ~origin ~members ~value ~version =
    (* [value] is the new counter value being installed; the operation
       returns [value - 1]. *)
    let remote = List.filter (fun m -> m <> origin) members in
    store t origin ~value ~version;
    let w = Writing { awaiting = List.length remote; result = value - 1 } in
    t.phase <- w;
    List.iter
      (fun m ->
        Sim.Network.send t.net ~src:origin ~dst:m (Write_req { value; version }))
      remote;
    if remote = [] then t.last_returned <- value - 1

  let handle t ~self ~src = function
    | Read_req ->
        Sim.Network.send t.net ~src:self ~dst:src
          (Read_rep { value = t.values.(self); version = t.versions.(self) })
    | Write_req { value; version } ->
        store t self ~value ~version;
        Sim.Network.send t.net ~src:self ~dst:src Write_ack
    | Read_rep { value; version } -> (
        match t.phase with
        | Reading r ->
            if version > r.best_version then begin
              r.best_version <- version;
              r.best_value <- value
            end;
            r.awaiting <- r.awaiting - 1;
            if r.awaiting = 0 then
              start_write t ~origin:r.origin ~members:r.members
                ~value:(r.best_value + 1) ~version:(r.best_version + 1)
        | Idle | Writing _ ->
            failwith "Quorum_counter: unexpected read reply")
    | Write_ack -> (
        match t.phase with
        | Writing w ->
            w.awaiting <- w.awaiting - 1;
            if w.awaiting = 0 then begin
              t.phase <- Idle;
              t.last_returned <- w.result
            end
        | Idle | Reading _ ->
            failwith "Quorum_counter: unexpected write ack")

  let create ?(seed = 42) ?delay ~n () =
    if Q.supported_n n <> n then
      invalid_arg ("Quorum_counter: unsupported n for " ^ Q.name);
    let net = Sim.Network.create ~seed ?delay ~label ~n () in
    let t =
      {
        net;
        n;
        system = Q.create ~n;
        values = Array.make (n + 1) 0;
        versions = Array.make (n + 1) 0;
        local_ops = Array.make (n + 1) 0;
        phase = Idle;
        ops = 0;
        last_returned = -1;
        traces_rev = [];
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle t ~self ~src payload);
    t

  let n t = t.n

  let value t = t.ops

  let metrics t = Sim.Network.metrics t.net

  let traces t = List.rev t.traces_rev

  let inc t ~origin =
    if origin < 1 || origin > t.n then
      invalid_arg "Quorum_counter.inc: origin out of range";
    Sim.Network.begin_op t.net ~origin;
    t.last_returned <- -1;
    (* Slot from origin-local state only: first access by origin [p] uses
       slot [p-1] (spreading the each-once sequence across the full
       rotation), later accesses jump by [n]. *)
    let slot = origin - 1 + (t.n * t.local_ops.(origin)) in
    t.local_ops.(origin) <- t.local_ops.(origin) + 1;
    let members = Q.quorum t.system ~slot in
    let remote = List.filter (fun m -> m <> origin) members in
    (* Local read of own register, if a member. *)
    let local_version = if List.mem origin members then t.versions.(origin) else -1 in
    let local_value = if List.mem origin members then t.values.(origin) else 0 in
    let r =
      Reading
        {
          origin;
          members;
          awaiting = List.length remote;
          best_value = local_value;
          best_version = local_version;
        }
    in
    t.phase <- r;
    List.iter
      (fun m -> Sim.Network.send t.net ~src:origin ~dst:m Read_req)
      remote;
    (if remote = [] then
       (* Origin alone forms the quorum: purely local operation. *)
       start_write t ~origin ~members ~value:(local_value + 1)
         ~version:(local_version + 1));
    ignore (Sim.Network.run_to_quiescence t.net);
    let trace = Sim.Network.end_op t.net in
    t.traces_rev <- trace :: t.traces_rev;
    t.ops <- t.ops + 1;
    if t.last_returned < 0 then
      failwith "Quorum_counter.inc: operation did not complete";
    t.last_returned

  let clone t =
    let net = Sim.Network.clone_quiescent t.net in
    let st =
      {
        net;
        n = t.n;
        system = t.system;
        values = Array.copy t.values;
        versions = Array.copy t.versions;
        local_ops = Array.copy t.local_ops;
        phase = Idle;
        ops = t.ops;
        last_returned = t.last_returned;
        traces_rev = t.traces_rev;
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle st ~self ~src payload);
    st
end

module Over_majority = Make (Quorum.Majority)
module Over_grid = Make (Quorum.Grid)
module Over_tree = Make (Quorum.Tree_quorum)
module Over_wall = Make (Quorum.Crumbling_wall)
module Over_plane = Make (Quorum.Projective_plane)
