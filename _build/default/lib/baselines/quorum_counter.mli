(** A distributed counter layered over a quorum system — the "Dynamic
    Quorum System" relative the paper mentions, in its simplest static
    form.

    Every processor keeps a versioned register [(value, version)]. An
    [inc] by processor [p] for the [s]-th operation:

    + {b read phase}: [p] asks every member of the strategy's quorum for
      slot [s] for its register and takes the pair with the highest
      version — since every earlier write covered a quorum, and quorums
      pairwise intersect, the highest version seen is the current counter
      value [v];
    + {b write phase}: [p] writes [(v+1, version+1)] back to the same
      quorum and waits for acknowledgements, then returns [v].

    Messages per operation: about [4 |Q|] ([p]'s own membership is served
    locally), so load follows the quorum system's geometry: majorities
    cost Theta(n) per processor over the each-once sequence, grids
    Theta(sqrt n), tree quorums pile Theta(n) onto the tree root — all
    far above the paper's O(k), which is the point of experiment E5/E8.

    The functor takes the quorum system; {!Over_majority}, {!Over_grid},
    {!Over_tree} and {!Over_wall} are the instantiations used by the
    registry. *)

module Make (Q : Quorum.Quorum_intf.S) : sig
  include Counter.Counter_intf.S

  val quorum_size : t -> int
end

module Over_majority : Counter.Counter_intf.S

module Over_grid : Counter.Counter_intf.S

module Over_tree : Counter.Counter_intf.S

module Over_wall : Counter.Counter_intf.S

module Over_plane : Counter.Counter_intf.S
