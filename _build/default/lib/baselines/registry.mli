(** Central catalogue of every distributed-counter implementation in the
    repository, for the CLI, experiments and tests. *)

val retire_tree : Counter.Counter_intf.counter
(** The paper's counter ({!Core.Retire_counter}). *)

val retire_tree_local : Counter.Counter_intf.counter
(** The strictly processor-local variant ({!Core.Retire_local}). *)

val central : Counter.Counter_intf.counter

val static_tree : Counter.Counter_intf.counter

val combining : Counter.Counter_intf.counter

val counting_network : Counter.Counter_intf.counter

val periodic_network : Counter.Counter_intf.counter

val diffracting : Counter.Counter_intf.counter

val quorum_majority : Counter.Counter_intf.counter

val quorum_grid : Counter.Counter_intf.counter

val quorum_tree : Counter.Counter_intf.counter

val quorum_wall : Counter.Counter_intf.counter

val quorum_plane : Counter.Counter_intf.counter

val all : Counter.Counter_intf.counter list
(** Every counter, the paper's first. *)

val find : string -> Counter.Counter_intf.counter option
(** Look up by [name]. *)

val names : unit -> string list
