lib/baselines/central.mli: Counter
