lib/baselines/central.ml: List Sim
