lib/baselines/periodic.ml: Array Bitonic List
