lib/baselines/static_tree.mli: Counter
