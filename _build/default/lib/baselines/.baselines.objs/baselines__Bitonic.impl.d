lib/baselines/bitonic.ml: Array List
