lib/baselines/periodic.mli: Bitonic
