lib/baselines/combining_tree.ml: Array List Queue Sim
