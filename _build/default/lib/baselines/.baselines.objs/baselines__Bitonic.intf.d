lib/baselines/bitonic.mli:
