lib/baselines/counting_network.mli: Bitonic Counter Sim
