lib/baselines/periodic_counter.ml: Counting_network Periodic
