lib/baselines/registry.mli: Counter
