lib/baselines/registry.ml: Central Combining_tree Core Counter Counting_network Diffracting_tree List Periodic_counter Quorum_counter Static_tree
