lib/baselines/diffracting_tree.mli: Counter Sim
