lib/baselines/quorum_counter.mli: Counter Quorum
