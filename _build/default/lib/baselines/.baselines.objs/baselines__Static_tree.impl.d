lib/baselines/static_tree.ml: Core Printf
