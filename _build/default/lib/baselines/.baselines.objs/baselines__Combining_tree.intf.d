lib/baselines/combining_tree.mli: Counter Sim
