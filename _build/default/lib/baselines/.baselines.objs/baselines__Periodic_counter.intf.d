lib/baselines/periodic_counter.mli: Counter Sim
