lib/baselines/counting_network.ml: Array Bitonic Counter Hashtbl List Sim
