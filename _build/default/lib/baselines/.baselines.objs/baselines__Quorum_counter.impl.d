lib/baselines/quorum_counter.ml: Array List Quorum Sim
