lib/baselines/diffracting_tree.ml: Array Bitonic Counter Hashtbl List Sim
