(* dcount — command-line driver for the distributed-counting testbed.

   Subcommands:
     list        available counters and quorum systems
     run         execute a schedule against one counter, print the report
     load        open-loop concurrent load run with linearizability verdicts
     chaos       sweep crash/drop rates, report completion and load shift
     compare     bottleneck comparison table across counters and sizes
     adversary   run the lower-bound adversary against a counter
     trace       print the process DAG of the first operations
     quorum      load profile and probe complexity of a quorum system
     bound       print n -> k of the Lower Bound Theorem *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions *)

let counter_conv =
  let parse s =
    match Baselines.Registry.find s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown counter %S (try: %s)" s
               (String.concat ", " (Baselines.Registry.names ()))))
  in
  let print ppf (module C : Counter.Counter_intf.S) =
    Format.pp_print_string ppf C.name
  in
  Arg.conv (parse, print)

let delay_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Sim.Delay.of_string s) in
  Arg.conv (parse, Sim.Delay.pp)

let fault_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Sim.Fault.of_string s) in
  Arg.conv (parse, Sim.Fault.pp)

let faults_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault plan: clauses crash:P@T, crash:P@#D, \
           recover:P@T, drop:F, drop:S,D:F, dup:F, part:LO-HI@T0,T1, \
           the store-RPC clauses sdrop:F, sdup:F, sslow:F:D, sout:T0,T1 \
           and the Byzantine clauses byz:P@T, byz:P@#D, byzval:P:RULE \
           (RULE: replay-stale, off-by-K, max-int), byzeq:P, joined with \
           '/', or $(b,none). Example: \
           crash:3@1.5/recover:3@40/drop:0.01. Payload-rewriting plans \
           (byzval:/byzeq:) need a counter with a corruption hook \
           (sync-count, sync-no-threshold).")

(* Payload-rewriting plans need a counter that installs the corruption
   hook; on any other counter Network.create would raise. Turn that into
   a usage error up front. *)
let byz_capable = [ "sync-count"; "sync-no-threshold" ]

let guard_byz_plan cmd name faults =
  match faults with
  | Some f
    when f.Sim.Fault.byz_rules <> [] && not (List.mem name byz_capable) ->
      Format.eprintf
        "dcount %s: fault plan rewrites payloads (byzval:/byzeq:) but \
         counter %s has no corruption hook (byz-capable: %s)@."
        cmd name
        (String.concat ", " byz_capable);
      exit 2
  | _ -> ()

let counter_arg =
  Arg.(
    value
    & opt counter_conv Baselines.Registry.retire_tree
    & info [ "c"; "counter" ] ~docv:"NAME"
        ~doc:"Counter implementation (see $(b,dcount list)).")

let n_arg =
  Arg.(
    value & opt int 81
    & info [ "n" ] ~docv:"N"
        ~doc:
          "Number of processors; rounded up to the nearest size the \
           counter supports.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let delay_arg =
  Arg.(
    value
    & opt (some delay_conv) None
    & info [ "delay" ] ~docv:"MODEL"
        ~doc:
          "Delivery latency model: constant:D, uniform:LO,HI, exp:MEAN or \
           jitter:BASE. Default constant:1.")

let quorum_systems : (string * Quorum.Quorum_intf.system) list =
  [
    ("majority", (module Quorum.Majority));
    ("grid", (module Quorum.Grid));
    ("tree", (module Quorum.Tree_quorum));
    ("crumbling-wall", (module Quorum.Crumbling_wall));
    ("projective-plane", (module Quorum.Projective_plane));
  ]

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run () =
    Format.printf "counters:@.";
    List.iter
      (fun (module C : Counter.Counter_intf.S) ->
        Format.printf "  %-22s %s@." C.name C.describe)
      Baselines.Registry.all;
    Format.printf "@.by-name only (correct, priced out of default sweeps):@.";
    (let (module C : Counter.Counter_intf.S) = Baselines.Registry.sync_count in
     Format.printf "  %-22s %s@." C.name C.describe);
    Format.printf "@.broken baselines (negative controls, by name):@.";
    List.iter
      (fun (module C : Counter.Counter_intf.S) ->
        Format.printf "  %-22s %s@." C.name C.describe)
      Baselines.Registry.broken;
    Format.printf "@.quorum systems:@.";
    List.iter
      (fun (name, (module Q : Quorum.Quorum_intf.S)) ->
        Format.printf "  %-22s %s@." name Q.describe)
      quorum_systems
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available counters and quorum systems.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* run *)

let schedule_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Counter.Schedule.of_string s)
  in
  Arg.conv (parse, Counter.Schedule.pp)

let run_cmd =
  let run counter n seed delay faults schedule debug seeds domains sim_domains
      =
    if debug then begin
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    if sim_domains < 1 then begin
      Format.eprintf "dcount run: --sim-domains must be >= 1@.";
      exit 2
    end;
    (let (module C : Counter.Counter_intf.S) = counter in
     guard_byz_plan "run" C.name faults);
    (* Under an active fault plan stalls and value gaps are expected, so
       the correctness verdict only gates the exit code on fault-free
       runs. *)
    let fault_free =
      match faults with None -> true | Some f -> Sim.Fault.is_none f
    in
    if seeds <= 1 then begin
      let r =
        Counter.Driver.run ~seed ?delay ?faults ~sim_domains counter ~n
          ~schedule
      in
      Format.printf "%a@." Counter.Driver.pp_report r;
      if
        fault_free
        && not
             (r.Counter.Driver.values_exact
             && r.Counter.Driver.sequentially_ordered)
      then exit 1
    end
    else begin
      (* Replicated mode: the same experiment across consecutive seeds,
         fanned out over domains — every run is an independent simulation,
         so this parallelises without sharing. *)
      let seed_list = List.init seeds (fun i -> seed + i) in
      let reports =
        Analysis.Replicate.parallel_map ?domains
          (fun s ->
            Counter.Driver.run ~seed:s ?delay ?faults ~sim_domains counter ~n
              ~schedule)
          seed_list
      in
      let by_seed = List.combine seed_list reports in
      let summarize metric =
        Analysis.Replicate.across_seeds ~seeds:seed_list (fun s ->
            metric (List.assoc s by_seed))
      in
      let (module C : Counter.Counter_intf.S) = counter in
      let first = List.hd reports in
      Format.printf "%s: %d runs (seeds %d..%d), n = %d, schedule %a@."
        C.name seeds seed
        (seed + seeds - 1)
        first.Counter.Driver.n Counter.Schedule.pp schedule;
      let line label metric =
        Format.printf "  %-18s %a@." label Analysis.Replicate.pp_summary
          (summarize metric)
      in
      line "bottleneck load:" (fun r ->
          float_of_int r.Counter.Driver.bottleneck_load);
      line "total messages:" (fun r ->
          float_of_int r.Counter.Driver.total_messages);
      line "mean op latency:" (fun r -> r.Counter.Driver.mean_op_latency);
      (if not fault_free then
         line "stalled ops:" (fun r -> float_of_int r.Counter.Driver.stalled));
      List.iter
        (fun (s, r) ->
          if
            fault_free
            && not
                 (r.Counter.Driver.values_exact
                 && r.Counter.Driver.sequentially_ordered)
          then
            Format.printf "  seed %d: INCORRECT value sequence@." s)
        by_seed;
      if
        fault_free
        && List.exists
             (fun (_, r) ->
               not
                 (r.Counter.Driver.values_exact
                 && r.Counter.Driver.sequentially_ordered))
             by_seed
      then exit 1
    end
  in
  let debug_arg =
    Arg.(
      value & flag
      & info [ "debug" ]
          ~doc:"Log every message delivery (src -> dst, tag, time).")
  in
  let schedule_arg =
    Arg.(
      value
      & opt schedule_conv Counter.Schedule.Each_once
      & info [ "s"; "schedule" ] ~docv:"SCHEDULE"
          ~doc:
            "Operation schedule: each-once, shuffled, round-robin:OPS, \
             random:OPS, single:P:OPS or explicit:P,P,...")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"K"
          ~doc:
            "Replicate the run over K consecutive seeds (SEED .. SEED+K-1) \
             and report mean / spread / 95% CI instead of a single report.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Number of domains for replicated runs (default: the runtime's \
             recommended count). Only meaningful with $(b,--seeds).")
  in
  let sim_domains_arg =
    Arg.(
      value & opt int 1
      & info [ "sim-domains" ] ~docv:"D"
          ~doc:
            "Shard the simulator's event queue across D per-block heaps \
             merged in one canonical order (see docs/PERFORMANCE.md). \
             Reports are bit-identical for every D — this exercises the \
             sharded engine's storage layout, not a different semantics.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a schedule against a counter and report loads.")
    Term.(
      const run $ counter_arg $ n_arg $ seed_arg $ delay_arg $ faults_arg
      $ schedule_arg $ debug_arg $ seeds_arg $ domains_arg $ sim_domains_arg)

(* ------------------------------------------------------------------ *)
(* load *)

let load_cmd =
  let arrivals_conv =
    let parse s =
      match Sim.Arrivals.of_string s with
      | a -> Ok a
      | exception Invalid_argument e -> Error (`Msg e)
    in
    Arg.conv (parse, Sim.Arrivals.pp)
  in
  let run name n seed delay faults rate arrivals ops sim_domains check =
    if sim_domains < 1 then begin
      Format.eprintf "dcount load: --sim-domains must be >= 1@.";
      exit 2
    end;
    if ops < 1 then begin
      Format.eprintf "dcount load: --ops must be >= 1@.";
      exit 2
    end;
    let counter =
      match Baselines.Registry.find_concurrent name with
      | Some c -> c
      | None ->
          Format.eprintf
            "dcount load: %S is not an open-loop-capable counter (try: %s)@."
            name
            (String.concat ", " (Baselines.Registry.concurrent_names ()));
          exit 2
    in
    guard_byz_plan "load" name faults;
    let arrivals =
      match (arrivals, rate) with
      | Some _, Some _ ->
          Format.eprintf
            "dcount load: --rate and --arrivals are mutually exclusive@.";
          exit 2
      | Some a, None -> a
      | None, Some r ->
          if r <= 0. then begin
            Format.eprintf "dcount load: --rate must be positive@.";
            exit 2
          end;
          Sim.Arrivals.Poisson r
      | None, None -> Sim.Arrivals.Poisson 1.0
    in
    (* Unlike [run], the default delay model is exp:1, not constant:1 —
       with zero delay variance messages never overtake each other and
       the overlap regime degenerates to a lock-step pipeline (constant
       delay keeps even the counting network linearizable). *)
    let delay =
      Some (Option.value delay ~default:(Sim.Delay.Exponential 1.0))
    in
    let r =
      Counter.Driver.run_load ~seed ?delay ?faults ~sim_domains counter ~n
        ~arrivals ~ops
    in
    Format.printf "%a@." Counter.Driver.pp_load_report r;
    if check then begin
      let fault_free =
        match faults with None -> true | Some f -> Sim.Fault.is_none f
      in
      let a = r.Counter.Driver.analysis in
      let failed = ref false in
      if not a.Counter.History.linearizable then begin
        Format.eprintf "load check FAILED: history is not linearizable@.";
        failed := true
      end;
      if fault_free && r.Counter.Driver.lost > 0 then begin
        Format.eprintf
          "load check FAILED: %d operations lost on a fault-free run@."
          r.Counter.Driver.lost;
        failed := true
      end;
      if !failed then exit 1;
      Format.printf "load check: OK@."
    end
  in
  let name_arg =
    Arg.(
      value & opt string "retire-tree"
      & info [ "c"; "counter" ] ~docv:"NAME"
          ~doc:
            "Counter implementation; must support open-loop concurrency \
             (see the list in the error message for an unknown name).")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Shorthand for $(b,--arrivals poisson:R) — memoryless arrivals \
             at per-source rate R.")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt (some arrivals_conv) None
      & info [ "arrivals" ] ~docv:"PROC"
          ~doc:
            "Arrival process per source: $(b,fixed:R), $(b,poisson:R) or \
             $(b,bursty:R:ON:OFF). Default poisson:1.")
  in
  let ops_arg =
    Arg.(
      value & opt int 1000
      & info [ "ops" ] ~docv:"OPS" ~doc:"Operations to inject (default 1000).")
  in
  let sim_domains_arg =
    Arg.(
      value & opt int 1
      & info [ "sim-domains" ] ~docv:"D"
          ~doc:
            "Event-queue shard count; reports are bit-identical for every \
             D (the arrival plan is computed before the network exists).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Gate the exit code on the concurrent-history verdicts: exit 1 \
             if the history is not linearizable, or if a fault-free run \
             lost operations. Usage errors exit 2.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop concurrent load: inject operations at arrival-process \
          times without waiting for completions, then report throughput, \
          latency percentiles and linearizability / quiescent-consistency \
          verdicts over the concurrent history (docs/LOAD.md).")
    Term.(
      const run $ name_arg $ n_arg $ seed_arg $ delay_arg $ faults_arg
      $ rate_arg $ arrivals_arg $ ops_arg $ sim_domains_arg $ check_arg)

(* ------------------------------------------------------------------ *)
(* chaos *)

let chaos_cmd =
  let contains ~sub s =
    let ls = String.length s and lsub = String.length sub in
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    go 0
  in
  (* Byzantine sweep: rows are turned-processor counts b; victims are
     the kings, LAST king first — the strongest seats the adversary can
     hold, since the final phase's king has the last word on every
     replica's value. Rules cycle off-by-7 / max-int / replay-stale and
     every second victim equivocates. Only the phase-king counters
     install the corruption hook, so --byz rejects everything else.
     --check asserts the f < n/3 contract: sync-count completes every
     operation with zero agreement stalls at b <= f, while the
     sync-no-threshold control must show an agreement violation on
     every row with b >= 1 (its equivocating last king splits the
     replicas deterministically). *)
  let run_byz counter n seed delay byz_counts ops check =
    let (module C : Counter.Counter_intf.S) = counter in
    if not (List.mem C.name byz_capable) then begin
      Format.eprintf
        "dcount chaos: --byz sweeps need a corruption-hooked counter \
         (%s); %s has none@."
        (String.concat ", " byz_capable)
        C.name;
      exit 2
    end;
    let n = C.supported_n n in
    let f = (n - 1) / 3 in
    let ops = if ops <= 0 then 2 * n else ops in
    let run_ops c =
      let completed = ref 0 and stalled = ref 0 and agree = ref 0 in
      let last_stall = ref "" in
      let origin = ref 0 in
      for _ = 1 to ops do
        origin := (!origin mod n) + 1;
        match C.inc_result c ~origin:!origin with
        | Counter.Counter_intf.Completed _ -> incr completed
        | Counter.Counter_intf.Stalled reason ->
            incr stalled;
            if contains ~sub:"agreement" reason then incr agree;
            last_stall := reason
      done;
      (!completed, !stalled, !agree, !last_stall)
    in
    let baseline = C.create ~seed ?delay ~n () in
    let _ = run_ops baseline in
    let base_metrics = C.metrics baseline in
    let base_total = Sim.Metrics.total_messages base_metrics in
    let base_bproc, base_bload = Sim.Metrics.bottleneck base_metrics in
    let base_per_op = float_of_int base_total /. float_of_int (max 1 ops) in
    Format.printf
      "chaos sweep (byzantine): counter=%s n=%d f=%d ops=%d seed=%d@.\
       baseline: %d msgs (%.1f/op), bottleneck p%d(%d)@.@."
      C.name n f ops seed base_total base_per_op base_bproc base_bload;
    Format.printf "%4s %6s  %-11s %7s  %8s %8s  %-12s %s@." "byz" "vs f"
      "done/req" "stalled" "msgs/op" "load+%" "bottleneck" "notes";
    let rules =
      [| Sim.Fault.Off_by 7; Sim.Fault.Max_int; Sim.Fault.Replay_stale |]
    in
    let victims b =
      (* The kings are processors 1 .. f+1 (phase p's king is processor
         p); take them from the last phase backwards, then pad with the
         highest non-king ids. *)
      let kings = List.init (min b (f + 1)) (fun i -> f + 1 - i) in
      let rest = List.init (max 0 (b - (f + 1))) (fun i -> n - i) in
      kings @ rest
    in
    let check_failures = ref [] in
    List.iter
      (fun b ->
        let b = min b n in
        let faults =
          if b = 0 then Sim.Fault.none
          else
            let vs = victims b in
            {
              Sim.Fault.none with
              Sim.Fault.byz =
                List.map
                  (fun p ->
                    { Sim.Fault.processor = p; trigger = Sim.Fault.At 0. })
                  vs;
              byz_rules =
                List.mapi (fun i p -> (p, rules.(i mod 3))) vs;
              byz_equiv = List.filteri (fun i _ -> i mod 2 = 0) vs;
            }
        in
        let c = C.create ~seed ?delay ~faults ~n () in
        let completed, stalled, agree, last_stall = run_ops c in
        let m = C.metrics c in
        let total = Sim.Metrics.total_messages m in
        let corrupted = Sim.Metrics.corruptions m in
        let bproc, bload = Sim.Metrics.bottleneck m in
        let per_op = float_of_int total /. float_of_int (max 1 ops) in
        let added_pct =
          if base_per_op > 0. then 100. *. ((per_op /. base_per_op) -. 1.)
          else 0.
        in
        let shifted = bproc <> base_bproc in
        let notes =
          (if corrupted > 0 then
             [ Printf.sprintf "corrupted=%d" corrupted ]
           else [])
          @ (if agree > 0 then
               [ Printf.sprintf "agreement-violations=%d" agree ]
             else [])
          @ if stalled > 0 then [ "last stall: " ^ last_stall ] else []
        in
        Format.printf "%4d %6s  %5d/%-5d %7d  %8.1f %+7.0f%%  p%d(%d)%s %s@."
          b
          (if b <= f then "b<=f" else "b>f")
          completed ops stalled per_op added_pct bproc bload
          (if shifted then "*" else " ")
          (String.concat "; " notes);
        if check then begin
          let fail fmt =
            Printf.ksprintf
              (fun s ->
                check_failures :=
                  Printf.sprintf "byz=%d: %s" b s :: !check_failures)
              fmt
          in
          if b = 0 && completed <> ops then
            fail "fault-free row completed %d/%d operations" completed ops;
          if C.name = "sync-count" && b <= f && (agree > 0 || completed <> ops)
          then
            fail
              "b <= f = %d must complete cleanly (completed %d/%d, %d \
               agreement violations)"
              f completed ops agree;
          if C.name = "sync-no-threshold" && b >= 1 && agree = 0 then
            fail
              "control must show an agreement violation (equivocating \
               last king)"
        end)
      byz_counts;
    Format.printf
      "@.(* = bottleneck moved off the fault-free bottleneck processor \
       p%d)@."
      base_bproc;
    if check then
      match !check_failures with
      | [] -> Format.printf "chaos check (byzantine): OK@."
      | fs ->
          List.iter
            (fun s -> Format.eprintf "chaos check FAILED: %s@." s)
            fs;
          exit 1
  in
  (* Durable sweep: runs Core.Durable_counter concretely (the generic
     row loop cannot reach durable-only accessors through the sealed
     module type). Victims are drawn from 1..n, so the store — processor
     n+1 in the counter's own network — never crashes: the object store
     models an external service that outlives processor failures. Rows
     report [replayed=] (WAL replays: recoveries that reconstructed the
     pre-crash count from the store) where the amnesiac sweep reports
     [recovered=]; --check asserts zero lost increments instead of
     completion bounds. *)
  let run_durable n seed delay crash_counts drop_rates dup ops check recover
      =
    let module D = Core.Durable_counter in
    let n = D.supported_n n in
    let ops = if ops <= 0 then 2 * n else ops in
    let run_ops c =
      let values = ref [] and stalled = ref 0 and skipped = ref 0 in
      let last_stall = ref "" in
      let origin = ref 0 in
      for _ = 1 to ops do
        let rec advance tries =
          origin := (!origin mod n) + 1;
          if D.crashed c !origin && tries < n then advance (tries + 1)
        in
        advance 0;
        if D.crashed c !origin then incr skipped
        else
          match D.inc_result c ~origin:!origin with
          | Counter.Counter_intf.Completed v -> values := v :: !values
          | Counter.Counter_intf.Stalled reason ->
              incr stalled;
              last_stall := reason
      done;
      (List.rev !values, !stalled, !skipped, !last_stall)
    in
    let baseline = D.create ~seed ?delay ~n () in
    let _ = run_ops baseline in
    let base_metrics = D.metrics baseline in
    let base_total = Sim.Metrics.total_messages base_metrics in
    let base_bproc, base_bload = Sim.Metrics.bottleneck base_metrics in
    let base_per_op = float_of_int base_total /. float_of_int (max 1 ops) in
    let base_span =
      List.fold_left
        (fun acc t -> acc +. Sim.Trace.duration t)
        0. (D.traces baseline)
    in
    Format.printf
      "chaos sweep (durable): counter=%s n=%d ops=%d seed=%d dup=%g \
       recover=%b@.\
       baseline: %d msgs (%.1f/op), bottleneck p%d(%d)@.@."
      D.name n ops seed dup recover base_total base_per_op base_bproc
      base_bload;
    Format.printf
      "%7s %6s  %-11s %7s %7s  %8s %8s  %-12s %s@." "crashes" "drop"
      "done/req" "skipped" "stalled" "msgs/op" "load+%" "bottleneck" "notes";
    let check_failures = ref [] in
    List.iter
      (fun f ->
        List.iteri
          (fun di d ->
            let rng =
              Sim.Rng.create
                ~seed:(seed lxor (f * 7919) lxor ((di + 1) * 104729))
            in
            let perm = Sim.Rng.permutation rng n in
            let crashes, recovers =
              if not recover then
                ( List.init (min f n) (fun i ->
                      {
                        Sim.Fault.processor = perm.(i) + 1;
                        trigger =
                          Sim.Fault.After
                            (1 + Sim.Rng.int rng (max 1 base_total));
                      }),
                  [] )
              else
                let cells =
                  List.init (min f n) (fun i ->
                      let tc =
                        Sim.Rng.float rng (Float.max 1. base_span)
                      in
                      ( {
                          Sim.Fault.processor = perm.(i) + 1;
                          trigger = Sim.Fault.At tc;
                        },
                        {
                          Sim.Fault.processor = perm.(i) + 1;
                          time = tc +. 32. +. Sim.Rng.float rng 64.;
                        } ))
                in
                (List.map fst cells, List.map snd cells)
            in
            let faults =
              {
                Sim.Fault.none with
                Sim.Fault.crashes;
                recovers;
                drop = d;
                duplicate = dup;
              }
            in
            let c = D.create ~seed ?delay ~faults ~n () in
            let values, stalled, skipped, last_stall = run_ops c in
            let completed = List.length values in
            let m = D.metrics c in
            let total = Sim.Metrics.total_messages m in
            let replayed = D.replays c in
            let bproc, bload = Sim.Metrics.bottleneck m in
            let attempted = ops - skipped in
            let per_op =
              float_of_int total /. float_of_int (max 1 attempted)
            in
            let added_pct =
              if base_per_op > 0. then
                100. *. ((per_op /. base_per_op) -. 1.)
              else 0.
            in
            let shifted = bproc <> base_bproc in
            let durable = D.value c in
            let notes =
              (if replayed > 0 then
                 [ Printf.sprintf "replayed=%d" replayed ]
               else [])
              @ [ Printf.sprintf "durable=%d" durable ]
              @
              if stalled > 0 then [ "last stall: " ^ last_stall ] else []
            in
            Format.printf
              "%7d %6.2f  %5d/%-5d %7d %7d  %8.1f %+7.0f%%  p%d(%d)%s %s@."
              f d completed attempted skipped stalled per_op added_pct
              bproc bload
              (if shifted then "*" else " ")
              (String.concat "; " notes);
            if check then begin
              let fail fmt = Printf.ksprintf (fun s ->
                  check_failures :=
                    Printf.sprintf "crashes=%d drop=%g: %s" f d s
                    :: !check_failures) fmt
              in
              (* Zero lost increments: every value acked to a client must
                 survive in the store — distinct, below the durable
                 count, with the WAL monitor quiet. The durable count may
                 exceed the completed count (an applied increment whose
                 ack was lost is durable but unacked), never trail it. *)
              let sorted = List.sort Int.compare values in
              let rec dup_in = function
                | a :: (b :: _ as rest) ->
                    if a = b then Some a else dup_in rest
                | _ -> None
              in
              (match dup_in sorted with
              | Some v -> fail "value %d acked twice" v
              | None -> ());
              List.iter
                (fun v ->
                  if v >= durable then
                    fail "acked value %d lost (durable count %d)" v durable)
                values;
              if completed > durable then
                fail "%d acks but durable count %d" completed durable;
              (match D.spec_violation c with
              | Some s -> fail "spec violation: %s" s
              | None -> ());
              if f = 0 && Float.equal d 0. && Float.equal dup 0.
                 && completed <> ops
              then fail "fault-free row completed %d/%d operations"
                     completed ops
            end)
          drop_rates)
      crash_counts;
    Format.printf
      "@.(* = bottleneck moved off the fault-free bottleneck processor \
       p%d)@."
      base_bproc;
    if check then
      match !check_failures with
      | [] -> Format.printf "chaos check (durable): OK@."
      | fs ->
          List.iter
            (fun f -> Format.eprintf "chaos check FAILED: %s@." f)
            fs;
          exit 1
  in
  let run counter n seed delay crash_counts drop_rates dup ops check recover
      durable byz byz_counts =
    if byz && durable then begin
      Format.eprintf "dcount chaos: --byz and --durable are mutually \
                      exclusive@.";
      exit 2
    end;
    if byz then run_byz counter n seed delay byz_counts ops check
    else if durable then
      run_durable n seed delay crash_counts drop_rates dup ops check recover
    else
    let (module C : Counter.Counter_intf.S) = counter in
    let n = C.supported_n n in
    let ops = if ops <= 0 then 2 * n else ops in
    (* One operation round: round-robin over the origins, skipping origins
       already crashed when their turn comes (a dead client cannot issue a
       request). [stalled_live] counts stalls whose origin was still alive
       at the end of the operation — the stalls a fault-tolerant protocol
       is supposed to avoid; an origin crashing mid-operation can never
       see its own answer, so those stalls are inherent. *)
    let run_ops c =
      let completed = ref 0
      and stalled = ref 0
      and stalled_live = ref 0
      and hard_stalls = ref 0
      and skipped = ref 0 in
      let last_stall = ref "" in
      let origin = ref 0 in
      for _ = 1 to ops do
        let rec advance tries =
          origin := (!origin mod n) + 1;
          if C.crashed c !origin && tries < n then advance (tries + 1)
        in
        advance 0;
        if C.crashed c !origin then incr skipped
        else
          match C.inc_result c ~origin:!origin with
          | Counter.Counter_intf.Completed _ -> incr completed
          | Counter.Counter_intf.Stalled reason ->
              incr stalled;
              if not (C.crashed c !origin) then incr stalled_live;
              (* A stall blamed on the origin's own crash is inherent
                 (the client died mid-request); anything else is a stall
                 a failure-aware protocol is supposed to avoid. *)
              if
                (not (C.crashed c !origin))
                && not (contains ~sub:"origin" reason)
              then incr hard_stalls;
              last_stall := reason
      done;
      (!completed, !stalled, !stalled_live, !hard_stalls, !skipped, !last_stall)
    in
    (* Fault-free baseline: reference for added load, bottleneck shift and
       the delivery-count horizon the crash triggers are drawn from. *)
    let baseline = C.create ~seed ?delay ~n () in
    let _ = run_ops baseline in
    let base_metrics = C.metrics baseline in
    let base_total = Sim.Metrics.total_messages base_metrics in
    let base_bproc, base_bload = Sim.Metrics.bottleneck base_metrics in
    let base_per_op = float_of_int base_total /. float_of_int (max 1 ops) in
    (* Virtual-time span of the fault-free run — the horizon recovery
       times are sampled from, so revivals land while work is going on. *)
    let base_span =
      List.fold_left
        (fun acc t -> acc +. Sim.Trace.duration t)
        0. (C.traces baseline)
    in
    Format.printf
      "chaos sweep: counter=%s n=%d ops=%d seed=%d dup=%g recover=%b@.\
       baseline: %d msgs (%.1f/op), bottleneck p%d(%d)@.@."
      C.name n ops seed dup recover base_total base_per_op base_bproc
      base_bload;
    Format.printf
      "%7s %6s  %-11s %7s %7s  %8s %8s  %-12s %s@." "crashes" "drop"
      "done/req" "skipped" "stalled" "msgs/op" "load+%" "bottleneck" "notes";
    let check_failures = ref [] in
    let is_quorum =
      String.length C.name >= 7 && String.sub C.name 0 7 = "quorum-"
    in
    List.iter
      (fun f ->
        List.iteri
          (fun di d ->
            (* Deterministic victim/trigger choice: a private stream per
               (f, drop) cell so rows are independently reproducible. *)
            let rng =
              Sim.Rng.create
                ~seed:(seed lxor (f * 7919) lxor ((di + 1) * 104729))
            in
            let perm = Sim.Rng.permutation rng n in
            (* Without --recover, crashes trigger on delivery counts (the
               original sweep). With it, crashes move to virtual-time
               triggers drawn from the fault-free horizon so each victim's
               revival can be placed strictly after its death — a beat or
               two of timeout (32.) later, while operations are still
               running. *)
            let crashes, recovers =
              if not recover then
                ( List.init (min f n) (fun i ->
                      {
                        Sim.Fault.processor = perm.(i) + 1;
                        trigger =
                          Sim.Fault.After
                            (1 + Sim.Rng.int rng (max 1 base_total));
                      }),
                  [] )
              else
                let cells =
                  List.init (min f n) (fun i ->
                      let tc =
                        Sim.Rng.float rng (Float.max 1. base_span)
                      in
                      ( {
                          Sim.Fault.processor = perm.(i) + 1;
                          trigger = Sim.Fault.At tc;
                        },
                        {
                          Sim.Fault.processor = perm.(i) + 1;
                          time = tc +. 32. +. Sim.Rng.float rng 64.;
                        } ))
                in
                (List.map fst cells, List.map snd cells)
            in
            let faults =
              {
                Sim.Fault.none with
                Sim.Fault.crashes;
                recovers;
                drop = d;
                duplicate = dup;
              }
            in
            let c = C.create ~seed ?delay ~faults ~n () in
            let completed, stalled, stalled_live, hard_stalls, skipped,
                last_stall =
              run_ops c
            in
            let m = C.metrics c in
            let total = Sim.Metrics.total_messages m in
            let emerg = Sim.Metrics.emergency_retirements m in
            let recovered = Sim.Metrics.recoveries m in
            let bproc, bload = Sim.Metrics.bottleneck m in
            let attempted = ops - skipped in
            let per_op = float_of_int total /. float_of_int (max 1 attempted) in
            let added_pct =
              if base_per_op > 0. then
                100. *. ((per_op /. base_per_op) -. 1.)
              else 0.
            in
            let shifted = bproc <> base_bproc in
            let notes =
              (if emerg > 0 || recovered > 0 then
                 [ Printf.sprintf "emerg=%d recovered=%d" emerg recovered ]
               else [])
              @
              if stalled > 0 then [ "last stall: " ^ last_stall ] else []
            in
            Format.printf
              "%7d %6.2f  %5d/%-5d %7d %7d  %8.1f %+7.0f%%  p%d(%d)%s %s@." f
              d completed attempted skipped stalled per_op added_pct bproc
              bload
              (if shifted then "*" else " ")
              (String.concat "; " notes);
            if check then begin
              if f = 0 && Float.equal d 0. && Float.equal dup 0. && completed <> ops
              then
                check_failures :=
                  Printf.sprintf
                    "fault-free row completed %d/%d operations" completed ops
                  :: !check_failures;
              if
                is_quorum && Float.equal d 0. && Float.equal dup 0.
                && f <= (n - 1) / 2
                && stalled_live > 0
              then
                check_failures :=
                  Printf.sprintf
                    "%s: %d live-origin stalls with %d crashes (f < n/2 must \
                     complete)"
                    C.name stalled_live f
                  :: !check_failures;
              (* The failure-aware retire tree promises to complete every
                 live-origin inc when crashes stay below the overflow pool
                 (2n by default, so every sweep row qualifies); only
                 stalls blamed on the origin's own crash are excused. *)
              if
                C.name = "retire-ft" && Float.equal d 0.
                && Float.equal dup 0. && hard_stalls > 0
              then
                check_failures :=
                  Printf.sprintf
                    "retire-ft: %d non-origin stalls with %d crashes \
                     (crashes below the overflow pool must complete)"
                    hard_stalls f
                  :: !check_failures
            end)
          drop_rates)
      crash_counts;
    Format.printf
      "@.(* = bottleneck moved off the fault-free bottleneck processor \
       p%d)@."
      base_bproc;
    if check then
      match !check_failures with
      | [] -> Format.printf "chaos check: OK@."
      | fs ->
          List.iter (fun f -> Format.eprintf "chaos check FAILED: %s@." f) fs;
          exit 1
  in
  let crashes_arg =
    Arg.(
      value
      & opt (list int) [ 0; 1; 2 ]
      & info [ "crashes" ] ~docv:"F,F,..."
          ~doc:"Crash counts to sweep (victims drawn deterministically).")
  in
  let drops_arg =
    Arg.(
      value
      & opt (list float) [ 0. ]
      & info [ "drops" ] ~docv:"D,D,..."
          ~doc:"Per-message drop probabilities to sweep.")
  in
  let dup_arg =
    Arg.(
      value & opt float 0.
      & info [ "dup" ] ~docv:"F" ~doc:"Per-message duplication probability.")
  in
  let ops_arg =
    Arg.(
      value & opt int 0
      & info [ "ops" ] ~docv:"OPS"
          ~doc:"Operations per configuration (default 2n), round-robin.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Assert completion bounds: the fault-free row completes every \
             operation; quorum counters complete every live-origin \
             operation at drop 0 whenever fewer than half the processors \
             crash; retire-ft never stalls a live origin at drop 0. Exit \
             1 on violation.")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Schedule every crash victim to rejoin (recover:P@T) at a \
             time drawn from the fault-free run's virtual-time span; rows \
             report emergency retirements and actual revivals in the \
             notes column.")
  in
  let durable_arg =
    Arg.(
      value & flag
      & info [ "durable" ]
          ~doc:
            "Sweep the WAL-backed $(b,durable) counter (ignores \
             $(b,--counter)). Rows report $(b,replayed=) — recoveries \
             that reconstructed the pre-crash count from the object \
             store — where the amnesiac sweep reports $(b,recovered=), \
             plus the durable count from an offline WAL audit. With \
             $(b,--check), asserts zero lost increments on every row: \
             acked values are distinct, below the durable count, and the \
             WAL monitor saw no violation. Combine with $(b,--recover) \
             to exercise crash-recovery.")
  in
  let byz_flag_arg =
    Arg.(
      value & flag
      & info [ "byz" ]
          ~doc:
            "Sweep turned-Byzantine processor counts instead of crashes \
             (requires a corruption-hooked counter: $(b,sync-count) or \
             $(b,sync-no-threshold)). Victims are the kings, last king \
             first — the adversary's strongest seats — with rewrite \
             rules cycling off-by-7 / max-int / replay-stale and every \
             second victim equivocating. With $(b,--check), asserts the \
             f < n/3 contract: sync-count completes every operation \
             with zero agreement stalls at b <= f, and the \
             sync-no-threshold control shows an agreement violation on \
             every row with b >= 1.")
  in
  let byz_counts_arg =
    Arg.(
      value
      & opt (list int) [ 0; 1; 2; 3 ]
      & info [ "byz-counts" ] ~docv:"B,B,..."
          ~doc:
            "Turned-processor counts for the $(b,--byz) sweep (default \
             0,1,2,3 — straddles f = 2 at n = 7).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep crash counts and drop rates against a counter; report \
          completion rate, added message load and bottleneck shift. With \
          $(b,--byz), sweep Byzantine turn counts instead.")
    Term.(
      const run $ counter_arg $ n_arg $ seed_arg $ delay_arg $ crashes_arg
      $ drops_arg $ dup_arg $ ops_arg $ check_arg $ recover_arg
      $ durable_arg $ byz_flag_arg $ byz_counts_arg)

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_cmd =
  let run ns csv =
    let t =
      Analysis.Table.create
        ~columns:
          ("counter" :: List.map (fun n -> "n=" ^ string_of_int n) ns)
    in
    List.iter
      (fun c ->
        let cells =
          List.map
            (fun n ->
              let r = Counter.Driver.run_each_once c ~n in
              string_of_int r.Counter.Driver.bottleneck_load)
            ns
        in
        let (module C : Counter.Counter_intf.S) = c in
        Analysis.Table.add_row t (C.name :: cells))
      Baselines.Registry.all;
    match csv with
    | None ->
        Format.printf "bottleneck message load, each-processor-once:@.%a@."
          Analysis.Table.pp t
    | Some path ->
        let oc = open_out path in
        output_string oc (Analysis.Table.to_csv t);
        close_out oc;
        Format.printf "wrote %s@." path
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the table as CSV to FILE.")
  in
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 8; 81; 1024 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Network sizes to sweep.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Bottleneck comparison across all counters.")
    Term.(const run $ ns_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* adversary *)

let adversary_cmd =
  let run counter n seed sample verbose =
    let r = Core.Adversary.run ~seed ~sample counter ~n in
    Format.printf "%a@." Core.Adversary.pp_result r;
    if verbose then begin
      Format.printf "@.weight trajectory:@.";
      List.iter
        (fun o -> Format.printf "  %a@." Core.Weights.pp_observation o)
        r.Core.Adversary.q_observations
    end;
    if not r.Core.Adversary.bound_satisfied then exit 1
  in
  let sample_arg =
    Arg.(
      value & opt int 16
      & info [ "sample" ] ~docv:"S"
          ~doc:"Candidates evaluated per adversary step (cost control).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the weight trajectory.")
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Run the Lower Bound Theorem's adversarial sequence.")
    Term.(const run $ counter_arg $ n_arg $ seed_arg $ sample_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let run counter n seed ops lanes =
    let (module C : Counter.Counter_intf.S) = counter in
    let n = C.supported_n n in
    let c = C.create ~seed ~n () in
    for i = 1 to min ops n do
      ignore (C.inc c ~origin:i)
    done;
    List.iter
      (fun trace ->
        if lanes then Format.printf "%a@." Sim.Trace.pp_lanes trace
        else Format.printf "%a@." Sim.Trace.pp trace;
        let dag = Sim.Dag.of_trace trace in
        Format.printf "  list: %a@." Sim.Comm_list.pp
          (Sim.Comm_list.of_trace trace);
        Format.printf "  critical path: %d msgs; max parallelism: %d@.@."
          (Sim.Dag.critical_path dag) (Sim.Dag.max_width dag))
      (C.traces c)
  in
  let lanes_arg =
    Arg.(
      value & flag
      & info [ "lanes" ] ~doc:"Render as a message-sequence chart.")
  in
  let ops_arg =
    Arg.(
      value & opt int 3
      & info [ "ops" ] ~docv:"OPS" ~doc:"How many operations to trace.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the process DAG (Fig. 1) and communication list (Fig. 2).")
    Term.(const run $ counter_arg $ n_arg $ seed_arg $ ops_arg $ lanes_arg)

(* ------------------------------------------------------------------ *)
(* dot *)

let dot_cmd =
  let run counter n seed op output =
    let (module C : Counter.Counter_intf.S) = counter in
    let n = C.supported_n n in
    let c = C.create ~seed ~n () in
    for i = 1 to min (op + 1) n do
      ignore (C.inc c ~origin:i)
    done;
    match List.nth_opt (C.traces c) op with
    | None ->
        Format.eprintf "no operation #%d was executed@." op;
        exit 2
    | Some trace -> (
        let dot = Sim.Trace.to_dot trace in
        match output with
        | None -> print_string dot
        | Some path ->
            let oc = open_out path in
            output_string oc dot;
            close_out oc;
            Format.printf "wrote %s (render with: dot -Tsvg %s -o fig1.svg)@."
              path path)
  in
  let op_arg =
    Arg.(
      value & opt int 0
      & info [ "op" ] ~docv:"I" ~doc:"Which operation's process to render (0-based).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Emit the process DAG of an operation as Graphviz (Fig. 1).")
    Term.(const run $ counter_arg $ n_arg $ seed_arg $ op_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* quorum *)

let quorum_cmd =
  let run name n fraction trials =
    match List.assoc_opt name quorum_systems with
    | None ->
        Format.eprintf "unknown quorum system %S (try: %s)@." name
          (String.concat ", " (List.map fst quorum_systems));
        exit 2
    | Some ((module Q : Quorum.Quorum_intf.S) as q) ->
        let n = Q.supported_n n in
        let profile = Quorum.Load.measure q ~n () in
        Format.printf "%a@." Quorum.Load.pp_profile profile;
        let mean, success =
          Quorum.Probe.expected_probes q ~n ~fraction ~trials ~seed:42
        in
        Format.printf
          "probe complexity at %.0f%% crash rate: %.1f probes/search, %.0f%% \
           success (%d trials)@."
          (100. *. fraction) mean (100. *. success) trials
  in
  let name_arg =
    Arg.(
      value & opt string "grid"
      & info [ "q"; "system" ] ~docv:"NAME" ~doc:"Quorum system name.")
  in
  let fraction_arg =
    Arg.(
      value & opt float 0.1
      & info [ "crash" ] ~docv:"F" ~doc:"Per-element crash probability.")
  in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"T" ~doc:"Monte-Carlo trials.")
  in
  Cmd.v
    (Cmd.info "quorum" ~doc:"Analyse a quorum system's load and probes.")
    Term.(const run $ name_arg $ n_arg $ fraction_arg $ trials_arg)

(* ------------------------------------------------------------------ *)
(* exhaustive *)

let exhaustive_cmd =
  let run counter n limit =
    let limit = if limit <= 0 then None else Some limit in
    let s = Core.Exhaustive.verify_counter ?limit counter ~n in
    Format.printf "%a@." Core.Exhaustive.pp_stats s;
    if
      not
        (s.Core.Exhaustive.all_correct && s.Core.Exhaustive.all_hotspot
        && s.Core.Exhaustive.all_bound)
    then exit 1
  in
  let limit_arg =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"L"
          ~doc:"Check only the first L orders (0 = all; required for n > 9).")
  in
  Cmd.v
    (Cmd.info "exhaustive"
       ~doc:
         "Verify correctness, Hot Spot Lemma and the lower bound over           EVERY each-once operation order (n! executions; keep n small).")
    Term.(const run $ counter_arg $ n_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* mc *)

let mc_cmd =
  let run counter n seed faults schedule max_states max_depth prune
      expect_violation allow_incomplete cx_out replay_file sweep_all
      progress property =
    let required_property =
      match property with
      | None -> None
      | Some s -> (
          match Mc.Explore.property_of_name s with
          | Ok p -> Some p
          | Error e ->
              Format.eprintf "dcount mc: %s@." e;
              exit 2)
    in
    let config =
      {
        Mc.Explore.default_config with
        max_states;
        max_depth;
        check_progress = progress;
        prune =
          (match Mc.Prune.of_string prune with
          | Ok m -> m
          | Error e ->
              Format.eprintf "%s@." e;
              exit 2);
      }
    in
    let faults = Option.value faults ~default:Sim.Fault.none in
    if sweep_all && faults.Sim.Fault.byz_rules <> [] then begin
      Format.eprintf
        "dcount mc: --all cannot take a payload-rewriting plan \
         (byzval:/byzeq:) — most counters have no corruption hook@.";
      exit 2
    end;
    match replay_file with
    | Some path -> (
        (* Replay a stored counterexample byte stream deterministically. *)
        let contents =
          try In_channel.with_open_text path In_channel.input_all
          with Sys_error e ->
            Format.eprintf "%s@." e;
            exit 2
        in
        match Mc.Replay.of_string contents with
        | Error e ->
            Format.eprintf "bad counterexample %s: %s@." path e;
            exit 2
        | Ok cx -> (
            let c =
              match Baselines.Registry.find cx.Mc.Replay.counter with
              | Some c -> c
              | None ->
                  Format.eprintf "unknown counter %S in %s@."
                    cx.Mc.Replay.counter path;
                  exit 2
            in
            match Mc.Replay.run c cx with
            | Error e ->
                Format.eprintf "replay failed: %s@." e;
                exit 2
            | Ok None ->
                Format.printf
                  "replay of %s: execution is clean (stored violation %s did \
                   NOT reproduce)@."
                  path cx.Mc.Replay.property;
                exit 1
            | Ok (Some v) ->
                Format.printf "replay of %s:@.%a@." path Mc.Explore.pp_violation
                  v;
                if Mc.Explore.property_name v.Mc.Explore.property
                   <> cx.Mc.Replay.property
                then begin
                  Format.printf
                    "stored property was %s — replay hit a different one@."
                    cx.Mc.Replay.property;
                  exit 1
                end))
    | None when sweep_all ->
        (* Found-or-absent table over every registered counter, the broken
           ones last — the table EXPERIMENTS.md quotes. *)
        Format.printf "model check: n=%d schedule=%a faults=%a budget=%d@.@."
          n Counter.Schedule.pp schedule Sim.Fault.pp faults max_states;
        Format.printf "%-22s %-12s %11s %11s %9s@." "counter" "verdict"
          "executions" "states" "violation";
        let rows =
          Baselines.Registry.all @ Baselines.Registry.broken
        in
        let any_unexpected = ref false in
        List.iter
          (fun ((module C : Counter.Counter_intf.S) as c) ->
            let o = Mc.Explore.check ~seed ~faults ~config c ~n ~schedule in
            let verdict, violation =
              match o.Mc.Explore.verdict with
              | Mc.Explore.Exhausted_ok -> ("exhausted", "absent")
              | Mc.Explore.Budget_exhausted -> ("budget", "none-found")
              | Mc.Explore.Violation_found v ->
                  ("violation", Mc.Explore.property_name v.Mc.Explore.property)
            in
            let broken =
              List.exists
                (fun (module B : Counter.Counter_intf.S) -> B.name = C.name)
                Baselines.Registry.broken
            in
            (match o.Mc.Explore.verdict with
            | Mc.Explore.Violation_found _ when not broken ->
                any_unexpected := true
            | _ -> ());
            Format.printf "%-22s %-12s %11d %11d %9s%s@." C.name verdict
              o.Mc.Explore.stats.Mc.Explore.executions
              o.Mc.Explore.stats.Mc.Explore.states violation
              (if broken then "  (broken by design)" else ""))
          rows;
        if !any_unexpected then exit 1
    | None -> (
        (let (module C : Counter.Counter_intf.S) = counter in
         guard_byz_plan "mc" C.name (Some faults));
        let outcome = Mc.Explore.check ~seed ~faults ~config counter ~n ~schedule in
        Format.printf "@[<v>%a@,%a@]@." Mc.Explore.pp_verdict
          outcome.Mc.Explore.verdict Mc.Explore.pp_stats
          outcome.Mc.Explore.stats;
        (match (outcome.Mc.Explore.verdict, cx_out) with
        | Mc.Explore.Violation_found v, Some path ->
            let (module C : Counter.Counter_intf.S) = counter in
            let cx =
              Mc.Replay.of_violation ~counter:C.name
                ~n:(C.supported_n n) ~seed ~schedule ~faults v
            in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Mc.Replay.to_string cx));
            Format.printf "wrote counterexample to %s@." path
        | _ -> ());
        match outcome.Mc.Explore.verdict with
        | Mc.Explore.Exhausted_ok -> if expect_violation then exit 1
        | Mc.Explore.Violation_found v ->
            (match required_property with
            | Some p when v.Mc.Explore.property <> p ->
                Format.printf
                  "found property %s, but --property requires %s@."
                  (Mc.Explore.property_name v.Mc.Explore.property)
                  (Mc.Explore.property_name p);
                exit 1
            | _ -> ());
            if not expect_violation then exit 1
        | Mc.Explore.Budget_exhausted ->
            (* A clean bounded run only counts as success when the caller
               explicitly settled for bounded checking; a failed hunt
               (--expect-violation) is never a success. *)
            if expect_violation || not allow_incomplete then exit 3)
  in
  let max_states_arg =
    Arg.(
      value & opt int Mc.Explore.default_config.Mc.Explore.max_states
      & info [ "max-states" ] ~docv:"S"
          ~doc:
            "Abort with exit 3 after discovering S decision points \
             (exploration incomplete).")
  in
  let max_depth_arg =
    Arg.(
      value & opt int Mc.Explore.default_config.Mc.Explore.max_depth
      & info [ "max-depth" ] ~docv:"D"
          ~doc:
            "Stop branching beyond D decisions per execution (deeper \
             events follow the default order).")
  in
  let prune_arg =
    Arg.(
      value & opt string "sleep"
      & info [ "prune" ] ~docv:"MODE"
          ~doc:
            "Partial-order reduction: $(b,sleep) (sleep sets, default) or \
             $(b,none) (plain DFS).")
  in
  let expect_violation_arg =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:
            "Invert the exit code: succeed only if a violation is found \
             (for negative-control counters).")
  in
  let allow_incomplete_arg =
    Arg.(
      value & flag
      & info [ "allow-incomplete" ]
          ~doc:
            "Exit 0 instead of 3 when the state or depth budget is \
             exhausted without finding a violation — bounded model \
             checking for protocols (e.g. the failure-aware retire tree \
             under a crash adversary) whose full interleaving space is \
             intractable.")
  in
  let cx_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "counterexample-out" ] ~docv:"FILE"
          ~doc:
            "On violation, write the counterexample in canonical .mcs form \
             to FILE (replayable with $(b,--replay)).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-execute the decision sequence stored in FILE and check the \
             recorded violation reproduces; all other options are ignored.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Sweep every registered counter (broken ones included) and \
             print a found-or-absent violation table; exit 1 if a \
             violation shows up in a counter that is not broken by \
             design.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt schedule_conv Counter.Schedule.Each_once
      & info [ "s"; "schedule" ] ~docv:"SCHEDULE"
          ~doc:
            "Operation schedule: each-once, shuffled, round-robin:OPS, \
             random:OPS, single:P:OPS or explicit:P,P,...")
  in
  let n_mc_arg =
    Arg.(
      value & opt int 3
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Number of processors (rounded up to a supported size). Keep \
             small: the interleaving space is exponential.")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Also check CounterProgress on crash/recover executions: once \
             every crashed victim has been revived and the run is \
             quiescent, an operation may only stall for an origin-local \
             reason (its origin was down, or it gave up retrying).")
  in
  let property_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "property" ] ~docv:"NAME"
          ~doc:
            "Require any found violation to be this property (e.g. \
             $(b,agreement-violated)): a violation of a different \
             property exits 1 even with $(b,--expect-violation); an \
             unknown property name exits 2.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Model-check a counter: exhaustively explore message-delivery \
          interleavings (and adversarial crash timings from --faults) and \
          check values, linearizability, the Hot Spot Lemma and the lower \
          bound on every execution.")
    Term.(
      const run $ counter_arg $ n_mc_arg $ seed_arg $ faults_arg
      $ schedule_arg $ max_states_arg $ max_depth_arg $ prune_arg
      $ expect_violation_arg $ allow_incomplete_arg $ cx_out_arg
      $ replay_arg $ all_arg $ progress_arg $ property_arg)

(* ------------------------------------------------------------------ *)
(* lint *)

let lint_cmd =
  let run rules format list_rules paths =
    if list_rules then Format.printf "%a" Lint.Report.pp_rules Lint.Registry.all
    else begin
      let rules =
        match Lint.Registry.resolve rules with
        | Ok rules -> rules
        | Error e ->
            Format.eprintf "%s@." e;
            exit 2
      in
      let paths = match paths with [] -> [ "lib"; "bin" ] | ps -> ps in
      match Lint.Driver.run ~rules ~paths with
      | Error e ->
          Format.eprintf "%s@." e;
          exit 2
      | Ok outcome ->
          (match format with
          | `Text -> Format.printf "%a" Lint.Report.pp_text outcome
          | `Json -> Format.printf "%a" Lint.Report.pp_json outcome);
          if outcome.Lint.Driver.findings <> [] then exit 1
    end
  in
  let rules_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "rules" ] ~docv:"R1,R2"
          ~doc:
            "Run only these rules, by id (D1..D4, P1, P2, R1..R3), name \
             ($(b,ambient-nondeterminism), $(b,domain-escape), ...) or \
             family ($(b,determinism), $(b,protocol), $(b,drace)). \
             Default: all.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: $(b,text) (default) or $(b,json).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"Print the rule catalogue and exit.")
  in
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATHS"
          ~doc:
            "Files (.ml) or directories to scan, relative to the current \
             directory. Default: $(b,lib bin).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse OCaml sources for determinism, protocol \
          hygiene and domain safety (docs/LINT.md). Exit 0 clean, 1 \
          findings, 2 usage.")
    Term.(const run $ rules_arg $ format_arg $ list_arg $ paths_arg)

(* ------------------------------------------------------------------ *)
(* bound *)

let bound_cmd =
  let run ns = Format.printf "%a@." Core.Lower_bound.pp_table ns in
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 8; 81; 1024; 15625; 279936; 5764801 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Network sizes.")
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Print the Lower Bound Theorem's k for sizes n.")
    Term.(const run $ ns_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "distributed counting testbed — Wattenhofer & Widmayer, PODC 1997"
  in
  let info = Cmd.info "dcount" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           list_cmd;
           run_cmd;
           load_cmd;
           chaos_cmd;
           compare_cmd;
           adversary_cmd;
           trace_cmd;
           dot_cmd;
           quorum_cmd;
           exhaustive_cmd;
           mc_cmd;
           lint_cmd;
           bound_cmd;
         ])
  in
  (* Usage errors exit 2 across every subcommand (the documented mc /
     chaos / lint contract); cmdliner's default for them is 124. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
