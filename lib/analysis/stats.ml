type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  median : float;
  p90 : float;
  p99 : float;
  total : int;
}

let percentile samples p =
  if Array.length samples = 0 then
    invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy samples in
  Array.sort Int.compare sorted;
  let n = Array.length sorted in
  if n = 1 then float_of_int sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ((1. -. frac) *. float_of_int sorted.(lo))
    +. (frac *. float_of_int sorted.(hi))
  end

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let total = Array.fold_left ( + ) 0 samples in
  let mean = float_of_int total /. float_of_int n in
  let var =
    Array.fold_left
      (fun acc x ->
        let d = float_of_int x -. mean in
        acc +. (d *. d))
      0. samples
    /. float_of_int n
  in
  {
    count = n;
    min = Array.fold_left min samples.(0) samples;
    max = Array.fold_left max samples.(0) samples;
    mean;
    stddev = sqrt var;
    median = percentile samples 50.;
    p90 = percentile samples 90.;
    p99 = percentile samples 99.;
    total;
  }

let gini samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.gini: empty sample";
  let sorted = Array.map float_of_int samples in
  Array.sort Float.compare sorted;
  let total = Array.fold_left ( +. ) 0. sorted in
  if Float.equal total 0. then 0.
  else begin
    (* G = (2 * sum_i i*x_i) / (n * sum x) - (n+1)/n with 1-based ranks on
       ascending data. *)
    let weighted = ref 0. in
    Array.iteri
      (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x))
      sorted;
    let nf = float_of_int n in
    (2. *. !weighted /. (nf *. total)) -. ((nf +. 1.) /. nf)
  end

let mean_float samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.mean_float: empty sample";
  Array.fold_left ( +. ) 0. samples /. float_of_int n

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%d max=%d mean=%.2f sd=%.2f median=%.1f p90=%.1f p99=%.1f \
     total=%d"
    s.count s.min s.max s.mean s.stddev s.median s.p90 s.p99 s.total
