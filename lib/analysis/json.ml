type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_nan f || Float.abs f = infinity then
    (* JSON has no NaN/inf; null is the conventional stand-in. *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec print_into buf ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  let newline () = if indent > 0 then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          newline ();
          Buffer.add_string buf (pad (level + 1));
          print_into buf ~indent ~level:(level + 1) item)
        items;
      newline ();
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          newline ();
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          escape_into buf key;
          Buffer.add_string buf "\": ";
          print_into buf ~indent ~level:(level + 1) value)
        fields;
      newline ();
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  print_into buf ~indent ~level:0 v;
  if indent > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — a plain recursive-descent parser, sufficient for the bench
   artefacts this repository produces and consumes. *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance st; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance st; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance st; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
            let hex = String.sub st.s st.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail st "bad \\u escape"
            | Some code ->
                (* Escaped codepoints below 0x80 decode exactly; others are
                   replaced — the bench artefacts are plain ASCII. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_char buf '?');
            st.pos <- st.pos + 4;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> Str (parse_string_raw st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let key = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_str = function Str s -> Some s | _ -> None
