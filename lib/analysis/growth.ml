type shape = Constant | Log | K_of_n | Log_squared | Sqrt | Linear

let all_shapes = [ Constant; Log; K_of_n; Log_squared; Sqrt; Linear ]

let shape_name = function
  | Constant -> "1"
  | Log -> "log n"
  | K_of_n -> "k(n)"
  | Log_squared -> "log^2 n"
  | Sqrt -> "sqrt n"
  | Linear -> "n"

(* Real solution of x^(x+1) = n; duplicated from Core.Params to keep this
   library dependency-free (it is three lines of bisection). *)
let k_continuous n =
  if n <= 1. then 1.
  else begin
    let target = log n in
    let f x = (x +. 1.) *. log x in
    let rec grow hi = if f hi < target then grow (2. *. hi) else hi in
    let rec bisect lo hi iter =
      if iter = 0 then (lo +. hi) /. 2.
      else
        let mid = (lo +. hi) /. 2. in
        if f mid < target then bisect mid hi (iter - 1)
        else bisect lo mid (iter - 1)
    in
    bisect 1. (grow 2.) 80
  end

let eval shape n =
  match shape with
  | Constant -> 1.
  | Log -> log n /. log 2.
  | K_of_n -> k_continuous n
  | Log_squared ->
      let l = log n /. log 2. in
      l *. l
  | Sqrt -> sqrt n
  | Linear -> n

type fit = { shape : shape; scale : float; residual : float }

let fit_shape shape points =
  if List.length points < 1 then invalid_arg "Growth.fit_shape: no points";
  (* c = sum(y f) / sum(f^2). *)
  let num, den =
    List.fold_left
      (fun (num, den) (n, y) ->
        let f = eval shape n in
        (num +. (y *. f), den +. (f *. f)))
      (0., 0.) points
  in
  let scale = if Float.equal den 0. then 0. else num /. den in
  let sq_err, sq_y =
    List.fold_left
      (fun (se, sy) (n, y) ->
        let e = y -. (scale *. eval shape n) in
        (se +. (e *. e), sy +. (y *. y)))
      (0., 0.) points
  in
  let residual = if Float.equal sq_y 0. then 0. else sqrt (sq_err /. sq_y) in
  { shape; scale; residual }

let best_fit points =
  if List.length points < 2 then invalid_arg "Growth.best_fit: need >= 2 points";
  let fits =
    List.sort
      (fun a b -> Float.compare a.residual b.residual)
      (List.map (fun s -> fit_shape s points) all_shapes)
  in
  match fits with [] -> assert false | best :: _ -> (best, fits)

let pp_fit ppf f =
  Format.fprintf ppf "%-8s scale=%8.3f residual=%.4f" (shape_name f.shape)
    f.scale f.residual
