type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

let summarise values =
  match values with
  | [] -> invalid_arg "Replicate: no runs"
  | first :: _ ->
      let n = List.length values in
      let nf = float_of_int n in
      let mean = List.fold_left ( +. ) 0. values /. nf in
      let var =
        if n < 2 then 0.
        else
          List.fold_left
            (fun acc v ->
              let d = v -. mean in
              acc +. (d *. d))
            0. values
          /. (nf -. 1.)
      in
      let stddev = sqrt var in
      {
        runs = n;
        mean;
        stddev;
        min = List.fold_left Float.min first values;
        max = List.fold_left Float.max first values;
        ci95 = 1.96 *. stddev /. sqrt nf;
      }

let across_seeds ~seeds f = summarise (List.map f seeds)

let parallel_map ?domains f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let items = Array.of_list xs in
      let total = Array.length items in
      let domains =
        let requested =
          match domains with
          | Some d -> d
          | None -> Domain.recommended_domain_count ()
        in
        max 1 (min requested total)
      in
      (* Static chunking: worker [w] takes indices w, w+domains, ... *)
      let results = Array.make total None in
      let worker w () =
        let i = ref w in
        while !i < total do
          results.(!i) <- Some (f items.(!i));
          i := !i + domains
        done
      in
      let spawned =
        List.init (domains - 1) (fun w -> Domain.spawn (worker (w + 1)))
      in
      (* Join even when the coordinator's own chunk raises: an orphaned
         domain would keep writing [results] (and running [f]) behind
         the caller's back after the exception propagates. If a worker
         also failed, its exception wins — either way the pool is
         drained before anything escapes. *)
      (match worker 0 () with
      | () -> ()
      | exception e ->
          List.iter Domain.join spawned;
          raise e);
      List.iter Domain.join spawned;
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let across_seeds_parallel ?domains ~seeds f =
  summarise (parallel_map ?domains f seeds)

let pp_summary ppf s =
  Format.fprintf ppf "%.2f +- %.2f (sd=%.2f, n=%d, range %.1f-%.1f)" s.mean
    s.ci95 s.stddev s.runs s.min s.max
