type t = { lo : int; width : int; counts : int array }

let of_samples ?(buckets = 12) samples =
  if Array.length samples = 0 then
    invalid_arg "Histogram.of_samples: empty sample";
  if buckets < 1 then invalid_arg "Histogram.of_samples: buckets < 1";
  let lo = Array.fold_left min samples.(0) samples in
  let hi = Array.fold_left max samples.(0) samples in
  let width = max 1 (((hi - lo) / buckets) + 1) in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let b = min (buckets - 1) ((x - lo) / width) in
      counts.(b) <- counts.(b) + 1)
    samples;
  { lo; width; counts }

let bucket_counts t =
  Array.to_list
    (Array.mapi
       (fun i c ->
         let lo = t.lo + (i * t.width) in
         (lo, lo + t.width - 1, c))
       t.counts)

let quantile samples ~q =
  if Array.length samples = 0 then invalid_arg "Histogram.quantile: empty sample";
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Histogram.quantile: q outside [0, 1]";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  (* Nearest-rank: the smallest sample s such that at least [q * len]
     samples are <= s (q = 0 gives the minimum, q = 1 the maximum). *)
  let len = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int len)) in
  sorted.(max 0 (min (len - 1) (rank - 1)))

type latency_summary = { p50 : float; p90 : float; p99 : float; max : float }

let summary samples =
  {
    p50 = quantile samples ~q:0.5;
    p90 = quantile samples ~q:0.9;
    p99 = quantile samples ~q:0.99;
    max = quantile samples ~q:1.;
  }

let pp ?(bar_width = 40) ppf t =
  let most = Array.fold_left max 1 t.counts in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (lo, hi, c) ->
      let bar = c * bar_width / most in
      Format.fprintf ppf "%6d-%-6d %6d %s@," lo hi c (String.make bar '#'))
    (bucket_counts t);
  Format.fprintf ppf "@]"
