(** Text histograms for load distributions (experiment E6). *)

type t

val of_samples : ?buckets:int -> int array -> t
(** Equal-width bucketing over the sample range (default 12 buckets). *)

val pp : ?bar_width:int -> Format.formatter -> t -> unit
(** Renders one line per bucket: range, count, and a proportional bar. *)

val bucket_counts : t -> (int * int * int) list
(** [(lo, hi, count)] per bucket (inclusive bounds). *)

(** {1 Quantiles}

    Percentile support for latency samples (the open-loop load engine,
    docs/LOAD.md). Nearest-rank on the exact sample set — no
    interpolation, so every reported percentile is a value that actually
    occurred, and results are deterministic for a given sample multiset. *)

val quantile : float array -> q:float -> float
(** [quantile samples ~q] is the nearest-rank [q]-quantile of a
    non-empty sample array ([q] in [\[0, 1\]]; [q = 0.5] is the median,
    [q = 1.] the maximum). Sorts a copy; the input is untouched. *)

type latency_summary = { p50 : float; p90 : float; p99 : float; max : float }

val summary : float array -> latency_summary
(** The standard reporting quartet over a non-empty sample array. *)
