(** Minimal JSON tree, printer and parser.

    The benchmark harness emits machine-readable [BENCH_*.json] artefacts
    (see docs/PERFORMANCE.md for the schema) and the smoke target re-parses
    them; this module is the whole dependency. It handles the JSON subset
    those artefacts use: objects, arrays, double-quoted strings with the
    standard escapes, numbers, booleans and null. Not a general-purpose
    JSON library — no streaming, no full unicode escape decoding. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [int i] is [Num (float_of_int i)]. *)

val to_string : ?indent:int -> t -> string
(** Render; [indent] (default 2) of 0 produces a single line. NaN and
    infinities print as [null] (JSON has no representation for them). *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the failure. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key], if any. *)

val to_float : t -> float option

val to_list : t -> t list option

val to_str : t -> string option
