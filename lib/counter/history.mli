(** Concurrent operation histories and a linearizability check for
    fetch-and-increment.

    The paper's model is sequential, but its related work is not: Herlihy,
    Shavit & Waarts's "Linearizable counting networks" (cited in the
    paper) exists precisely because counting networks are {e not}
    linearizable under overlap. Overlapping histories come from two
    places: staggered batch runs (operation [i] injected at virtual time
    [i * stagger], experiment E20) and the open-loop load engine
    ({!Sim.Arrivals} + {!Driver.run_load}, docs/LOAD.md), which keeps
    thousands of operations in flight at once.

    For fetch-and-increment over distinct values the linearizability
    condition is exactly: whenever operation [a] completes before
    operation [b] is invoked, [a]'s value is smaller than [b]'s
    ({!check}). Histories whose operations all overlap are vacuously
    linearizable; the interesting violations appear at moderate overlap —
    experiment E20 exhibits them live on the counting network and shows
    the paper's counter (whose root serialises) staying linearizable. *)

type op = {
  origin : int;
  value : int;
  invoked_at : float;  (** Virtual time the request was injected. *)
  completed_at : float;  (** Virtual time the value reached the origin. *)
}

type verdict =
  | Linearizable
  | Violation of op * op
      (** [Violation (a, b)]: [a] completed before [b] was invoked, yet
          [a.value > b.value]. *)

val check : op list -> verdict
(** O(ops log ops): sweep operations in invocation order against the
    running maximum value over operations already completed — a violation
    exists iff that maximum ever exceeds an invoked operation's value.
    The witness is deterministic and a pure function of the history
    multiset (input order never matters): [b] is the first violated
    operation in invocation order and [a] the largest value completed
    strictly before [b]'s invocation. *)

val is_linearizable : op list -> bool

val values_contiguous : op list -> bool
(** The weaker guarantee every correct counter keeps even under overlap
    (quiescent consistency): the returned values are exactly
    [0 .. ops-1]. *)

val concurrency_profile : op list -> int
(** Maximum number of operations simultaneously in flight — how much
    overlap the history actually contains. *)

val mean_overlap : op list -> float
(** Time-weighted mean number of in-flight operations over the history's
    span (first invocation to last completion); [0.] on empty or
    zero-span histories. *)

type analysis = {
  verdict : verdict;
  quiescent : bool;  (** {!values_contiguous}. *)
  linearizable : bool;
      (** [quiescent] {e and} no real-time order violation — the full
          linearizability criterion (order alone is vacuous when values
          are duplicated or missing). *)
  peak_overlap : int;  (** {!concurrency_profile}. *)
  mean_overlap : float;  (** {!mean_overlap}. *)
}

val analyze : op list -> analysis
(** All concurrent-history verdicts of one history in one pass — what
    {!Driver.run_load} reports and [dcount load --check] gates on. *)

val pp_op : Format.formatter -> op -> unit

val pp_verdict : Format.formatter -> verdict -> unit
