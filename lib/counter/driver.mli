(** Generic experiment driver: runs a schedule against any counter and
    gathers correctness verdicts and load statistics.

    The driver is the single place that defines what "a run" means, so every
    experiment, test and benchmark measures the same thing:

    - operations execute strictly sequentially (the paper's model);
    - correctness = the multiset of returned values is exactly
      [{0, 1, ..., ops-1}] and, because operations are sequential, the
      values arrive in increasing order;
    - the Hot Spot Lemma is checked over all consecutive operation pairs;
    - loads come from the counter's {!Sim.Metrics}. *)

type report = {
  counter_name : string;
  n : int;
  ops : int;
  schedule : string;
  values : int array;
      (** Value returned by each {e completed} operation, in order
          (equals one entry per scheduled operation on fault-free runs). *)
  completed : int;  (** Operations that returned a value. *)
  stalled : int;
      (** Operations that stalled (possible only under a fault plan). *)
  stall_reasons : string list;  (** One reason per stalled operation. *)
  values_exact : bool;
      (** No stalls and the multiset of values is exactly [{0 .. ops-1}]
          — the counter handed out every value once. *)
  sequentially_ordered : bool;
      (** Values arrived in increasing order — what sequential
          (run-to-quiescence) execution of a correct counter must add on
          top of [values_exact]. The old [correct] verdict is the
          conjunction of the two. *)
  hotspot_ok : bool;  (** Hot Spot Lemma holds on all consecutive pairs. *)
  hotspot_violations : int;
  total_messages : int;
  bottleneck_proc : int;
  bottleneck_load : int;
  average_load : float;
  max_op_messages : int;  (** Largest single-operation message count. *)
  overflow_processors : int;  (** Replacement hires beyond processor [n]. *)
  emergency_retirements : int;
      (** Crashed roles re-staffed by a failure-aware counter's audit
          (zero for fault-free runs and unaware protocols). *)
  recoveries : int;  (** [recover:P\@T] clauses that fired during the run. *)
  mean_op_latency : float;
      (** Mean virtual time from an operation's start to its last
          delivery — the asynchronous-model time cost under the chosen
          delay model (unit delay by default, so roughly the longest
          message chain). *)
  max_op_latency : float;
}

val run :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?sim_domains:int ->
  Counter_intf.counter ->
  n:int ->
  schedule:Schedule.t ->
  report
(** [run (module C) ~n ~schedule] creates a fresh counter for
    [C.supported_n n] processors and executes the schedule. [seed]
    (default 42) seeds both the counter and the schedule's own draws.
    [faults] (default {!Sim.Fault.none}) is handed to the counter;
    stalled operations are tallied in the report instead of raising.
    [sim_domains] (default 1) is the event-queue shard count installed
    around counter creation via {!Sim.Network.with_shards}: reports are
    bit-identical for every value — the determinism matrix in
    [test/test_determinism.ml] pins this — so it is a storage/layout
    knob, not a semantics knob. *)

val run_each_once : ?seed:int -> ?delay:Sim.Delay.t -> Counter_intf.counter -> n:int -> report
(** The lower-bound setting: each processor increments exactly once. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Reusable value predicates}

    The checks the report's [correct] verdict is built from, exposed so
    other verification surfaces (the exhaustive order sweep, the
    delivery-interleaving model checker) apply {e the same} definitions
    rather than re-deriving them. *)

val values_sequential : int array -> bool
(** Values are exactly [0, 1, ..., ops-1] {e in order} — what sequential
    (run-to-quiescence) execution of a correct counter must produce. *)

val values_permutation : int array -> bool
(** The multiset of values is exactly [{0 .. ops-1}] — correctness
    irrespective of completion order. *)

val values_distinct : int array -> bool
(** No value was returned twice — the weakest guarantee, the one that
    must survive even crash faults (a lost answer may leave a gap, a
    duplicated answer is always a bug). *)

val load_profile :
  ?seed:int -> Counter_intf.counter -> n:int -> schedule:Schedule.t -> int array
(** Like {!run} but returns the dense per-processor load array
    (index 0 unused) for distribution experiments. *)

(** {1 Open-loop load runs}

    The closed-loop {!run} waits for each operation to finish before
    dispatching the next; {!run_load} does the opposite — operations are
    injected at times drawn from a {!Sim.Arrivals} process whether or not
    earlier ones have completed, so the counter genuinely handles
    overlapping operations and the report carries the concurrent-history
    verdicts of {!History.analyze} (docs/LOAD.md). *)

type load_report = {
  counter_name : string;
  n : int;
  arrivals : string;  (** {!Sim.Arrivals.to_string} of the process. *)
  requested : int;  (** Operations injected. *)
  completed : int;  (** Operations whose value reached their origin. *)
  lost : int;
      (** [requested - completed] (non-zero only under a fault plan). *)
  makespan : float;
      (** Virtual time from first invocation to last completion. *)
  throughput : float;  (** [completed / makespan] (ops per time unit). *)
  latency : Analysis.Histogram.latency_summary;
      (** p50/p90/p99/max of per-operation invocation-to-completion time
          (all zero when nothing completed). *)
  analysis : History.analysis;
      (** Linearizability and quiescent-consistency verdicts plus
          peak/mean overlap — what [dcount load --check] gates on. *)
  history : History.op list;
      (** The full concurrent history, for downstream analysis. *)
  total_messages : int;
  bottleneck_proc : int;
  bottleneck_load : int;
  average_load : float;
}

val run_load :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?sim_domains:int ->
  Counter_intf.concurrent ->
  n:int ->
  arrivals:Sim.Arrivals.t ->
  ops:int ->
  load_report
(** [run_load (module C) ~n ~arrivals ~ops] creates a fresh counter for
    [C.supported_n n] processors, injects [ops] operations at the times
    of {!Sim.Arrivals.merge} (computed up front from [seed + 1], so the
    plan is bit-identical for every [sim_domains] value, like {!run}),
    runs to quiescence and joins completions back to invocation times by
    operation id. Operations that never complete (crashes, lost
    messages) are counted in [lost], not silently dropped. *)

val pp_load_report : Format.formatter -> load_report -> unit
(** Includes the violation witness when the history is not
    linearizable. *)
