(** Operation schedules: which processor initiates which [inc].

    The paper's lower bound is derived for the strictest case, "each
    processor initiates exactly one inc operation" ({!Each_once}); the
    other schedules exercise the counters under more and less favourable
    request patterns. *)

type t =
  | Each_once
      (** Processors [1 .. n] in identifier order, one operation each —
          the lower-bound setting. *)
  | Each_once_shuffled
      (** Each processor exactly once, in a seed-determined random order. *)
  | Round_robin of int
      (** [Round_robin ops]: origins [1, 2, ..., n, 1, 2, ...] for a total
          of [ops] operations. *)
  | Random of int
      (** [Random ops]: each origin drawn uniformly. *)
  | Single_origin of int * int
      (** [Single_origin (p, ops)]: processor [p] initiates all [ops]
          operations — the degenerate case the paper excludes from the
          lower bound ("the amount of achievable distribution is limited if
          many operations are initiated by a single processor"). *)
  | Explicit of int list  (** Fully specified origin sequence. *)

val origins : t -> Sim.Rng.t -> n:int -> int list
(** Materialise the origin sequence for an [n]-processor network. Raises
    [Invalid_argument] if an origin is out of range. *)

val ops : t -> n:int -> int
(** Number of operations the schedule will perform. *)

val to_string : t -> string
(** Canonical compact form: [each-once], [shuffled], [round-robin:OPS],
    [random:OPS], [single:P:OPS] or [explicit:P,P,...] — the grammar the
    CLI accepts and the model checker's counterexample files embed.
    [of_string (to_string t) = Ok t]. *)

val of_string : string -> (t, string) result

val name : t -> string

val pp : Format.formatter -> t -> unit
