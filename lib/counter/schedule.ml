type t =
  | Each_once
  | Each_once_shuffled
  | Round_robin of int
  | Random of int
  | Single_origin of int * int
  | Explicit of int list

let ops t ~n =
  match t with
  | Each_once | Each_once_shuffled -> n
  | Round_robin ops | Random ops -> ops
  | Single_origin (_, ops) -> ops
  | Explicit l -> List.length l

let check_range ~n origins =
  List.iter
    (fun p ->
      if p < 1 || p > n then
        invalid_arg
          (Printf.sprintf "Schedule: origin %d out of range 1..%d" p n))
    origins;
  origins

let origins t rng ~n =
  let l =
    match t with
    | Each_once -> List.init n (fun i -> i + 1)
    | Each_once_shuffled ->
        let a = Array.init n (fun i -> i + 1) in
        Sim.Rng.shuffle rng a;
        Array.to_list a
    | Round_robin ops -> List.init ops (fun i -> (i mod n) + 1)
    | Random ops -> List.init ops (fun _ -> 1 + Sim.Rng.int rng n)
    | Single_origin (p, ops) -> List.init ops (fun _ -> p)
    | Explicit l -> l
  in
  check_range ~n l

(* Compact textual grammar, shared by the CLI and the model checker's
   counterexample files (which must round-trip byte-for-byte). *)
let to_string = function
  | Each_once -> "each-once"
  | Each_once_shuffled -> "shuffled"
  | Round_robin ops -> Printf.sprintf "round-robin:%d" ops
  | Random ops -> Printf.sprintf "random:%d" ops
  | Single_origin (p, ops) -> Printf.sprintf "single:%d:%d" p ops
  | Explicit l -> "explicit:" ^ String.concat "," (List.map string_of_int l)

let of_string s =
  match String.split_on_char ':' s with
  | [ "each-once" ] -> Ok Each_once
  | [ "shuffled" ] -> Ok Each_once_shuffled
  | [ "round-robin"; ops ] -> (
      match int_of_string_opt ops with
      | Some ops -> Ok (Round_robin ops)
      | None -> Error "round-robin:OPS needs an integer")
  | [ "random"; ops ] -> (
      match int_of_string_opt ops with
      | Some ops -> Ok (Random ops)
      | None -> Error "random:OPS needs an integer")
  | [ "single"; p; ops ] -> (
      match (int_of_string_opt p, int_of_string_opt ops) with
      | Some p, Some ops -> Ok (Single_origin (p, ops))
      | _ -> Error "single:P:OPS needs two integers")
  | [ "explicit"; origins ] -> (
      let parts =
        List.map int_of_string_opt (String.split_on_char ',' origins)
      in
      if List.exists (fun o -> o = None) parts then
        Error "explicit:P,P,... needs comma-separated integers"
      else Ok (Explicit (List.filter_map Fun.id parts)))
  | _ ->
      Error
        "schedule is each-once | shuffled | round-robin:OPS | random:OPS | \
         single:P:OPS | explicit:P,P,..."

let name = function
  | Each_once -> "each-once"
  | Each_once_shuffled -> "each-once-shuffled"
  | Round_robin _ -> "round-robin"
  | Random _ -> "random"
  | Single_origin _ -> "single-origin"
  | Explicit _ -> "explicit"

let pp ppf t =
  match t with
  | Each_once -> Format.pp_print_string ppf "each-once"
  | Each_once_shuffled -> Format.pp_print_string ppf "each-once-shuffled"
  | Round_robin ops -> Format.fprintf ppf "round-robin(%d)" ops
  | Random ops -> Format.fprintf ppf "random(%d)" ops
  | Single_origin (p, ops) -> Format.fprintf ppf "single-origin(p%d,%d)" p ops
  | Explicit l -> Format.fprintf ppf "explicit(%d ops)" (List.length l)
