type report = {
  counter_name : string;
  n : int;
  ops : int;
  schedule : string;
  values : int array;
  completed : int;
  stalled : int;
  stall_reasons : string list;
  correct : bool;
  hotspot_ok : bool;
  hotspot_violations : int;
  total_messages : int;
  bottleneck_proc : int;
  bottleneck_load : int;
  average_load : float;
  max_op_messages : int;
  overflow_processors : int;
  emergency_retirements : int;
  recoveries : int;
  mean_op_latency : float;
  max_op_latency : float;
}

let values_sequential values =
  let ok = ref true in
  Array.iteri (fun i v -> if v <> i then ok := false) values;
  !ok

let values_permutation values =
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  values_sequential sorted

let values_distinct values =
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  let ok = ref true in
  Array.iteri
    (fun i v -> if i > 0 && sorted.(i - 1) = v then ok := false)
    sorted;
  !ok

let run ?(seed = 42) ?delay ?faults ?(sim_domains = 1)
    (module C : Counter_intf.S) ~n ~schedule =
  let n = C.supported_n n in
  let counter =
    (* Counters build their networks inside [create]; the ambient shard
       count reaches them there (see Sim.Network.with_shards). Dispatch
       stays sequential, so reports are bit-identical for any count. *)
    if sim_domains = 1 then C.create ?delay ?faults ~seed ~n ()
    else
      Sim.Network.with_shards sim_domains (fun () ->
          C.create ?delay ?faults ~seed ~n ())
  in
  let schedule_rng = Sim.Rng.create ~seed:(seed + 1) in
  let origins = Schedule.origins schedule schedule_rng ~n in
  let outcomes = List.map (fun origin -> C.inc_result counter ~origin) origins in
  let values =
    Array.of_list (List.filter_map Counter_intf.outcome_value outcomes)
  in
  let stall_reasons =
    List.filter_map
      (function
        | Counter_intf.Stalled reason -> Some reason
        | Counter_intf.Completed _ -> None)
      outcomes
  in
  let stalled = List.length stall_reasons in
  let traces = C.traces counter in
  let violations = Hotspot.check traces in
  let metrics = C.metrics counter in
  let bottleneck_proc, bottleneck_load = Sim.Metrics.bottleneck metrics in
  let max_op_messages =
    List.fold_left (fun acc t -> max acc (Sim.Trace.message_count t)) 0 traces
  in
  let total_latency, max_op_latency =
    List.fold_left
      (fun (total, worst) t ->
        let d = Sim.Trace.duration t in
        (total +. d, Float.max worst d))
      (0., 0.) traces
  in
  let mean_op_latency =
    match traces with
    | [] -> 0.
    | _ -> total_latency /. float_of_int (List.length traces)
  in
  {
    counter_name = C.name;
    n;
    ops = List.length outcomes;
    schedule = Format.asprintf "%a" Schedule.pp schedule;
    values;
    completed = Array.length values;
    stalled;
    stall_reasons;
    correct = stalled = 0 && values_sequential values;
    hotspot_ok = violations = [];
    hotspot_violations = List.length violations;
    total_messages = Sim.Metrics.total_messages metrics;
    bottleneck_proc;
    bottleneck_load;
    average_load = Sim.Metrics.average_load metrics;
    max_op_messages;
    overflow_processors = Sim.Metrics.overflow_processors metrics;
    emergency_retirements = Sim.Metrics.emergency_retirements metrics;
    recoveries = Sim.Metrics.recoveries metrics;
    mean_op_latency;
    max_op_latency;
  }

let run_each_once ?seed ?delay c ~n = run ?seed ?delay c ~n ~schedule:Schedule.Each_once

let load_profile ?(seed = 42) (module C : Counter_intf.S) ~n ~schedule =
  let n = C.supported_n n in
  let counter = C.create ~seed ~n () in
  let schedule_rng = Sim.Rng.create ~seed:(seed + 1) in
  let origins = Schedule.origins schedule schedule_rng ~n in
  List.iter (fun origin -> ignore (C.inc counter ~origin)) origins;
  Sim.Metrics.load_array (C.metrics counter)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>counter=%s n=%d ops=%d schedule=%s@,\
     correct=%b hotspot_ok=%b (violations=%d)@,\
     messages=%d bottleneck=p%d(%d) avg_load=%.2f max_op_msgs=%d overflow=%d@,\
     latency: mean=%.2f max=%.2f (virtual time)@]"
    r.counter_name r.n r.ops r.schedule r.correct r.hotspot_ok
    r.hotspot_violations r.total_messages r.bottleneck_proc r.bottleneck_load
    r.average_load r.max_op_messages r.overflow_processors r.mean_op_latency
    r.max_op_latency;
  if r.emergency_retirements > 0 || r.recoveries > 0 then
    Format.fprintf ppf "@,emergency_retirements=%d recoveries=%d"
      r.emergency_retirements r.recoveries;
  if r.stalled > 0 then
    Format.fprintf ppf "@,completed=%d/%d stalled=%d (first: %s)" r.completed
      r.ops r.stalled
      (match r.stall_reasons with [] -> "-" | reason :: _ -> reason)
