type report = {
  counter_name : string;
  n : int;
  ops : int;
  schedule : string;
  values : int array;
  completed : int;
  stalled : int;
  stall_reasons : string list;
  values_exact : bool;
  sequentially_ordered : bool;
  hotspot_ok : bool;
  hotspot_violations : int;
  total_messages : int;
  bottleneck_proc : int;
  bottleneck_load : int;
  average_load : float;
  max_op_messages : int;
  overflow_processors : int;
  emergency_retirements : int;
  recoveries : int;
  mean_op_latency : float;
  max_op_latency : float;
}

let values_sequential values =
  let ok = ref true in
  Array.iteri (fun i v -> if v <> i then ok := false) values;
  !ok

let values_permutation values =
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  values_sequential sorted

let values_distinct values =
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  let ok = ref true in
  Array.iteri
    (fun i v -> if i > 0 && sorted.(i - 1) = v then ok := false)
    sorted;
  !ok

let run ?(seed = 42) ?delay ?faults ?(sim_domains = 1)
    (module C : Counter_intf.S) ~n ~schedule =
  let n = C.supported_n n in
  let counter =
    (* Counters build their networks inside [create]; the ambient shard
       count reaches them there (see Sim.Network.with_shards). Dispatch
       stays sequential, so reports are bit-identical for any count. *)
    if sim_domains = 1 then C.create ?delay ?faults ~seed ~n ()
    else
      Sim.Network.with_shards sim_domains (fun () ->
          C.create ?delay ?faults ~seed ~n ())
  in
  let schedule_rng = Sim.Rng.create ~seed:(seed + 1) in
  let origins = Schedule.origins schedule schedule_rng ~n in
  let outcomes = List.map (fun origin -> C.inc_result counter ~origin) origins in
  let values =
    Array.of_list (List.filter_map Counter_intf.outcome_value outcomes)
  in
  let stall_reasons =
    List.filter_map
      (function
        | Counter_intf.Stalled reason -> Some reason
        | Counter_intf.Completed _ -> None)
      outcomes
  in
  let stalled = List.length stall_reasons in
  let traces = C.traces counter in
  let violations = Hotspot.check traces in
  let metrics = C.metrics counter in
  let bottleneck_proc, bottleneck_load = Sim.Metrics.bottleneck metrics in
  let max_op_messages =
    List.fold_left (fun acc t -> max acc (Sim.Trace.message_count t)) 0 traces
  in
  let total_latency, max_op_latency =
    List.fold_left
      (fun (total, worst) t ->
        let d = Sim.Trace.duration t in
        (total +. d, Float.max worst d))
      (0., 0.) traces
  in
  let mean_op_latency =
    match traces with
    | [] -> 0.
    | _ -> total_latency /. float_of_int (List.length traces)
  in
  {
    counter_name = C.name;
    n;
    ops = List.length outcomes;
    schedule = Format.asprintf "%a" Schedule.pp schedule;
    values;
    completed = Array.length values;
    stalled;
    stall_reasons;
    values_exact = stalled = 0 && values_permutation values;
    sequentially_ordered = values_sequential values;
    hotspot_ok = violations = [];
    hotspot_violations = List.length violations;
    total_messages = Sim.Metrics.total_messages metrics;
    bottleneck_proc;
    bottleneck_load;
    average_load = Sim.Metrics.average_load metrics;
    max_op_messages;
    overflow_processors = Sim.Metrics.overflow_processors metrics;
    emergency_retirements = Sim.Metrics.emergency_retirements metrics;
    recoveries = Sim.Metrics.recoveries metrics;
    mean_op_latency;
    max_op_latency;
  }

let run_each_once ?seed ?delay c ~n = run ?seed ?delay c ~n ~schedule:Schedule.Each_once

let load_profile ?(seed = 42) (module C : Counter_intf.S) ~n ~schedule =
  let n = C.supported_n n in
  let counter = C.create ~seed ~n () in
  let schedule_rng = Sim.Rng.create ~seed:(seed + 1) in
  let origins = Schedule.origins schedule schedule_rng ~n in
  List.iter (fun origin -> ignore (C.inc counter ~origin)) origins;
  Sim.Metrics.load_array (C.metrics counter)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>counter=%s n=%d ops=%d schedule=%s@,\
     values_exact=%b ordered=%b hotspot_ok=%b (violations=%d)@,\
     messages=%d bottleneck=p%d(%d) avg_load=%.2f max_op_msgs=%d overflow=%d@,\
     latency: mean=%.2f max=%.2f (virtual time)@]"
    r.counter_name r.n r.ops r.schedule r.values_exact r.sequentially_ordered
    r.hotspot_ok
    r.hotspot_violations r.total_messages r.bottleneck_proc r.bottleneck_load
    r.average_load r.max_op_messages r.overflow_processors r.mean_op_latency
    r.max_op_latency;
  if r.emergency_retirements > 0 || r.recoveries > 0 then
    Format.fprintf ppf "@,emergency_retirements=%d recoveries=%d"
      r.emergency_retirements r.recoveries;
  if r.stalled > 0 then
    Format.fprintf ppf "@,completed=%d/%d stalled=%d (first: %s)" r.completed
      r.ops r.stalled
      (match r.stall_reasons with [] -> "-" | reason :: _ -> reason)

(* Open-loop load runs. *)

type load_report = {
  counter_name : string;
  n : int;
  arrivals : string;
  requested : int;
  completed : int;
  lost : int;
  makespan : float;
  throughput : float;
  latency : Analysis.Histogram.latency_summary;
  analysis : History.analysis;
  history : History.op list;
  total_messages : int;
  bottleneck_proc : int;
  bottleneck_load : int;
  average_load : float;
}

let run_load ?(seed = 42) ?delay ?faults ?(sim_domains = 1)
    (module C : Counter_intf.CONCURRENT) ~n ~arrivals ~ops =
  if ops < 1 then invalid_arg "Driver.run_load: ops must be >= 1";
  let n = C.supported_n n in
  let counter =
    if sim_domains = 1 then C.create ?delay ?faults ~seed ~n ()
    else
      Sim.Network.with_shards sim_domains (fun () ->
          C.create ?delay ?faults ~seed ~n ())
  in
  (* The arrival plan is a pure function of (arrivals, seed, n, ops),
     computed before the network runs: every operation's identity is its
     index, so completions can be joined back to invocation times no
     matter what order the protocol finishes them in. *)
  let plan = Sim.Arrivals.merge arrivals ~seed:(seed + 1) ~n ~ops in
  Array.iteri (fun op (at, origin) -> C.launch_at counter ~op ~origin ~at) plan;
  C.run_open counter;
  let history =
    List.filter_map
      (fun (op, value, completed_at) ->
        if op < 0 || op >= ops then None
        else
          let invoked_at, origin = plan.(op) in
          Some { History.origin; value; invoked_at; completed_at })
      (C.completions counter)
  in
  let completed = List.length history in
  let first_invoked, last_completed =
    List.fold_left
      (fun (first, last) (o : History.op) ->
        (Float.min first o.invoked_at, Float.max last o.completed_at))
      (infinity, neg_infinity) history
  in
  let makespan =
    if completed = 0 then 0. else last_completed -. first_invoked
  in
  let throughput =
    if makespan > 0. then float_of_int completed /. makespan else 0.
  in
  let latency =
    if completed = 0 then
      { Analysis.Histogram.p50 = 0.; p90 = 0.; p99 = 0.; max = 0. }
    else
      Analysis.Histogram.summary
        (Array.of_list
           (List.map
              (fun (o : History.op) -> o.completed_at -. o.invoked_at)
              history))
  in
  let metrics = C.metrics counter in
  let bottleneck_proc, bottleneck_load = Sim.Metrics.bottleneck metrics in
  {
    counter_name = C.name;
    n;
    arrivals = Sim.Arrivals.to_string arrivals;
    requested = ops;
    completed;
    lost = ops - completed;
    makespan;
    throughput;
    latency;
    analysis = History.analyze history;
    history;
    total_messages = Sim.Metrics.total_messages metrics;
    bottleneck_proc;
    bottleneck_load;
    average_load = Sim.Metrics.average_load metrics;
  }

let pp_load_report ppf r =
  let a = r.analysis in
  Format.fprintf ppf
    "@[<v>counter=%s n=%d arrivals=%s ops=%d completed=%d lost=%d@,\
     makespan=%.2f throughput=%.3f ops/unit@,\
     latency: p50=%.2f p90=%.2f p99=%.2f max=%.2f (virtual time)@,\
     overlap: peak=%d mean=%.2f@,\
     quiescently_consistent=%b linearizable=%b@,\
     messages=%d bottleneck=p%d(%d) avg_load=%.2f@]" r.counter_name r.n
    r.arrivals r.requested r.completed r.lost r.makespan r.throughput
    r.latency.Analysis.Histogram.p50 r.latency.Analysis.Histogram.p90
    r.latency.Analysis.Histogram.p99 r.latency.Analysis.Histogram.max
    a.History.peak_overlap a.History.mean_overlap a.History.quiescent
    a.History.linearizable r.total_messages r.bottleneck_proc
    r.bottleneck_load r.average_load;
  match a.History.verdict with
  | History.Linearizable -> ()
  | History.Violation (x, y) ->
      Format.fprintf ppf "@,witness: %a completed before %a was invoked"
        History.pp_op x History.pp_op y
