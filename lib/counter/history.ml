type op = {
  origin : int;
  value : int;
  invoked_at : float;
  completed_at : float;
}

type verdict = Linearizable | Violation of op * op

(* Total, deterministic orders so verdicts and witnesses are a pure
   function of the history multiset, never of input list order. *)
let cmp_fields k1 k2 a b =
  match Float.compare (k1 a) (k1 b) with
  | 0 -> (
      match Float.compare (k2 a) (k2 b) with
      | 0 -> (
          match Int.compare a.value b.value with
          | 0 -> Int.compare a.origin b.origin
          | c -> c)
      | c -> c)
  | c -> c

let by_invocation a b =
  cmp_fields (fun o -> o.invoked_at) (fun o -> o.completed_at) a b

let by_completion a b =
  cmp_fields (fun o -> o.completed_at) (fun o -> o.invoked_at) a b

exception Found of op * op

let check ops =
  (* Sweep operations in invocation order, maintaining the running
     maximum value over all operations already completed strictly before
     the current invocation: a violation exists iff that maximum ever
     exceeds the invoked operation's value. O(ops log ops); the witness
     [a] is the largest value completed before [b], the first violated
     operation in invocation order. *)
  let inv = Array.of_list ops in
  let comp = Array.copy inv in
  Array.sort by_invocation inv;
  Array.sort by_completion comp;
  let len = Array.length inv in
  let j = ref 0 in
  let best = ref None in
  try
    Array.iter
      (fun b ->
        while !j < len && comp.(!j).completed_at < b.invoked_at do
          (match !best with
          | Some a when a.value >= comp.(!j).value -> ()
          | Some _ | None -> best := Some comp.(!j));
          incr j
        done;
        match !best with
        | Some a when a.value > b.value -> raise (Found (a, b))
        | Some _ | None -> ())
      inv;
    Linearizable
  with Found (a, b) -> Violation (a, b)

let is_linearizable ops = match check ops with
  | Linearizable -> true
  | Violation _ -> false

let values_contiguous ops =
  let values = List.sort Int.compare (List.map (fun o -> o.value) ops) in
  values = List.init (List.length ops) Fun.id

(* Endpoint sweep shared by the peak and mean overlap measures.
   Completions sort before invocations at the same instant: an op ending
   exactly when another starts does not overlap it. *)
let sweep_events ops =
  let events =
    List.concat_map
      (fun o -> [ (o.invoked_at, 1); (o.completed_at, -1) ])
      ops
  in
  List.sort
    (fun (t1, d1) (t2, d2) ->
      match Float.compare t1 t2 with 0 -> Int.compare d1 d2 | c -> c)
    events

let concurrency_profile ops =
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, d) ->
        let cur = cur + d in
        (cur, max peak cur))
      (0, 0) (sweep_events ops)
  in
  peak

let mean_overlap ops =
  match sweep_events ops with
  | [] -> 0.
  | (t0, _) :: _ as events ->
      let _, t_last, area =
        List.fold_left
          (fun (cur, prev_t, area) (t, d) ->
            (cur + d, t, area +. (float_of_int cur *. (t -. prev_t))))
          (0, t0, 0.) events
      in
      let span = t_last -. t0 in
      if span > 0. then area /. span else 0.

type analysis = {
  verdict : verdict;
  quiescent : bool;
  linearizable : bool;
  peak_overlap : int;
  mean_overlap : float;
}

let analyze ops =
  let verdict = check ops in
  let quiescent = values_contiguous ops in
  {
    verdict;
    quiescent;
    linearizable =
      (quiescent && match verdict with Linearizable -> true | Violation _ -> false);
    peak_overlap = concurrency_profile ops;
    mean_overlap = mean_overlap ops;
  }

let pp_op ppf o =
  Format.fprintf ppf "p%d got %d [%.2f, %.2f]" o.origin o.value o.invoked_at
    o.completed_at

let pp_verdict ppf = function
  | Linearizable -> Format.pp_print_string ppf "linearizable"
  | Violation (a, b) ->
      Format.fprintf ppf "NOT linearizable: (%a) precedes (%a) in real time"
        pp_op a pp_op b
