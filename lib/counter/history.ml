type op = {
  origin : int;
  value : int;
  invoked_at : float;
  completed_at : float;
}

type verdict = Linearizable | Violation of op * op

let check ops =
  let arr = Array.of_list ops in
  let violation = ref Linearizable in
  (try
     Array.iter
       (fun a ->
         Array.iter
           (fun b ->
             if a.completed_at < b.invoked_at && a.value > b.value then begin
               violation := Violation (a, b);
               raise Exit
             end)
           arr)
       arr
   with Exit -> ());
  !violation

let is_linearizable ops = check ops = Linearizable

let values_contiguous ops =
  let values = List.sort Int.compare (List.map (fun o -> o.value) ops) in
  values = List.init (List.length ops) Fun.id

let concurrency_profile ops =
  (* Sweep over invocation/completion endpoints. *)
  let events =
    List.concat_map
      (fun o -> [ (o.invoked_at, 1); (o.completed_at, -1) ])
      ops
  in
  let sorted =
    (* Completions before invocations at the same instant: an op ending
       exactly when another starts does not overlap it. *)
    List.sort
      (fun (t1, d1) (t2, d2) ->
        match Float.compare t1 t2 with 0 -> Int.compare d1 d2 | c -> c)
      events
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, d) ->
        let cur = cur + d in
        (cur, max peak cur))
      (0, 0) sorted
  in
  peak

let pp_op ppf o =
  Format.fprintf ppf "p%d got %d [%.2f, %.2f]" o.origin o.value o.invoked_at
    o.completed_at

let pp_verdict ppf = function
  | Linearizable -> Format.pp_print_string ppf "linearizable"
  | Violation (a, b) ->
      Format.fprintf ppf "NOT linearizable: (%a) precedes (%a) in real time"
        pp_op a pp_op b
