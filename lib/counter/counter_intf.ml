(** The distributed-counter abstract data type (Section 2 of the paper).

    A distributed counter encapsulates an integer value [val] and supports
    one operation, [inc]: for any processor, [inc] returns the current
    counter value to the requesting processor and increments the counter by
    one (test-and-increment). Following the paper's model we assume enough
    time elapses between two [inc] requests that the preceding operation's
    process has finished before the next one starts; implementations run
    each operation's message exchange to quiescence before returning.

    Implementations own a {!Sim.Network} instance, so per-processor message
    loads and per-operation traces come for free and are comparable across
    counters.

    The paper assumes no failures; counters honour that by default. When a
    {!Sim.Fault} plan is supplied at creation, an operation may instead
    {e stall}: the process reaches quiescence without delivering a value
    (a crashed worker, a lost message). Stalls are a typed outcome
    ({!Stalled}), never a hang and never an untyped exception. *)

exception Stall of string
(** Raised by [inc] when the operation's process reached quiescence
    without returning a value — only possible under an active fault plan.
    The string says what was detected ("holder crashed", "no value
    returned", ...). The counter stays quiescent and usable: later
    operations from surviving processors may still complete. *)

type outcome = Completed of int | Stalled of string
(** Result of one increment under faults: the value returned, or the
    stall reason. *)

let result_of_inc f =
  match f () with v -> Completed v | exception Stall reason -> Stalled reason

let outcome_value = function Completed v -> Some v | Stalled _ -> None

let pp_outcome ppf = function
  | Completed v -> Format.fprintf ppf "%d" v
  | Stalled reason -> Format.fprintf ppf "stalled(%s)" reason

module type S = sig
  type t

  val name : string
  (** Short stable identifier ("central", "retire-tree", ...). *)

  val describe : string
  (** One-line human description, shown by the CLI and benches. *)

  val supported_n : int -> int
  (** [supported_n n] rounds a requested network size up to the nearest
      size the construction supports (e.g. [k^(k+1)] for the paper's tree,
      a power of two for counting networks, a square for grids). The result
      is always [>= max 1 n]. *)

  val create :
    ?seed:int -> ?delay:Sim.Delay.t -> ?faults:Sim.Fault.t -> n:int -> unit -> t
  (** Build the counter for exactly [n] processors; callers should pass a
      value accepted by {!supported_n} (implementations raise
      [Invalid_argument] otherwise). [seed] makes runs reproducible.
      [faults] (default {!Sim.Fault.none}) is the deterministic fault
      plan handed to the underlying {!Sim.Network}; with [Fault.none]
      behaviour is bit-identical to a counter built without the
      parameter. *)

  val n : t -> int
  (** Number of processors. *)

  val inc : t -> origin:int -> int
  (** [inc t ~origin] performs one test-and-increment initiated by
      processor [origin] (in [1 .. n t]), runs the resulting process to
      quiescence, and returns the value the counter had. Raises {!Stall}
      if the process quiesced without producing a value (possible only
      under an active fault plan); the counter remains usable. *)

  val inc_result : t -> origin:int -> outcome
  (** {!inc} with the stall folded into a typed result — what fault
      experiments consume. *)

  val crashed : t -> int -> bool
  (** Whether processor [p] has crash-stopped in the underlying network
      (always [false] without a fault plan). Schedulers use this to route
      operations around dead origins. *)

  val value : t -> int
  (** Current counter value = number of completed [inc]s. *)

  val metrics : t -> Sim.Metrics.t
  (** Cumulative per-processor message loads. *)

  val traces : t -> Sim.Trace.t list
  (** Traces of all completed operations, chronological. *)

  val clone : t -> t
  (** Deep copy of the quiescent counter state (same future behaviour).
      Used by the lower-bound adversary to evaluate hypothetical
      operations without committing them. *)
end

type counter = (module S)

(** {1 Open-loop concurrency}

    The paper's "enough time elapses between operations" assumption is
    what {!S.inc}'s run-to-quiescence encodes. A counter that can absorb
    genuine overlap additionally implements [CONCURRENT]: operations are
    {e injected} at arrival times drawn from an open-loop process
    ({!Sim.Arrivals}) without waiting for earlier operations, and
    completions are matched back by an explicit operation id — an origin
    may have many operations in flight at once, so origin alone cannot
    pair requests with replies.

    Protocol contract: {!CONCURRENT.launch_at} is called once per
    operation, in non-decreasing [at] order with distinct [op] ids
    [>= 0], all before {!CONCURRENT.run_open}. A genuinely concurrent
    protocol schedules each injection as a local timer on its own
    network and lets one {!Sim.Network.run_to_quiescence} drain
    everything; a serialising protocol (the paper's retire tree) may
    instead process each arrival synchronously inside [launch_at] —
    queueing delay then shows up in its completion times, which is
    exactly the honest cost of serialisation. Per-operation traces are
    not recorded in this mode (trace bracketing assumes one operation at
    a time); metrics still accumulate. *)

module type CONCURRENT = sig
  include S

  val launch_at : t -> op:int -> origin:int -> at:float -> unit
  (** Inject operation [op] from [origin] at virtual time [at]
      (monotone across calls; [at >=] the network's current time). *)

  val run_open : t -> unit
  (** Drain the network: every launched operation either completes or —
      under an active fault plan — is abandoned. *)

  val completions : t -> (int * int * float) list
  (** [(op, value, completed_at)] for every completed open-loop
      operation, in completion order. Operations launched but absent
      here were lost to faults. *)
end

type concurrent = (module CONCURRENT)
