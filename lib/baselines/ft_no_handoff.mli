(** Negative control for the failure-aware retire tree: identical to
    {!Core.Retire_ft} except that an emergency retirement skips the
    job-description handoff, so the successor starts from a blank role —
    a deposed root forgets the counter value and re-issues numbers it
    already handed out. Exists to prove that the model checker's crash
    adversary and the chaos harness actually detect state loss (the
    stored counterexample in [test/data] replays it deterministically). *)

include Counter.Counter_intf.S
