(* Negative control for the failure-aware retire tree: identical to
   [Core.Retire_ft] except that an emergency retirement skips the
   job-description handoff, so the successor starts from a blank role —
   a deposed root forgets the counter value and re-issues numbers it
   already handed out. The model checker's crash adversary must find the
   resulting duplicate (stored counterexample in test/data). *)

module Ft = Core.Retire_ft

type t = Ft.t

let name = "ft-no-handoff"

let describe =
  "broken: retire-ft whose emergency retirement skips the handoff, so a \
   re-staffed root restarts from zero"

let supported_n = Ft.supported_n

let create ?seed ?delay ?faults ~n () =
  match Core.Params.k_of_n_exact n with
  | Some k ->
      Ft.create_with ?seed ?delay ?faults ~emergency_handoff:false
        (Ft.paper_config ~k)
  | None ->
      invalid_arg
        (Printf.sprintf
           "Ft_no_handoff.create: n = %d is not of the form k^(k+1); use \
            supported_n"
           n)

let n = Ft.n

let value = Ft.value

let metrics = Ft.metrics

let traces = Ft.traces

let inc = Ft.inc

let inc_result = Ft.inc_result

let crashed = Ft.crashed

let clone = Ft.clone
