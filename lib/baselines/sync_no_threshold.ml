(* Negative control for the phase-king counter: identical to
   [Core.Sync_counter] except that round 3 adopts the king's tiebreaker
   unconditionally — the [mult2 >= n - f] guard that lets replicas ignore
   a lying king is skipped. A Byzantine king that equivocates in the last
   phase then deterministically splits the correct replicas, and the
   per-op agreement oracle raises the "spec: agreement violated" stall
   the model checker's corruption adversary must find (stored
   counterexample in test/data). *)

module Sc = Core.Sync_counter

type t = Sc.t

let name = "sync-no-threshold"

let describe =
  "broken: phase-king counting whose replicas adopt the king's value \
   unconditionally, so an equivocating king splits them"

let supported_n = Sc.supported_n

let create ?seed ?delay ?faults ~n () =
  Sc.create_with ?seed ?delay ?faults ~guard:false ~n ()

let n = Sc.n

let value = Sc.value

let metrics = Sc.metrics

let traces = Sc.traces

let inc = Sc.inc

let inc_result = Sc.inc_result

let crashed = Sc.crashed

let clone = Sc.clone
