type payload =
  | Read_req of { round : int }
  | Read_rep of { round : int; value : int; version : int }
  | Write_req of { round : int; value : int; version : int }
  | Write_ack of { round : int }

let label = function
  | Read_req _ -> "read"
  | Read_rep _ -> "read-rep"
  | Write_req _ -> "write"
  | Write_ack _ -> "ack"

(* The in-flight operation of the (sequential) client. [round] stamps one
   quorum attempt: replies carry the round back, so a retry can tell fresh
   replies from stragglers of an earlier attempt. [pending] lists members
   that have not answered this round (membership, not a count, so a
   duplicated reply cannot be counted twice); [awaiting] is how many more
   answers the phase needs (= |pending| normally; a majority in fallback
   mode, where the request goes to everyone and crashed members never
   answer). *)
type op_phase =
  | Idle
  | Reading of {
      origin : int;
      round : int;
      members : int list;
      fallback : bool;
      mutable pending : int list;
      mutable awaiting : int;
      mutable best_value : int;
      mutable best_version : int;
    }
  | Writing of {
      origin : int;
      round : int;
      fallback : bool;
      mutable pending : int list;
      mutable awaiting : int;
      value : int;
      version : int;
      result : int;
    }

(* Virtual-time budget for the first attempt of a phase; doubled on every
   retry (exponential backoff). Generous against the ~1-unit delay models
   so fault-free-slow is rarely mistaken for dead — and timers are local
   (no load), so patience costs nothing the paper counts. *)
let initial_timeout = 32.

(* Attempt budget per operation before the client reports a stall. *)
let max_attempts = 8

module Make (Q : Quorum.Quorum_intf.S) = struct
  type t = {
    net : payload Sim.Network.t;
    n : int;
    system : Q.t;
    failure_aware : bool;
        (* true iff created with a fault plan: only then are timeout
           timers armed and suspicion tracked, so fault-free runs are
           bit-identical to the pre-fault-layer protocol *)
    values : int array;  (* registers, index = processor *)
    versions : int array;
    local_ops : int array;
        (* per-processor operation counts: quorum choice must depend only
           on state the origin knows locally, or the process of a
           hypothetical operation would change when unrelated processors
           act — violating the prefix-stability the lower-bound proof
           relies on (and which any real distributed client satisfies) *)
    suspected : bool array option array;
        (* per-origin failure detector (lazily allocated row of n+1
           flags): origin-local for the same prefix-stability reason *)
    mutable phase : op_phase;
    mutable round : int;  (* monotone attempt stamp, never reset *)
    mutable attempts : int;  (* attempts consumed by the current op *)
    mutable cur_timeout : float;
    mutable op_slot : int;  (* rotation slot of the current op *)
    mutable ops : int;
    mutable last_returned : int;
    mutable stall : string option;
    mutable retries : int;  (* observer tallies *)
    mutable fallbacks : int;
    mutable traces_rev : Sim.Trace.t list;
    mutable conc_rounds : (int, cop) Hashtbl.t option;
        (* Open-loop client: one record per in-flight operation, keyed by
           the round stamp of its current phase. Allocated by the first
           [launch_at]; [None] on the sequential path, whose behaviour is
           untouched. *)
    mutable conc_completed_rev : (int * int * float) list;
        (* op, value, completed_at *)
  }

  (* State of one open-loop operation. The phase logic mirrors the
     sequential client exactly (read-max, write-back, suspicion, backoff,
     majority fallback) but lives in its own record so any number of
     operations can be in flight; replies find their operation through
     the round stamp, never through a global phase. *)
  and cop = {
    c_op : int;
    c_origin : int;
    c_slot : int;
    mutable c_round : int;
    mutable c_phase : phase_kind;
    mutable c_members : int list;
    mutable c_fallback : bool;
    mutable c_pending : int list;
    mutable c_awaiting : int;
    mutable c_best_value : int;
    mutable c_best_version : int;
    mutable c_wvalue : int;
    mutable c_wversion : int;
    mutable c_attempts : int;
    mutable c_timeout : float;
  }

  and phase_kind = Phase_read | Phase_write

  let name = "quorum-" ^ Q.name

  let describe = "read-max/write-back counter over " ^ Q.describe

  let supported_n = Q.supported_n

  let quorum_size t = Q.quorum_size t.system

  let retries t = t.retries

  let fallbacks t = t.fallbacks

  (* ---------------------------------------------------------------- *)
  (* Origin-local suspicion                                            *)

  let is_suspected t origin m =
    match t.suspected.(origin) with Some row -> row.(m) | None -> false

  let suspect t origin m =
    let row =
      match t.suspected.(origin) with
      | Some row -> row
      | None ->
          let row = Array.make (t.n + 1) false in
          t.suspected.(origin) <- Some row;
          row
    in
    if m >= 1 && m <= t.n then row.(m) <- true

  let unsuspect t origin m =
    match t.suspected.(origin) with
    | Some row when m >= 1 && m <= t.n -> row.(m) <- false
    | _ -> ()

  (* First quorum in rotation order from [from_slot] with no member the
     origin suspects — the client-side analogue of {!Quorum.Probe.search},
     driven by local suspicion instead of probe messages. [None] when
     suspicion blocks the whole rotation. *)
  let choose_quorum t ~origin ~from_slot =
    let distinct = Q.distinct_quorums t.system in
    let rec walk i =
      if i >= distinct then None
      else
        let members = Q.quorum t.system ~slot:(from_slot + i) in
        if List.exists (fun m -> is_suspected t origin m) members then
          walk (i + 1)
        else Some members
    in
    walk 0

  let everyone t = List.init t.n (fun i -> i + 1)

  let majority_need t = (t.n / 2) + 1

  (* ---------------------------------------------------------------- *)
  (* Registers                                                         *)

  let store t member ~value ~version =
    if version > t.versions.(member) then begin
      t.versions.(member) <- version;
      t.values.(member) <- value
    end

  (* ---------------------------------------------------------------- *)
  (* Client state machine                                              *)

  let rec arm_timeout t =
    if t.failure_aware then begin
      let round = t.round in
      Sim.Network.schedule_local t.net ~delay:t.cur_timeout (fun () ->
          if t.round = round then on_timeout t)
    end

  and next_round t =
    t.round <- t.round + 1;
    t.round

  and complete t ~result =
    t.phase <- Idle;
    ignore (next_round t);
    (* invalidate any armed timer *)
    t.last_returned <- result

  and abort t ~reason =
    t.phase <- Idle;
    ignore (next_round t);
    t.stall <- Some reason

  and start_read t ~origin ~fallback members =
    let remote = List.filter (fun m -> m <> origin) members in
    let is_member = List.mem origin members in
    let local_version = if is_member then t.versions.(origin) else -1 in
    let local_value = if is_member then t.values.(origin) else 0 in
    let awaiting =
      if fallback then majority_need t - (if is_member then 1 else 0)
      else List.length remote
    in
    let round = next_round t in
    let r =
      Reading
        {
          origin;
          round;
          members;
          fallback;
          pending = remote;
          awaiting;
          best_value = local_value;
          best_version = local_version;
        }
    in
    t.phase <- r;
    List.iter
      (fun m ->
        Sim.Network.send t.net ~src:origin ~dst:m (Read_req { round }))
      remote;
    if awaiting <= 0 then finish_read t
    else arm_timeout t

  and finish_read t =
    match t.phase with
    | Reading r ->
        start_write t ~origin:r.origin ~fallback:r.fallback r.members
          ~value:(r.best_value + 1) ~version:(r.best_version + 1)
    | Idle | Writing _ -> assert false

  and start_write t ~origin ~fallback members ~value ~version =
    (* [value] is the new counter value being installed; the operation
       returns [value - 1]. *)
    let remote = List.filter (fun m -> m <> origin) members in
    store t origin ~value ~version;
    let awaiting =
      if fallback then majority_need t - 1 else List.length remote
    in
    let round = next_round t in
    t.phase <-
      Writing
        {
          origin;
          round;
          fallback;
          pending = remote;
          awaiting;
          value;
          version;
          result = value - 1;
        };
    List.iter
      (fun m ->
        Sim.Network.send t.net ~src:origin ~dst:m
          (Write_req { round; value; version }))
      remote;
    if awaiting <= 0 then complete t ~result:(value - 1)
    else arm_timeout t

  (* A phase timed out: suspect the silent members, back off, and retry on
     the next quorum the origin still trusts — or on everyone (majority
     fallback) when suspicion blocks the whole rotation. *)
  and on_timeout t =
    match t.phase with
    | Idle -> ()
    | Reading { origin; pending; _ } ->
        retry t ~origin ~pending ~restart:(fun ~fallback members ->
            start_read t ~origin ~fallback members)
    | Writing { origin; pending; value; version; _ } ->
        retry t ~origin ~pending ~restart:(fun ~fallback members ->
            start_write t ~origin ~fallback members ~value ~version)

  and retry t ~origin ~pending ~restart =
    if Sim.Network.crashed t.net origin then
      abort t ~reason:"origin crashed mid-operation"
    else if t.attempts + 1 >= max_attempts then
      abort t
        ~reason:
          (Printf.sprintf "gave up after %d attempts (last quorum: %d silent)"
             (t.attempts + 1) (List.length pending))
    else begin
      t.attempts <- t.attempts + 1;
      t.retries <- t.retries + 1;
      List.iter (fun m -> if m <> origin then suspect t origin m) pending;
      t.cur_timeout <- t.cur_timeout *. 2.;
      match choose_quorum t ~origin ~from_slot:t.op_slot with
      | Some members -> restart ~fallback:false members
      | None ->
          t.fallbacks <- t.fallbacks + 1;
          restart ~fallback:true (everyone t)
    end

  (* ---------------------------------------------------------------- *)
  (* Open-loop concurrent client                                        *)

  let conc_table t =
    match t.conc_rounds with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 64 in
        t.conc_rounds <- Some tbl;
        tbl

  let conc_active t =
    match t.conc_rounds with Some _ -> true | None -> false

  (* Stamp the operation's current phase with a fresh round; the previous
     stamp (if any) stops resolving, so stragglers of a retried phase are
     dropped instead of double-counted. *)
  let conc_register t cop =
    let tbl = conc_table t in
    Hashtbl.remove tbl cop.c_round;
    let round = next_round t in
    cop.c_round <- round;
    Hashtbl.replace tbl round cop;
    round

  let conc_abandon t cop = Hashtbl.remove (conc_table t) cop.c_round

  let rec conc_arm t cop =
    if t.failure_aware then begin
      let round = cop.c_round in
      Sim.Network.schedule_local t.net ~delay:cop.c_timeout (fun () ->
          if Hashtbl.mem (conc_table t) round then conc_retry t cop)
    end

  and conc_start_read t cop =
    let origin = cop.c_origin in
    let remote = List.filter (fun m -> m <> origin) cop.c_members in
    let is_member = List.mem origin cop.c_members in
    cop.c_phase <- Phase_read;
    cop.c_best_version <- (if is_member then t.versions.(origin) else -1);
    cop.c_best_value <- (if is_member then t.values.(origin) else 0);
    cop.c_pending <- remote;
    cop.c_awaiting <-
      (if cop.c_fallback then majority_need t - (if is_member then 1 else 0)
       else List.length remote);
    let round = conc_register t cop in
    List.iter
      (fun m ->
        Sim.Network.send t.net ~src:origin ~dst:m (Read_req { round }))
      remote;
    if cop.c_awaiting <= 0 then conc_finish_read t cop else conc_arm t cop

  and conc_finish_read t cop =
    cop.c_wvalue <- cop.c_best_value + 1;
    cop.c_wversion <- cop.c_best_version + 1;
    conc_start_write t cop

  and conc_start_write t cop =
    let origin = cop.c_origin in
    let remote = List.filter (fun m -> m <> origin) cop.c_members in
    store t origin ~value:cop.c_wvalue ~version:cop.c_wversion;
    cop.c_phase <- Phase_write;
    cop.c_pending <- remote;
    cop.c_awaiting <-
      (if cop.c_fallback then majority_need t - 1 else List.length remote);
    let round = conc_register t cop in
    List.iter
      (fun m ->
        Sim.Network.send t.net ~src:origin ~dst:m
          (Write_req { round; value = cop.c_wvalue; version = cop.c_wversion }))
      remote;
    if cop.c_awaiting <= 0 then conc_complete t cop else conc_arm t cop

  and conc_complete t cop =
    Hashtbl.remove (conc_table t) cop.c_round;
    t.ops <- t.ops + 1;
    t.conc_completed_rev <-
      (cop.c_op, cop.c_wvalue - 1, Sim.Network.now t.net)
      :: t.conc_completed_rev

  and conc_retry t cop =
    if Sim.Network.crashed t.net cop.c_origin then conc_abandon t cop
    else if cop.c_attempts + 1 >= max_attempts then conc_abandon t cop
    else begin
      cop.c_attempts <- cop.c_attempts + 1;
      t.retries <- t.retries + 1;
      List.iter
        (fun m -> if m <> cop.c_origin then suspect t cop.c_origin m)
        cop.c_pending;
      cop.c_timeout <- cop.c_timeout *. 2.;
      (match choose_quorum t ~origin:cop.c_origin ~from_slot:cop.c_slot with
      | Some members ->
          cop.c_members <- members;
          cop.c_fallback <- false
      | None ->
          t.fallbacks <- t.fallbacks + 1;
          cop.c_members <- everyone t;
          cop.c_fallback <- true);
      match cop.c_phase with
      | Phase_read -> conc_start_read t cop
      | Phase_write -> conc_start_write t cop
    end

  let conc_launch t ~op ~origin =
    if Sim.Network.crashed t.net origin then ()
    else begin
      let slot = origin - 1 + (t.n * t.local_ops.(origin)) in
      t.local_ops.(origin) <- t.local_ops.(origin) + 1;
      let cop =
        {
          c_op = op;
          c_origin = origin;
          c_slot = slot;
          c_round = 0;
          c_phase = Phase_read;
          c_members = [];
          c_fallback = false;
          c_pending = [];
          c_awaiting = 0;
          c_best_value = 0;
          c_best_version = -1;
          c_wvalue = 0;
          c_wversion = 0;
          c_attempts = 0;
          c_timeout = initial_timeout;
        }
      in
      (match choose_quorum t ~origin ~from_slot:slot with
      | Some members -> cop.c_members <- members
      | None ->
          t.fallbacks <- t.fallbacks + 1;
          cop.c_members <- everyone t;
          cop.c_fallback <- true);
      conc_start_read t cop
    end

  (* ---------------------------------------------------------------- *)
  (* Message handler                                                   *)

  let handle t ~self ~src = function
    | Read_req { round } ->
        Sim.Network.send t.net ~src:self ~dst:src
          (Read_rep { round; value = t.values.(self); version = t.versions.(self) })
    | Write_req { round; value; version } ->
        store t self ~value ~version;
        Sim.Network.send t.net ~src:self ~dst:src (Write_ack { round })
    | Read_rep { round; value; version } -> (
        match
          match t.conc_rounds with
          | Some tbl -> Hashtbl.find_opt tbl round
          | None -> None
        with
        | Some cop ->
            if t.failure_aware then unsuspect t cop.c_origin src;
            if version > cop.c_best_version then begin
              cop.c_best_version <- version;
              cop.c_best_value <- value
            end;
            if List.mem src cop.c_pending then begin
              cop.c_pending <- List.filter (fun m -> m <> src) cop.c_pending;
              cop.c_awaiting <- cop.c_awaiting - 1;
              if cop.c_awaiting <= 0 then conc_finish_read t cop
            end
        | None when conc_active t ->
            (* Straggler of a retried or completed open-loop phase. *)
            ()
        | None -> (
        match t.phase with
        | Reading r ->
            if t.failure_aware then unsuspect t r.origin src;
            (* Read-max absorbs every reply, even a straggler from an
               earlier round: more information never hurts the read. *)
            if version > r.best_version then begin
              r.best_version <- version;
              r.best_value <- value
            end;
            if round = r.round && List.mem src r.pending then begin
              r.pending <- List.filter (fun m -> m <> src) r.pending;
              r.awaiting <- r.awaiting - 1;
              if r.awaiting <= 0 then finish_read t
            end
        | (Idle | Writing _) when t.failure_aware ->
            (* Straggler of a retried round: the phase moved on. *)
            ()
        | Idle | Writing _ ->
            failwith "Quorum_counter: unexpected read reply"))
    | Write_ack { round } -> (
        match
          match t.conc_rounds with
          | Some tbl -> Hashtbl.find_opt tbl round
          | None -> None
        with
        | Some cop ->
            if t.failure_aware then unsuspect t cop.c_origin src;
            if List.mem src cop.c_pending then begin
              cop.c_pending <- List.filter (fun m -> m <> src) cop.c_pending;
              cop.c_awaiting <- cop.c_awaiting - 1;
              if cop.c_awaiting <= 0 then conc_complete t cop
            end
        | None when conc_active t -> ()
        | None -> (
        match t.phase with
        | Writing w ->
            if t.failure_aware then unsuspect t w.origin src;
            if round = w.round && List.mem src w.pending then begin
              w.pending <- List.filter (fun m -> m <> src) w.pending;
              w.awaiting <- w.awaiting - 1;
              if w.awaiting <= 0 then complete t ~result:w.result
            end
        | (Idle | Reading _) when t.failure_aware -> ()
        | Idle | Reading _ ->
            failwith "Quorum_counter: unexpected write ack"))

  (* ---------------------------------------------------------------- *)
  (* Construction and the counter interface                            *)

  let create ?(seed = 42) ?delay ?(faults = Sim.Fault.none) ~n () =
    if Q.supported_n n <> n then
      invalid_arg ("Quorum_counter: unsupported n for " ^ Q.name);
    let net = Sim.Network.create ~seed ?delay ~faults ~label ~n () in
    let t =
      {
        net;
        n;
        system = Q.create ~n;
        failure_aware = not (Sim.Fault.is_none faults);
        values = Array.make (n + 1) 0;
        versions = Array.make (n + 1) 0;
        local_ops = Array.make (n + 1) 0;
        suspected = Array.make (n + 1) None;
        phase = Idle;
        round = 0;
        attempts = 0;
        cur_timeout = initial_timeout;
        op_slot = 0;
        ops = 0;
        last_returned = -1;
        stall = None;
        retries = 0;
        fallbacks = 0;
        traces_rev = [];
        conc_rounds = None;
        conc_completed_rev = [];
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle t ~self ~src payload);
    t

  let n t = t.n

  let value t = t.ops

  let metrics t = Sim.Network.metrics t.net

  let traces t = List.rev t.traces_rev

  let crashed t p = Sim.Network.crashed t.net p

  let inc t ~origin =
    if origin < 1 || origin > t.n then
      invalid_arg "Quorum_counter.inc: origin out of range";
    Sim.Network.begin_op t.net ~origin;
    t.last_returned <- -1;
    t.stall <- None;
    t.attempts <- 0;
    t.cur_timeout <- initial_timeout;
    (* Slot from origin-local state only: first access by origin [p] uses
       slot [p-1] (spreading the each-once sequence across the full
       rotation), later accesses jump by [n]. *)
    let slot = origin - 1 + (t.n * t.local_ops.(origin)) in
    t.local_ops.(origin) <- t.local_ops.(origin) + 1;
    t.op_slot <- slot;
    (match choose_quorum t ~origin ~from_slot:slot with
    | Some members -> start_read t ~origin ~fallback:false members
    | None ->
        t.fallbacks <- t.fallbacks + 1;
        start_read t ~origin ~fallback:true (everyone t));
    ignore (Sim.Network.run_to_quiescence t.net);
    let trace = Sim.Network.end_op t.net in
    t.traces_rev <- trace :: t.traces_rev;
    if t.last_returned < 0 then begin
      let reason =
        match t.stall with
        | Some r -> "Quorum_counter.inc: " ^ r
        | None -> "Quorum_counter.inc: operation did not complete"
      in
      abort t ~reason;
      raise (Counter.Counter_intf.Stall reason)
    end;
    t.ops <- t.ops + 1;
    t.last_returned

  let inc_result t ~origin =
    Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

  let launch_at t ~op ~origin ~at =
    if origin < 1 || origin > t.n then
      invalid_arg "Quorum_counter.launch_at: origin out of range";
    ignore (conc_table t);
    let delay = at -. Sim.Network.now t.net in
    if delay < 0. then
      invalid_arg "Quorum_counter.launch_at: arrival in the past";
    Sim.Network.schedule_local t.net ~delay (fun () ->
        conc_launch t ~op ~origin)

  let run_open t = ignore (Sim.Network.run_to_quiescence t.net)

  let completions t = List.rev t.conc_completed_rev

  let clone t =
    let net = Sim.Network.clone_quiescent t.net in
    let st =
      {
        net;
        n = t.n;
        system = t.system;
        failure_aware = t.failure_aware;
        values = Array.copy t.values;
        versions = Array.copy t.versions;
        local_ops = Array.copy t.local_ops;
        suspected = Array.map (Option.map Array.copy) t.suspected;
        phase = Idle;
        round = t.round;
        attempts = t.attempts;
        cur_timeout = t.cur_timeout;
        op_slot = t.op_slot;
        ops = t.ops;
        last_returned = t.last_returned;
        stall = t.stall;
        retries = t.retries;
        fallbacks = t.fallbacks;
        traces_rev = t.traces_rev;
        conc_rounds = Option.map Hashtbl.copy t.conc_rounds;
        conc_completed_rev = t.conc_completed_rev;
      }
    in
    Sim.Network.set_handler net (fun ~self ~src payload ->
        handle st ~self ~src payload);
    st
end

module Over_majority = Make (Quorum.Majority)
module Over_grid = Make (Quorum.Grid)
module Over_tree = Make (Quorum.Tree_quorum)
module Over_wall = Make (Quorum.Crumbling_wall)
module Over_plane = Make (Quorum.Projective_plane)
