(** Negative control for the durable WAL-backed counter: identical to
    {!Core.Durable_counter} except that every conditional store write
    becomes a blind put ([~cas:false]). Exists to prove the
    compare-and-swap guard is load-bearing: under the model checker's
    reordering adversary (the store destination is delivery-unordered) a
    retried stale append lands after a newer write and silently erases
    it — the oswald spec monitor flags the rewrite, and the stored
    counterexample in [test/data] replays it deterministically. *)

include Counter.Counter_intf.S
