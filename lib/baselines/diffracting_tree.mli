(** Diffracting trees (Shavit & Zemach, SPAA 1994 — cited by the paper).

    A binary tree of toggle balancers whose leaves are [width] local
    counters; a token walks root to leaf, turning left/right by each
    node's toggle, and leaf [i]'s [c]-th token gets value [i + width*c]
    (a counting tree, which satisfies the step property). The diffracting
    twist is the {e prism} in front of every toggle: two tokens that meet
    at a node within a short window pair up and "diffract" — one goes
    left, the other right — without touching the toggle, which is correct
    because a pair leaves any toggle's state unchanged. Under load, most
    tokens diffract and the hot toggle is relieved; a lone token waits
    out the prism window (a local timer, not a message) and then toggles.

    Sequentially there is never a partner, so every token toggles and the
    root host carries Theta(n) messages — the diffracting tree needs
    concurrency to shine, which experiment E11 demonstrates via
    {!run_batch}: with [b] concurrent tokens the root's message load per
    token approaches 1 (pass-through) instead of 2 (toggle round trips
    are unchanged, but pairing halves the tokens that serialise on the
    toggle; we measure {!toggle_hits} and {!diffractions}). *)

type t

val create_width :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?prism_window:float ->
  n:int ->
  width:int ->
  unit ->
  t
(** [width] must be a power of two ([>= 1]); [prism_window] (default 1.5
    virtual-time units) is how long a lone token waits for a partner. *)

val width : t -> int

val toggle_hits : t -> int
(** Tokens that passed through a toggle (serialised on a node host). *)

val diffractions : t -> int
(** Token {e pairs} that diffracted (each relieves the toggle of two
    tokens). *)

val output_counts : t -> int array

val step_property_held : t -> bool
(** Step property over leaf counters, checked at each quiescent point. *)

val run_batch : t -> origins:int list -> (int * int) list
(** Launch all origins concurrently; runs to quiescence and returns
    [(origin, value)] in completion order. Values are distinct and form a
    contiguous range, but are not linearizable — the E11 experiment
    checks exactly that. Counts as one traced operation. *)

val run_batch_timed :
  t -> ?stagger:float -> origins:int list -> unit -> Counter.History.op list
(** {!run_batch} with staggered injection and full intervals, for the
    E20 linearizability experiment. *)

include Counter.Counter_intf.CONCURRENT with type t := t
(** [create ~n] uses the same default width as the counting network
    (largest power of two [<= sqrt n]).

    Under open-loop load the prism actually pairs tokens (sequential
    dispatch never exercises it), but the per-leaf counters advance
    unevenly while tokens are in flight, so like the counting network
    the diffracting tree is quiescently consistent yet not linearizable
    under overlap. *)
