(** The strawman of the paper's introduction: a single processor stores
    the counter value and everyone else asks it.

    "A data structure implementing a distributed counter could be message
    optimal by just storing the counter value with a single processor and
    having all other processors access the counter with only one message
    exchange — such an implementation is clearly unreasonable [...] the
    single processor handling the counter value will be a bottleneck."

    Processor 1 is the holder. An [inc] from [p <> 1] costs one request
    and one reply; an [inc] from the holder itself is purely local (zero
    messages). Over the each-processor-once sequence the holder's load is
    [2(n-1)] = Theta(n), the message count is globally optimal, and the
    bottleneck is maximal — the anchor point of experiment E5. *)

include Counter.Counter_intf.CONCURRENT
(** Open-loop concurrency is natural here: the holder serves requests in
    delivery order, allocating values monotonically in virtual time, so
    the central counter stays linearizable at any load — it just pays
    the full bottleneck for it. *)

val holder : int
(** The processor storing the value ([= 1]). *)
