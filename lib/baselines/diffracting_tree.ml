(* [op] threads an operation id through a token's walk so the open-loop
   path can match completions when an origin has several tokens in
   flight; the sequential path uses op = -1 and is unchanged message for
   message. *)
type payload =
  | Token of { origin : int; op : int; node : int }
      (* walking the tree; [node] is a heap index, 1 = root *)
  | Exit of { origin : int; op : int; wire : int }
      (* token reached a leaf counter *)
  | Value of { origin : int; op : int; value : int }

let label = function
  | Token _ -> "token"
  | Exit _ -> "exit"
  | Value _ -> "val"

type node_state = {
  mutable toggle : bool;  (* true = next lone token goes left *)
  mutable waiting : (int * int) option;  (* (origin, op) of a parked token *)
  mutable generation : int;  (* invalidates stale prism timers *)
}

type t = {
  net : payload Sim.Network.t;
  n : int;
  width : int;
  prism_window : float;
  nodes : node_state array;  (* heap-indexed, slot 0 unused *)
  counts : int array;  (* per leaf wire *)
  mutable completed_rev : (int * int * int * float) list;
      (* origin, op, value, time *)
  mutable traces_rev : Sim.Trace.t list;
  mutable ops : int;
  mutable toggle_hits : int;
  mutable diffractions : int;
  mutable step_ok : bool;
}

let name = "diffracting"

let describe =
  "Shavit-Zemach diffracting tree: prism pairing under concurrency, \
   Theta(n) root load when sequential"

let supported_n n = max 1 n

let is_power_of_two w = w >= 1 && w land (w - 1) = 0

let log2 w =
  let rec go acc w = if w <= 1 then acc else go (acc + 1) (w / 2) in
  go 0 w

let bit_reverse ~bits x =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if x land (1 lsl i) <> 0 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let node_host t node = ((node - 1) mod t.n) + 1

let leaf_host t wire = ((t.width - 1 + wire) mod t.n) + 1

(* Child of heap node [i] in direction [dir] (0 = left): either another
   inner node or a leaf wire. *)
let forward t ~src ~origin ~op ~node ~dir =
  let child = (2 * node) + dir in
  if child >= t.width then
    let wire = child - t.width in
    Sim.Network.send t.net ~src ~dst:(leaf_host t wire)
      (Exit { origin; op; wire })
  else
    Sim.Network.send t.net ~src ~dst:(node_host t child)
      (Token { origin; op; node = child })

let handle st ~self ~src:_ = function
  | Value { origin; op; value } ->
      st.completed_rev <-
        (origin, op, value, Sim.Network.now st.net) :: st.completed_rev
  | Exit { origin; op; wire } ->
      (* A toggle tree routes the m-th token to the leaf whose index is
         the bit-reversal of m mod width, so leaf [wire] hands out the
         value sequence seeded at bitrev(wire). *)
      let seed = bit_reverse ~bits:(log2 st.width) wire in
      let value = seed + (st.width * st.counts.(seed)) in
      st.counts.(seed) <- st.counts.(seed) + 1;
      Sim.Network.send st.net ~src:self ~dst:origin (Value { origin; op; value })
  | Token { origin; op; node } -> (
      let nd = st.nodes.(node) in
      match nd.waiting with
      | Some (partner, partner_op) ->
          (* Diffraction: the pair splits left/right without touching the
             toggle. *)
          nd.waiting <- None;
          nd.generation <- nd.generation + 1;
          st.diffractions <- st.diffractions + 1;
          forward st ~src:self ~origin:partner ~op:partner_op ~node ~dir:0;
          forward st ~src:self ~origin ~op ~node ~dir:1
      | None ->
          nd.waiting <- Some (origin, op);
          nd.generation <- nd.generation + 1;
          let gen = nd.generation in
          Sim.Network.schedule_local st.net ~delay:st.prism_window (fun () ->
              let still_parked =
                nd.generation = gen
                &&
                match nd.waiting with
                | Some (o, p) -> o = origin && p = op
                | None -> false
              in
              if still_parked then begin
                (* Prism window expired with no partner: use the toggle. *)
                nd.waiting <- None;
                nd.generation <- nd.generation + 1;
                st.toggle_hits <- st.toggle_hits + 1;
                let dir = if nd.toggle then 0 else 1 in
                nd.toggle <- not nd.toggle;
                forward st ~src:self ~origin ~op ~node ~dir
              end))

let create_width ?(seed = 42) ?delay ?faults ?(prism_window = 1.5) ~n ~width () =
  if n < 1 then invalid_arg "Diffracting_tree: n must be >= 1";
  if not (is_power_of_two width) then
    invalid_arg "Diffracting_tree: width must be a power of two";
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let nodes =
    Array.init (max 1 width) (fun _ ->
        { toggle = true; waiting = None; generation = 0 })
  in
  let st =
    {
      net;
      n;
      width;
      prism_window;
      nodes;
      counts = Array.make width 0;
      completed_rev = [];
      traces_rev = [];
      ops = 0;
      toggle_hits = 0;
      diffractions = 0;
      step_ok = true;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st

let default_width n =
  if n <= 1 then 1
  else begin
    let target = int_of_float (sqrt (float_of_int n)) in
    let rec grow w = if 2 * w <= target then grow (2 * w) else w in
    max 2 (grow 1)
  end

let create ?seed ?delay ?faults ~n () =
  create_width ?seed ?delay ?faults ~n ~width:(default_width n) ()

let n t = t.n

let width t = t.width

let value t = t.ops

let toggle_hits t = t.toggle_hits

let diffractions t = t.diffractions

let output_counts t = Array.copy t.counts

let step_property_held t = t.step_ok

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let launch_op t ~op ~origin =
  if t.width = 1 then
    (* Degenerate tree: straight to the single leaf counter. *)
    Sim.Network.send t.net ~src:origin ~dst:(leaf_host t 0)
      (Exit { origin; op; wire = 0 })
  else
    Sim.Network.send t.net ~src:origin ~dst:(node_host t 1)
      (Token { origin; op; node = 1 })

let launch t ~origin = launch_op t ~op:(-1) ~origin

let finish_op t =
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  if not (Bitonic.step_property t.counts) then t.step_ok <- false

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Diffracting_tree.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  launch t ~origin;
  finish_op t;
  t.ops <- t.ops + 1;
  (* Chronologically first completion (duplication faults can deliver the
     value twice; without faults there is exactly one). *)
  match List.rev t.completed_rev with
  | (_, _, value, _) :: _ -> value
  | [] ->
      raise
        (Counter.Counter_intf.Stall
           "Diffracting_tree.inc: no value returned (node host crashed or \
            token lost)")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let run_batch t ~origins =
  (match origins with
  | [] -> invalid_arg "Diffracting_tree.run_batch: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  List.iter (fun origin -> launch t ~origin) origins;
  finish_op t;
  t.ops <- t.ops + List.length origins;
  List.rev_map (fun (o, _, v, _) -> (o, v)) t.completed_rev

let run_batch_timed t ?(stagger = 0.) ~origins () =
  (match origins with
  | [] -> invalid_arg "Diffracting_tree.run_batch_timed: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  let start = Sim.Network.now t.net in
  let invoked = Hashtbl.create (List.length origins) in
  List.iteri
    (fun i origin ->
      let at = start +. (float_of_int i *. stagger) in
      Hashtbl.replace invoked origin at;
      if Float.equal stagger 0. then launch t ~origin
      else
        Sim.Network.schedule_local t.net
          ~delay:(float_of_int i *. stagger)
          (fun () -> launch t ~origin))
    origins;
  finish_op t;
  t.ops <- t.ops + List.length origins;
  List.rev_map
    (fun (origin, _, value, completed_at) ->
      {
        Counter.History.origin;
        value;
        invoked_at = Hashtbl.find invoked origin;
        completed_at;
      })
    t.completed_rev

let launch_at t ~op ~origin ~at =
  if origin < 1 || origin > t.n then
    invalid_arg "Diffracting_tree.launch_at: origin out of range";
  let delay = at -. Sim.Network.now t.net in
  if delay < 0. then invalid_arg "Diffracting_tree.launch_at: arrival in the past";
  Sim.Network.schedule_local t.net ~delay (fun () -> launch_op t ~op ~origin)

let run_open t =
  ignore (Sim.Network.run_to_quiescence t.net);
  let done_ops =
    List.fold_left
      (fun acc (_, op, _, _) -> if op >= 0 then acc + 1 else acc)
      0 t.completed_rev
  in
  t.ops <- t.ops + done_ops;
  if not (Bitonic.step_property t.counts) then t.step_ok <- false

let completions t =
  List.filter_map
    (fun (_, op, value, at) -> if op >= 0 then Some (op, value, at) else None)
    (List.rev t.completed_rev)

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      net;
      n = t.n;
      width = t.width;
      prism_window = t.prism_window;
      nodes =
        Array.map
          (fun nd ->
            {
              toggle = nd.toggle;
              waiting = nd.waiting;
              generation = nd.generation;
            })
          t.nodes;
      counts = Array.copy t.counts;
      completed_rev = t.completed_rev;
      traces_rev = t.traces_rev;
      ops = t.ops;
      toggle_hits = t.toggle_hits;
      diffractions = t.diffractions;
      step_ok = t.step_ok;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
