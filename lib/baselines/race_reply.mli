(** A deliberately broken counter whose bug is {e order-sensitive}.

    A central counter (holder = processor 1) with a gratuitous
    "optimisation": besides the direct reply, the holder pushes the value
    to the origin a second time through a relay (processor 2) — reading
    the counter {e after} the increment, so the relayed copy is stale by
    one. The origin keeps whichever reply arrives first.

    Under the engine's default delivery order the one-hop direct reply
    always beats the two-hop relayed one, so the counter passes every
    schedule-sweep test in the repository — including the exhaustive
    order enumeration of {!Core.Exhaustive}, which varies {e operation}
    order but not {e delivery} order. Only the delivery-interleaving
    model checker ({!Mc.Explore}), which can deliver the relay's copy
    before the direct reply, exposes it: the origin returns [v + 1] and
    the values stop being a permutation. The counterexample replays
    deterministically (test/data/race_reply_n3.mcs).

    Registered in {!Registry.broken}, never in {!Registry.all}. *)

include Counter.Counter_intf.S
