type payload =
  | Request of { origin : int }
  | Reply of { value : int }
  | Echo of { origin : int; value : int }

let label = function
  | Request _ -> "req"
  | Reply _ -> "val"
  | Echo _ -> "echo"

type t = {
  net : payload Sim.Network.t;
  n : int;
  mutable value : int;
  mutable last_returned : int;
  mutable traces_rev : Sim.Trace.t list;
}

let name = "race-reply"

let describe =
  "broken: holder races a stale relayed reply against the direct one"

let holder = 1

let relay = 2

let supported_n n = max 3 n

(* The bug: besides the correct direct reply, the holder "helpfully"
   pushes the value to the origin a second time through a relay — but it
   builds that message after the increment, so the relayed copy carries
   [v + 1]. The origin keeps whichever reply arrives first. Under the
   default delivery order the direct reply (one hop) always beats the
   relayed one (two hops) and the counter looks correct on every
   schedule; only an adversarial scheduler that delays the direct reply
   behind both relay hops exposes the stale value. When the origin IS the
   relay both messages share the (holder, relay) link, whose FIFO order
   protects the direct reply — that origin is immune. *)
let handle st ~self ~src:_ = function
  | Request { origin } ->
      assert (self = holder);
      let v = st.value in
      st.value <- v + 1;
      Sim.Network.send st.net ~src:holder ~dst:origin (Reply { value = v });
      if origin <> relay then
        Sim.Network.send st.net ~src:holder ~dst:relay
          (Echo { origin; value = st.value })
  | Echo { origin; value } ->
      assert (self = relay);
      Sim.Network.send st.net ~src:relay ~dst:origin (Reply { value })
  | Reply { value } -> if st.last_returned < 0 then st.last_returned <- value

let create ?(seed = 42) ?delay ?faults ~n () =
  if n < 3 then invalid_arg "Race_reply.create: n must be >= 3";
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let st = { net; n; value = 0; last_returned = -1; traces_rev = [] } in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st

let n t = t.n

let value t = t.value

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Race_reply.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  let result =
    if origin = holder then begin
      let v = t.value in
      t.value <- v + 1;
      v
    end
    else begin
      t.last_returned <- -1;
      Sim.Network.send t.net ~src:origin ~dst:holder (Request { origin });
      ignore (Sim.Network.run_to_quiescence t.net);
      t.last_returned
    end
  in
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  if result < 0 then
    raise
      (Counter.Counter_intf.Stall
         "Race_reply.inc: no reply (holder crashed or message lost)");
  result

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      net;
      n = t.n;
      value = t.value;
      last_returned = t.last_returned;
      traces_rev = t.traces_rev;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
