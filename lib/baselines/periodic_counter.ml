(* The periodic counting network as a registry counter: the
   Counting_network wrapper over Periodic.build. *)

type t = Counting_network.t

let name = "periodic-net"

let describe =
  "AHS periodic counting network (reflector blocks); lg^2 w depth, \
   Theta(n/w) bottleneck"

let supported_n n = max 1 n

let default_width n =
  if n <= 1 then 1
  else begin
    let target = int_of_float (sqrt (float_of_int n)) in
    let rec grow w = if 2 * w <= target then grow (2 * w) else w in
    max 2 (grow 1)
  end

let create ?seed ?delay ?faults ~n () =
  Counting_network.create_custom ?seed ?delay ?faults ~n
    ~network:(Periodic.build ~width:(default_width n))
    ()

let n = Counting_network.n

let inc = Counting_network.inc

let inc_result = Counting_network.inc_result

let crashed = Counting_network.crashed

let value = Counting_network.value

let metrics = Counting_network.metrics

let traces = Counting_network.traces

let clone = Counting_network.clone
