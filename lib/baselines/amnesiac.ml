type t = {
  net : unit Sim.Network.t;
  n : int;
  locals : int array;
  mutable traces_rev : Sim.Trace.t list;
  mutable ops : int;
}

let name = "amnesiac"

let describe = "broken: purely local counting, no communication"

let supported_n n = max 1 n

let create ?(seed = 42) ?delay ?faults ~n () =
  {
    net = Sim.Network.create ~seed ?delay ?faults ~n ();
    n;
    locals = Array.make (n + 1) 0;
    traces_rev = [];
    ops = 0;
  }

let n t = t.n

let value t = t.ops

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let inc t ~origin =
  Sim.Network.begin_op t.net ~origin;
  let v = t.locals.(origin) in
  t.locals.(origin) <- v + 1;
  t.ops <- t.ops + 1;
  t.traces_rev <- Sim.Network.end_op t.net :: t.traces_rev;
  v

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let clone t =
  {
    net = Sim.Network.clone_quiescent t.net;
    n = t.n;
    locals = Array.copy t.locals;
    traces_rev = t.traces_rev;
    ops = t.ops;
  }
