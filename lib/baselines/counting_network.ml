(* [op] threads an operation id through a token's full traversal so the
   open-loop path can match completions when an origin has several
   operations in flight; the sequential path uses op = -1 and is
   unchanged message for message. *)
type payload =
  | Token of { origin : int; op : int; at : Bitonic.link }
  | Value of { value : int; op : int }

let label = function Token _ -> "token" | Value _ -> "val"

type t = {
  net : payload Sim.Network.t;
  n : int;
  bitonic : Bitonic.network;
  toggles : bool array;
  counts : int array;  (* per output wire *)
  mutable completed_rev : (int * int * int * float) list;
      (* origin, op, value, time *)
  mutable traces_rev : Sim.Trace.t list;
  mutable ops : int;
  mutable step_ok : bool;
}

let name = "counting-net"

let describe =
  "bitonic counting network (AHS); O(log^2 w) messages/op, Theta(n/w) \
   bottleneck"

let supported_n n = max 1 n

let width t = t.bitonic.Bitonic.width

let network_depth t = Bitonic.depth t.bitonic

let balancer_count t = Array.length t.bitonic.Bitonic.balancers

let output_counts t = Array.copy t.counts

let step_property_held t = t.step_ok

(* Hosting: spread balancers and output counters round-robin over the
   processors. *)
let balancer_host t id = (id mod t.n) + 1

let output_host t wire =
  ((balancer_count t + wire) mod t.n) + 1

let host_of_link t = function
  | Bitonic.To_balancer id -> balancer_host t id
  | Bitonic.To_output wire -> output_host t wire

let handle st ~self ~src:_ = function
  | Value { value; op } ->
      st.completed_rev <-
        (self, op, value, Sim.Network.now st.net) :: st.completed_rev
  | Token { origin; op; at } -> (
      match at with
      | Bitonic.To_output wire ->
          let w = st.bitonic.Bitonic.width in
          let value = wire + (w * st.counts.(wire)) in
          st.counts.(wire) <- st.counts.(wire) + 1;
          Sim.Network.send st.net ~src:(output_host st wire) ~dst:origin
            (Value { value; op })
      | Bitonic.To_balancer id ->
          let bal = st.bitonic.Bitonic.balancers.(id) in
          let top = st.toggles.(id) in
          st.toggles.(id) <- not top;
          let next = if top then bal.Bitonic.out_top else bal.Bitonic.out_bot in
          Sim.Network.send st.net ~src:(balancer_host st id)
            ~dst:(host_of_link st next)
            (Token { origin; op; at = next }))

let create_custom ?(seed = 42) ?delay ?faults ~n ~network:bitonic () =
  if n < 1 then invalid_arg "Counting_network: n must be >= 1";
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let st =
    {
      net;
      n;
      bitonic;
      toggles = Array.make (Array.length bitonic.Bitonic.balancers) true;
      counts = Array.make bitonic.Bitonic.width 0;
      completed_rev = [];
      traces_rev = [];
      ops = 0;
      step_ok = true;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st

let create_width ?seed ?delay ?faults ~n ~width () =
  create_custom ?seed ?delay ?faults ~n ~network:(Bitonic.build ~width) ()

let default_width n =
  if n <= 1 then 1
  else begin
    let target = int_of_float (sqrt (float_of_int n)) in
    let rec grow w = if 2 * w <= target then grow (2 * w) else w in
    max 2 (grow 1)
  end

let create ?seed ?delay ?faults ~n () =
  create_width ?seed ?delay ?faults ~n ~width:(default_width n) ()

let n t = t.n

let value t = t.ops

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let launch_op t ~op ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Counting_network: origin out of range";
  let wire = (origin - 1) mod t.bitonic.Bitonic.width in
  let entry = t.bitonic.Bitonic.entry.(wire) in
  Sim.Network.send t.net ~src:origin ~dst:(host_of_link t entry)
    (Token { origin; op; at = entry })

let launch t ~origin = launch_op t ~op:(-1) ~origin

let finish_op t =
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  if not (Bitonic.step_property t.counts) then t.step_ok <- false

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Counting_network: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  launch t ~origin;
  finish_op t;
  t.ops <- t.ops + 1;
  (* First completion for this origin (duplication faults can deliver the
     value twice; without faults there is exactly one). *)
  match
    List.find_opt (fun (o, _, _, _) -> o = origin) (List.rev t.completed_rev)
  with
  | Some (_, _, value, _) -> value
  | None ->
      raise
        (Counter.Counter_intf.Stall
           "Counting_network.inc: no value returned (balancer host crashed \
            or token lost)")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let run_batch t ~origins =
  (* Concurrent tokens — the regime counting networks were built for.
     All tokens traverse simultaneously; the result is quiescently
     consistent: a contiguous distinct value block, with the step
     property restored at quiescence. *)
  (match origins with
  | [] -> invalid_arg "Counting_network.run_batch: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  List.iter (fun origin -> launch t ~origin) origins;
  finish_op t;
  t.ops <- t.ops + List.length origins;
  List.rev_map (fun (o, _, v, _) -> (o, v)) t.completed_rev

let run_batch_timed t ?(stagger = 0.) ~origins () =
  (match origins with
  | [] -> invalid_arg "Counting_network.run_batch_timed: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  let start = Sim.Network.now t.net in
  let invoked = Hashtbl.create (List.length origins) in
  List.iteri
    (fun i origin ->
      let at = start +. (float_of_int i *. stagger) in
      Hashtbl.replace invoked origin at;
      if Float.equal stagger 0. then launch t ~origin
      else
        Sim.Network.schedule_local t.net
          ~delay:(float_of_int i *. stagger)
          (fun () -> launch t ~origin))
    origins;
  finish_op t;
  t.ops <- t.ops + List.length origins;
  List.rev_map
    (fun (origin, _, value, completed_at) ->
      {
        Counter.History.origin;
        value;
        invoked_at = Hashtbl.find invoked origin;
        completed_at;
      })
    t.completed_rev

let launch_at t ~op ~origin ~at =
  let delay = at -. Sim.Network.now t.net in
  if delay < 0. then invalid_arg "Counting_network.launch_at: arrival in the past";
  Sim.Network.schedule_local t.net ~delay (fun () -> launch_op t ~op ~origin)

let run_open t =
  ignore (Sim.Network.run_to_quiescence t.net);
  let done_ops =
    List.fold_left
      (fun acc (_, op, _, _) -> if op >= 0 then acc + 1 else acc)
      0 t.completed_rev
  in
  t.ops <- t.ops + done_ops;
  if not (Bitonic.step_property t.counts) then t.step_ok <- false

let completions t =
  List.filter_map
    (fun (_, op, value, at) -> if op >= 0 then Some (op, value, at) else None)
    (List.rev t.completed_rev)

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      net;
      n = t.n;
      bitonic = t.bitonic;
      toggles = Array.copy t.toggles;
      counts = Array.copy t.counts;
      completed_rev = t.completed_rev;
      traces_rev = t.traces_rev;
      ops = t.ops;
      step_ok = t.step_ok;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
