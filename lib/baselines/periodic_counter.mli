(** The periodic counting network ({!Periodic}) as a distributed counter —
    a second counting-network baseline for the registry, sharing
    {!Counting_network}'s message-passing wrapper. *)

include Counter.Counter_intf.S

val create :
  ?seed:int -> ?delay:Sim.Delay.t -> ?faults:Sim.Fault.t -> n:int -> unit -> t
