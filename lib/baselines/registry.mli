(** Central catalogue of every distributed-counter implementation in the
    repository, for the CLI, experiments and tests. *)

val retire_tree : Counter.Counter_intf.counter
(** The paper's counter ({!Core.Retire_counter}). *)

val retire_tree_local : Counter.Counter_intf.counter
(** The strictly processor-local variant ({!Core.Retire_local}). *)

val retire_ft : Counter.Counter_intf.counter
(** The failure-aware retire tree with emergency retirement and rejoin
    ({!Core.Retire_ft}). *)

val central : Counter.Counter_intf.counter

val static_tree : Counter.Counter_intf.counter

val combining : Counter.Counter_intf.counter

val counting_network : Counter.Counter_intf.counter

val periodic_network : Counter.Counter_intf.counter

val diffracting : Counter.Counter_intf.counter

val quorum_majority : Counter.Counter_intf.counter

val quorum_grid : Counter.Counter_intf.counter

val quorum_tree : Counter.Counter_intf.counter

val quorum_wall : Counter.Counter_intf.counter

val quorum_plane : Counter.Counter_intf.counter

val durable : Counter.Counter_intf.counter
(** The durable WAL-backed counter on the simulated object store
    ({!Core.Durable_counter}) — the one counter whose [recover:P@T]
    revival is not amnesia. *)

val sync_count : Counter.Counter_intf.counter
(** The phase-king synchronous-counting baseline tolerating f < n/3
    Byzantine processors ({!Core.Sync_counter}). Correct, but kept out
    of {!all}: its O(f·n²)-messages-per-op all-to-all exchange would
    dominate every default sweep. {!find} resolves it by name. *)

val all : Counter.Counter_intf.counter list
(** Every {e correct} counter, the paper's first. *)

val amnesiac : Counter.Counter_intf.counter
(** Deliberately broken: no communication ({!Amnesiac}). *)

val race_reply : Counter.Counter_intf.counter
(** Deliberately broken, order-sensitively ({!Race_reply}). *)

val ft_no_handoff : Counter.Counter_intf.counter
(** Deliberately broken under crashes: {!Core.Retire_ft} without the
    emergency job-description handoff ({!Ft_no_handoff}). *)

val durable_no_cas : Counter.Counter_intf.counter
(** Deliberately broken under reordering: {!Core.Durable_counter} with
    blind puts instead of compare-and-swap ({!Durable_no_cas}). *)

val sync_no_threshold : Counter.Counter_intf.counter
(** Deliberately broken under Byzantine kings: {!Core.Sync_counter}
    without the round-3 threshold guard ({!Sync_no_threshold}). *)

val broken : Counter.Counter_intf.counter list
(** The deliberately broken counters — negative controls for the
    correctness checkers and the model checker. Kept out of {!all} so
    experiments and sweeps never mistake them for baselines; {!find}
    resolves them by name. *)

val find : string -> Counter.Counter_intf.counter option
(** Look up by [name], searching {!all} and {!broken}. *)

val names : unit -> string list
(** Names of {!all} (the broken counters are not listed). *)

val concurrent_all : Counter.Counter_intf.concurrent list
(** Every counter implementing the open-loop
    {!Counter.Counter_intf.CONCURRENT} interface — the counters
    [dcount load] can drive. *)

val find_concurrent : string -> Counter.Counter_intf.concurrent option
(** Look up a concurrency-capable counter by [name]. *)

val concurrent_names : unit -> string list
(** Names of {!concurrent_all}. *)
