(* [op] threads an operation id through the request/reply pair so the
   open-loop path can match completions when an origin has several
   operations in flight; the sequential path uses op = -1 and is
   unchanged message for message. *)
type payload =
  | Request of { origin : int; op : int }
  | Reply of { value : int; op : int }

let label = function Request _ -> "req" | Reply _ -> "val"

type t = {
  net : payload Sim.Network.t;
  n : int;
  mutable value : int;
  mutable last_returned : int;
  mutable open_rev : (int * int * float) list;  (* op, value, completed_at *)
  mutable traces_rev : Sim.Trace.t list;
}

let name = "central"

let describe = "single holder processor; message-optimal, maximal bottleneck"

let holder = 1

let supported_n n = max 1 n

let handle st ~self ~src:_ = function
  | Request { origin; op } ->
      assert (self = holder);
      Sim.Network.send st.net ~src:holder ~dst:origin
        (Reply { value = st.value; op });
      st.value <- st.value + 1
  | Reply { value; op } ->
      if op >= 0 then
        st.open_rev <- (op, value, Sim.Network.now st.net) :: st.open_rev
      else st.last_returned <- value

let create ?(seed = 42) ?delay ?faults ~n () =
  if n < 1 then invalid_arg "Central.create: n must be >= 1";
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let st =
    { net; n; value = 0; last_returned = -1; open_rev = []; traces_rev = [] }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st

let n t = t.n

let value t = t.value

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Central.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  let result =
    if origin = holder then begin
      (* The holder increments locally: no messages at all. *)
      let v = t.value in
      t.value <- v + 1;
      v
    end
    else begin
      t.last_returned <- -1;
      Sim.Network.send t.net ~src:origin ~dst:holder (Request { origin; op = -1 });
      ignore (Sim.Network.run_to_quiescence t.net);
      t.last_returned
    end
  in
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  if result < 0 then
    raise
      (Counter.Counter_intf.Stall
         "Central.inc: no reply (holder crashed or message lost)");
  result

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let launch_at t ~op ~origin ~at =
  if origin < 1 || origin > t.n then
    invalid_arg "Central.launch_at: origin out of range";
  let delay = at -. Sim.Network.now t.net in
  if delay < 0. then invalid_arg "Central.launch_at: arrival in the past";
  Sim.Network.schedule_local t.net ~delay (fun () ->
      if origin = holder then begin
        (* Local increment, completing at the arrival instant. *)
        let v = t.value in
        t.value <- v + 1;
        t.open_rev <- (op, v, Sim.Network.now t.net) :: t.open_rev
      end
      else Sim.Network.send t.net ~src:origin ~dst:holder (Request { origin; op }))

let run_open t = ignore (Sim.Network.run_to_quiescence t.net)

let completions t = List.rev t.open_rev

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      net;
      n = t.n;
      value = t.value;
      last_returned = t.last_returned;
      open_rev = t.open_rev;
      traces_rev = t.traces_rev;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
