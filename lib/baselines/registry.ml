let retire_tree : Counter.Counter_intf.counter = (module Core.Retire_counter)

let central : Counter.Counter_intf.counter = (module Central)

let retire_tree_local : Counter.Counter_intf.counter =
  (module Core.Retire_local)

let retire_ft : Counter.Counter_intf.counter = (module Core.Retire_ft)

let static_tree : Counter.Counter_intf.counter = (module Static_tree)

let combining : Counter.Counter_intf.counter = (module Combining_tree)

let counting_network : Counter.Counter_intf.counter = (module Counting_network)

let periodic_network : Counter.Counter_intf.counter = (module Periodic_counter)

let diffracting : Counter.Counter_intf.counter = (module Diffracting_tree)

let quorum_majority : Counter.Counter_intf.counter =
  (module Quorum_counter.Over_majority)

let quorum_grid : Counter.Counter_intf.counter =
  (module Quorum_counter.Over_grid)

let quorum_tree : Counter.Counter_intf.counter =
  (module Quorum_counter.Over_tree)

let quorum_wall : Counter.Counter_intf.counter =
  (module Quorum_counter.Over_wall)

let quorum_plane : Counter.Counter_intf.counter =
  (module Quorum_counter.Over_plane)

let durable : Counter.Counter_intf.counter = (module Core.Durable_counter)

(* Correct but priced out of [all]: every op is (f+1) phases of all-to-all
   exchange, O(f * n^2) messages, so default sweeps (dcount compare runs
   Registry.all up to n = 1024) would drown in it. [find] still resolves
   it by name. *)
let sync_count : Counter.Counter_intf.counter = (module Core.Sync_counter)

let all =
  [
    retire_tree;
    retire_tree_local;
    retire_ft;
    central;
    static_tree;
    combining;
    counting_network;
    periodic_network;
    diffracting;
    quorum_majority;
    quorum_grid;
    quorum_tree;
    quorum_wall;
    quorum_plane;
    durable;
  ]

let amnesiac : Counter.Counter_intf.counter = (module Amnesiac)

let race_reply : Counter.Counter_intf.counter = (module Race_reply)

let ft_no_handoff : Counter.Counter_intf.counter = (module Ft_no_handoff)

let durable_no_cas : Counter.Counter_intf.counter = (module Durable_no_cas)

let sync_no_threshold : Counter.Counter_intf.counter =
  (module Sync_no_threshold)

let broken =
  [ amnesiac; race_reply; ft_no_handoff; durable_no_cas; sync_no_threshold ]

let find name =
  List.find_opt
    (fun (module C : Counter.Counter_intf.S) -> C.name = name)
    (all @ (sync_count :: broken))

let names () =
  List.map (fun (module C : Counter.Counter_intf.S) -> C.name) all

(* Counters that implement the open-loop CONCURRENT interface. Kept as a
   separate list (rather than a dynamic downcast, which first-class
   modules cannot express) so [dcount load] can enumerate and resolve
   them. *)
let concurrent_all : Counter.Counter_intf.concurrent list =
  [
    (module Core.Retire_counter);
    (module Central);
    (module Combining_tree);
    (module Counting_network);
    (module Diffracting_tree);
    (module Quorum_counter.Over_majority);
    (module Quorum_counter.Over_grid);
    (module Quorum_counter.Over_tree);
    (module Quorum_counter.Over_wall);
    (module Quorum_counter.Over_plane);
  ]

let find_concurrent name =
  List.find_opt
    (fun (module C : Counter.Counter_intf.CONCURRENT) -> C.name = name)
    concurrent_all

let concurrent_names () =
  List.map
    (fun (module C : Counter.Counter_intf.CONCURRENT) -> C.name)
    concurrent_all
