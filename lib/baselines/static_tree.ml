type t = Core.Retire_counter.t

let name = "static-tree"

let describe =
  "the paper's tree without retirement: Theta(n) load at the root worker"

let supported_n = Core.Retire_counter.supported_n

let create ?seed ?delay ?faults ~n () =
  match Core.Params.k_of_n_exact n with
  | Some k ->
      let cfg =
        { (Core.Retire_counter.paper_config ~k) with retire_threshold = max_int }
      in
      Core.Retire_counter.create_with ?seed ?delay ?faults cfg
  | None ->
      invalid_arg
        (Printf.sprintf
           "Static_tree.create: n = %d is not of the form k^(k+1); use \
            supported_n"
           n)

let n = Core.Retire_counter.n

let inc = Core.Retire_counter.inc

let inc_result = Core.Retire_counter.inc_result

let crashed = Core.Retire_counter.crashed

let value = Core.Retire_counter.value

let metrics = Core.Retire_counter.metrics

let traces = Core.Retire_counter.traces

let clone = Core.Retire_counter.clone
