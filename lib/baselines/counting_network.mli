(** The bitonic counting network as a message-passing distributed counter.

    Balancers are distributed across the processors (round-robin by
    balancer id), as are the output-wire counters. A token is a message
    that hops from balancer host to balancer host; on exiting wire [i] it
    receives the value [i + width * c_i] from the wire's local counter
    (the standard fetch-and-increment layering over a counting network)
    and the value is sent back to the origin.

    Cost per operation: [depth + 2] messages (entry hop, one per
    balancer layer traversed, value reply), i.e. O(log^2 width). The load
    concentrates on the balancer hosts — with [width] fixed the busiest
    host carries Theta(n / width) over the each-processor-once sequence,
    so the counting network interpolates between the central counter
    ([width = 1]-ish) and lower-bottleneck structures, but for any fixed
    width it still scales linearly in [n]: a nice foil for the paper's
    O(k). The step property is revalidated on the message-passing
    execution after every quiescent operation ({!step_property_held}).

    Sequential operations are linearizable, so the generic driver checks
    apply; concurrency-specific behaviour of counting networks (they are
    not linearizable under overlap) is exercised by experiment E7. *)

type t

val create_width :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  n:int ->
  width:int ->
  unit ->
  t
(** [width] must be a power of two. *)

val create_custom :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  n:int ->
  network:Bitonic.network ->
  unit ->
  t
(** Run the counter over any prebuilt balancer network (e.g.
    {!Periodic.build}) — the wrapper is construction-agnostic. *)

val width : t -> int

val network_depth : t -> int

val balancer_count : t -> int

val output_counts : t -> int array
(** Tokens that have exited on each wire. *)

val step_property_held : t -> bool
(** Whether the step property held at every quiescent point so far. *)

val run_batch : t -> origins:int list -> (int * int) list
(** Launch all origins' tokens concurrently — the regime counting
    networks were designed for (lock-free, no serialisation point).
    Returns [(origin, value)] pairs in completion order: a distinct,
    contiguous value block (quiescent consistency; counting networks are
    famously not linearizable under overlap, which E7 shows by exhibiting
    out-of-order values within a batch). Counts as one traced
    operation. *)

val run_batch_timed :
  t -> ?stagger:float -> origins:int list -> unit -> Counter.History.op list
(** {!run_batch} with operation [i] injected at virtual time
    [i * stagger] and full invocation/completion intervals — the E20
    linearizability experiment, where moderate stagger makes the
    network's famous non-linearizability observable. *)

include Counter.Counter_intf.CONCURRENT with type t := t
(** [create ~n] picks [width] = the largest power of two [<= sqrt n]
    (at least 2 for [n > 1]): wide enough to spread load, small enough
    that balancers stay busy.

    The open-loop path ([launch_at]/[run_open]) is where the network's
    celebrated weakness shows: per-wire counters advance unevenly while
    tokens are in flight, so under sustained load the history is
    quiescently consistent but {e not} linearizable — [dcount load
    --check] exhibits the violation live. *)
