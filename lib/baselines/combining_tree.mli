(** Software combining trees (Yew, Tzeng & Lawrie 1987; Goodman, Vernon &
    Woest 1989 — the papers the paper credits as "the first to explicitly
    aim at avoiding a bottleneck").

    A complete binary tree with one leaf per processor. An increment
    request climbs toward the root; a node that receives a request waits a
    short {e combining window} (a local timer) for a request from its
    other child and, if one arrives, forwards a single combined request
    carrying the sum of the counts. The root allocates a contiguous block
    [\[val, val + c)] and the grant descends the tree, splitting at each
    node according to the recorded combination (first-come first-served),
    until every participating leaf holds its own value.

    Sequentially no combining can happen: each operation climbs and
    descends the full tree (2 log n messages) and the root host carries
    Theta(n) — combining trees beat the central counter on {e contention}
    only when requests overlap, which is what {!run_batch} measures
    (experiment E11): with a batch of [b = n] concurrent increments the
    root sees exactly one combined request instead of [n].

    [combining_rate] reports the fraction of internal request arrivals
    that were absorbed by combining. *)

type t

val create_binary :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?window:float ->
  n:int ->
  unit ->
  t
(** [n] must be a power of two. [window] (default 1.5 virtual-time units)
    is the combining wait. *)

val combined_requests : t -> int
(** Requests absorbed into a sibling's request (never travelled up). *)

val uncombined_requests : t -> int
(** Requests forwarded upward alone after the window expired. *)

val combining_rate : t -> float
(** [combined / (combined + uncombined)], 0 if no traffic. *)

val run_batch : t -> origins:int list -> (int * int) list
(** Launch all origins concurrently (each origin at most once per batch);
    returns [(origin, value)] pairs. Values across a batch are distinct
    and contiguous. One traced operation. *)

include Counter.Counter_intf.CONCURRENT with type t := t
(** Combining is the regime the tree was designed for, and the open-loop
    path keeps it linearizable: the root allocates value blocks
    monotonically in virtual time, and every operation's allocation
    happens inside its invocation/completion interval. *)
