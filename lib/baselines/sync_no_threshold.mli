(** Negative control for the phase-king counter: {!Core.Sync_counter}
    with the round-3 threshold guard disabled, so every replica adopts
    the king's tiebreaker unconditionally. An equivocating Byzantine
    king in the last phase deterministically splits the correct
    replicas; exists to prove that the agreement oracle, the chaos
    harness and the model checker's corruption adversary actually catch
    Byzantine disagreement (the stored counterexample in [test/data]
    replays it byte-identically). *)

include Counter.Counter_intf.S
