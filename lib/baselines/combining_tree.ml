(* [op] is the open-loop operation id of a leaf-originated singleton
   request (-1 on the sequential path and on inner-node aggregates,
   whose grants descend by batch, not by op). It rides along so the
   final [Down] can be matched to the operation when an origin has
   several requests in flight. [batch] is the sender's outstanding-batch
   id (-1 on leaf requests): grants echo it back, so a node with several
   batches in flight matches each grant to the right batch even when
   messages overtake each other (delivery is not FIFO under variable
   delays). *)
type pending = { side : int; count : int; op : int; batch : int }

type payload =
  | Up of { node : int; side : int; count : int; op : int; batch : int }
      (* request arriving at inner node [node] from its child on [side] *)
  | Grant of { node : int; base : int; batch : int }
      (* a block [base, base+count) granted to inner node [node]'s batch *)
  | Down of { origin : int; op : int; value : int }
      (* final value for a leaf *)

let label = function Up _ -> "up" | Grant _ -> "grant" | Down _ -> "down"

type node_state = {
  mutable collecting : pending option;
  mutable generation : int;  (* invalidates stale window timers *)
  mutable next_batch : int;  (* fresh batch ids, per node *)
  batches : (int, pending list) Hashtbl.t;  (* one entry per Up sent above *)
}

type t = {
  net : payload Sim.Network.t;
  n : int;
  window : float;
  nodes : node_state array;  (* heap-indexed 1 .. n-1; slot 0 unused *)
  mutable value : int;
  mutable completed_rev : (int * int * int * float) list;
      (* origin, op, value, time *)
  mutable traces_rev : Sim.Trace.t list;
  mutable combined : int;
  mutable uncombined : int;
}

let name = "combining"

let describe =
  "binary combining tree (YTL/GVW): requests merge under concurrency; \
   Theta(n) root load when sequential"

let is_power_of_two w = w >= 1 && w land (w - 1) = 0

let supported_n n =
  let n = max 1 n in
  let rec grow w = if w >= n then w else grow (2 * w) in
  grow 1

(* Heap layout: inner nodes 1 .. n-1; leaf of processor p is n + p - 1. *)
let node_host t i = ((i - 1) mod t.n) + 1

let parent_of i = (i / 2, i mod 2)

let is_leaf t i = i >= t.n

let leaf_origin t i = i - t.n + 1

(* Send a combined (or lone) request upward from node [i], or allocate at
   the root. *)
let rec ascend t ~self ~node ~batch ~count =
  if node = 1 then begin
    (* The root allocates the block locally and the grant descends. *)
    let base = t.value in
    t.value <- t.value + count;
    descend t ~self ~node ~batch ~base
  end
  else begin
    let parent, side = parent_of node in
    let nd = t.nodes.(node) in
    nd.generation <- nd.generation + 1;
    let id = nd.next_batch in
    nd.next_batch <- id + 1;
    Hashtbl.replace nd.batches id batch;
    Sim.Network.send t.net ~src:self ~dst:(node_host t parent)
      (Up { node = parent; side; count; op = -1; batch = id })
  end

and descend t ~self ~node ~batch ~base =
  let offset = ref base in
  List.iter
    (fun p ->
      let child = (2 * node) + p.side in
      if is_leaf t child then begin
        let origin = leaf_origin t child in
        Sim.Network.send t.net ~src:self ~dst:origin
          (Down { origin; op = p.op; value = !offset })
      end
      else
        Sim.Network.send t.net ~src:self ~dst:(node_host t child)
          (Grant { node = child; base = !offset; batch = p.batch });
      offset := !offset + p.count)
    batch

let rec handle t ~self ~src:_ = function
  | Down { origin; op; value } ->
      t.completed_rev <-
        (origin, op, value, Sim.Network.now t.net) :: t.completed_rev
  | Grant { node; base; batch } ->
      let nd = t.nodes.(node) in
      let entries =
        match Hashtbl.find_opt nd.batches batch with
        | Some b -> b
        | None -> failwith "Combining_tree: grant without pending batch"
      in
      Hashtbl.remove nd.batches batch;
      descend t ~self ~node ~batch:entries ~base
  | Up { node; side; count; op; batch } -> (
      let nd = t.nodes.(node) in
      match nd.collecting with
      | Some first when first.side <> side ->
          (* Combine with the parked sibling request. *)
          nd.collecting <- None;
          nd.generation <- nd.generation + 1;
          t.combined <- t.combined + 1;
          ascend t ~self ~node
            ~batch:[ first; { side; count; op; batch } ]
            ~count:(first.count + count)
      | Some first ->
          (* Same side twice (the sibling's window already expired below):
             flush the parked request alone, then park the new one. *)
          nd.collecting <- None;
          t.uncombined <- t.uncombined + 1;
          ascend t ~self ~node ~batch:[ first ] ~count:first.count;
          park t ~self ~node ~side ~count ~op ~batch
      | None -> park t ~self ~node ~side ~count ~op ~batch)

and park t ~self ~node ~side ~count ~op ~batch =
  let nd = t.nodes.(node) in
  nd.collecting <- Some { side; count; op; batch };
  nd.generation <- nd.generation + 1;
  let gen = nd.generation in
  Sim.Network.schedule_local t.net ~delay:t.window (fun () ->
      if nd.generation = gen then
        match nd.collecting with
        | Some first ->
            nd.collecting <- None;
            nd.generation <- nd.generation + 1;
            t.uncombined <- t.uncombined + 1;
            ascend t ~self ~node ~batch:[ first ] ~count:first.count
        | None -> ())

let create_binary ?(seed = 42) ?delay ?faults ?(window = 1.5) ~n () =
  if not (is_power_of_two n) then
    invalid_arg "Combining_tree: n must be a power of two (use supported_n)";
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let t =
    {
      net;
      n;
      window;
      nodes =
        Array.init (max 1 n) (fun _ ->
            {
              collecting = None;
              generation = 0;
              next_batch = 0;
              batches = Hashtbl.create 8;
            });
      value = 0;
      completed_rev = [];
      traces_rev = [];
      combined = 0;
      uncombined = 0;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle t ~self ~src payload);
  t

let create ?seed ?delay ?faults ~n () = create_binary ?seed ?delay ?faults ~n ()

let n t = t.n

let value t = t.value

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let combined_requests t = t.combined

let uncombined_requests t = t.uncombined

let combining_rate t =
  let total = t.combined + t.uncombined in
  if total = 0 then 0. else float_of_int t.combined /. float_of_int total

let launch_op t ~op ~origin =
  if t.n = 1 then begin
    (* Singleton tree: the lone processor is the root; local increment. *)
    let v = t.value in
    t.value <- v + 1;
    t.completed_rev <-
      (origin, op, v, Sim.Network.now t.net) :: t.completed_rev
  end
  else begin
    let leaf = t.n + origin - 1 in
    let parent, side = parent_of leaf in
    Sim.Network.send t.net ~src:origin ~dst:(node_host t parent)
      (Up { node = parent; side; count = 1; op; batch = -1 })
  end

let launch t ~origin = launch_op t ~op:(-1) ~origin

let finish_op t =
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Combining_tree.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  launch t ~origin;
  finish_op t;
  (* Chronologically first completion: under duplication faults a value
     can arrive twice; without faults there is exactly one. *)
  match List.rev t.completed_rev with
  | (_, _, value, _) :: _ -> value
  | [] ->
      raise
        (Counter.Counter_intf.Stall
           "Combining_tree.inc: no value returned (node host crashed or \
            message lost)")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let run_batch t ~origins =
  (match origins with
  | [] -> invalid_arg "Combining_tree.run_batch: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  let sorted = List.sort_uniq Int.compare origins in
  if List.length sorted <> List.length origins then
    invalid_arg "Combining_tree.run_batch: duplicate origins in a batch";
  t.completed_rev <- [];
  List.iter (fun origin -> launch t ~origin) origins;
  finish_op t;
  List.rev_map (fun (o, _, v, _) -> (o, v)) (List.rev t.completed_rev)

let launch_at t ~op ~origin ~at =
  if origin < 1 || origin > t.n then
    invalid_arg "Combining_tree.launch_at: origin out of range";
  let delay = at -. Sim.Network.now t.net in
  if delay < 0. then invalid_arg "Combining_tree.launch_at: arrival in the past";
  Sim.Network.schedule_local t.net ~delay (fun () -> launch_op t ~op ~origin)

let run_open t = ignore (Sim.Network.run_to_quiescence t.net)

let completions t =
  List.filter_map
    (fun (_, op, value, at) -> if op >= 0 then Some (op, value, at) else None)
    (List.rev t.completed_rev)

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      net;
      n = t.n;
      window = t.window;
      nodes =
        Array.map
          (fun nd ->
            {
              collecting = nd.collecting;
              generation = nd.generation;
              next_batch = nd.next_batch;
              batches = Hashtbl.copy nd.batches;
            })
          t.nodes;
      value = t.value;
      completed_rev = t.completed_rev;
      traces_rev = t.traces_rev;
      combined = t.combined;
      uncombined = t.uncombined;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
