type pending = { side : int; count : int }

type payload =
  | Up of { node : int; side : int; count : int }
      (* request arriving at inner node [node] from its child on [side] *)
  | Grant of { node : int; base : int }
      (* a block [base, base+count) granted to inner node [node]'s batch *)
  | Down of { origin : int; value : int }  (* final value for a leaf *)

let label = function Up _ -> "up" | Grant _ -> "grant" | Down _ -> "down"

type node_state = {
  mutable collecting : pending option;
  mutable generation : int;  (* invalidates stale window timers *)
  batches : pending list Queue.t;  (* FIFO, one entry per Up sent above *)
}

type t = {
  net : payload Sim.Network.t;
  n : int;
  window : float;
  nodes : node_state array;  (* heap-indexed 1 .. n-1; slot 0 unused *)
  mutable value : int;
  mutable completed_rev : (int * int) list;
  mutable traces_rev : Sim.Trace.t list;
  mutable combined : int;
  mutable uncombined : int;
}

let name = "combining"

let describe =
  "binary combining tree (YTL/GVW): requests merge under concurrency; \
   Theta(n) root load when sequential"

let is_power_of_two w = w >= 1 && w land (w - 1) = 0

let supported_n n =
  let n = max 1 n in
  let rec grow w = if w >= n then w else grow (2 * w) in
  grow 1

(* Heap layout: inner nodes 1 .. n-1; leaf of processor p is n + p - 1. *)
let node_host t i = ((i - 1) mod t.n) + 1

let parent_of i = (i / 2, i mod 2)

let is_leaf t i = i >= t.n

let leaf_origin t i = i - t.n + 1

(* Send a combined (or lone) request upward from node [i], or allocate at
   the root. *)
let rec ascend t ~self ~node ~batch ~count =
  if node = 1 then begin
    (* The root allocates the block locally and the grant descends. *)
    let base = t.value in
    t.value <- t.value + count;
    descend t ~self ~node ~batch ~base
  end
  else begin
    let parent, side = parent_of node in
    t.nodes.(node).generation <- t.nodes.(node).generation + 1;
    Queue.push batch t.nodes.(node).batches;
    Sim.Network.send t.net ~src:self ~dst:(node_host t parent)
      (Up { node = parent; side; count })
  end

and descend t ~self ~node ~batch ~base =
  let offset = ref base in
  List.iter
    (fun p ->
      let child = (2 * node) + p.side in
      if is_leaf t child then begin
        let origin = leaf_origin t child in
        Sim.Network.send t.net ~src:self ~dst:origin
          (Down { origin; value = !offset })
      end
      else
        Sim.Network.send t.net ~src:self ~dst:(node_host t child)
          (Grant { node = child; base = !offset });
      offset := !offset + p.count)
    batch

let rec handle t ~self ~src:_ = function
  | Down { origin; value } ->
      t.completed_rev <- (origin, value) :: t.completed_rev
  | Grant { node; base } ->
      let nd = t.nodes.(node) in
      let batch =
        match Queue.take_opt nd.batches with
        | Some b -> b
        | None -> failwith "Combining_tree: grant without pending batch"
      in
      descend t ~self ~node ~batch ~base
  | Up { node; side; count } -> (
      let nd = t.nodes.(node) in
      match nd.collecting with
      | Some first when first.side <> side ->
          (* Combine with the parked sibling request. *)
          nd.collecting <- None;
          nd.generation <- nd.generation + 1;
          t.combined <- t.combined + 1;
          ascend t ~self ~node
            ~batch:[ first; { side; count } ]
            ~count:(first.count + count)
      | Some first ->
          (* Same side twice (the sibling's window already expired below):
             flush the parked request alone, then park the new one. *)
          nd.collecting <- None;
          t.uncombined <- t.uncombined + 1;
          ascend t ~self ~node ~batch:[ first ] ~count:first.count;
          park t ~self ~node ~side ~count
      | None -> park t ~self ~node ~side ~count)

and park t ~self ~node ~side ~count =
  let nd = t.nodes.(node) in
  nd.collecting <- Some { side; count };
  nd.generation <- nd.generation + 1;
  let gen = nd.generation in
  Sim.Network.schedule_local t.net ~delay:t.window (fun () ->
      if nd.generation = gen then
        match nd.collecting with
        | Some first ->
            nd.collecting <- None;
            nd.generation <- nd.generation + 1;
            t.uncombined <- t.uncombined + 1;
            ascend t ~self ~node ~batch:[ first ] ~count:first.count
        | None -> ())

let create_binary ?(seed = 42) ?delay ?faults ?(window = 1.5) ~n () =
  if not (is_power_of_two n) then
    invalid_arg "Combining_tree: n must be a power of two (use supported_n)";
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let t =
    {
      net;
      n;
      window;
      nodes =
        Array.init (max 1 n) (fun _ ->
            { collecting = None; generation = 0; batches = Queue.create () });
      value = 0;
      completed_rev = [];
      traces_rev = [];
      combined = 0;
      uncombined = 0;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle t ~self ~src payload);
  t

let create ?seed ?delay ?faults ~n () = create_binary ?seed ?delay ?faults ~n ()

let n t = t.n

let value t = t.value

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let combined_requests t = t.combined

let uncombined_requests t = t.uncombined

let combining_rate t =
  let total = t.combined + t.uncombined in
  if total = 0 then 0. else float_of_int t.combined /. float_of_int total

let launch t ~origin =
  if t.n = 1 then begin
    (* Singleton tree: the lone processor is the root; local increment. *)
    let v = t.value in
    t.value <- v + 1;
    t.completed_rev <- (origin, v) :: t.completed_rev
  end
  else begin
    let leaf = t.n + origin - 1 in
    let parent, side = parent_of leaf in
    Sim.Network.send t.net ~src:origin ~dst:(node_host t parent)
      (Up { node = parent; side; count = 1 })
  end

let finish_op t =
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Combining_tree.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  launch t ~origin;
  finish_op t;
  (* Chronologically first completion: under duplication faults a value
     can arrive twice; without faults there is exactly one. *)
  match List.rev t.completed_rev with
  | (_, value) :: _ -> value
  | [] ->
      raise
        (Counter.Counter_intf.Stall
           "Combining_tree.inc: no value returned (node host crashed or \
            message lost)")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let run_batch t ~origins =
  (match origins with
  | [] -> invalid_arg "Combining_tree.run_batch: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  let sorted = List.sort_uniq Int.compare origins in
  if List.length sorted <> List.length origins then
    invalid_arg "Combining_tree.run_batch: duplicate origins in a batch";
  t.completed_rev <- [];
  List.iter (fun origin -> launch t ~origin) origins;
  finish_op t;
  List.rev t.completed_rev

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      net;
      n = t.n;
      window = t.window;
      nodes =
        Array.map
          (fun nd ->
            {
              collecting = nd.collecting;
              generation = nd.generation;
              batches = Queue.copy nd.batches;
            })
          t.nodes;
      value = t.value;
      completed_rev = t.completed_rev;
      traces_rev = t.traces_rev;
      combined = t.combined;
      uncombined = t.uncombined;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
