(** A deliberately broken counter: each processor counts locally and
    exchanges no messages.

    It violates the Hot Spot Lemma's premise (consecutive operations by
    different processors share no informed processor) and returns wrong
    values on any multi-processor schedule — proof that the correctness
    checkers detect real breakage, not just that correct counters pass
    them. The model checker needs no adversarial scheduling at all to
    catch it: with zero messages in flight there are zero decision
    points, and the single (empty-decision) execution already fails the
    permutation check. Registered in {!Registry.broken}, never in
    {!Registry.all}. *)

include Counter.Counter_intf.S
