(** A distributed counter layered over a quorum system — the "Dynamic
    Quorum System" relative the paper mentions, in its simplest static
    form.

    Every processor keeps a versioned register [(value, version)]. An
    [inc] by processor [p] for the [s]-th operation:

    + {b read phase}: [p] asks every member of the strategy's quorum for
      slot [s] for its register and takes the pair with the highest
      version — since every earlier write covered a quorum, and quorums
      pairwise intersect, the highest version seen is the current counter
      value [v];
    + {b write phase}: [p] writes [(v+1, version+1)] back to the same
      quorum and waits for acknowledgements, then returns [v].

    Messages per operation: about [4 |Q|] ([p]'s own membership is served
    locally), so load follows the quorum system's geometry: majorities
    cost Theta(n) per processor over the each-once sequence, grids
    Theta(sqrt n), tree quorums pile Theta(n) onto the tree root — all
    far above the paper's O(k), which is the point of experiment E5/E8.

    The functor takes the quorum system; {!Over_majority}, {!Over_grid},
    {!Over_tree} and {!Over_wall} are the instantiations used by the
    registry.

    {b Failure awareness} (only active when created with a {!Sim.Fault}
    plan; without one, no timers are armed and behaviour is bit-identical
    to the failure-oblivious protocol): each quorum attempt is stamped
    with a round number and guarded by a local timeout timer. On timeout
    the client suspects the silent members (in an origin-local suspicion
    table, so quorum choice stays origin-local), doubles the timeout, and
    retries on the next quorum of the rotation that avoids all suspects;
    when suspicion blocks the entire rotation it falls back to asking
    {e everyone} and waiting for a majority of answers. After a bounded
    attempt budget the operation stalls ({!Counter.Counter_intf.Stall})
    instead of hanging.

    Completion guarantee: with the majority system, every operation by a
    live origin completes under any [f < ceil(n/2)] crash-stop failures
    (a live majority always exists and fallback waits for exactly a
    majority). Correctness caveat for the {e other} geometries: a
    fallback majority does not necessarily intersect a small structured
    quorum (a grid row-plus-column, a tree path), so a counter over grid,
    tree, wall or plane can lose linearizability once fallback engages —
    completion, not correctness, is the guarantee there (see
    docs/FAULTS.md). *)

module Make (_ : Quorum.Quorum_intf.S) : sig
  include Counter.Counter_intf.CONCURRENT
  (** The open-loop path gives every in-flight operation its own client
      record, matched to replies by round stamp. {b Semantics caveat}:
      read-max/write-back is not an atomic fetch-and-increment — two
      overlapping operations can read the same maximum and return the
      same value, so under genuine overlap a quorum counter is neither
      linearizable nor quiescently consistent ([dcount load] reports the
      duplicate values honestly). Sequential dispatch, where the paper's
      model lives, is unaffected. *)

  val quorum_size : t -> int

  val retries : t -> int
  (** Timed-out quorum attempts that were retried (all operations). *)

  val fallbacks : t -> int
  (** Times the client resorted to the ask-everyone majority fallback. *)
end

module Over_majority : Counter.Counter_intf.CONCURRENT

module Over_grid : Counter.Counter_intf.CONCURRENT

module Over_tree : Counter.Counter_intf.CONCURRENT

module Over_wall : Counter.Counter_intf.CONCURRENT

module Over_plane : Counter.Counter_intf.CONCURRENT
