(* Negative control for the durable WAL-backed counter: identical to
   [Core.Durable_counter] except that every conditional store write
   (chunk appends, manifest updates, the recovery epoch fence) becomes a
   blind put. With per-link FIFO delivery the blindness is masked — the
   store applies an ordered request stream — so the model checker's
   reordering adversary must find the lost update: a retried stale
   manifest write from the pre-crash incarnation, delivered after the
   recovery's epoch fence, silently rolls the manifest's epoch back, and
   the oswald spec monitor flags the regression (stored counterexample
   in test/data).

   The cadence is deliberately aggressive — roll after every record,
   snapshot at every count — so manifest traffic (the writes CAS
   protects) appears inside the very first operation, within reach of
   bounded exploration. [Core.Durable_counter] under the same cadence
   and the same adversary stays clean: the stale write arrives as a
   compare-and-swap against a superseded manifest and bounces off
   (test_mc pins the pairing). *)

module D = Core.Durable_counter

type t = D.t

let name = "durable-no-cas"

let describe =
  "broken: durable counter whose store writes skip compare-and-swap, so \
   a reordered stale write silently overwrites newer store state"

let supported_n = D.supported_n

let create ?seed ?delay ?faults ~n () =
  D.create_raw ?seed ?delay ?faults ~cas:false ~chunk_records:1
    ~snap_every:1 ~n ()

let n = D.n

let value = D.value

let metrics = D.metrics

let traces = D.traces

let inc = D.inc

let inc_result = D.inc_result

let crashed = D.crashed

let clone = D.clone
