type mode = No_prune | Sleep

let to_string = function No_prune -> "none" | Sleep -> "sleep"

let of_string = function
  | "none" -> Ok No_prune
  | "sleep" -> Ok Sleep
  | s -> Error (Printf.sprintf "unknown prune mode %S (none | sleep)" s)

let child_sleep mode ~taken sleep =
  match mode with
  | No_prune -> []
  | Sleep -> List.filter (fun z -> Enabled.independent z taken) sleep

let asleep sleep key = List.exists (Enabled.equal key) sleep
