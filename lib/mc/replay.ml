open Counter

type t = {
  counter : string;
  n : int;
  seed : int;
  schedule : Schedule.t;
  faults : Sim.Fault.t;
  property : string;
  decisions : Enabled.key list;
}

let of_violation ~counter ~n ~seed ~schedule ~faults (v : Explore.violation) =
  {
    counter;
    n;
    seed;
    schedule;
    faults;
    property = Explore.property_name v.property;
    decisions = v.decisions;
  }

(* The serial form is canonical — fixed key order, single spaces, one
   trailing newline — so a regenerated counterexample can be compared
   byte-for-byte against a stored one. *)
let to_string t =
  String.concat "\n"
    [
      "# dcount mc counterexample";
      "counter=" ^ t.counter;
      "n=" ^ string_of_int t.n;
      "seed=" ^ string_of_int t.seed;
      "schedule=" ^ Schedule.to_string t.schedule;
      "faults=" ^ Sim.Fault.to_string t.faults;
      "property=" ^ t.property;
      "decisions=" ^ String.concat " " (List.map Enabled.to_token t.decisions);
      "";
    ]

let ( let* ) = Result.bind

let of_string s =
  let fields = Hashtbl.create 8 in
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok ()
    else
      match String.index_opt line '=' with
      | None -> Error (Printf.sprintf "bad counterexample line %S" line)
      | Some i ->
          let key = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          if Hashtbl.mem fields key then
            Error (Printf.sprintf "duplicate field %S" key)
          else begin
            Hashtbl.add fields key value;
            Ok ()
          end
  in
  let rec parse_lines = function
    | [] -> Ok ()
    | l :: rest ->
        let* () = parse_line l in
        parse_lines rest
  in
  let field key =
    match Hashtbl.find_opt fields key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" key)
  in
  let int_field key =
    let* v = field key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %s=%S is not an integer" key v)
  in
  let* () = parse_lines (String.split_on_char '\n' s) in
  let* counter = field "counter" in
  let* n = int_field "n" in
  let* seed = int_field "seed" in
  let* schedule_s = field "schedule" in
  let* schedule = Schedule.of_string schedule_s in
  let* faults_s = field "faults" in
  let* faults = Sim.Fault.of_string faults_s in
  let* property = field "property" in
  let* _ = Explore.property_of_name property in
  let* decisions_s = field "decisions" in
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' decisions_s)
  in
  let rec parse_tokens acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest ->
        let* key = Enabled.of_token tok in
        parse_tokens (key :: acc) rest
  in
  let* decisions = parse_tokens [] tokens in
  Ok { counter; n; seed; schedule; faults; property; decisions }

let run (module C : Counter_intf.S) t =
  if C.name <> t.counter then
    Error
      (Printf.sprintf "counterexample is for counter %S, got %S" t.counter
         C.name)
  else
    Explore.run_schedule ~seed:t.seed ~faults:t.faults
      (module C : Counter_intf.S)
      ~n:t.n ~schedule:t.schedule ~decisions:t.decisions

let reproduces (module C : Counter_intf.S) t =
  match run (module C) t with
  | Ok (Some v) -> Explore.property_name v.property = t.property
  | Ok None | Error _ -> false
