open Counter

(** Exhaustive exploration of message-delivery interleavings.

    The simulator's default delivery order — earliest arrival, ties by
    send order — is just one resolution of the model's asynchrony; a
    counter can be correct under it and wrong under another. This module
    explores {e all} of them for small configurations: it runs a counter
    under {!Sim.Network.with_scheduler}, branching at every decision
    point over every enabled event (the oldest pending message of each
    (src, dst) link — or each individual pending message, for
    destinations the protocol declared delivery-unordered — the
    earliest-armed timer, and, when a fault plan names them, crashing a
    living victim or reviving a crashed one), and checks properties on
    every complete execution.

    The search is a stateless DFS: executions are replayed from scratch
    along the committed decision prefix (counters are pure functions of
    the decision sequence, so replay is exact), with sleep-set pruning
    ({!Prune}) cutting commuting reorderings. Properties checked on each
    execution, in order of precedence:

    - no operation stalls (fault-free runs only);
    - returned values are a permutation of [0 .. ops-1]
      ({!Driver.values_permutation}; under crash plans only distinctness
      is required, {!Driver.values_distinct});
    - the history is linearizable ({!History.check} over synthetic
      unit-spaced timestamps — exact, because operations are
      sequential);
    - the Hot Spot Lemma holds ({!Hotspot.check});
    - on fault-free each-once schedules, the bottleneck load is at least
      the paper's [k] ({!Core.Lower_bound.k_of_n}) — the Lower Bound
      Theorem, checked on {e every} interleaving rather than the
      adversary's.

    See docs/MODELCHECK.md for the model, its guarantees and its
    limits. *)

type config = {
  max_states : int;
      (** Budget on decision points discovered; exceeding it yields
          {!Budget_exhausted}. *)
  max_depth : int;
      (** Decisions per execution beyond which runs are completed
          deterministically (first enabled event) without branching;
          reaching it downgrades {!Exhausted_ok} to
          {!Budget_exhausted}. *)
  prune : Prune.mode;
  check_bound : bool;
      (** Check [m_b >= k] on fault-free each-once executions. *)
  check_progress : bool;
      (** Check CounterProgress on crash/recover executions: once every
          crashed victim has been revived and quiescence reached, an
          operation may only stall for an origin-local reason (its
          origin was down, or it gave up retrying). *)
}

val default_config : config
(** [{ max_states = 200_000; max_depth = 400; prune = Sleep;
      check_bound = true; check_progress = false }] *)

type property =
  | Values_wrong  (** Completed values are not a permutation of 0..ops-1. *)
  | Duplicate_value  (** Same value returned twice (checked under crashes). *)
  | Not_linearizable
  | Hotspot_violated
  | Unexpected_stall  (** An operation stalled with no fault plan. *)
  | Bound_violated  (** Bottleneck load below the paper's [k]. *)
  | Diverged  (** No quiescence: the engine's storm guard tripped. *)
  | Lsn_inconsistent
      (** Durability: a WAL chunk was rewritten non-append, held
          non-consecutive LSNs, or a covered object was lost
          (SafetyLsnConsistency, via {!Core.Wal.Monitor}). *)
  | Manifest_regressed
      (** Durability: the manifest regressed or was deleted
          (SafetyManifestMonotonicity). *)
  | Counter_regressed
      (** Durability: recovery reconstructed a count at or below a value
          already acked to an origin (SafetyCounterMonotonicity). *)
  | Agreement_violated
      (** Byzantine agreement: two correct (neither crashed nor turned)
          replicas decided different values for the same operation — the
          per-op oracle of {!Core.Sync_counter} stalled with a
          ["spec: agreement violated"] reason. *)
  | No_progress
      (** Liveness: an operation stalled for a non-origin-local reason
          though every crashed victim was revived and all messages
          delivered (CounterProgress; requires [config.check_progress]). *)

val property_name : property -> string
(** Stable kebab-case name, used in counterexample files. *)

val property_of_name : string -> (property, string) result

type violation = {
  property : property;
  detail : string;
  decisions : Enabled.key list;
      (** The complete decision sequence of the violating execution —
          replaying it through {!run_schedule} reproduces the violation
          deterministically. *)
}

type verdict =
  | Exhausted_ok  (** Every interleaving explored; all properties held. *)
  | Violation_found of violation
  | Budget_exhausted
      (** The state or depth budget tripped before the space was covered
          and no violation was found in the part explored. *)

type stats = {
  executions : int;  (** Complete executions property-checked. *)
  states : int;  (** Decision points discovered. *)
  max_depth_seen : int;
  max_enabled : int;  (** Widest enabled set at any decision point. *)
  sleep_skips : int;  (** Branches pruned by inherited sleep sets. *)
  depth_capped : int;  (** Decisions taken past [max_depth]. *)
}

type outcome = { verdict : verdict; stats : stats }

val check :
  ?seed:int ->
  ?faults:Sim.Fault.t ->
  ?config:config ->
  Counter_intf.counter ->
  n:int ->
  schedule:Schedule.t ->
  outcome
(** [check (module C) ~n ~schedule] explores every delivery interleaving
    of the schedule against a fresh counter per execution ([seed],
    default 42, fixes the counter's internal seed and the schedule's own
    draws — exploration branches over {e delivery order}, not seeds).

    [faults] may name crash victims ([crash:P@...] clauses), revivals
    ([recover:P@...]) and Byzantine victims ([byz:P@...], with their
    [byzval]/[byzeq] rewrite rules kept verbatim) — the trigger times
    are ignored and re-decided adversarially: the explorer branches over
    crashing each living victim, reviving each crashed one and turning
    each honest Byzantine victim at {e every} decision point (each
    victim crashes, revives or turns at most once per execution; turn
    branches lead the depth-first order, so corrupted-early worst cases
    are explored first). Probabilistic clauses (drop/dup/partitions) and store
    clauses (sdrop/sdup/sslow/sout) raise [Invalid_argument]: the former
    sample the engine's rng, the latter are subsumed by the adversary
    already owning delivery of store traffic. *)

val run_schedule :
  ?seed:int ->
  ?faults:Sim.Fault.t ->
  ?config:config ->
  Counter_intf.counter ->
  n:int ->
  schedule:Schedule.t ->
  decisions:Enabled.key list ->
  (violation option, string) result
(** Re-execute one decision sequence (a counterexample's [decisions])
    and re-check all properties: [Ok (Some v)] = the violation
    reproduces, [Ok None] = the execution is clean, [Error _] = the
    sequence does not correspond to an execution (a decision names an
    event that is not enabled — wrong counter, n, seed or file).
    Decisions past the sequence's end (if any) default to the first
    enabled event. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_violation : Format.formatter -> violation -> unit

val pp_verdict : Format.formatter -> verdict -> unit
