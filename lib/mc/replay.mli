open Counter

(** Serialised counterexamples and their deterministic replay.

    A counterexample is everything needed to reproduce a violating
    execution byte-for-byte: the counter, the configuration (n, seed,
    schedule, fault plan) and the complete decision sequence. The [.mcs]
    serial form is a line-oriented [key=value] header plus the decision
    tokens:

    {v
    # dcount mc counterexample
    counter=race-reply
    n=3
    seed=42
    schedule=each-once
    faults=none
    property=values-wrong
    decisions=1>2 3>1 1>2 @
    v}

    {!to_string} is canonical (fixed field order, single spaces, one
    trailing newline), so regenerating a counterexample and comparing it
    against a stored file is a byte-for-byte test — the CI smoke target
    does exactly that. *)

type t = {
  counter : string;  (** Registry name of the counter. *)
  n : int;
  seed : int;
  schedule : Schedule.t;
  faults : Sim.Fault.t;
  property : string;  (** {!Explore.property_name} of the violation. *)
  decisions : Enabled.key list;
}

val of_violation :
  counter:string ->
  n:int ->
  seed:int ->
  schedule:Schedule.t ->
  faults:Sim.Fault.t ->
  Explore.violation ->
  t

val to_string : t -> string
(** Canonical [.mcs] form; [of_string (to_string t) = Ok t]. *)

val of_string : string -> (t, string) result
(** Parse an [.mcs] file. Blank lines and [#] comments are ignored; all
    fields are required and the property and decision tokens are
    validated. *)

val run : Counter_intf.counter -> t -> (Explore.violation option, string) result
(** Re-execute the counterexample's decision sequence against the given
    counter module (whose [name] must match [t.counter]) — a thin
    front-end to {!Explore.run_schedule}. *)

val reproduces : Counter_intf.counter -> t -> bool
(** The replay hits a violation of the recorded property. *)
