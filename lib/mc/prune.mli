(** Partial-order reduction for the explorer: sleep sets.

    Godefroid's sleep-set algorithm, in its stateless-DFS form. Each
    decision point carries a {e sleep set} of keys whose exploration here
    is provably redundant: after the DFS finishes the subtree below
    choice [c], [c] is put to sleep for the remaining branches — any
    execution starting with a {e different} choice [c'] and taking [c]
    later is a reordering of one already explored, {e unless} something
    between them depends on [c]. Hence the inheritance rule: a child
    node's sleep set keeps exactly the parent's sleeping keys that are
    {!Enabled.independent} of the choice taken ({!child_sleep}). A
    decision point whose every enabled key is asleep is pruned outright.

    Soundness is inherited from the independence relation: exact for
    receiver-local protocols, heuristic otherwise (see
    {!Enabled.independent}); [No_prune] is the escape hatch that restores
    plain exhaustive DFS. The test suite cross-checks the two modes reach
    identical verdicts on every bundled counter. *)

type mode =
  | No_prune  (** Plain DFS: every enabled key is explored everywhere. *)
  | Sleep  (** Sleep-set pruning (the default). *)

val to_string : mode -> string
(** ["none"] | ["sleep"] — the CLI's [--prune] values. *)

val of_string : string -> (mode, string) result

val child_sleep :
  mode -> taken:Enabled.key -> Enabled.key list -> Enabled.key list
(** Sleep set a child node inherits after the parent executed [taken]:
    the parent's sleeping keys still independent of [taken] (always empty
    under [No_prune]). *)

val asleep : Enabled.key list -> Enabled.key -> bool
