open Counter

type config = {
  max_states : int;
  max_depth : int;
  prune : Prune.mode;
  check_bound : bool;
  check_progress : bool;
}

let default_config =
  {
    max_states = 200_000;
    max_depth = 400;
    prune = Prune.Sleep;
    check_bound = true;
    check_progress = false;
  }

type property =
  | Values_wrong
  | Duplicate_value
  | Not_linearizable
  | Hotspot_violated
  | Unexpected_stall
  | Bound_violated
  | Diverged
  | Lsn_inconsistent
  | Manifest_regressed
  | Counter_regressed
  | Agreement_violated
  | No_progress

let property_name = function
  | Values_wrong -> "values-wrong"
  | Duplicate_value -> "duplicate-value"
  | Not_linearizable -> "not-linearizable"
  | Hotspot_violated -> "hotspot-violated"
  | Unexpected_stall -> "unexpected-stall"
  | Bound_violated -> "bound-violated"
  | Diverged -> "diverged"
  | Lsn_inconsistent -> "lsn-inconsistent"
  | Manifest_regressed -> "manifest-regressed"
  | Counter_regressed -> "counter-regressed"
  | Agreement_violated -> "agreement-violated"
  | No_progress -> "no-progress"

let property_of_name = function
  | "values-wrong" -> Ok Values_wrong
  | "duplicate-value" -> Ok Duplicate_value
  | "not-linearizable" -> Ok Not_linearizable
  | "hotspot-violated" -> Ok Hotspot_violated
  | "unexpected-stall" -> Ok Unexpected_stall
  | "bound-violated" -> Ok Bound_violated
  | "diverged" -> Ok Diverged
  | "lsn-inconsistent" -> Ok Lsn_inconsistent
  | "manifest-regressed" -> Ok Manifest_regressed
  | "counter-regressed" -> Ok Counter_regressed
  | "agreement-violated" -> Ok Agreement_violated
  | "no-progress" -> Ok No_progress
  | s -> Error (Printf.sprintf "unknown property %S" s)

type violation = {
  property : property;
  detail : string;
  decisions : Enabled.key list;
}

type verdict =
  | Exhausted_ok
  | Violation_found of violation
  | Budget_exhausted

type stats = {
  executions : int;
  states : int;
  max_depth_seen : int;
  max_enabled : int;
  sleep_skips : int;
  depth_capped : int;
}

type outcome = { verdict : verdict; stats : stats }

(* ------------------------------------------------------------------ *)
(* One execution under a choose function.                              *)

type exec = {
  outcomes : Counter_intf.outcome list;
  traces : Sim.Trace.t list;
  bottleneck : int;
  down_at_end : int list;  (* victims still crashed after the last op *)
}

let reject_probabilistic (faults : Sim.Fault.t) =
  if
    faults.drop > 0. || faults.duplicate > 0.
    || faults.drop_links <> []
    || faults.partitions <> []
  then
    invalid_arg
      "Mc.Explore: probabilistic fault clauses (drop/dup/partitions) cannot \
       be model-checked; only crash/recover victims are supported";
  if Sim.Fault.store_active faults then
    invalid_arg
      "Mc.Explore: store-RPC fault clauses (sdrop/sdup/sslow/sout) cannot be \
       model-checked; the adversary already owns delivery nondeterminism, \
       including store traffic"

let recover_processors (faults : Sim.Fault.t) =
  List.sort_uniq Int.compare
    (List.map (fun (r : Sim.Fault.recover) -> r.processor) faults.recovers)

(* The counter is created with the plan's crash victims re-triggered at
   [After max_int] and its revivals at [Float.max_float]: the network
   itself never fires either (so runs stay a pure function of the
   decision sequence), but failure-aware protocols still see a non-empty
   plan and arm their timeout machinery. The explorer injects the actual
   crashes as [Crash_now] decisions and revivals as [Recover_now].
   Byzantine victims are neutered the same way ([After max_int]) while
   their [byzval]/[byzeq] rewrite rules are kept verbatim: the explorer
   decides *when* a victim turns ([Byz_now]), the plan still decides
   *how* it lies. *)
let neuter (faults : Sim.Fault.t) =
  {
    Sim.Fault.none with
    crashes =
      List.map
        (fun p -> { Sim.Fault.processor = p; trigger = Sim.Fault.After max_int })
        (Sim.Fault.crash_processors faults);
    recovers =
      List.map
        (fun p -> ({ processor = p; time = Float.max_float } : Sim.Fault.recover))
        (recover_processors faults);
    byz =
      List.map
        (fun p -> { Sim.Fault.processor = p; trigger = Sim.Fault.After max_int })
        (Sim.Fault.byzantine_processors faults);
    byz_rules = faults.byz_rules;
    byz_equiv = faults.byz_equiv;
  }

let execute (module C : Counter_intf.S) ~seed ~neutered ~n ~schedule ~victims
    ~revivable ~byzable ~choose =
  let crashed = ref [] in
  let revived = ref [] in
  let byzed = ref [] in
  let policy (choices : Sim.Network.choice array) =
    let base = Array.map Enabled.of_choice choices in
    let honest = List.filter (fun p -> not (List.mem p !byzed)) byzable in
    let live = List.filter (fun p -> not (List.mem p !crashed)) victims in
    (* Each victim crashes at most once and revives at most once: the
       adversary decides *when*, the plan decides *whether*. *)
    let downed =
      List.filter
        (fun p -> List.mem p !crashed && not (List.mem p !revived))
        revivable
    in
    (* Crash choices go first (then revivals) so depth-first order is
       crash-eager: the interesting branches (victim dies before/between
       deliveries, revives mid-recovery) are reached immediately instead
       of after exhausting every benign timer interleaving — with
       bounded budgets the late branches may never be reached at all. *)
    (* Byz keys lead even the crash keys: corruption branches are the
       whole point of a byz hunt, and a corrupted-from-the-start victim
       is the classic worst case. *)
    let keys =
      Array.concat
        [
          Array.of_list (List.map (fun p -> Enabled.Byz p) honest);
          Array.of_list (List.map (fun p -> Enabled.Crash p) live);
          Array.of_list (List.map (fun p -> Enabled.Recover p) downed);
          base;
        ]
    in
    match (choose keys : Enabled.key) with
    | Enabled.Byz p ->
        byzed := p :: !byzed;
        Sim.Network.Byz_now p
    | Enabled.Crash p ->
        crashed := p :: !crashed;
        Sim.Network.Crash_now p
    | Enabled.Recover p ->
        revived := p :: !revived;
        Sim.Network.Recover_now p
    | key ->
        let idx = ref (-1) in
        Array.iteri
          (fun i k -> if !idx < 0 && Enabled.equal k key then idx := i)
          base;
        if !idx < 0 then failwith "Mc.Explore: chosen key is not enabled";
        Sim.Network.Deliver_next !idx
  in
  Sim.Network.with_scheduler policy (fun () ->
      let counter = C.create ~seed ~faults:neutered ~n () in
      let rng = Sim.Rng.create ~seed:(seed + 1) in
      let origins = Schedule.origins schedule rng ~n in
      let outcomes =
        List.map (fun origin -> C.inc_result counter ~origin) origins
      in
      let _, bottleneck = Sim.Metrics.bottleneck (C.metrics counter) in
      {
        outcomes;
        traces = C.traces counter;
        bottleneck;
        down_at_end = List.filter (fun p -> C.crashed counter p) victims;
      })

(* ------------------------------------------------------------------ *)
(* Property checks on one completed execution.                         *)

let string_of_values values =
  "["
  ^ String.concat ";" (Array.to_list (Array.map string_of_int values))
  ^ "]"

let synthetic_history origins values =
  (* Operations are strictly sequential, so synthetic unit-spaced
     timestamps reproduce the real-time order exactly: op [i] runs in
     [[i, i + 0.5]], disjoint from op [i + 1]. *)
  List.mapi
    (fun i origin ->
      {
        History.origin;
        value = values.(i);
        invoked_at = float_of_int i;
        completed_at = float_of_int i +. 0.5;
      })
    origins

let is_each_once = function
  | Schedule.Each_once | Schedule.Each_once_shuffled -> true
  | _ -> false

(* Completed values must rise strictly in completion order: operations
   are sequential, so a later operation observing a smaller-or-equal
   value than an earlier one is a linearizability violation (the
   signature of a re-staffed counter role losing its state). *)
let values_monotonic values =
  let ok = ref true in
  Array.iteri (fun i v -> if i > 0 && v <= values.(i - 1) then ok := false) values;
  !ok

(* Hot Spot Lemma under a crash adversary: the lemma is proven for
   crash-free execution, so check it within crash-free segments — an
   operation during which a fault fired breaks the chain (its own
   intersection with either neighbour is excused), and an operation that
   delivered no message at all (e.g. its origin was already dead) is
   transparent rather than a break. *)
let faulty_hotspot traces =
  let segments =
    List.fold_left
      (fun segs t ->
        if Sim.Trace.fault_count t > 0 then [] :: segs
        else if Sim.Trace.message_count t = 0 then segs
        else match segs with cur :: rest -> (t :: cur) :: rest | [] -> [ [ t ] ])
      [ [] ] traces
  in
  List.concat_map (fun seg -> Hotspot.check (List.rev seg)) segments

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

(* A ["spec: ..."] stall is a durability-spec violation the runtime
   monitor (Core.Wal.Monitor) detected against the store's actual
   history; map its prefix to the matching checker property. *)
let spec_stall_violation outcomes =
  List.find_map
    (function
      | Counter_intf.Stalled r when contains ~sub:"spec: " r ->
          let property =
            if contains ~sub:"agreement" r then Agreement_violated
            else if contains ~sub:"manifest-monotonicity" r then
              Manifest_regressed
            else if contains ~sub:"counter-monotonicity" r then
              Counter_regressed
            else Lsn_inconsistent
          in
          Some (property, r)
      | Counter_intf.Stalled _ | Counter_intf.Completed _ -> None)
    outcomes

(* CounterProgress: once every victim the adversary crashed has been
   revived and every message delivered (quiescence at op end), an
   operation may only stall for a reason local to its origin — the
   origin was down when it ran, or it stopped retrying before the
   revival came. Anything else (a writer wedged mid-recovery, a lost
   continuation) is a liveness bug. *)
let progress_violation exec =
  if exec.down_at_end <> [] then None
  else
    List.find_map
      (function
        | Counter_intf.Stalled r
          when not (contains ~sub:"origin" r || contains ~sub:"gave up" r) ->
            Some
              ( No_progress,
                Printf.sprintf
                  "operation stalled (%s) though every crashed processor \
                   recovered and all messages were delivered"
                  r )
        | Counter_intf.Stalled _ | Counter_intf.Completed _ -> None)
      exec.outcomes

let check_properties ~config ~faulty ~schedule ~origins ~n exec =
  let values =
    Array.of_list (List.filter_map Counter_intf.outcome_value exec.outcomes)
  in
  let ops = List.length exec.outcomes in
  let stalls = ops - Array.length values in
  match spec_stall_violation exec.outcomes with
  | Some v -> Some v
  | None ->
  if faulty then
    (* Crashes may legitimately stall operations and lose values (gaps),
       so the full-permutation check does not apply; what must survive
       any interleaving of crashes is: no duplicates, linearizable
       completion order, and the Hot Spot Lemma on crash-free segments. *)
    if not (Driver.values_distinct values) then
      Some (Duplicate_value, "completed values " ^ string_of_values values)
    else if not (values_monotonic values) then
      Some
        ( Not_linearizable,
          "completed values " ^ string_of_values values
          ^ " do not rise monotonically across sequential operations" )
    else begin
      match faulty_hotspot exec.traces with
      | v :: _ ->
          Some (Hotspot_violated, Format.asprintf "%a" Hotspot.pp_violation v)
      | [] -> if config.check_progress then progress_violation exec else None
    end
  else if stalls > 0 then
    let reason =
      match
        List.find_opt
          (function Counter_intf.Stalled _ -> true | _ -> false)
          exec.outcomes
      with
      | Some (Counter_intf.Stalled r) -> r
      | _ -> "?"
    in
    Some
      ( Unexpected_stall,
        Printf.sprintf "%d/%d operations stalled without a fault plan (%s)"
          stalls ops reason )
  else if not (Driver.values_permutation values) then
    Some
      ( Values_wrong,
        Printf.sprintf "values %s are not a permutation of 0..%d"
          (string_of_values values) (ops - 1) )
  else
    match History.check (synthetic_history origins values) with
    | History.Violation (a, b) ->
        Some
          ( Not_linearizable,
            Format.asprintf "%a completed before %a was invoked" History.pp_op
              a History.pp_op b )
    | History.Linearizable -> (
        match Hotspot.check exec.traces with
        | v :: _ ->
            Some (Hotspot_violated, Format.asprintf "%a" Hotspot.pp_violation v)
        | [] ->
            let k = Core.Lower_bound.k_of_n n in
            if
              config.check_bound
              && is_each_once schedule
              && exec.bottleneck < k
            then
              Some
                ( Bound_violated,
                  Printf.sprintf "bottleneck load %d < k = %d on an each-once \
                                  schedule"
                    exec.bottleneck k )
            else None)

(* ------------------------------------------------------------------ *)
(* Stateless DFS with prefix replay.                                   *)

type frame = {
  fkeys : Enabled.key array;
  mutable fchosen : int;  (* -1 = nothing chosen yet (fully-slept node) *)
  mutable fsleep : Enabled.key list;
}

exception Pruned
exception Budget_hit

let first_awake f =
  let len = Array.length f.fkeys in
  let rec go i =
    if i >= len then None
    else if Prune.asleep f.fsleep f.fkeys.(i) then go (i + 1)
    else Some i
  in
  go 0

let check ?(seed = 42) ?(faults = Sim.Fault.none) ?(config = default_config)
    (module C : Counter_intf.S) ~n ~schedule =
  reject_probabilistic faults;
  let n = C.supported_n n in
  let victims = Sim.Fault.crash_processors faults in
  let byzable = Sim.Fault.byzantine_processors faults in
  List.iter
    (fun p ->
      if p > n then
        invalid_arg
          (Printf.sprintf "Mc.Explore: crash victim %d outside 1..%d" p n))
    victims;
  List.iter
    (fun p ->
      if p > n then
        invalid_arg
          (Printf.sprintf "Mc.Explore: byz victim %d outside 1..%d" p n))
    byzable;
  let revivable = recover_processors faults in
  let neutered = neuter faults in
  let schedule_origins =
    Schedule.origins schedule (Sim.Rng.create ~seed:(seed + 1)) ~n
  in
  (* Mutable DFS state, shared across re-executions. *)
  let frames = ref (Array.make 64 None) in
  let nframes = ref 0 in
  let get d =
    match !frames.(d) with Some f -> f | None -> assert false
  in
  let push f =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) None in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- Some f;
    incr nframes
  in
  let executions = ref 0
  and states = ref 0
  and max_depth_seen = ref 0
  and max_enabled = ref 0
  and sleep_skips = ref 0
  and depth_capped = ref 0 in
  let run_decisions = ref [] in
  let run_once () =
    run_decisions := [];
    let depth = ref 0 in
    let replay_upto = !nframes in
    let choose keys =
      let d = !depth in
      incr depth;
      if Array.length keys > !max_enabled then
        max_enabled := Array.length keys;
      let key =
        if d < replay_upto then begin
          let f = get d in
          if
            Array.length keys <> Array.length f.fkeys
            || not (Array.for_all2 Enabled.equal keys f.fkeys)
          then
            failwith
              "Mc.Explore: enabled set changed on replay (nondeterministic \
               counter?)";
          f.fkeys.(f.fchosen)
        end
        else if d >= config.max_depth then begin
          (* Past the depth budget: finish the run deterministically
             (always the first enabled event) without opening new
             branches. The run still gets property-checked, but the
             exploration is no longer exhaustive. *)
          incr depth_capped;
          keys.(0)
        end
        else begin
          if !states >= config.max_states then raise Budget_hit;
          let sleep =
            if d = 0 then []
            else
              let parent = get (d - 1) in
              Prune.child_sleep config.prune
                ~taken:parent.fkeys.(parent.fchosen)
                parent.fsleep
          in
          let f = { fkeys = keys; fchosen = -1; fsleep = sleep } in
          incr states;
          if d + 1 > !max_depth_seen then max_depth_seen := d + 1;
          Array.iter
            (fun k -> if Prune.asleep sleep k then incr sleep_skips)
            keys;
          push f;
          match first_awake f with
          | Some i ->
              f.fchosen <- i;
              keys.(i)
          | None -> raise Pruned
        end
      in
      run_decisions := key :: !run_decisions;
      key
    in
    execute (module C) ~seed ~neutered ~n ~schedule ~victims ~revivable
      ~byzable ~choose
  in
  (* After a subtree is done: put the explored choice to sleep at the
     deepest frame and move to its next awake choice, popping frames
     whose choices are all asleep. Returns false when the root is
     exhausted. *)
  let rec backtrack () =
    if !nframes = 0 then false
    else begin
      let f = get (!nframes - 1) in
      if f.fchosen >= 0 then f.fsleep <- f.fkeys.(f.fchosen) :: f.fsleep;
      match first_awake f with
      | Some i ->
          f.fchosen <- i;
          true
      | None ->
          !frames.(!nframes - 1) <- None;
          decr nframes;
          backtrack ()
    end
  in
  let stats () =
    {
      executions = !executions;
      states = !states;
      max_depth_seen = !max_depth_seen;
      max_enabled = !max_enabled;
      sleep_skips = !sleep_skips;
      depth_capped = !depth_capped;
    }
  in
  let violation property detail =
    { property; detail; decisions = List.rev !run_decisions }
  in
  let rec loop () =
    match run_once () with
    | exception Pruned -> if backtrack () then loop () else finish Exhausted_ok
    | exception Budget_hit -> finish Budget_exhausted
    | exception Sim.Network.Storm { deliveries; _ } ->
        incr executions;
        finish
          (Violation_found
             (violation Diverged
                (Printf.sprintf
                   "message storm: no quiescence after %d deliveries"
                   deliveries)))
    | exec -> (
        incr executions;
        match
          check_properties ~config
            ~faulty:(victims <> [] || byzable <> [])
            ~schedule ~origins:schedule_origins ~n exec
        with
        | Some (property, detail) ->
            finish (Violation_found (violation property detail))
        | None -> if backtrack () then loop () else finish Exhausted_ok)
  and finish verdict =
    let verdict =
      match verdict with
      | Exhausted_ok when !depth_capped > 0 -> Budget_exhausted
      | v -> v
    in
    { verdict; stats = stats () }
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Deterministic single-schedule replay.                               *)

exception Replay_diverged of int * Enabled.key

let run_schedule ?(seed = 42) ?(faults = Sim.Fault.none)
    ?(config = default_config) (module C : Counter_intf.S) ~n ~schedule
    ~decisions =
  reject_probabilistic faults;
  let n = C.supported_n n in
  let victims = Sim.Fault.crash_processors faults in
  let byzable = Sim.Fault.byzantine_processors faults in
  let revivable = recover_processors faults in
  let neutered = neuter faults in
  let schedule_origins =
    Schedule.origins schedule (Sim.Rng.create ~seed:(seed + 1)) ~n
  in
  let arr = Array.of_list decisions in
  let depth = ref 0 in
  let choose keys =
    let d = !depth in
    incr depth;
    if d < Array.length arr then begin
      let key = arr.(d) in
      if Array.exists (Enabled.equal key) keys then key
      else raise (Replay_diverged (d, key))
    end
    else keys.(0)
  in
  match
    execute (module C) ~seed ~neutered ~n ~schedule ~victims ~revivable
      ~byzable ~choose
  with
  | exception Replay_diverged (d, key) ->
      Error
        (Printf.sprintf
           "replay diverged: decision %d (%s) is not enabled at that point" d
           (Enabled.to_token key))
  | exception Sim.Network.Storm { deliveries; _ } ->
      Ok
        (Some
           {
             property = Diverged;
             detail =
               Printf.sprintf
                 "message storm: no quiescence after %d deliveries" deliveries;
             decisions;
           })
  | exec ->
      Ok
        (Option.map
           (fun (property, detail) -> { property; detail; decisions })
           (check_properties ~config
              ~faulty:(victims <> [] || byzable <> [])
              ~schedule ~origins:schedule_origins ~n exec))

(* ------------------------------------------------------------------ *)

let pp_stats ppf s =
  Format.fprintf ppf
    "executions=%d states=%d max_depth=%d max_enabled=%d sleep_skips=%d%s"
    s.executions s.states s.max_depth_seen s.max_enabled s.sleep_skips
    (if s.depth_capped > 0 then
       Printf.sprintf " depth_capped=%d" s.depth_capped
     else "")

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>property: %s@,detail: %s@,schedule (%d decisions): %s@]"
    (property_name v.property) v.detail
    (List.length v.decisions)
    (String.concat " " (List.map Enabled.to_token v.decisions))

let pp_verdict ppf = function
  | Exhausted_ok -> Format.pp_print_string ppf "exhausted: no violation"
  | Budget_exhausted ->
      Format.pp_print_string ppf "budget exhausted: exploration incomplete"
  | Violation_found v -> Format.fprintf ppf "violation found@,%a" pp_violation v
