(** Decision alphabet of the model checker.

    A {!key} names one enabled event at a decision point: delivering the
    oldest pending message of a (src, dst) link, firing the
    earliest-armed local timer, or crash-stopping a processor. Keys are
    what the explorer branches over, what counterexample files serialise
    ({!to_token}), and what the sleep-set pruner compares for
    independence. *)

type key =
  | Link of int * int  (** Deliver the oldest message on link (src, dst). *)
  | Timer  (** Fire the earliest-armed local timer. *)
  | Crash of int  (** Crash-stop this processor before the next delivery. *)

val of_choice : Sim.Network.choice -> key
(** Map the network's enabled-event descriptor to a key (the timer
    pseudo-choice [{0, 0, _}] becomes {!Timer}). Crash keys are added by
    the explorer, not the network. *)

val equal : key -> key -> bool

val compare : key -> key -> int
(** Links ascending by (src, dst), then the timer, then crashes — the
    same canonical order the enabled array uses. *)

val to_token : key -> string
(** Compact serial form: ["S>D"], ["@"], ["!P"]. *)

val of_token : string -> (key, string) result
(** Inverse of {!to_token}. *)

val independent : key -> key -> bool
(** Receiver-locality independence heuristic: two keys are independent
    when executing them in either order from any state reaches the same
    state. [Link (s1, d1)] ⊥ [Link (s2, d2)] iff [d1 <> d2 && d1 <> s2 &&
    d2 <> s1]; {!Timer} is dependent with everything; [Crash p] ⊥
    anything not involving [p]. Exact for receiver-local protocols (every
    handler touches only the receiving processor's state); protocols with
    cross-processor shared state should explore with pruning off
    ({!Prune.No_prune}). *)

val pp : Format.formatter -> key -> unit
