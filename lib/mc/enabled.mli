(** Decision alphabet of the model checker.

    A {!key} names one enabled event at a decision point: delivering the
    oldest pending message of a (src, dst) link — or one {e specific}
    pending message, for destinations declared delivery-unordered
    ({!Sim.Network.declare_unordered}) — firing the earliest-armed local
    timer, or crash-stopping / reviving a processor. Keys are what the
    explorer branches over, what counterexample files serialise
    ({!to_token}), and what the sleep-set pruner compares for
    independence. *)

type key =
  | Link of int * int  (** Deliver the oldest message on link (src, dst). *)
  | Linkn of int * int * int
      (** Deliver the message with per-link send ordinal [k] on link
          (src, dst) — only emitted for unordered destinations, where
          every pending message is individually enabled and the
          adversary may deliver a later send before an earlier one. *)
  | Timer  (** Fire the earliest-armed local timer. *)
  | Crash of int  (** Crash-stop this processor before the next delivery. *)
  | Recover of int
      (** Revive this crashed processor before the next delivery. *)
  | Byz of int
      (** Turn this processor Byzantine before the next delivery: its
          future sends are rewritten by the fault plan's [byzval] rule. *)

val of_choice : Sim.Network.choice -> key
(** Map the network's enabled-event descriptor to a key (the timer
    pseudo-choice [{0, 0, _}] becomes {!Timer}; a choice with
    [link_seq >= 0] becomes {!Linkn}). Crash and recover keys are added
    by the explorer, not the network. *)

val equal : key -> key -> bool

val compare : key -> key -> int
(** Links ascending by (src, dst), then numbered links by
    (src, dst, seq), then the timer, then crashes, then recovers,
    then byz events — the same canonical order the enabled array
    uses. *)

val to_token : key -> string
(** Compact serial form: ["S>D"], ["S>D#K"], ["@"], ["!P"], ["^P"],
    ["*P"]. *)

val of_token : string -> (key, string) result
(** Inverse of {!to_token}. *)

val independent : key -> key -> bool
(** Receiver-locality independence heuristic: two keys are independent
    when executing them in either order from any state reaches the same
    state. [Link (s1, d1)] ⊥ [Link (s2, d2)] iff [d1 <> d2 && d1 <> s2 &&
    d2 <> s1], with {!Linkn} projecting onto its (src, dst) — two
    numbered deliveries on the same link are exactly the reorderings
    unordered destinations exist to explore, hence dependent; {!Timer}
    is dependent with everything; [Crash p], [Recover p] and [Byz p] ⊥
    anything not involving [p]. Exact for receiver-local protocols (every handler
    touches only the receiving processor's state); protocols with
    cross-processor shared state should explore with pruning off
    ({!Prune.No_prune}). *)

val pp : Format.formatter -> key -> unit
