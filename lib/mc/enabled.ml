type key =
  | Link of int * int
  | Linkn of int * int * int
  | Timer
  | Crash of int
  | Recover of int
  | Byz of int

let of_choice (c : Sim.Network.choice) =
  if c.link_src = 0 && c.link_dst = 0 then Timer
  else if c.link_seq >= 0 then Linkn (c.link_src, c.link_dst, c.link_seq)
  else Link (c.link_src, c.link_dst)

let equal (a : key) (b : key) = a = b

let compare (a : key) (b : key) =
  let rank = function
    | Link _ -> 0
    | Linkn _ -> 1
    | Timer -> 2
    | Crash _ -> 3
    | Recover _ -> 4
    | Byz _ -> 5
  in
  match (a, b) with
  | Link (s1, d1), Link (s2, d2) -> Stdlib.compare (s1, d1) (s2, d2)
  | Linkn (s1, d1, k1), Linkn (s2, d2, k2) ->
      Stdlib.compare (s1, d1, k1) (s2, d2, k2)
  | Crash p, Crash q -> Stdlib.compare p q
  | Recover p, Recover q -> Stdlib.compare p q
  | Byz p, Byz q -> Stdlib.compare p q
  | _ -> Stdlib.compare (rank a) (rank b)

let to_token = function
  | Link (s, d) -> Printf.sprintf "%d>%d" s d
  | Linkn (s, d, k) -> Printf.sprintf "%d>%d#%d" s d k
  | Timer -> "@"
  | Crash p -> Printf.sprintf "!%d" p
  | Recover p -> Printf.sprintf "^%d" p
  | Byz p -> Printf.sprintf "*%d" p

let of_token s =
  let len = String.length s in
  if len = 0 then Error "empty decision token"
  else if s = "@" then Ok Timer
  else if s.[0] = '!' then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some p when p >= 1 -> Ok (Crash p)
    | _ -> Error (Printf.sprintf "bad crash token %S (want !P)" s)
  else if s.[0] = '^' then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some p when p >= 1 -> Ok (Recover p)
    | _ -> Error (Printf.sprintf "bad recover token %S (want ^P)" s)
  else if s.[0] = '*' then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some p when p >= 1 -> Ok (Byz p)
    | _ -> Error (Printf.sprintf "bad byz token %S (want *P)" s)
  else
    match String.index_opt s '>' with
    | None ->
        Error
          (Printf.sprintf "bad decision token %S (want S>D, S>D#K, @, !P, ^P or *P)"
             s)
    | Some i -> (
        let parse_ends ~stop =
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (stop - i - 1)) )
        in
        match String.index_opt s '#' with
        | None -> (
            match parse_ends ~stop:len with
            | Some src, Some dst when src >= 1 && dst >= 1 ->
                Ok (Link (src, dst))
            | _ -> Error (Printf.sprintf "bad link token %S (want S>D)" s))
        | Some j -> (
            match
              ( parse_ends ~stop:j,
                int_of_string_opt (String.sub s (j + 1) (len - j - 1)) )
            with
            | (Some src, Some dst), Some seq when src >= 1 && dst >= 1 && seq >= 0
              ->
                Ok (Linkn (src, dst, seq))
            | _ -> Error (Printf.sprintf "bad link token %S (want S>D#K)" s)))

(* Receiver-locality heuristic: two deliveries commute when neither
   touches a processor the other reads or writes. A delivery to [d] runs
   [d]'s handler, which reads state at [d] and may depend on what [d]
   previously heard from anyone — so sharing a destination, or delivering
   *to* the other's sender (changing what that sender says next), is
   dependent. Timers are conservatively dependent with everything: a
   callback may touch arbitrary processors. A crash of [p] commutes with
   any delivery not involving [p], and two crashes always commute (crash
   is silent in this model; detection happens via timers). A recovery
   behaves like a crash for locality: it only touches the revived
   processor, and so does turning a processor Byzantine (it rewrites
   only that processor's future sends). Linkn keys (individually enabled messages to an unordered
   destination) project onto their (src, dst) for locality — two of them
   on the same link are exactly the reorderings the unordered
   declaration exists to explore, hence dependent. *)
let ends = function
  | Link (s, d) | Linkn (s, d, _) -> Some (s, d)
  | Timer | Crash _ | Recover _ | Byz _ -> None

let independent a b =
  match (a, b) with
  | Timer, _ | _, Timer -> false
  | (Crash p | Recover p | Byz p), (Crash q | Recover q | Byz q) -> p <> q
  | (Crash p | Recover p | Byz p), other | other, (Crash p | Recover p | Byz p)
    -> (
      match ends other with Some (s, d) -> p <> s && p <> d | None -> false)
  | a, b -> (
      match (ends a, ends b) with
      | Some (s1, d1), Some (s2, d2) -> d1 <> d2 && d1 <> s2 && d2 <> s1
      | _ -> false)

let pp ppf k = Format.pp_print_string ppf (to_token k)
