type key = Link of int * int | Timer | Crash of int

let of_choice (c : Sim.Network.choice) =
  if c.link_src = 0 && c.link_dst = 0 then Timer
  else Link (c.link_src, c.link_dst)

let equal (a : key) (b : key) = a = b

let compare (a : key) (b : key) =
  let rank = function Link _ -> 0 | Timer -> 1 | Crash _ -> 2 in
  match (a, b) with
  | Link (s1, d1), Link (s2, d2) -> Stdlib.compare (s1, d1) (s2, d2)
  | Crash p, Crash q -> Stdlib.compare p q
  | _ -> Stdlib.compare (rank a) (rank b)

let to_token = function
  | Link (s, d) -> Printf.sprintf "%d>%d" s d
  | Timer -> "@"
  | Crash p -> Printf.sprintf "!%d" p

let of_token s =
  let len = String.length s in
  if len = 0 then Error "empty decision token"
  else if s = "@" then Ok Timer
  else if s.[0] = '!' then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some p when p >= 1 -> Ok (Crash p)
    | _ -> Error (Printf.sprintf "bad crash token %S (want !P)" s)
  else
    match String.index_opt s '>' with
    | None -> Error (Printf.sprintf "bad decision token %S (want S>D, @ or !P)" s)
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (len - i - 1)) )
        with
        | Some src, Some dst when src >= 1 && dst >= 1 -> Ok (Link (src, dst))
        | _ -> Error (Printf.sprintf "bad link token %S (want S>D)" s))

(* Receiver-locality heuristic: two deliveries commute when neither
   touches a processor the other reads or writes. A delivery to [d] runs
   [d]'s handler, which reads state at [d] and may depend on what [d]
   previously heard from anyone — so sharing a destination, or delivering
   *to* the other's sender (changing what that sender says next), is
   dependent. Timers are conservatively dependent with everything: a
   callback may touch arbitrary processors. A crash of [p] commutes with
   any delivery not involving [p], and two crashes always commute (crash
   is silent in this model; detection happens via timers). *)
let independent a b =
  match (a, b) with
  | Timer, _ | _, Timer -> false
  | Crash p, Crash q -> p <> q
  | Crash p, Link (s, d) | Link (s, d), Crash p -> p <> s && p <> d
  | Link (s1, d1), Link (s2, d2) -> d1 <> d2 && d1 <> s2 && d2 <> s1

let pp ppf k = Format.pp_print_string ppf (to_token k)
