(* Structure-of-arrays 4-ary min-heap.

   The event queue is the hottest structure in the simulator, so its layout
   is chosen for throughput rather than elegance:

   - priorities live in a flat [float array] (unboxed storage — the boxed
     [{prio; seq; value}] entry records of the original binary heap cost a
     two-block allocation per push and a pointer chase per comparison);
   - sequence numbers and values live in parallel [int array] / ['a array]
     columns, so a steady-state push/pop cycle allocates nothing at all;
   - the heap is 4-ary: half the depth of a binary heap, which trades a few
     extra comparisons per level for far fewer cache-missing levels. Sift
     loops move a "hole" instead of swapping, one write per level.

   The ordering contract is unchanged from the original binary heap: pop
   returns the minimum (prio, seq) pair, and [seq] is the global insertion
   counter, so equal priorities pop FIFO. Because (prio, seq) is a total
   order, the internal arity/layout cannot affect pop order — seeded runs
   are bit-identical to the old implementation. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable values : 'a array;
      (* may lag [prios] in length until the first push supplies a filler *)
  mutable len : int;
  mutable next_seq : int;
}

let create ?(capacity = 0) () =
  let cap = max capacity 0 in
  {
    prios = Array.make cap 0.0;
    seqs = Array.make cap 0;
    values = [||];
    len = 0;
    next_seq = 0;
  }

let size t = t.len

let is_empty t = t.len = 0

let capacity t = Array.length t.prios

(* Grows the columns, using [fill] as the filler for fresh value slots. *)
let ensure_capacity t fill =
  let cap = Array.length t.prios in
  if t.len >= cap then begin
    let new_cap = if cap = 0 then 16 else 2 * cap in
    let prios = Array.make new_cap 0.0 in
    let seqs = Array.make new_cap 0 in
    Array.blit t.prios 0 prios 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    t.prios <- prios;
    t.seqs <- seqs
  end;
  if Array.length t.values < Array.length t.prios then begin
    let values = Array.make (Array.length t.prios) fill in
    Array.blit t.values 0 values 0 t.len;
    t.values <- values
  end

let push_keyed t ~prio ~key value =
  ensure_capacity t value;
  let seq = key in
  let prios = t.prios and seqs = t.seqs and values = t.values in
  (* Sift the hole up from the end; parents shift down into it. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pp = prios.(parent) in
    if prio < pp || (prio = pp && seq < seqs.(parent)) then begin
      prios.(!i) <- pp;
      seqs.(!i) <- seqs.(parent);
      values.(!i) <- values.(parent);
      i := parent
    end
    else moving := false
  done;
  prios.(!i) <- prio;
  seqs.(!i) <- seq;
  values.(!i) <- value

let push t ~prio value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push_keyed t ~prio ~key:seq value

(* Re-inserts (prio, seq, value) starting from a hole at the root. *)
let sift_down_from_root t prio seq value =
  let prios = t.prios and seqs = t.seqs and values = t.values in
  let len = t.len in
  let i = ref 0 in
  let moving = ref true in
  while !moving do
    let base = (4 * !i) + 1 in
    if base >= len then moving := false
    else begin
      let best = ref base in
      let last = min (base + 3) (len - 1) in
      for c = base + 1 to last do
        let cp = prios.(c) in
        let bp = prios.(!best) in
        if cp < bp || (cp = bp && seqs.(c) < seqs.(!best)) then best := c
      done;
      let b = !best in
      let bp = prios.(b) in
      if bp < prio || (bp = prio && seqs.(b) < seq) then begin
        prios.(!i) <- bp;
        seqs.(!i) <- seqs.(b);
        values.(!i) <- values.(b);
        i := b
      end
      else moving := false
    end
  done;
  prios.(!i) <- prio;
  seqs.(!i) <- seq;
  values.(!i) <- value

let peek t = if t.len = 0 then None else Some (t.prios.(0), t.values.(0))

let top_prio t =
  if t.len = 0 then invalid_arg "Heap.top_prio: empty heap";
  t.prios.(0)

let top_key t =
  if t.len = 0 then invalid_arg "Heap.top_key: empty heap";
  t.seqs.(0)

let pop_top t =
  if t.len = 0 then invalid_arg "Heap.pop_top: empty heap";
  let value = t.values.(0) in
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then
    sift_down_from_root t t.prios.(last) t.seqs.(last) t.values.(last);
  value

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) in
    Some (prio, pop_top t)
  end

let clear t =
  t.len <- 0;
  t.next_seq <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.prios.(i) t.values.(i)
  done

let to_sorted_list t =
  let items =
    Array.init t.len (fun i -> (t.prios.(i), t.seqs.(i), t.values.(i)))
  in
  Array.sort
    (fun (p1, s1, _) (p2, s2, _) ->
      if p1 < p2 then -1
      else if p1 > p2 then 1
      else Int.compare s1 s2)
    items;
  Array.to_list (Array.map (fun (p, _, v) -> (p, v)) items)
