(* SplitMix64. Reference: Steele, Lea & Flood, "Fast Splittable
   Pseudorandom Number Generators", OOPSLA 2014. The constants below are the
   standard golden-gamma increment and the two mixing multipliers of the
   murmur3-style finalizer variant used by the reference implementation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* Stateless derivation: a stream that is a pure function of
   (seed, a, b), independent of any draw order elsewhere. The sharded
   engine keys one on (source processor, per-source send index) for each
   message, so delay samples do not depend on the order in which domains
   happen to execute — the keystone of its determinism argument. Each
   coordinate is absorbed with a golden-gamma step + mix, SplitMix64's
   own sequence construction. *)
let keyed ~seed a b =
  let absorb s v = mix64 (Int64.add s (Int64.mul golden_gamma (Int64.of_int v))) in
  { state = absorb (absorb (mix64 (Int64.of_int seed)) a) b }

(* Non-negative 62-bit int from the top bits (avoids sign issues). *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = (1 lsl 62) - 1 in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = bits t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int v /. 9007199254740992.)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
