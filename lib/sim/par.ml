(* Conservative (Chandy–Misra) sharded discrete-event engine. The model,
   the protocol contract and the determinism argument live in par.mli and
   docs/PERFORMANCE.md; this file is the mechanism.

   Execution is bulk-synchronous: every shard drains its cross-shard
   inboxes and publishes its earliest pending time; the coordinator takes
   the global minimum, adds the delay model's lookahead, and every shard
   processes exactly its events strictly below that horizon. Any message
   generated inside a window arrives at or past the horizon (send time
   >= global min, delay >= lookahead), so windows are conflict-free and
   the per-processor delivery sequence — ordered by the canonical
   (arrival, source lsl 40 lor send-index) key — is a pure function of
   the inputs, never of the shard count or domain scheduling. *)

exception
  Storm of { max_steps : int; pending : int; now : float; deliveries : int }

let () =
  Printexc.register_printer (function
    | Storm { max_steps; pending; now; deliveries } ->
        Some
          (Printf.sprintf
             "Par.Storm { max_steps = %d; pending = %d; now = %g; \
              deliveries = %d } — protocol probably diverges"
             max_steps pending now deliveries)
    | _ -> None)

(* Processor ids and per-source send indices share the 62-bit canonical
   key as (src lsl 40) lor index, so n < 2^22 and index < 2^40. *)
let max_n = (1 lsl 22) - 1

let max_sseq = 1 lsl 40

type cfg = {
  n : int;
  nshards : int;
  seed : int;
  delay : Delay.t;
  la : float;  (* conservative lookahead: Delay.lookahead delay *)
  faults : Fault.t;
  partitions_active : bool;
      (* skip the partition test entirely on fault-free plans *)
  byz_active : bool;  (* skip the Byzantine rewrite test on byz-free plans *)
}

(* One queued delivery. The arrival time lives in the heap's unboxed
   priority column and the canonical key in its key column, so the cell
   itself is three words of payload. *)
type 'msg cell = { csrc : int; cdst : int; cpay : 'msg }

(* One cross-shard message parked in an outbox between rounds. *)
type 'msg packet = {
  ptime : float;
  pkey : int;
  psrc : int;
  pdst : int;
  ppay : 'msg;
}

type 'msg shard = {
  sid : int;
  lo : int;  (* owns processors lo .. hi; local index = id - lo *)
  hi : int;
  heap : 'msg cell Heap.t;
  sseq : int array;
      (* per-owned-processor send counter — with the keyed Rng stream,
         the whole canonicalization: both advance in the processor's own
         delivery order, which the horizon argument makes shard-count
         independent *)
  s_sent : int array;
  s_recv : int array;
  crashed_l : bool array;
  byz_l : bool array;
  tev : (float * int * int) array;
      (* this shard's (time, kind, victim) triggers, kind 0 = crash,
         1 = recover, 2 = turn Byzantine, sorted by (time, kind, victim)
         as in Network *)
  mutable tev_idx : int;
  mutable s_dropped : int;
  mutable s_crashes : int;
  mutable s_recoveries : int;
  mutable s_byz : int;
  mutable s_corruptions : int;
  mutable s_deliveries : int;
  mutable s_events : int;  (* deliveries + crash-drops: the Storm meter *)
  mutable min_pub : float;  (* earliest pending time, published at drain *)
  clock : float array;  (* length 1; monotone across rounds *)
  out : 'msg packet list ref array;  (* this shard's outbox row *)
}

type 'msg corrupt_fn =
  rule:Fault.byz_rule -> equivocate:bool -> src:int -> dst:int -> 'msg -> 'msg

type 'msg ctx = {
  cfg : cfg;
  sh : 'msg shard;
  mutable cself : int;
  xcorrupt : 'msg corrupt_fn option;
}

type 'msg t = {
  c : cfg;
  shards : 'msg shard array;
  ctxs : 'msg ctx array;
  mail : 'msg packet list ref array array;
      (* mail.(i).(j) is written only by shard i (inside its window) and
         read only by shard j (inside its drain); the barrier between the
         two phases is the happens-before edge that publishes it *)
  mutable handler : ('msg ctx -> src:int -> 'msg -> unit) option;
  mutable running : bool;
  corrupt : 'msg corrupt_fn option;
}

let shard_of c p = if c.nshards = 1 then 0 else (p - 1) * c.nshards / c.n

(* Time triggers apply lazily, before the first owned event at or past
   their instant — the per-shard restriction of Network's rule. Crash is
   idempotent and recovery of a live processor is a graceful no-op,
   matching the sequential engine's counters exactly. *)
let[@dlint.allow
     "R1: shard state is owned by exactly one domain — sh is worker \
      shards.(sid) private to its worker between barriers, and the \
      coordinator only reads the aggregate counters after run_rounds' \
      final barrier (the cv_done handshake under ctrl.m is the \
      happens-before edge); the name-based analysis cannot see per-shard \
      ownership"] apply_due sh ~at =
  while
    sh.tev_idx < Array.length sh.tev
    && (let time, _, _ = sh.tev.(sh.tev_idx) in
        time <= at)
  do
    let _, kind, p = sh.tev.(sh.tev_idx) in
    sh.tev_idx <- sh.tev_idx + 1;
    let i = p - sh.lo in
    if kind = 0 then begin
      if not sh.crashed_l.(i) then begin
        sh.crashed_l.(i) <- true;
        sh.s_crashes <- sh.s_crashes + 1
      end
    end
    else if kind = 1 then begin
      if sh.crashed_l.(i) then begin
        sh.crashed_l.(i) <- false;
        sh.s_recoveries <- sh.s_recoveries + 1
      end
    end
    else if not sh.byz_l.(i) then begin
      sh.byz_l.(i) <- true;
      sh.s_byz <- sh.s_byz + 1
    end
  done

(* Charge and route one approved send from [src] (owned by [src_sh]) at
   virtual time [at]. Same-shard messages go straight into the heap (they
   arrive at or past the horizon, so they cannot re-enter the current
   window); cross-shard messages are parked in the outbox for the
   destination's next drain. *)
let enqueue_from c src_sh ~corrupt ~at ~src ~dst pay =
  let i = src - src_sh.lo in
  (* Byzantine payload rewrite, exactly as in Network.send: pure, keyed
     on nothing but (rule, equivocate, src, dst, payload), so it neither
     draws nor depends on the shard layout. *)
  let pay =
    if c.byz_active && src_sh.byz_l.(i) then
      match (corrupt, Fault.byz_rule_of c.faults src) with
      | Some f, Some rule ->
          let rewritten =
            f ~rule ~equivocate:(Fault.equivocates c.faults src) ~src ~dst
              pay
          in
          if rewritten != pay then
            src_sh.s_corruptions <- src_sh.s_corruptions + 1;
          rewritten
      | _ -> pay
    else pay
  in
  let q = src_sh.sseq.(i) in
  if q >= max_sseq then failwith "Par: per-source send index overflow";
  src_sh.sseq.(i) <- q + 1;
  src_sh.s_sent.(i) <- src_sh.s_sent.(i) + 1;
  if c.partitions_active && Fault.partitioned c.faults ~src ~dst ~at then
    src_sh.s_dropped <- src_sh.s_dropped + 1
  else begin
    let rng = Rng.keyed ~seed:c.seed src q in
    let time = at +. Delay.sample c.delay rng in
    let key = (src lsl 40) lor q in
    let ds = shard_of c dst in
    if ds = src_sh.sid then
      Heap.push_keyed src_sh.heap ~prio:time ~key
        { csrc = src; cdst = dst; cpay = pay }
    else begin
      let box = src_sh.out.(ds) in
      box :=
        { ptime = time; pkey = key; psrc = src; pdst = dst; ppay = pay }
        :: !box
    end
  end

let send ctx ~dst pay =
  if dst < 1 || dst > ctx.cfg.n then invalid_arg "Par.send: dst out of range";
  enqueue_from ctx.cfg ctx.sh ~corrupt:ctx.xcorrupt ~at:ctx.sh.clock.(0)
    ~src:ctx.cself ~dst pay

let self ctx = ctx.cself

let now ctx = ctx.sh.clock.(0)

let n t = t.c.n

let domains t = t.c.nshards

let lookahead t = t.c.la

let set_handler t h = t.handler <- Some h

let deliveries t =
  Array.fold_left (fun acc sh -> acc + sh.s_deliveries) 0 t.shards

let total_events t =
  Array.fold_left (fun acc sh -> acc + sh.s_events) 0 t.shards

let pending t =
  let heaps =
    Array.fold_left (fun acc sh -> acc + Heap.size sh.heap) 0 t.shards
  in
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc box -> acc + List.length !box) acc row)
    heaps t.mail

(* Last processed event time across all shards — identical for every
   shard count (it is a property of the execution, not the layout). *)
let global_now t =
  Array.fold_left (fun acc sh -> Float.max acc sh.clock.(0)) 0. t.shards

let crashed t p =
  p >= 1 && p <= t.c.n
  &&
  let sh = t.shards.(shard_of t.c p) in
  sh.crashed_l.(p - sh.lo)

let byzantine t p =
  p >= 1 && p <= t.c.n
  &&
  let sh = t.shards.(shard_of t.c p) in
  sh.byz_l.(p - sh.lo)

let inject t ~src ~dst pay =
  if t.running then failwith "Par.inject: engine is running";
  if src < 1 || src > t.c.n || dst < 1 || dst > t.c.n then
    invalid_arg "Par.inject: ids must be in 1 .. n";
  let at = global_now t in
  let sh = t.shards.(shard_of t.c src) in
  apply_due sh ~at;
  if sh.crashed_l.(src - sh.lo) then
    (* a crash-stopped processor emits nothing: suppressed before any
       send charge, as in Network.send *)
    sh.s_dropped <- sh.s_dropped + 1
  else enqueue_from t.c sh ~corrupt:t.corrupt ~at ~src ~dst pay

(* --- Round phases ---------------------------------------------------- *)

let[@dlint.allow
     "R1: mail.(i).(j) is single-writer single-reader — written only by \
      shard i inside its window, emptied only by shard j in its drain, \
      and the mutex-guarded round barrier between the two phases is the \
      happens-before edge that publishes it (see the mail field doc); \
      no box is touched concurrently from two domains"] drain t sh =
  for i = 0 to t.c.nshards - 1 do
    let box = t.mail.(i).(sh.sid) in
    match !box with
    | [] -> ()
    | l ->
        box := [];
        (* Push order is irrelevant: the heap orders by (time, key). *)
        List.iter
          (fun p ->
            Heap.push_keyed sh.heap ~prio:p.ptime ~key:p.pkey
              { csrc = p.psrc; cdst = p.pdst; cpay = p.ppay })
          l
  done;
  sh.min_pub <-
    (if Heap.is_empty sh.heap then infinity else Heap.top_prio sh.heap)

let[@dlint.allow
     "R1: ctx is the per-shard handler context — ctxs.(sid) is written \
      (cself) only by its own worker during process and read by the \
      same domain's handler callbacks; the coordinator never touches \
      cself while workers run"] process ctx handler ~horizon =
  let sh = ctx.sh in
  let have_tev = sh.tev_idx < Array.length sh.tev in
  while (not (Heap.is_empty sh.heap)) && Heap.top_prio sh.heap < horizon do
    let at = Heap.top_prio sh.heap in
    if at > sh.clock.(0) then sh.clock.(0) <- at;
    if have_tev then apply_due sh ~at;
    let cell = Heap.pop_top sh.heap in
    sh.s_events <- sh.s_events + 1;
    let i = cell.cdst - sh.lo in
    if sh.crashed_l.(i) then
      (* crash-stop: the send was charged at the source; the message is
         lost here with no receive charge *)
      sh.s_dropped <- sh.s_dropped + 1
    else begin
      sh.s_deliveries <- sh.s_deliveries + 1;
      sh.s_recv.(i) <- sh.s_recv.(i) + 1;
      ctx.cself <- cell.cdst;
      handler ctx ~src:cell.csrc cell.cpay
    end
  done

(* --- Domain pool ----------------------------------------------------- *)

type job = Drain | Process of float | Quit

type ctrl = {
  m : Mutex.t;
  cv_start : Condition.t;
  cv_done : Condition.t;
  mutable gen : int;  (* round generation; a bump publishes a new job *)
  mutable job : job;
  mutable ndone : int;
  mutable failure : exn option;  (* first worker exception of the round *)
}

let[@dlint.allow
     "P1: a worker domain cannot let an exception escape (the coordinator \
      would deadlock at the barrier); it is parked under the pool mutex \
      and re-raised by the coordinator right after the round, so nothing \
      is swallowed"] run_job ctrl f =
  (try f ()
   with e ->
     Mutex.lock ctrl.m;
     (match ctrl.failure with
     | None -> ctrl.failure <- Some e
     | Some _ -> ());
     Mutex.unlock ctrl.m);
  Mutex.lock ctrl.m;
  ctrl.ndone <- ctrl.ndone + 1;
  Condition.signal ctrl.cv_done;
  Mutex.unlock ctrl.m

let worker_loop t ctrl w handler =
  let ctx = t.ctxs.(w) in
  let sh = t.shards.(w) in
  let mygen = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock ctrl.m;
    while ctrl.gen = !mygen do
      Condition.wait ctrl.cv_start ctrl.m
    done;
    mygen := ctrl.gen;
    let job = ctrl.job in
    Mutex.unlock ctrl.m;
    match job with
    | Quit -> live := false
    | Drain -> run_job ctrl (fun () -> drain t sh)
    | Process horizon -> run_job ctrl (fun () -> process ctx handler ~horizon)
  done

let issue ctrl job =
  Mutex.lock ctrl.m;
  ctrl.job <- job;
  ctrl.gen <- ctrl.gen + 1;
  ctrl.ndone <- 0;
  Condition.broadcast ctrl.cv_start;
  Mutex.unlock ctrl.m

let await ctrl ~workers =
  Mutex.lock ctrl.m;
  while ctrl.ndone < workers do
    Condition.wait ctrl.cv_done ctrl.m
  done;
  let f = ctrl.failure in
  ctrl.failure <- None;
  Mutex.unlock ctrl.m;
  match f with None -> () | Some e -> raise e

let run_to_quiescence ?(max_steps = 100_000_000) t =
  if t.running then failwith "Par.run_to_quiescence: engine is running";
  let handler =
    match t.handler with
    | Some h -> h
    | None ->
        if pending t > 0 then
          failwith "Par.run_to_quiescence: no handler installed";
        fun _ ~src:_ _ -> ()
  in
  t.running <- true;
  let start_events = total_events t in
  let nsh = t.c.nshards in
  let round_drain, round_process, shutdown =
    if nsh = 1 then
      ( (fun () -> drain t t.shards.(0)),
        (fun horizon -> process t.ctxs.(0) handler ~horizon),
        fun () -> () )
    else begin
      let ctrl =
        {
          m = Mutex.create ();
          cv_start = Condition.create ();
          cv_done = Condition.create ();
          gen = 0;
          job = Drain;
          ndone = 0;
          failure = None;
        }
      in
      let doms =
        List.init (nsh - 1) (fun i ->
            let w = i + 1 in
            Domain.spawn (fun () -> worker_loop t ctrl w handler))
      in
      let workers = nsh - 1 in
      ( (fun () ->
          issue ctrl Drain;
          drain t t.shards.(0);
          await ctrl ~workers),
        (fun horizon ->
          issue ctrl (Process horizon);
          process t.ctxs.(0) handler ~horizon;
          await ctrl ~workers),
        fun () ->
          issue ctrl Quit;
          List.iter Domain.join doms )
    end
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown ();
      t.running <- false)
    (fun () ->
      let rec loop () =
        round_drain ();
        let gmin =
          Array.fold_left
            (fun acc sh -> Float.min acc sh.min_pub)
            infinity t.shards
        in
        if gmin < infinity then begin
          if total_events t - start_events >= max_steps then
            raise
              (Storm
                 {
                   max_steps;
                   pending = pending t;
                   now = global_now t;
                   deliveries = deliveries t;
                 });
          round_process (gmin +. t.c.la);
          loop ()
        end
      in
      loop ();
      (* Remaining triggers up to the final event time fire now: the
         sequential engine applies triggers at or before each pop, so a
         trigger no later than the run's last event has fired there too —
         and the cutoff is layout-independent, keeping the crash counters
         identical for every domain count. *)
      let final = global_now t in
      Array.iter (fun sh -> apply_due sh ~at:final) t.shards;
      total_events t - start_events)

let metrics t =
  let m = Metrics.create ~n:t.c.n in
  Array.iter
    (fun sh ->
      for p = sh.lo to sh.hi do
        let i = p - sh.lo in
        Metrics.absorb_load m ~p ~sent:sh.s_sent.(i) ~recv:sh.s_recv.(i)
      done)
    t.shards;
  let dropped = Array.fold_left (fun a sh -> a + sh.s_dropped) 0 t.shards in
  let crashes = Array.fold_left (fun a sh -> a + sh.s_crashes) 0 t.shards in
  let recoveries =
    Array.fold_left (fun a sh -> a + sh.s_recoveries) 0 t.shards
  in
  Metrics.absorb_faults m ~dropped ~duplicated:0 ~crashes ~recoveries;
  let byzantine = Array.fold_left (fun a sh -> a + sh.s_byz) 0 t.shards in
  let corruptions =
    Array.fold_left (fun a sh -> a + sh.s_corruptions) 0 t.shards
  in
  Metrics.absorb_byz m ~byzantine ~corruptions;
  m

let create ?(seed = 0xC0FFEE) ?(delay = Delay.default) ?(faults = Fault.none)
    ?corrupt ?(domains = 1) ~n () =
  if n < 1 then invalid_arg "Par.create: n must be >= 1";
  if n > max_n then
    invalid_arg "Par.create: n too large for the canonical event key";
  if domains < 1 then invalid_arg "Par.create: domains must be >= 1";
  let nshards = min domains n in
  let la = Delay.lookahead delay in
  if la < 1e-6 then
    invalid_arg
      "Par.create: delay model has a (near-)zero minimum delay, so there \
       is no usable conservative lookahead; use the sequential engine";
  (match Fault.validate faults with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Par.create: bad fault plan: " ^ e));
  if faults.Fault.drop > 0. || faults.Fault.duplicate > 0. then
    invalid_arg
      "Par.create: probabilistic drop/duplication needs a globally \
       ordered random stream; use the sequential engine";
  (match faults.Fault.drop_links with
  | [] -> ()
  | _ :: _ ->
      invalid_arg
        "Par.create: per-link drop probabilities need a globally ordered \
         random stream; use the sequential engine");
  if Fault.store_active faults then
    invalid_arg
      "Par.create: store-RPC fault clauses (sdrop/sdup/sslow/sout) are \
       interpreted at the store service, which the sharded engine does \
       not host; use the sequential engine";
  List.iter
    (fun { Fault.processor; trigger } ->
      (match trigger with
      | Fault.At _ -> ()
      | Fault.After _ ->
          invalid_arg
            "Par.create: delivery-count triggers (crash:P@#D) need the \
             global delivery order; use the sequential engine");
      if processor > n then
        invalid_arg "Par.create: fault plan names a processor above n")
    faults.Fault.crashes;
  List.iter
    (fun ({ processor; _ } : Fault.recover) ->
      if processor > n then
        invalid_arg "Par.create: fault plan names a processor above n")
    faults.Fault.recovers;
  List.iter
    (fun { Fault.processor; trigger } ->
      (match trigger with
      | Fault.At _ -> ()
      | Fault.After _ ->
          invalid_arg
            "Par.create: delivery-count triggers (byz:P@#D) need the \
             global delivery order; use the sequential engine");
      if processor > n then
        invalid_arg "Par.create: fault plan names a processor above n")
    faults.Fault.byz;
  if faults.Fault.byz_rules <> [] && corrupt = None then
    invalid_arg
      "Par.create: fault plan has byzval rules but this protocol supplies \
       no ?corrupt rewriter";
  let c =
    {
      n;
      nshards;
      seed;
      delay;
      la;
      faults;
      partitions_active =
        (match faults.Fault.partitions with [] -> false | _ :: _ -> true);
      byz_active = Fault.byz_active faults;
    }
  in
  let triggers =
    let at =
      List.map
        (fun { Fault.processor; trigger } ->
          match trigger with
          | Fault.At time -> (time, 0, processor)
          | Fault.After _ -> assert false)
        faults.Fault.crashes
      @ List.map
          (fun ({ processor; time } : Fault.recover) -> (time, 1, processor))
          faults.Fault.recovers
      @ List.map
          (fun { Fault.processor; trigger } ->
            match trigger with
            | Fault.At time -> (time, 2, processor)
            | Fault.After _ -> assert false)
          faults.Fault.byz
    in
    List.sort
      (fun (t1, k1, p1) (t2, k2, p2) ->
        match Float.compare t1 t2 with
        | 0 -> (
            match Int.compare k1 k2 with 0 -> Int.compare p1 p2 | c -> c)
        | c -> c)
      at
  in
  let mail =
    Array.init nshards (fun _ -> Array.init nshards (fun _ -> ref []))
  in
  let ceil_div a b = (a + b - 1) / b in
  let shards =
    Array.init nshards (fun s ->
        (* smallest / largest p with shard_of p = s: the inverse image of
           the floor in shard_of, hence the ceilings *)
        let lo = ceil_div (s * n) nshards + 1
        and hi = ceil_div ((s + 1) * n) nshards in
        let len = hi - lo + 1 in
        {
          sid = s;
          lo;
          hi;
          heap = Heap.create ~capacity:(max 16 (min (2 * len) (1 lsl 14))) ();
          sseq = Array.make len 0;
          s_sent = Array.make len 0;
          s_recv = Array.make len 0;
          crashed_l = Array.make len false;
          byz_l = Array.make len false;
          tev =
            Array.of_list
              (List.filter (fun (_, _, p) -> p >= lo && p <= hi) triggers);
          tev_idx = 0;
          s_dropped = 0;
          s_crashes = 0;
          s_recoveries = 0;
          s_byz = 0;
          s_corruptions = 0;
          s_deliveries = 0;
          s_events = 0;
          min_pub = infinity;
          clock = [| 0. |];
          out = mail.(s);
        })
  in
  let t =
    {
      c;
      shards;
      ctxs =
        Array.map
          (fun sh -> { cfg = c; sh; cself = 0; xcorrupt = corrupt })
          shards;
      mail;
      handler = None;
      running = false;
      corrupt;
    }
  in
  (* "Crashed from the start" (At 0.) applies before any send, as in the
     sequential engine. *)
  Array.iter (fun sh -> apply_due sh ~at:0.) t.shards;
  t
