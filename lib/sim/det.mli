(** Order-canonical iteration over hash tables.

    [Hashtbl]'s own [iter] and [fold] visit bindings in unspecified hash
    order, which silently couples trace and metric output to the table's
    internal layout — exactly the kind of ambient nondeterminism the
    repo's bit-identical-replay invariant (docs/MODEL.md) forbids and the
    [dlint] rule D2 rejects. These helpers canonicalise: they snapshot
    the bindings, sort them by key with an explicit comparator, and only
    then iterate, so the visit order depends on the table's {e contents}
    alone.

    The comparator is required, not defaulted, so callers never fall
    back to polymorphic [Stdlib.compare] by accident (rule D3). *)

val sorted_bindings :
  compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key. For keys bound several times (via
    [Hashtbl.add] shadowing) the sort is stable, so the most recent
    binding of a key comes first, matching [Hashtbl.fold]'s per-key
    order. *)

val sorted_iter :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [Hashtbl.iter] in ascending key order. *)

val sorted_fold :
  compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [Hashtbl.fold] in ascending key order. *)
