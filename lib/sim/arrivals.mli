(** Deterministic open-loop arrival processes.

    An open-loop workload injects operations at times drawn from an
    arrival process, {e regardless} of whether earlier operations have
    completed — the opposite of the driver's closed-loop
    run-to-quiescence dispatch, and the regime where counters genuinely
    overlap (docs/LOAD.md).

    Every source (one per origin processor) draws from its own
    {!Rng.keyed} stream, a pure function of [(seed, origin)]: the merged
    arrival sequence is computed before the network exists and is
    therefore bit-identical for every engine configuration, including
    every [--sim-domains] shard count. Rates are {e per source}: [n]
    sources at rate [r] inject [n * r] operations per unit of virtual
    time in aggregate. *)

type t =
  | Fixed of float  (** One arrival every [1/rate], no randomness. *)
  | Poisson of float
      (** Memoryless arrivals: exponential inter-arrival times with mean
          [1/rate]. *)
  | Bursty of { rate : float; on_len : float; off_len : float }
      (** A two-state MMPP: Poisson at [rate] during ON windows of length
          [on_len], silent during OFF windows of length [off_len]. Every
          arrival time [t] satisfies [fmod t (on_len + off_len) <= on_len]
          (the on/off envelope). *)

val rate : t -> float
(** The per-source rate parameter. *)

val of_string : string -> t
(** Grammar: [fixed:R] | [poisson:R] | [bursty:R:ON:OFF]. Raises
    [Invalid_argument] on anything else or on non-positive parameters. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

val pp : Format.formatter -> t -> unit

val stream : t -> seed:int -> origin:int -> count:int -> float array
(** First [count] arrival times of one source, strictly from the keyed
    stream [(seed, origin)] — equal triples give equal streams. Times are
    non-decreasing and start after virtual time 0. *)

val merge : t -> seed:int -> n:int -> ops:int -> (float * int) array
(** First [ops] arrivals across sources [1 .. n], merged by earliest
    time (ties broken by origin id): [(time, origin)] pairs,
    non-decreasing in time. Element [i] is operation [i] of an open-loop
    run. *)
