(** Discrete-event asynchronous message-passing network.

    This is the paper's model (Section 2): [n] processors uniquely
    identified by the integers [1 .. n], every pair can exchange messages
    directly, no shared memory, and a message arrives an unbounded but
    finite time after it was sent (here: a {!Delay} sample on a
    deterministic {!Rng} stream). Message handling is event-driven: the
    engine pops the earliest pending delivery, charges the receive to the
    destination processor's {!Metrics}, records it on the active {!Trace}
    (if an operation is open), and invokes the protocol handler, which may
    send further messages.

    The paper additionally assumes "no failures whatsoever occur"; the
    engine honours that by default, and steps outside it only when a
    {!Fault} plan is supplied at creation (see docs/FAULTS.md): crash-stop
    processors, message drops and duplications sampled from the network's
    own {!Rng} stream, and healing partitions. With [Fault.none] the fault
    layer makes zero draws and runs are bit-identical to a fault-free
    engine.

    One network instance hosts one protocol. Protocols with different
    message types instantiate their own ['msg t]. *)

type 'msg t

(** {1 Pluggable delivery scheduling}

    The engine's default policy — deliver the earliest pending event, in
    (arrival time, send order) — is only one resolution of the model's
    asynchrony. A {!policy} replaces it: at every step the engine
    enumerates the {e enabled} events and asks the policy which happens
    next. Enabled events are the oldest pending message of each distinct
    (src, dst) link (per-link FIFO; branching {e across} links is where
    all the adversarial power lies), plus — when local timers are armed —
    a single choice standing for the earliest-armed timer (timers keep
    their mutual arming order; they interleave freely with deliveries).
    A destination declared {e unordered} (see {!declare_unordered})
    relaxes the per-link FIFO on its inbound links: {e every} pending
    message to it is individually enabled, named by a stable per-link
    send ordinal — how the model checker reorders retried store RPCs
    past their originals. The choice array is canonically ordered (links
    ascending by (src, dst, ordinal), the timer choice last), so a run
    under a scheduler is a pure function of the decision sequence: no
    delay is sampled, no Rng draw is made, and the clock advances by
    exactly 1 per event.

    This is the hook the delivery-interleaving model checker
    ({!Mc.Explore}) is built on; see docs/MODELCHECK.md. *)

type choice = {
  link_src : int;
  link_dst : int;
  link_seq : int;
      (** per-link send ordinal when [link_dst] was declared unordered
          ({!declare_unordered}); [-1] on FIFO links and the timer
          pseudo-choice *)
  link_tag : string;
}
(** One enabled event: a message on link [(link_src, link_dst)] whose
    payload renders as [link_tag], or the timer pseudo-choice
    [{0, 0, -1, "timer"}]. *)

type decision =
  | Deliver_next of int
      (** Deliver the choice at this index of the enabled array. *)
  | Crash_now of int
      (** Crash-stop this processor between deliveries, then ask again —
          how fault events are interleaved adversarially. *)
  | Recover_now of int
      (** Revive this (crashed) processor between deliveries, then ask
          again — how the model checker interleaves [recover:P@T]
          revivals with deliveries. *)
  | Byz_now of int
      (** Turn this processor Byzantine between deliveries, then ask
          again — how the model checker interleaves the corruption
          onset with deliveries. The rewrite rule still comes from the
          network's fault plan ([byzval]). *)

type policy = choice array -> decision
(** Called with a non-empty enabled array each time the engine must pick
    the next event. *)

val with_scheduler : policy -> (unit -> 'a) -> 'a
(** [with_scheduler p f] runs [f] with [p] installed as the ambient
    default policy: every network {!create}d during [f] is born in
    scheduler mode. This is how a model checker drives counters that
    construct their own networks internally, without widening every
    counter's [create] signature. The previous ambient policy is
    restored on exit (exceptions included). *)

val set_scheduler : 'msg t -> policy -> unit
(** Install a policy on an existing network. Raises [Failure] if heap
    events are already pending (the two queues cannot be mixed). *)

val has_scheduler : 'msg t -> bool

val declare_unordered : 'msg t -> int -> unit
(** Relax per-link FIFO for deliveries {e into} this processor under a
    scheduler: every pending message to it becomes individually enabled,
    keyed by a stable per-link send ordinal ([choice.link_seq]). Durable
    protocols declare their store processor unordered so the checker can
    interleave a retried RPC past the original it duplicates — the
    reorderings compare-and-swap exists to survive. No effect on the
    timed (heap) engine, whose order the delay model already decides. *)

exception
  Storm of { max_steps : int; pending : int; now : float; deliveries : int }
(** Raised by {!run_to_quiescence} when the step guard trips: [pending]
    events were still queued at virtual time [now] after [deliveries]
    total deliveries — a protocol bug generating an infinite message
    storm, caught after [max_steps] steps. *)

val create :
  ?seed:int ->
  ?delay:Delay.t ->
  ?label:('msg -> string) ->
  ?bits:('msg -> int) ->
  ?fifo:bool ->
  ?faults:Fault.t ->
  ?corrupt:
    (rule:Fault.byz_rule ->
    equivocate:bool ->
    src:int ->
    dst:int ->
    'msg ->
    'msg) ->
  ?shards:int ->
  n:int ->
  unit ->
  'msg t
(** [create ~n ()] builds a quiescent network of processors [1 .. n].
    [seed] (default 0xC0FFEE) seeds the private random stream; [delay]
    (default {!Delay.default}) is the latency model; [label] renders
    payloads for traces (default: ["msg"]); [bits] measures payload sizes
    for the message-length accounting of {!total_bits} /
    {!max_message_bits} (default: messages are unmeasured, size 0);
    [fifo] (default false) makes each directed (src, dst) link deliver in
    send order even under reordering delay models — the TCP-like
    assumption many protocols quietly rely on. The paper's model does
    not require it and neither do our protocols (tested both ways).
    [faults] (default {!Fault.none}) is the deterministic fault plan:
    crash triggers apply between deliveries, per-message drop and
    duplication decisions draw from the network's own random stream, and
    partition cuts are evaluated at send time. Raises [Invalid_argument]
    if the plan fails {!Fault.validate}.

    [corrupt] is the protocol's Byzantine payload rewriter: once a [byz]
    trigger fires for a sender with a [byzval] rule, every payload it
    sends passes through
    [corrupt ~rule ~equivocate ~src ~dst payload] (typically delegating
    the integer field to {!Fault.apply_rule}). It must be pure — the
    Byzantine path makes zero Rng draws. Returning the payload
    {e physically unchanged} means "this message kind carries nothing
    corruptible" and is not charged to {!Metrics.corruptions}. Raises
    [Invalid_argument] when the plan carries [byzval] rules but no
    [corrupt] was supplied: the network cannot rewrite an opaque
    payload, and running such a plan honestly would be worse than
    refusing.

    [shards] (default: the ambient count installed by {!with_shards},
    itself defaulting to 1) splits the event queue into that many
    per-block heaps, processors partitioned into contiguous id blocks.
    Dispatch stays single-threaded; what sharding buys here is the
    storage layout of {!Par}'s multi-domain engine under the sequential
    dispatcher, so the CLI's [--sim-domains] flag exercises the sharded
    structures on {e every} counter. Events are keyed by one
    network-global send sequence, so the merged delivery order — and
    every {!Metrics.checksum} — is bit-identical for any shard count,
    all delay models and all fault plans. Counts above [n] are clamped
    to [n]. *)

val with_shards : int -> (unit -> 'a) -> 'a
(** [with_shards s f] runs [f] with [s] installed as the ambient default
    shard count: every network {!create}d during [f] without an explicit
    [?shards] is born with [s] event-queue shards. Same pattern (and same
    motivation) as {!with_scheduler}; the previous count is restored on
    exit, exceptions included. Raises [Invalid_argument] when [s < 1]. *)

val shards : 'msg t -> int
(** Number of event-queue shards this network was created with (after
    clamping to [n]). *)

val set_handler : 'msg t -> (self:int -> src:int -> 'msg -> unit) -> unit
(** Install the protocol: [handler ~self ~src msg] runs when processor
    [self] receives [msg] from [src]. Must be installed before the first
    {!step}. The handler may call {!send}. *)

val n : 'msg t -> int

val rng : 'msg t -> Rng.t
(** The network's private random stream (shared with delay sampling; draw
    from a {!Rng.split} of it if the protocol needs its own stream). *)

val now : 'msg t -> float
(** Current virtual time. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a message. Charges a send to [src] immediately; the receive is
    charged to [dst] at delivery. [src] and [dst] may be any positive ids
    (ids above [n] model hired replacement processors and are tracked by
    {!Metrics.overflow_processors}). Self-sends are allowed and still cost
    two message charges — a processor talking to itself over the network
    pays for it, which protocols avoid by handling locally instead.

    Under an active fault plan: a send from a crashed processor is
    suppressed (no send charge — it never happened); a message crossing an
    active partition cut, or losing its drop coin-flip, is charged to the
    sender but never delivered; a message winning the duplication
    coin-flip is delivered twice (each copy's receive charged at
    delivery). All losses and duplications count in {!Metrics.dropped} /
    {!Metrics.duplicated} and annotate the open trace. *)

val schedule_local : 'msg t -> delay:float -> (unit -> unit) -> unit
(** Schedule a local timer: [callback] runs at [now + delay]. Timers model
    a processor consulting its own clock (combining windows, prism
    timeouts) — they are not messages, so they charge no load and appear
    in no trace. The engine stays non-quiescent until all timers fired. *)

val pending : 'msg t -> int
(** Number of undelivered messages and unfired timers. *)

val step : 'msg t -> bool
(** Deliver the earliest pending message. Returns [false] if none pending. *)

val run_to_quiescence : ?max_steps:int -> 'msg t -> int
(** Deliver until no message is pending; returns the number of steps
    taken. Raises {!Storm} — carrying the pending count, virtual time and
    delivery total — after [max_steps] (default 100 million) steps, a
    guard against protocol bugs that generate infinite message storms. *)

val metrics : 'msg t -> Metrics.t

val faults : 'msg t -> Fault.t
(** The fault plan this network was created with ({!Fault.none} if none). *)

val crashed : 'msg t -> int -> bool
(** Whether a processor has crash-stopped (by plan trigger or {!crash}). *)

val crash : 'msg t -> int -> unit
(** Crash-stop a processor immediately: from now on its handler never
    runs, messages to it are lost, and sends from it are suppressed.
    Idempotent. Counted in {!Metrics.crashes} and annotated on the open
    trace. Works even on a network created without a fault plan. *)

val recover : 'msg t -> int -> unit
(** Revive a crashed processor immediately (the [recover:P@T] clause calls
    this when virtual time reaches [T]): its handler runs again and
    messages flow to and from it. A no-op when the processor is not
    currently down. Counted in {!Metrics.recoveries} and annotated on the
    open trace. Recovery restores {e delivery}, not state: any protocol
    role the processor held when it crashed is gone, and failure-aware
    protocols must return it to their spare pool rather than let it resume
    a stale role (see {!recovered_processors}). Messages that were already
    dropped while it was down stay dropped. *)

val recovered : 'msg t -> int -> bool
(** Whether a processor has recovered at least once (it may have crashed
    again since — check {!crashed}). *)

val ever_crashed : 'msg t -> int -> bool
(** Whether a processor has crashed at any point: currently down, or alive
    again after a recovery. Failure-aware protocols use this to refuse to
    trust state a processor held before its first crash. *)

val recovered_processors : 'msg t -> int list
(** Processors that have recovered and are currently alive, ascending —
    the rejoin pool a failure-aware allocator draws fresh workers from. *)

val byzantine : 'msg t -> int -> bool
(** Whether a processor has turned Byzantine (by plan trigger or
    {!make_byzantine}). There is no way back. *)

val make_byzantine : 'msg t -> int -> unit
(** Turn a processor Byzantine immediately (the [byz:P@T] clause calls
    this when its trigger fires; the model checker's [Byz_now] decision
    calls it between deliveries). From now on every payload the
    processor sends is rewritten by the [corrupt] hook according to its
    [byzval] rule — with no rule (or no hook) it keeps sending honest
    payloads, which measures pure detection overhead. Idempotent.
    Counted in {!Metrics.byzantine} and annotated on the open trace. *)

val byzantine_processors : 'msg t -> int list
(** Processors currently Byzantine, ascending. *)

val recoveries_of : 'msg t -> int -> int
(** Number of completed revivals of this processor (0 if it never
    recovered). Durable protocols compare this against a remembered
    value to detect "I am running again after a crash" at the first
    delivery that reaches them post-revival, and trigger WAL recovery
    instead of resuming amnesiac state. *)

val total_bits : 'msg t -> int
(** Sum of payload sizes of all sent messages (per the [bits] function
    given at {!create}). *)

val max_message_bits : 'msg t -> int
(** Largest single payload seen — the paper's "messages as short as
    O(log n) bits" claim is checked against this. *)

val begin_op : 'msg t -> origin:int -> unit
(** Open an operation trace attributed to [origin]. Subsequent deliveries
    are recorded until {!end_op}. Raises if an operation is already open. *)

val end_op : 'msg t -> Trace.t
(** Close the open operation and return its trace. Raises if none open. *)

val in_op : 'msg t -> bool

val deliveries : 'msg t -> int
(** Total deliveries since creation. *)

val clone_quiescent : 'msg t -> 'msg t
(** Deep copy of a quiescent network (no pending messages, no open
    operation): same metrics counts, clock, random-stream position and
    operation counter, so the clone's future behaviour matches what the
    original's would be. The protocol handler is NOT carried over — the
    protocol must install a fresh handler (closing over its own cloned
    state) via {!set_handler}. Raises [Failure] if messages are pending or
    an operation is open. *)
