(* Linear-probing open addressing over two parallel flat arrays. The
   capacity is always a power of two; the probe start comes from a
   multiplicative (Fibonacci) hash taken from the TOP bits of key * phi,
   which spreads the sequential link keys real networks produce. Load
   factor is capped at 1/2 so expected probe chains stay O(1). *)

type t = {
  mutable keys : int array;  (* 0 = empty slot; live keys are > 0 *)
  mutable vals : float array;
  mutable mask : int;  (* capacity - 1 *)
  mutable shift : int;  (* 63 - log2 capacity, for the hash *)
  mutable len : int;
  absent : float;
}

(* A well-mixed odd multiplier (the xorshift1024* constant, which fits
   OCaml's 62-bit int literals). Deterministic by construction (rule D1:
   no layout- or process-dependent hashing). *)
let multiplier = 0x2545F4914F6CDD1D

let slot_of t key = (key * multiplier) lsr t.shift

let log2_ceil n =
  let b = ref 0 in
  while 1 lsl !b < n do
    incr b
  done;
  !b

let create ?(initial = 64) ~absent () =
  let bits = max 3 (log2_ceil (max initial 1)) in
  let cap = 1 lsl bits in
  {
    keys = Array.make cap 0;
    vals = Array.make cap absent;
    mask = cap - 1;
    shift = 63 - bits;
    len = 0;
    absent;
  }

let max_id = (1 lsl 31) - 1

let link_key ~src ~dst =
  if src < 1 || src > max_id || dst < 1 || dst > max_id then
    invalid_arg "Ltbl.link_key: ids must be in 1 .. 2^31 - 1";
  (src lsl 31) lor dst

let length t = t.len

(* Find the slot holding [key], or the empty slot where it belongs. *)
let probe t key =
  let keys = t.keys and mask = t.mask in
  let i = ref (slot_of t key land mask) in
  while
    let k = keys.(!i) in
    k <> 0 && k <> key
  do
    i := (!i + 1) land mask
  done;
  !i

let get t key =
  let i = probe t key in
  if t.keys.(i) = 0 then t.absent else t.vals.(i)

let rec grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap 0;
  t.vals <- Array.make cap t.absent;
  t.mask <- cap - 1;
  t.shift <- t.shift - 1;
  t.len <- 0;
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k <> 0 then set t k old_vals.(i)
  done

and set t key v =
  if key <= 0 then invalid_arg "Ltbl.set: keys must be positive";
  let i = probe t key in
  if t.keys.(i) = 0 then begin
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    t.len <- t.len + 1;
    (* Doubling at load 1/2 keeps linear probing short. *)
    if 2 * t.len > t.mask then grow t
  end
  else t.vals.(i) <- v

let copy t =
  {
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    mask = t.mask;
    shift = t.shift;
    len = t.len;
    absent = t.absent;
  }
