(* Deterministic object-store service: a versionless string-keyed blob
   map with read-after-write gets/puts, compare-and-swap, list-by-prefix
   and delete. The store itself is pure state — [apply] is a
   deterministic transition function — and all distribution concerns
   (latency, lost/delayed/duplicated RPCs, outages) live in [serve],
   which rides the hosting network's own Rng stream and Fault plan so a
   run stays a pure function of (protocol, n, seed, delay, faults,
   schedule). *)

module Smap = Map.Make (String)

type request =
  | Get of string
  | Put of { key : string; value : string }
  | Cas of { key : string; expect : string option; value : string }
  | List of string
  | Delete of string

type response =
  | Value of string option
  | Written
  | Conflict of string option
  | Keys of string list
  | Deleted
  | Unavailable

type stats = {
  gets : int;
  puts : int;
  cas_ok : int;
  cas_conflict : int;
  lists : int;
  deletes : int;
  lost_requests : int;
  lost_responses : int;
  dup_responses : int;
  unavailable : int;
}

type monitor = key:string -> prev:string option -> next:string option -> unit

type t = {
  mutable objects : string Smap.t;
  mutable monitor : monitor option;
  mutable s : stats;
}

let zero_stats =
  {
    gets = 0;
    puts = 0;
    cas_ok = 0;
    cas_conflict = 0;
    lists = 0;
    deletes = 0;
    lost_requests = 0;
    lost_responses = 0;
    dup_responses = 0;
    unavailable = 0;
  }

let create () = { objects = Smap.empty; monitor = None; s = zero_stats }

let copy t = { t with objects = t.objects }

let set_monitor t m = t.monitor <- Some m

let stats t = t.s

let find t key = Smap.find_opt key t.objects

let bindings t = Smap.bindings t.objects

let mutate t ~key ~next =
  let prev = Smap.find_opt key t.objects in
  (match t.monitor with Some m -> m ~key ~prev ~next | None -> ());
  t.objects <-
    (match next with
    | Some v -> Smap.add key v t.objects
    | None -> Smap.remove key t.objects)

let apply t = function
  | Get key ->
      t.s <- { t.s with gets = t.s.gets + 1 };
      Value (Smap.find_opt key t.objects)
  | Put { key; value } ->
      t.s <- { t.s with puts = t.s.puts + 1 };
      mutate t ~key ~next:(Some value);
      Written
  | Cas { key; expect; value } ->
      let current = Smap.find_opt key t.objects in
      if Option.equal String.equal current expect then begin
        t.s <- { t.s with cas_ok = t.s.cas_ok + 1 };
        mutate t ~key ~next:(Some value);
        Written
      end
      else begin
        t.s <- { t.s with cas_conflict = t.s.cas_conflict + 1 };
        Conflict current
      end
  | List prefix ->
      t.s <- { t.s with lists = t.s.lists + 1 };
      let plen = String.length prefix in
      (* Smap.bindings is ascending by key, so the listing is sorted. *)
      Keys
        (List.filter_map
           (fun (k, _) ->
             if String.length k >= plen && String.equal (String.sub k 0 plen) prefix
             then Some k
             else None)
           (Smap.bindings t.objects))
  | Delete key ->
      t.s <- { t.s with deletes = t.s.deletes + 1 };
      mutate t ~key ~next:None;
      Deleted

(* Serve one RPC against the hosting network's fault plan. The s*
   clauses are interpreted here, per leg: an outage answers Unavailable
   (no draw); a request-leg loss discards the RPC before it applied; a
   response-leg loss discards it after — the distinction idempotent
   recovery protocols exist for. Draw order is part of the determinism
   contract: request-drop, apply, response-drop, slow, dup — each draw
   made only when its clause has a non-zero probability, so plans
   without store clauses make zero draws. Under a scheduler the hooks
   are disabled outright: the model-checking adversary owns delivery
   nondeterminism and probabilistic plans are rejected upstream. *)
let serve t net ~reply req =
  let faults = Network.faults net in
  let active = Fault.store_active faults && not (Network.has_scheduler net) in
  if active && Fault.store_down faults ~at:(Network.now net) then begin
    t.s <- { t.s with unavailable = t.s.unavailable + 1 };
    reply ?extra_delay:None Unavailable
  end
  else begin
    let rng = Network.rng net in
    let draw p = active && p > 0. && Rng.float rng 1.0 < p in
    if draw faults.Fault.store_drop then
      t.s <- { t.s with lost_requests = t.s.lost_requests + 1 }
    else begin
      let resp = apply t req in
      if draw faults.Fault.store_drop then
        t.s <- { t.s with lost_responses = t.s.lost_responses + 1 }
      else begin
        let slow_p, slow_d = faults.Fault.store_slow in
        let extra_delay = if draw slow_p then Some slow_d else None in
        reply ?extra_delay resp;
        if draw faults.Fault.store_dup then begin
          t.s <- { t.s with dup_responses = t.s.dup_responses + 1 };
          reply ?extra_delay:None resp
        end
      end
    end
  end

let request_label = function
  | Get _ -> "get"
  | Put _ -> "put"
  | Cas _ -> "cas"
  | List _ -> "list"
  | Delete _ -> "del"

let response_label = function
  | Value _ -> "value"
  | Written -> "written"
  | Conflict _ -> "conflict"
  | Keys _ -> "keys"
  | Deleted -> "deleted"
  | Unavailable -> "unavail"
