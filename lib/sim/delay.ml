type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Adversarial_jitter of float

let default = Constant 1.0

(* Delivery must be strictly after sending, otherwise quiescence detection
   could livelock on zero-delay self-messages. *)
let floor_positive d = if d <= 0. then 1e-9 else d

let sample t rng =
  let d =
    match t with
    | Constant d -> d
    | Uniform (lo, hi) ->
        if hi <= lo then lo else lo +. Rng.float rng (hi -. lo)
    | Exponential mean ->
        (* Inverse-CDF sampling; clamp u away from 0 to avoid log 0. *)
        let u = max (Rng.float rng 1.0) 1e-12 in
        -.mean *. log u
    | Adversarial_jitter base ->
        if Rng.float rng 1.0 < 0.9 then base +. Rng.float rng base
        else base +. Rng.float rng (99. *. base)
  in
  floor_positive d

(* Greatest lower bound of [sample]: no draw can come out smaller. This
   is the conservative lookahead of the sharded engine (Sim.Par): an
   event executing at time t can only schedule work at or after
   t + lookahead, so every event strictly below the global minimum plus
   the lookahead is safe to process in parallel. *)
let lookahead t =
  floor_positive
    (match t with
    | Constant d -> d
    | Uniform (lo, _) -> lo
    | Exponential _ -> 0.
    | Adversarial_jitter base -> base)

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant:%g" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform:%g,%g" lo hi
  | Exponential m -> Format.fprintf ppf "exp:%g" m
  | Adversarial_jitter b -> Format.fprintf ppf "jitter:%g" b

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let fail () = Error (Printf.sprintf "cannot parse delay %S" s) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let float_of s = float_of_string_opt (String.trim s) in
      match kind with
      | "constant" -> (
          match float_of rest with Some d -> Ok (Constant d) | None -> fail ())
      | "exp" -> (
          match float_of rest with Some d -> Ok (Exponential d) | None -> fail ())
      | "jitter" -> (
          match float_of rest with
          | Some d -> Ok (Adversarial_jitter d)
          | None -> fail ())
      | "uniform" -> (
          match String.split_on_char ',' rest with
          | [ lo; hi ] -> (
              match (float_of lo, float_of hi) with
              | Some lo, Some hi -> Ok (Uniform (lo, hi))
              | _ -> fail ())
          | _ -> fail ())
      | _ -> fail ())
