(** Min-heap keyed by float priority, with FIFO tie-breaking.

    This is the event queue of the discrete-event engine. Ties are broken by
    insertion order so that two messages scheduled for the same instant are
    delivered in the order they were sent — which keeps runs deterministic
    even under the [Constant] delay model where every delivery time
    collides.

    Internally a structure-of-arrays 4-ary heap (unboxed float priorities,
    parallel int/value columns): steady-state push/pop allocates nothing.
    The (prio, seq) pop order is a total order, so results are identical to
    any other stable priority queue — see docs/PERFORMANCE.md. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty heap. [capacity] (default 0) pre-sizes the
    backing arrays so a queue with a known working-set size never pays a
    growth copy. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array size (grows by doubling; never shrinks). *)

val push : 'a t -> prio:float -> 'a -> unit
(** [push t ~prio x] inserts [x] with priority [prio]. O(log n),
    allocation-free once the backing arrays are warm. *)

val push_keyed : 'a t -> prio:float -> key:int -> 'a -> unit
(** Like {!push} but with a caller-supplied tie-break key instead of the
    heap's own insertion counter: entries pop in [(prio, key)] order. The
    sharded engines use this to impose one {e global} canonical order
    across several per-shard heaps — each shard pops its local minimum and
    the cross-shard merge compares [(prio, key)] pairs, so where an event
    is stored cannot affect when it is delivered. Mixing [push] and
    [push_keyed] on the same heap forfeits the FIFO-tie guarantee (the two
    key spaces are unrelated); use one or the other per heap. Caller must
    ensure [(prio, key)] pairs are distinct. *)

val top_key : 'a t -> int
(** Tie-break key of the element {!pop} would return ({!push_keyed}'s
    [key], or the internal insertion counter for {!push}).
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element (earliest inserted among
    equals), or [None] when empty. O(log n). Allocates the option/tuple;
    hot paths use {!top_prio} + {!pop_top} instead. *)

val top_prio : 'a t -> float
(** Priority of the element {!pop} would return, without allocating.
    @raise Invalid_argument on an empty heap. *)

val pop_top : 'a t -> 'a
(** Removes and returns the minimum element without wrapping it — the
    allocation-free twin of {!pop}.
    @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> (float * 'a) option
(** Returns the element [pop] would return, without removing it. O(1). *)

val clear : 'a t -> unit

val iter : (float -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f prio value] to every queued element in
    unspecified (heap) order. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: all elements in pop order. O(n log n); for tests and
    debugging output. *)
