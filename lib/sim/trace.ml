type event = {
  seq : int;
  time : float;
  src : int;
  dst : int;
  tag : string;
  parent : int;
}

type fault_kind = Dropped | Duplicated | Crashed | Recovered | Turned_byzantine | Corrupted

type fault = { fault_time : float; fault_src : int; fault_dst : int; kind : fault_kind }

(* Events are stored in a growable array (chronological order, so no
   List.rev pass): recording a message on the hot delivery path is one
   array write, with a doubling copy only on growth. Fault annotations are
   rare, so a list is fine there. *)
type t = {
  op_index : int;
  origin : int;
  start_time : float;
  mutable events_arr : event array;
  mutable count : int;
  mutable faults_rev : fault list;
}

let create ?(start_time = 0.) ~op_index ~origin () =
  { op_index; origin; start_time; events_arr = [||]; count = 0; faults_rev = [] }

let op_index t = t.op_index

let origin t = t.origin

let record t e =
  let cap = Array.length t.events_arr in
  if t.count >= cap then begin
    let arr = Array.make (if cap = 0 then 16 else 2 * cap) e in
    Array.blit t.events_arr 0 arr 0 t.count;
    t.events_arr <- arr
  end;
  t.events_arr.(t.count) <- e;
  t.count <- t.count + 1

let events t = Array.to_list (Array.sub t.events_arr 0 t.count)

let message_count t = t.count

let record_fault t f = t.faults_rev <- f :: t.faults_rev

let faults t = List.rev t.faults_rev

let fault_count t = List.length t.faults_rev

let fault_kind_label = function
  | Dropped -> "dropped"
  | Duplicated -> "duplicated"
  | Crashed -> "crashed"
  | Recovered -> "recovered"
  | Turned_byzantine -> "byzantine"
  | Corrupted -> "corrupted"

let duration t =
  if t.count = 0 then 0. else t.events_arr.(t.count - 1).time -. t.start_time

module Int_set = Set.Make (Int)

let processor_set t =
  let acc = ref (Int_set.singleton t.origin) in
  for i = 0 to t.count - 1 do
    let e = t.events_arr.(i) in
    acc := Int_set.add e.src (Int_set.add e.dst !acc)
  done;
  !acc

let processors t = Int_set.elements (processor_set t)

let touches t q = Int_set.mem q (processor_set t)

let intersects a b =
  not (Int_set.is_empty (Int_set.inter (processor_set a) (processor_set b)))

let pp ppf t =
  Format.fprintf ppf "@[<v>op #%d initiated by processor %d (%d messages)@,"
    t.op_index t.origin t.count;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %4d -(%s)-> %-4d @@ t=%.3f@," e.src e.tag e.dst
        e.time)
    (events t);
  List.iter
    (fun f ->
      Format.fprintf ppf "  %4d ~(%s)~> %-4d @@ t=%.3f@," f.fault_src
        (fault_kind_label f.kind) f.fault_dst f.fault_time)
    (faults t);
  Format.fprintf ppf "@]"

let pp_compact ppf t =
  Format.fprintf ppf "op#%d p%d:" t.op_index t.origin;
  List.iter (fun e -> Format.fprintf ppf " %d>%d" e.src e.dst) (events t)

let pp_lanes ppf t =
  let procs = processors t in
  let lane_width = 8 in
  let column =
    let table = Hashtbl.create 16 in
    List.iteri (fun i p -> Hashtbl.replace table p i) procs;
    fun p -> Hashtbl.find table p
  in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%s@,"
    (String.concat ""
       (List.map
          (fun p -> Printf.sprintf "%-*s" lane_width ("p" ^ string_of_int p))
          procs));
  List.iter
    (fun e ->
      let a = column e.src and b = column e.dst in
      let lo = min a b and hi = max a b in
      let line = Bytes.make (lane_width * List.length procs) ' ' in
      for i = (lo * lane_width) + 1 to (hi * lane_width) - 1 do
        Bytes.set line i '-'
      done;
      Bytes.set line (a * lane_width) '*';
      Bytes.set line (b * lane_width) (if b > a then '>' else '<');
      (* Self-sends: both roles on one lane. *)
      if a = b then Bytes.set line (a * lane_width) '@';
      Format.fprintf ppf "%s %s t=%.1f@," (Bytes.to_string line) e.tag e.time)
    (events t);
  Format.fprintf ppf "@]"

let to_dot t =
  (* One DAG node per processor occurrence: a processor that receives a
     message after it already sent from its current occurrence starts a
     new occurrence (e.g. the initiator reappearing to receive the
     value). *)
  let buf = Buffer.create 512 in
  let current : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let has_outgoing : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let next_occ = ref 0 in
  let fresh proc =
    let occ = !next_occ in
    incr next_occ;
    Hashtbl.replace current proc occ;
    Buffer.add_string buf
      (Printf.sprintf "  o%d [label=\"%d\"];\n" occ proc);
    occ
  in
  let occurrence_for_send proc =
    match Hashtbl.find_opt current proc with
    | Some occ -> occ
    | None -> fresh proc
  in
  let occurrence_for_receive proc =
    match Hashtbl.find_opt current proc with
    | Some occ when not (Hashtbl.mem has_outgoing occ) -> occ
    | Some _ | None -> fresh proc
  in
  Buffer.add_string buf "digraph inc_process {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  ignore (fresh t.origin);
  List.iter
    (fun e ->
      let src_occ = occurrence_for_send e.src in
      Hashtbl.replace has_outgoing src_occ ();
      let dst_occ = occurrence_for_receive e.dst in
      Buffer.add_string buf
        (Printf.sprintf "  o%d -> o%d [label=\"%s@%.1f\"];\n" src_occ dst_occ
           e.tag e.time))
    (events t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
