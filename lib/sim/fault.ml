type trigger = At of float | After of int

type crash = { processor : int; trigger : trigger }

type recover = { processor : int; time : float }

type partition = {
  lo : int;
  hi : int;
  from_time : float;
  heal_time : float;
}

type byz_rule = Replay_stale | Off_by of int | Max_int

type t = {
  crashes : crash list;
  recovers : recover list;
  drop : float;
  drop_links : ((int * int) * float) list;
  duplicate : float;
  partitions : partition list;
  store_drop : float;
  store_dup : float;
  store_slow : float * float;
  store_outages : (float * float) list;
  byz : crash list;
  byz_rules : (int * byz_rule) list;
  byz_equiv : int list;
}

let none =
  {
    crashes = [];
    recovers = [];
    drop = 0.;
    drop_links = [];
    duplicate = 0.;
    partitions = [];
    store_drop = 0.;
    store_dup = 0.;
    store_slow = (0., 0.);
    store_outages = [];
    byz = [];
    byz_rules = [];
    byz_equiv = [];
  }

let store_active t =
  (not (Float.equal t.store_drop 0.))
  || (not (Float.equal t.store_dup 0.))
  || (not (Float.equal (fst t.store_slow) 0.))
  || t.store_outages <> []

let byz_active t = t.byz <> []

let is_none t =
  t.crashes = []
  && t.recovers = []
  && Float.equal t.drop 0.
  && t.drop_links = []
  && Float.equal t.duplicate 0.
  && t.partitions = []
  && (not (store_active t))
  && t.byz = []
  && t.byz_rules = []
  && t.byz_equiv = []

let valid_prob p = Float.is_finite p && p >= 0. && p <= 1.

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check_crashes = function
    | [] -> Ok ()
    | { processor; trigger } :: rest ->
        if processor < 1 then err "crash: processor ids start at 1"
        else begin
          match trigger with
          | At time when not (Float.is_finite time) || time < 0. ->
              err "crash:%d: time must be finite and >= 0" processor
          | After d when d < 0 ->
              err "crash:%d: delivery count must be >= 0" processor
          | At _ | After _ -> check_crashes rest
        end
  in
  let crashes_processor p =
    List.exists (fun (c : crash) -> c.processor = p) t.crashes
  in
  let rec check_recovers = function
    | [] -> Ok ()
    | ({ processor; time } : recover) :: rest ->
        if processor < 1 then err "recover: processor ids start at 1"
        else if (not (Float.is_finite time)) || time < 0. then
          err "recover:%d: time must be finite and >= 0" processor
        else if not (crashes_processor processor) then
          err "recover:%d: processor never crashes in this plan" processor
        else check_recovers rest
  in
  let rec check_links = function
    | [] -> Ok ()
    | ((src, dst), p) :: rest ->
        if src < 1 || dst < 1 then err "drop: processor ids start at 1"
        else if not (valid_prob p) then
          err "drop:%d,%d: probability must be in [0, 1]" src dst
        else check_links rest
  in
  let rec check_partitions = function
    | [] -> Ok ()
    | { lo; hi; from_time; heal_time } :: rest ->
        if lo < 1 || hi < lo then err "part: need 1 <= LO <= HI"
        else if
          (not (Float.is_finite from_time))
          || (not (Float.is_finite heal_time))
          || from_time < 0.
          || heal_time < from_time
        then err "part:%d-%d: need 0 <= T0 <= T1" lo hi
        else check_partitions rest
  in
  let rec check_outages = function
    | [] -> Ok ()
    | (t0, t1) :: rest ->
        if
          (not (Float.is_finite t0))
          || (not (Float.is_finite t1))
          || t0 < 0. || t1 < t0
        then err "sout: need 0 <= T0 <= T1"
        else check_outages rest
  in
  let check_store () =
    let slow_p, slow_d = t.store_slow in
    if not (valid_prob t.store_drop) then
      err "sdrop: probability must be in [0, 1]"
    else if not (valid_prob t.store_dup) then
      err "sdup: probability must be in [0, 1]"
    else if not (valid_prob slow_p) then
      err "sslow: probability must be in [0, 1]"
    else if (not (Float.is_finite slow_d)) || slow_d < 0. then
      err "sslow: extra delay must be finite and >= 0"
    else check_outages t.store_outages
  in
  let byz_processor p =
    List.exists (fun (c : crash) -> c.processor = p) t.byz
  in
  let rec distinct = function
    | [] -> true
    | p :: rest -> (not (List.mem p rest)) && distinct rest
  in
  let rec check_byz = function
    | [] -> Ok ()
    | ({ processor; trigger } : crash) :: rest ->
        if processor < 1 then err "byz: processor ids start at 1"
        else begin
          match trigger with
          | At time when not (Float.is_finite time) || time < 0. ->
              err "byz:%d: time must be finite and >= 0" processor
          | After d when d < 0 ->
              err "byz:%d: delivery count must be >= 0" processor
          | At _ | After _ -> check_byz rest
        end
  in
  let rec check_byz_rules = function
    | [] -> Ok ()
    | (processor, rule) :: rest ->
        if processor < 1 then err "byzval: processor ids start at 1"
        else if not (byz_processor processor) then
          err "byzval:%d: processor never turns Byzantine in this plan"
            processor
        else begin
          match rule with
          | Off_by 0 -> err "byzval:%d: off-by offset must be non-zero" processor
          | Off_by _ | Replay_stale | Max_int -> check_byz_rules rest
        end
  in
  let rec check_byz_equiv = function
    | [] -> Ok ()
    | processor :: rest ->
        if processor < 1 then err "byzeq: processor ids start at 1"
        else if not (List.mem_assoc processor t.byz_rules) then
          err "byzeq:%d: equivocation needs a byzval rewrite rule" processor
        else check_byz_equiv rest
  in
  let check_byz_statics () =
    if not (distinct (List.map (fun (c : crash) -> c.processor) t.byz)) then
      err "byz: at most one clause per processor"
    else if not (distinct (List.map fst t.byz_rules)) then
      err "byzval: at most one rewrite rule per processor"
    else if not (distinct t.byz_equiv) then
      err "byzeq: at most one clause per processor"
    else
      match check_byz t.byz with
      | Error _ as e -> e
      | Ok () -> (
          match check_byz_rules t.byz_rules with
          | Error _ as e -> e
          | Ok () -> check_byz_equiv t.byz_equiv)
  in
  match check_crashes t.crashes with
  | Error _ as e -> e
  | Ok () -> (
      match check_recovers t.recovers with
      | Error _ as e -> e
      | Ok () ->
      if not (valid_prob t.drop) then err "drop: probability must be in [0, 1]"
      else if not (valid_prob t.duplicate) then
        err "dup: probability must be in [0, 1]"
      else
        match check_links t.drop_links with
        | Error _ as e -> e
        | Ok () -> (
            match check_partitions t.partitions with
            | Error _ as e -> e
            | Ok () -> (
                match check_store () with
                | Error _ as e -> e
                | Ok () -> (
                    match check_byz_statics () with
                    | Error _ as e -> e
                    | Ok () -> Ok t))))

let drop_on t ~src ~dst =
  match List.assoc_opt (src, dst) t.drop_links with
  | Some p -> p
  | None -> t.drop

let partitioned t ~src ~dst ~at =
  List.exists
    (fun { lo; hi; from_time; heal_time } ->
      at >= from_time && at < heal_time
      && (src >= lo && src <= hi) <> (dst >= lo && dst <= hi))
    t.partitions

let store_down t ~at =
  List.exists (fun (t0, t1) -> at >= t0 && at < t1) t.store_outages

module Int_set = Set.Make (Int)

let crash_processors t =
  Int_set.elements
    (List.fold_left
       (fun acc (c : crash) -> Int_set.add c.processor acc)
       Int_set.empty t.crashes)

let crash_count t = List.length (crash_processors t)

let byzantine_processors t =
  Int_set.elements
    (List.fold_left
       (fun acc (c : crash) -> Int_set.add c.processor acc)
       Int_set.empty t.byz)

let byz_count t = List.length (byzantine_processors t)

let byz_rule_of t p = List.assoc_opt p t.byz_rules

let equivocates t p = List.mem p t.byz_equiv

(* Large enough to wreck any naive aggregate, small enough that sums of a
   few of them never overflow 63-bit ints. *)
let byz_sentinel = 1 lsl 30

(* Deterministic payload rewrite: a pure function of (rule, equivocate,
   dst, v) — zero Rng draws, so Byzantine plans preserve the fault
   layer's determinism contract. Equivocation splits the receivers by id
   parity: the same logical send shows two different values to the two
   halves of the audience, the cheapest deterministic "different values
   to different receivers". *)
let apply_rule ~rule ~equivocate ~dst v =
  match rule with
  | Replay_stale -> if equivocate && dst land 1 = 1 then v else 0
  | Off_by k -> if equivocate && dst land 1 = 1 then v - k else v + k
  | Max_int -> if equivocate && dst land 1 = 1 then 0 else byz_sentinel

(* ------------------------------------------------------------------ *)
(* Textual form. Clause separator is '/', which %g float output never
   contains (unlike '+', which appears in exponents such as 1e+06). *)

let pp_clause ppf = function
  | `Crash { processor; trigger = At time } ->
      Format.fprintf ppf "crash:%d@@%g" processor time
  | `Crash { processor; trigger = After d } ->
      Format.fprintf ppf "crash:%d@@#%d" processor d
  | `Recover ({ processor; time } : recover) ->
      Format.fprintf ppf "recover:%d@@%g" processor time
  | `Drop p -> Format.fprintf ppf "drop:%g" p
  | `Drop_link ((src, dst), p) -> Format.fprintf ppf "drop:%d,%d:%g" src dst p
  | `Dup p -> Format.fprintf ppf "dup:%g" p
  | `Part { lo; hi; from_time; heal_time } ->
      Format.fprintf ppf "part:%d-%d@@%g,%g" lo hi from_time heal_time
  | `Store_drop p -> Format.fprintf ppf "sdrop:%g" p
  | `Store_dup p -> Format.fprintf ppf "sdup:%g" p
  | `Store_slow (p, d) -> Format.fprintf ppf "sslow:%g:%g" p d
  | `Store_out (t0, t1) -> Format.fprintf ppf "sout:%g,%g" t0 t1
  | `Byz { processor; trigger = At time } ->
      Format.fprintf ppf "byz:%d@@%g" processor time
  | `Byz { processor; trigger = After d } ->
      Format.fprintf ppf "byz:%d@@#%d" processor d
  | `Byz_val (p, Replay_stale) ->
      Format.fprintf ppf "byzval:%d:replay-stale" p
  | `Byz_val (p, Off_by k) -> Format.fprintf ppf "byzval:%d:off-by-%d" p k
  | `Byz_val (p, Max_int) -> Format.fprintf ppf "byzval:%d:max-int" p
  | `Byz_eq p -> Format.fprintf ppf "byzeq:%d" p

let clauses t =
  List.map (fun c -> `Crash c) t.crashes
  @ List.map (fun r -> `Recover r) t.recovers
  @ (if not (Float.equal t.drop 0.) then [ `Drop t.drop ] else [])
  @ List.map (fun l -> `Drop_link l) t.drop_links
  @ (if not (Float.equal t.duplicate 0.) then [ `Dup t.duplicate ] else [])
  @ List.map (fun p -> `Part p) t.partitions
  @ (if not (Float.equal t.store_drop 0.) then [ `Store_drop t.store_drop ]
     else [])
  @ (if not (Float.equal t.store_dup 0.) then [ `Store_dup t.store_dup ]
     else [])
  @ (if not (Float.equal (fst t.store_slow) 0.) then
       [ `Store_slow t.store_slow ]
     else [])
  @ List.map (fun w -> `Store_out w) t.store_outages
  @ List.map (fun b -> `Byz b) t.byz
  @ List.map (fun r -> `Byz_val r) t.byz_rules
  @ List.map (fun p -> `Byz_eq p) t.byz_equiv

let pp ppf t =
  match clauses t with
  | [] -> Format.pp_print_string ppf "none"
  | cs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '/')
        pp_clause ppf cs

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let fail () = Error (Printf.sprintf "cannot parse fault plan %S" s) in
  let float_of x = float_of_string_opt (String.trim x) in
  let int_of x = int_of_string_opt (String.trim x) in
  let split2 c x =
    match String.index_opt x c with
    | None -> None
    | Some i ->
        Some (String.sub x 0 i, String.sub x (i + 1) (String.length x - i - 1))
  in
  let parse_clause acc clause =
    match acc with
    | Error _ as e -> e
    | Ok t -> (
        match split2 ':' clause with
        | None -> fail ()
        | Some (kind, rest) -> (
            match kind with
            | "crash" -> (
                match split2 '@' rest with
                | Some (p, at) -> (
                    let trigger =
                      if String.length at > 0 && at.[0] = '#' then
                        Option.map
                          (fun d -> After d)
                          (int_of (String.sub at 1 (String.length at - 1)))
                      else Option.map (fun x -> At x) (float_of at)
                    in
                    match (int_of p, trigger) with
                    | Some processor, Some trigger ->
                        Ok
                          {
                            t with
                            crashes = t.crashes @ [ { processor; trigger } ];
                          }
                    | _ -> fail ())
                | None -> fail ())
            | "recover" -> (
                match split2 '@' rest with
                | Some (p, at) -> (
                    match (int_of p, float_of at) with
                    | Some processor, Some time ->
                        Ok
                          {
                            t with
                            recovers = t.recovers @ [ { processor; time } ];
                          }
                    | _ -> fail ())
                | None -> fail ())
            | "drop" -> (
                match split2 ':' rest with
                | Some (link, prob) -> (
                    match (split2 ',' link, float_of prob) with
                    | Some (src, dst), Some p -> (
                        match (int_of src, int_of dst) with
                        | Some src, Some dst ->
                            Ok
                              {
                                t with
                                drop_links = t.drop_links @ [ ((src, dst), p) ];
                              }
                        | _ -> fail ())
                    | _ -> fail ())
                | None -> (
                    match float_of rest with
                    | Some p -> Ok { t with drop = p }
                    | None -> fail ()))
            | "dup" -> (
                match float_of rest with
                | Some p -> Ok { t with duplicate = p }
                | None -> fail ())
            | "sdrop" -> (
                match float_of rest with
                | Some p -> Ok { t with store_drop = p }
                | None -> fail ())
            | "sdup" -> (
                match float_of rest with
                | Some p -> Ok { t with store_dup = p }
                | None -> fail ())
            | "sslow" -> (
                match split2 ':' rest with
                | Some (p, d) -> (
                    match (float_of p, float_of d) with
                    | Some p, Some d -> Ok { t with store_slow = (p, d) }
                    | _ -> fail ())
                | None -> fail ())
            | "byz" -> (
                match split2 '@' rest with
                | Some (p, at) -> (
                    let trigger =
                      if String.length at > 0 && at.[0] = '#' then
                        Option.map
                          (fun d -> After d)
                          (int_of (String.sub at 1 (String.length at - 1)))
                      else Option.map (fun x -> At x) (float_of at)
                    in
                    match (int_of p, trigger) with
                    | Some processor, Some trigger ->
                        Ok { t with byz = t.byz @ [ { processor; trigger } ] }
                    | _ -> fail ())
                | None -> fail ())
            | "byzval" -> (
                match split2 ':' rest with
                | Some (p, rule) -> (
                    let rule =
                      match String.trim rule with
                      | "replay-stale" -> Some Replay_stale
                      | "max-int" -> Some Max_int
                      | r ->
                          let prefix = "off-by-" in
                          let pl = String.length prefix in
                          if
                            String.length r > pl
                            && String.sub r 0 pl = prefix
                          then
                            Option.map
                              (fun k -> Off_by k)
                              (int_of
                                 (String.sub r pl (String.length r - pl)))
                          else None
                    in
                    match (int_of p, rule) with
                    | Some processor, Some rule ->
                        Ok
                          {
                            t with
                            byz_rules = t.byz_rules @ [ (processor, rule) ];
                          }
                    | _ -> fail ())
                | None -> fail ())
            | "byzeq" -> (
                match int_of rest with
                | Some processor ->
                    Ok { t with byz_equiv = t.byz_equiv @ [ processor ] }
                | None -> fail ())
            | "sout" -> (
                match split2 ',' rest with
                | Some (t0, t1) -> (
                    match (float_of t0, float_of t1) with
                    | Some t0, Some t1 ->
                        Ok
                          {
                            t with
                            store_outages = t.store_outages @ [ (t0, t1) ];
                          }
                    | _ -> fail ())
                | None -> fail ())
            | "part" -> (
                match split2 '@' rest with
                | Some (range, times) -> (
                    match (split2 '-' range, split2 ',' times) with
                    | Some (lo, hi), Some (t0, t1) -> (
                        match
                          (int_of lo, int_of hi, float_of t0, float_of t1)
                        with
                        | Some lo, Some hi, Some from_time, Some heal_time ->
                            Ok
                              {
                                t with
                                partitions =
                                  t.partitions
                                  @ [ { lo; hi; from_time; heal_time } ];
                              }
                        | _ -> fail ())
                    | _ -> fail ())
                | None -> fail ())
            | _ -> fail ()))
  in
  if String.trim s = "none" then Ok none
  else if String.trim s = "" then fail ()
  else
    match
      List.fold_left parse_clause (Ok none)
        (String.split_on_char '/' (String.trim s))
    with
    | Error _ as e -> e
    | Ok t -> validate t
