(** Open-addressing flat table from positive int keys to unboxed floats.

    The cache-conscious replacement for the [(int * int, float) Hashtbl.t]
    the FIFO-link bookkeeping used to spill into: a generic hashtable pays
    a tuple key allocation, a boxed float per binding, and a pointer chase
    per bucket on every lookup — at n = 10⁴ that was the single biggest
    contributor to the engine's locality cliff (see docs/PERFORMANCE.md).
    This table keeps keys in one flat [int array] and values in one flat
    [float array] (unboxed storage), probes linearly from a multiplicative
    hash, and allocates only when it doubles. A warm [get]/[set] pair on
    the send path touches two adjacent cache lines and allocates nothing.

    Keys must be strictly positive (0 is the internal empty-slot
    sentinel). Directed links pack as [(src lsl 31) lor dst], which is
    injective for ids below 2³¹ — far beyond any simulated network. *)

type t

val create : ?initial:int -> absent:float -> unit -> t
(** [create ~absent ()] is an empty table; [get] returns [absent] for
    missing keys. [initial] (default 64) pre-sizes the backing arrays to
    at least that many slots. *)

val link_key : src:int -> dst:int -> int
(** Canonical packed key for the directed link [src -> dst]. Raises
    [Invalid_argument] if either id is outside [1 .. 2³¹ - 1]. *)

val get : t -> int -> float
(** Value bound to the key, or the table's [absent] default. *)

val set : t -> int -> float -> unit
(** Insert or replace. Grows (rehashes into a doubled table) when the
    load factor reaches 1/2, so probe chains stay short. *)

val length : t -> int
(** Number of bound keys. *)

val copy : t -> t
