(** Trace of the process of a single operation.

    Section 2 of the paper models the process of one [inc] as a directed
    acyclic graph whose nodes are "processor [q] performing some
    communication" and whose arcs are messages (Fig. 1). A trace records
    every message of one operation in delivery order; because a message can
    only be sent as a (causal) consequence of the operation's earlier
    messages, delivery order is a topological order of the DAG. From a trace
    we derive:

    - [I_p], the set of processors that send or receive during the process —
      the object of the Hot Spot Lemma;
    - the communication list of Fig. 2 (see {!Comm_list});
    - the message count of the process, which is what the lower-bound
      adversary maximises. *)

type event = {
  seq : int;  (** Delivery order within the whole run (globally increasing). *)
  time : float;  (** Virtual delivery time. *)
  src : int;  (** Sending processor. *)
  dst : int;  (** Receiving processor. *)
  tag : string;  (** Protocol-level label ("inc", "val", "handoff", ...). *)
  parent : int;
      (** [seq] of the delivery during whose handling this message was
          sent (causal predecessor), or [0] when the send initiated the
          operation from outside any handler. Local timers propagate the
          causal parent of the event that scheduled them. *)
}

type fault_kind =
  | Dropped  (** lost in transit (random drop, partition cut, dead peer) *)
  | Duplicated  (** a spurious extra copy was injected *)
  | Crashed  (** a processor crash-stopped ([fault_src = fault_dst]) *)
  | Recovered  (** a crashed processor rejoined ([fault_src = fault_dst]) *)
  | Turned_byzantine
      (** a processor turned adversarial ([fault_src = fault_dst]) *)
  | Corrupted
      (** a Byzantine sender's rule rewrote this message's payload *)

type fault = {
  fault_time : float;
  fault_src : int;
  fault_dst : int;
  kind : fault_kind;
}
(** A fault the {!Fault} layer injected while this operation was open.
    Faults are side annotations: they are {e not} events, so they never
    perturb {!message_count}, {!processors}, or the DAG. *)

type t

val create : ?start_time:float -> op_index:int -> origin:int -> unit -> t
(** Fresh empty trace for operation number [op_index] initiated by processor
    [origin]. [start_time] (default 0) is the virtual time at which the
    operation was issued, used by {!duration}. *)

val op_index : t -> int

val origin : t -> int

val record : t -> event -> unit
(** Append a delivered message. Events must be recorded in delivery order. *)

val events : t -> event list
(** All events, chronological. *)

val message_count : t -> int
(** Number of messages in the process (= number of DAG arcs). *)

val record_fault : t -> fault -> unit
(** Append a fault annotation (recorded by {!Network} when a fault fires
    while this operation is open). *)

val faults : t -> fault list
(** Fault annotations, chronological. Empty for fault-free runs. *)

val fault_count : t -> int

val duration : t -> float
(** Virtual time from the operation's start to its last delivery — the
    asynchronous-model latency of the process under the network's delay
    model (0 for purely local operations). *)

val processors : t -> int list
(** [I_p]: sorted, de-duplicated processors appearing as sender or receiver,
    including the origin (which at least sends the first message; for purely
    local operations it is still the only member). *)

val touches : t -> int -> bool
(** [touches t q] iff processor [q] is in {!processors}. *)

val intersects : t -> t -> bool
(** [intersects a b] iff [I_a] and [I_b] share a processor — the Hot Spot
    Lemma predicate for consecutive operations. *)

val pp : Format.formatter -> t -> unit
(** Render the process as an arrow diagram, one message per line
    ("[3 -(inc)-> 17 @t=1.0]"), in the spirit of the paper's Fig. 1. *)

val pp_compact : Format.formatter -> t -> unit
(** One-line rendering: origin and [src->dst] chain. *)

val pp_lanes : Format.formatter -> t -> unit
(** Message-sequence chart: one column per involved processor, one row
    per message, arrows drawn between the sender's and receiver's lanes —
    the view protocol engineers actually debug with. *)

val to_dot : t -> string
(** Graphviz rendering of the process DAG, one node per processor
    {e occurrence} (so a processor appearing twice — e.g. the initiator
    receiving its answer — appears as two DAG nodes, exactly as in the
    paper's Fig. 1). Message arcs are labelled with their protocol tag
    and delivery time. Pipe into [dot -Tsvg] to regenerate the figure. *)
