type t = {
  n : int;
  mutable sent : int array;  (* index = processor id; slot 0 unused *)
  mutable recv : int array;
  mutable total : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable emergency_retirements : int;
  mutable byzantine : int;
  mutable corruptions : int;
}

let create ~n =
  {
    n;
    sent = Array.make (n + 2) 0;
    recv = Array.make (n + 2) 0;
    total = 0;
    dropped = 0;
    duplicated = 0;
    crashes = 0;
    recoveries = 0;
    emergency_retirements = 0;
    byzantine = 0;
    corruptions = 0;
  }

let n t = t.n

let grow t p =
  let cap = Array.length t.sent in
  if p >= cap then begin
    let new_cap = max (p + 1) (2 * cap) in
    let sent = Array.make new_cap 0 and recv = Array.make new_cap 0 in
    Array.blit t.sent 0 sent 0 cap;
    Array.blit t.recv 0 recv 0 cap;
    t.sent <- sent;
    t.recv <- recv
  end

let on_send t p =
  if p < 1 then invalid_arg "Metrics.on_send: processor ids start at 1";
  grow t p;
  t.sent.(p) <- t.sent.(p) + 1;
  t.total <- t.total + 1

let on_recv t p =
  if p < 1 then invalid_arg "Metrics.on_recv: processor ids start at 1";
  grow t p;
  t.recv.(p) <- t.recv.(p) + 1

let on_drop t = t.dropped <- t.dropped + 1

let on_duplicate t = t.duplicated <- t.duplicated + 1

let on_crash t = t.crashes <- t.crashes + 1

let on_recover t = t.recoveries <- t.recoveries + 1

let on_emergency_retirement t =
  t.emergency_retirements <- t.emergency_retirements + 1

let on_byzantine t = t.byzantine <- t.byzantine + 1

let on_corruption t = t.corruptions <- t.corruptions + 1

let byzantine t = t.byzantine

let corruptions t = t.corruptions

let dropped t = t.dropped

let duplicated t = t.duplicated

let crashes t = t.crashes

let recoveries t = t.recoveries

let emergency_retirements t = t.emergency_retirements

let sent t p = if p < Array.length t.sent then t.sent.(p) else 0

let received t p = if p < Array.length t.recv then t.recv.(p) else 0

let load t p = sent t p + received t p

let total_messages t = t.total

let total_load t =
  let acc = ref 0 in
  Array.iter (fun c -> acc := !acc + c) t.sent;
  Array.iter (fun c -> acc := !acc + c) t.recv;
  !acc

let average_load t = if t.n = 0 then 0. else float_of_int (total_load t) /. float_of_int t.n

let bottleneck t =
  let best_p = ref 0 and best = ref 0 in
  for p = 1 to Array.length t.sent - 1 do
    let l = load t p in
    if l > !best then begin
      best := l;
      best_p := p
    end
  done;
  (!best_p, !best)

let loads t =
  let acc = ref [] in
  for p = Array.length t.sent - 1 downto 1 do
    let l = load t p in
    if l > 0 then acc := (p, l) :: !acc
  done;
  !acc

let load_array t =
  Array.init (t.n + 1) (fun p -> if p = 0 then 0 else load t p)

let overflow_processors t =
  let count = ref 0 in
  for p = t.n + 1 to Array.length t.sent - 1 do
    if load t p > 0 then incr count
  done;
  !count

let checksum t =
  (* FNV-1a over the (p, sent, recv) triples of every processor that moved
     a message, ascending id. Two runs agree iff their full load vectors
     agree — the compact fingerprint the determinism regression pins. *)
  let h = ref 0x1234_5678_9abc_def in
  let mix v =
    h := !h lxor v;
    h := !h * 0x100000001b3
  in
  for p = 1 to Array.length t.sent - 1 do
    if t.sent.(p) <> 0 || t.recv.(p) <> 0 then begin
      mix p;
      mix t.sent.(p);
      mix t.recv.(p)
    end
  done;
  (* Fault counters join the fingerprint only when a fault actually fired,
     so fault-free runs keep their pre-fault-layer golden checksums. *)
  if t.dropped <> 0 || t.duplicated <> 0 || t.crashes <> 0 then begin
    mix 0x6661756c74;  (* "fault" *)
    mix t.dropped;
    mix t.duplicated;
    mix t.crashes
  end;
  (* Recovery-era counters get their own guarded block so every pre-existing
     run — fault-free or crash-only — keeps its historical checksum. *)
  if t.recoveries <> 0 || t.emergency_retirements <> 0 then begin
    mix 0x7265766976;  (* "reviv" *)
    mix t.recoveries;
    mix t.emergency_retirements
  end;
  (* Byzantine-era counters, guarded the same way: crash-only and
     fault-free runs keep their historical checksums. *)
  if t.byzantine <> 0 || t.corruptions <> 0 then begin
    mix 0x62797a61;  (* "byza" *)
    mix t.byzantine;
    mix t.corruptions
  end;
  !h land max_int

let reset t =
  Array.fill t.sent 0 (Array.length t.sent) 0;
  Array.fill t.recv 0 (Array.length t.recv) 0;
  t.total <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  t.crashes <- 0;
  t.recoveries <- 0;
  t.emergency_retirements <- 0;
  t.byzantine <- 0;
  t.corruptions <- 0

let copy t =
  {
    n = t.n;
    sent = Array.copy t.sent;
    recv = Array.copy t.recv;
    total = t.total;
    dropped = t.dropped;
    duplicated = t.duplicated;
    crashes = t.crashes;
    recoveries = t.recoveries;
    emergency_retirements = t.emergency_retirements;
    byzantine = t.byzantine;
    corruptions = t.corruptions;
  }

(* Bulk absorption — how Sim.Par folds its shard-local flat counters into
   one Metrics after a run. Equivalent to [sent] calls to [on_send] plus
   [recv] calls to [on_recv] for processor [p]. *)
let absorb_load t ~p ~sent ~recv =
  if p < 1 then invalid_arg "Metrics.absorb_load: processor ids start at 1";
  if sent <> 0 || recv <> 0 then begin
    grow t p;
    t.sent.(p) <- t.sent.(p) + sent;
    t.recv.(p) <- t.recv.(p) + recv;
    t.total <- t.total + sent
  end

let absorb_faults t ~dropped ~duplicated ~crashes ~recoveries =
  t.dropped <- t.dropped + dropped;
  t.duplicated <- t.duplicated + duplicated;
  t.crashes <- t.crashes + crashes;
  t.recoveries <- t.recoveries + recoveries

let absorb_byz t ~byzantine ~corruptions =
  t.byzantine <- t.byzantine + byzantine;
  t.corruptions <- t.corruptions + corruptions

let merge_into ~dst src =
  for p = 1 to Array.length src.sent - 1 do
    if src.sent.(p) > 0 then begin
      grow dst p;
      dst.sent.(p) <- dst.sent.(p) + src.sent.(p)
    end;
    if src.recv.(p) > 0 then begin
      grow dst p;
      dst.recv.(p) <- dst.recv.(p) + src.recv.(p)
    end
  done;
  dst.total <- dst.total + src.total;
  dst.dropped <- dst.dropped + src.dropped;
  dst.duplicated <- dst.duplicated + src.duplicated;
  dst.crashes <- dst.crashes + src.crashes;
  dst.recoveries <- dst.recoveries + src.recoveries;
  dst.emergency_retirements <-
    dst.emergency_retirements + src.emergency_retirements;
  dst.byzantine <- dst.byzantine + src.byzantine;
  dst.corruptions <- dst.corruptions + src.corruptions

let pp_summary ppf t =
  let p, b = bottleneck t in
  Format.fprintf ppf
    "messages=%d total_load=%d avg_load=%.2f bottleneck=p%d(load %d) overflow=%d"
    (total_messages t) (total_load t) (average_load t) p b
    (overflow_processors t);
  if t.dropped <> 0 || t.duplicated <> 0 || t.crashes <> 0 then
    Format.fprintf ppf " dropped=%d duplicated=%d crashed=%d" t.dropped
      t.duplicated t.crashes;
  if t.recoveries <> 0 || t.emergency_retirements <> 0 then
    Format.fprintf ppf " recovered=%d emergency_retired=%d" t.recoveries
      t.emergency_retirements;
  if t.byzantine <> 0 || t.corruptions <> 0 then
    Format.fprintf ppf " byzantine=%d corrupted=%d" t.byzantine t.corruptions
