let log_src = Logs.Src.create "sim.network" ~doc:"Discrete-event network"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Pending events: message deliveries (charged to metrics and traces) and
   local timer expirations (free — a processor consulting its own clock).
   [Deliver] is an inline record: one block per queued message instead of
   the envelope-behind-a-variant two blocks it used to be. *)
type 'msg event =
  | Deliver of { src : int; dst : int; payload : 'msg; parent : int }
  | Local of int * (unit -> unit)
      (* timer with the causal parent of the event that scheduled it *)

(* Per-link last-scheduled-arrival table for FIFO links. Small networks get
   a pre-sized flat array indexed by src * stride + dst (no hashing, no
   allocation on the send path); ids beyond the pre-sized range — overflow
   hires — spill into an open-addressing {!Ltbl}. Large networks use the
   Ltbl only: a dense (n+1)^2 table at n = 10^5 would be 80 GB, while the
   Ltbl stays proportional to the links actually exercised. The
   ((src, dst), float) Hashtbl it replaces allocated a tuple key per
   lookup and boxed every stored float — the locality cliff behind the
   n = 10^4 fifo-network rows of BENCH_1 (words/event 32 -> 45). *)
type fifo_links =
  | Dense of {
      stride : int;  (* ids 1 .. stride - 1 are in the flat table *)
      last : float array;  (* neg_infinity = no message on this link yet *)
      mutable spill : Ltbl.t option;
    }
  | Sparse of Ltbl.t

(* Flat tables up to this many entries (8 MB of floats): n <= 1023. *)
let fifo_dense_limit = 1 lsl 20

let make_fifo_links n =
  let stride = n + 1 in
  if stride * stride <= fifo_dense_limit then
    Dense
      {
        stride;
        last = Array.make (stride * stride) neg_infinity;
        spill = None;
      }
  else Sparse (Ltbl.create ~initial:4096 ~absent:neg_infinity ())

(* A message never overtakes an earlier one on the same (src, dst) link. *)
let fifo_arrival links ~src ~dst arrival =
  let bump prev = if prev >= arrival then prev +. 1e-9 else arrival in
  match links with
  | Dense d when src < d.stride && dst < d.stride ->
      let idx = (src * d.stride) + dst in
      let a = bump d.last.(idx) in
      d.last.(idx) <- a;
      a
  | Dense d ->
      let spill =
        match d.spill with
        | Some h -> h
        | None ->
            let h = Ltbl.create ~initial:64 ~absent:neg_infinity () in
            d.spill <- Some h;
            h
      in
      let key = Ltbl.link_key ~src ~dst in
      (* [absent] is neg_infinity, which [bump] maps to [arrival]: a
         virgin link never bumps. *)
      let a = bump (Ltbl.get spill key) in
      Ltbl.set spill key a;
      a
  | Sparse h ->
      let key = Ltbl.link_key ~src ~dst in
      let a = bump (Ltbl.get h key) in
      Ltbl.set h key a;
      a

let copy_fifo_links = function
  | Dense d ->
      Dense
        {
          d with
          last = Array.copy d.last;
          spill = Option.map Ltbl.copy d.spill;
        }
  | Sparse h -> Sparse (Ltbl.copy h)

(* ------------------------------------------------------------------ *)
(* Pluggable delivery scheduling.

   The default engine delivers the earliest pending event (the heap
   order). A scheduler replaces that policy: at every step the engine
   enumerates the *enabled* events — the oldest pending message of each
   distinct (src, dst) link, in per-link send order, plus a single
   choice standing for the earliest-armed local timer — and asks the
   policy which one happens next. The policy may instead crash-stop a
   processor between deliveries ([Crash_now]), which is how the model
   checker interleaves fault events with message deliveries. Under a
   scheduler, virtual time is logical: the clock advances by 1 per
   event and no delay is ever sampled, so runs are pure functions of
   the decision sequence. *)

type choice = {
  link_src : int;
  link_dst : int;
  link_seq : int;
      (* per-link send ordinal for messages into a destination declared
         unordered (see [declare_unordered]); -1 for FIFO links and the
         timer pseudo-choice *)
  link_tag : string;
}

type decision =
  | Deliver_next of int
  | Crash_now of int
  | Recover_now of int
  | Byz_now of int

type policy = choice array -> decision

(* One pending event in scheduler mode; [pseq] is global send order, so
   per-link FIFO = lowest [pseq] on that link, and [plseq] is the stable
   per-link send ordinal used to name individual messages on unordered
   destinations. *)
type 'msg pend =
  | Pend_msg of {
      pseq : int;
      plseq : int;
      psrc : int;
      pdst : int;
      ppayload : 'msg;
      pparent : int;
    }
  | Pend_timer of { pseq : int; tparent : int; callback : unit -> unit }

type 'msg sched = {
  policy : policy;
  mutable spending : 'msg pend list;  (* reverse send order *)
  mutable sseq : int;
  link_seqs : (int * int, int) Hashtbl.t;
      (* messages ever sent per (src, dst) link — the next [plseq] *)
}

type 'msg t = {
  n : int;
  rng : Rng.t;
  delay : Delay.t;
  label : 'msg -> string;
  bits : 'msg -> int;
  measure_bits : bool;
      (* skip the [bits] call entirely when no measure was supplied *)
  queues : 'msg event Heap.t array;
      (* one SoA heap per shard, processors partitioned into contiguous
         blocks. A single network-global monotone [gseq], keyed through
         [Heap.push_keyed], imposes one canonical (arrival, gseq) total
         order across every shard, so the merged pop order — and with it
         every checksum — is independent of the shard count. At
         shards = 1 the keys coincide with the per-heap auto-sequence the
         engine used before sharding, keeping historical goldens. *)
  mutable gseq : int;
  debug : bool;
      (* [Logs] debug level sampled once at [create]: the per-delivery
         [Log.debug] closure is only allocated when someone could see it *)
  metrics : Metrics.t;
  mutable handler : (self:int -> src:int -> 'msg -> unit) option;
  clock : float array;
      (* length 1; a flat float slot so advancing the clock every step
         does not re-box the float as a mutable record field would *)
  mutable deliveries : int;
  mutable trace : Trace.t option;
  mutable op_count : int;
  mutable total_bits : int;
  mutable max_message_bits : int;
  mutable current_event : int;
      (* seq of the delivery being handled; 0 outside handlers *)
  fifo_links : fifo_links option;
  faults : Fault.t;
  mutable faults_active : bool;
      (* false = the entire fault layer is skipped on the hot path (and
         zero Rng draws are made), keeping Fault.none runs bit-identical;
         flipped on by a plan or by a manual [crash] *)
  mutable crashed_tbl : bool array;  (* index = processor id; grows *)
  mutable byz_tbl : bool array;  (* turned Byzantine; index = id; grows *)
  corrupt :
    (rule:Fault.byz_rule -> equivocate:bool -> src:int -> dst:int ->
     'msg -> 'msg)
    option;
      (* protocol-supplied payload rewriter: the network knows when to
         corrupt (plan triggers) but not how to rewrite an opaque ['msg];
         counters that support Byzantine runs pass one at [create] *)
  mutable recovered_tbl : bool array;  (* ever recovered; index = id; grows *)
  mutable recovery_counts : int array;
      (* completed revivals per processor; index = id; grows *)
  mutable unordered_tbl : bool array;
      (* destinations whose inbound delivery order the scheduler may
         permute beyond per-link FIFO; index = id; grows *)
  time_events : (float * int * int) array;
      (* (At trigger, kind, processor) with kind 0 = crash, 1 = recover,
         2 = turn Byzantine, sorted by time then kind then processor — a
         crash and a recovery of the same processor at the same instant
         apply crash-first *)
  mutable time_event_idx : int;
  count_crashes : (int * int * int) array;
      (* (After trigger, kind, processor) with kind 0 = crash, 2 = turn
         Byzantine, sorted *)
  mutable count_crash_idx : int;
  mutable sched : 'msg sched option;
      (* None = the heap engine, bit-identical to pre-scheduler builds *)
}

let record_fault t ~src ~dst kind =
  match t.trace with
  | Some trace ->
      Trace.record_fault trace
        {
          Trace.fault_time = t.clock.(0);
          fault_src = src;
          fault_dst = dst;
          kind;
        }
  | None -> ()

let crashed t p = p >= 0 && p < Array.length t.crashed_tbl && t.crashed_tbl.(p)

let recovered t p =
  p >= 0 && p < Array.length t.recovered_tbl && t.recovered_tbl.(p)

let ever_crashed t p = crashed t p || recovered t p

let grown tbl p =
  let cap = Array.length tbl in
  if p < cap then tbl
  else begin
    let tbl' = Array.make (max (p + 1) (2 * max cap 8)) false in
    Array.blit tbl 0 tbl' 0 cap;
    tbl'
  end

let crash t p =
  if p < 1 then invalid_arg "Network.crash: ids start at 1";
  if not (crashed t p) then begin
    t.faults_active <- true;
    t.crashed_tbl <- grown t.crashed_tbl p;
    t.crashed_tbl.(p) <- true;
    Metrics.on_crash t.metrics;
    record_fault t ~src:p ~dst:p Trace.Crashed
  end

let grown_counts tbl p =
  let cap = Array.length tbl in
  if p < cap then tbl
  else begin
    let tbl' = Array.make (max (p + 1) (2 * max cap 8)) 0 in
    Array.blit tbl 0 tbl' 0 cap;
    tbl'
  end

let recover t p =
  if p < 1 then invalid_arg "Network.recover: ids start at 1";
  (* Reviving a processor that is not down is a no-op, so a plan whose
     recovery time lands before its crash time degrades gracefully. *)
  if crashed t p then begin
    t.crashed_tbl.(p) <- false;
    t.recovered_tbl <- grown t.recovered_tbl p;
    t.recovered_tbl.(p) <- true;
    t.recovery_counts <- grown_counts t.recovery_counts p;
    t.recovery_counts.(p) <- t.recovery_counts.(p) + 1;
    Metrics.on_recover t.metrics;
    record_fault t ~src:p ~dst:p Trace.Recovered
  end

let byzantine t p = p >= 0 && p < Array.length t.byz_tbl && t.byz_tbl.(p)

let make_byzantine t p =
  if p < 1 then invalid_arg "Network.make_byzantine: ids start at 1";
  if not (byzantine t p) then begin
    t.faults_active <- true;
    t.byz_tbl <- grown t.byz_tbl p;
    t.byz_tbl.(p) <- true;
    Metrics.on_byzantine t.metrics;
    record_fault t ~src:p ~dst:p Trace.Turned_byzantine
  end

let byzantine_processors t =
  let acc = ref [] in
  for p = Array.length t.byz_tbl - 1 downto 1 do
    if t.byz_tbl.(p) then acc := p :: !acc
  done;
  !acc

let recoveries_of t p =
  if p >= 0 && p < Array.length t.recovery_counts then t.recovery_counts.(p)
  else 0

let declare_unordered t p =
  if p < 1 then invalid_arg "Network.declare_unordered: ids start at 1";
  t.unordered_tbl <- grown t.unordered_tbl p;
  t.unordered_tbl.(p) <- true

let is_unordered t p =
  p >= 0 && p < Array.length t.unordered_tbl && t.unordered_tbl.(p)

let recovered_processors t =
  let acc = ref [] in
  for p = Array.length t.recovered_tbl - 1 downto 1 do
    if t.recovered_tbl.(p) && not (crashed t p) then acc := p :: !acc
  done;
  !acc

(* Crash/recover triggers are applied between deliveries: time triggers
   fire before the first event at or past their instant, count triggers
   once the delivery total reaches them. *)
let apply_due_crashes t ~at =
  while
    t.time_event_idx < Array.length t.time_events
    && (let time, _, _ = t.time_events.(t.time_event_idx) in
        time <= at)
  do
    let _, kind, p = t.time_events.(t.time_event_idx) in
    t.time_event_idx <- t.time_event_idx + 1;
    if kind = 0 then crash t p
    else if kind = 1 then recover t p
    else make_byzantine t p
  done;
  while
    t.count_crash_idx < Array.length t.count_crashes
    && (let d, _, _ = t.count_crashes.(t.count_crash_idx) in
        d <= t.deliveries)
  do
    let _, kind, p = t.count_crashes.(t.count_crash_idx) in
    t.count_crash_idx <- t.count_crash_idx + 1;
    if kind = 0 then crash t p else make_byzantine t p
  done

(* Ambient default policy: counters build their own networks inside
   [create], so the model checker installs its policy for the dynamic
   extent of the counter constructor instead of threading a parameter
   through every implementation. *)
let ambient_policy : policy option ref = ref None

let with_scheduler policy f =
  let saved = !ambient_policy in
  ambient_policy := Some policy;
  Fun.protect ~finally:(fun () -> ambient_policy := saved) f

(* Ambient default shard count, same pattern as [ambient_policy]:
   counters build their own networks inside their [create], so
   [Driver.run ~sim_domains] installs the count for the dynamic extent of
   the constructor instead of widening every counter signature. *)
let ambient_shards = ref 1

let with_shards s f =
  if s < 1 then invalid_arg "Network.with_shards: shard count must be >= 1";
  let saved = !ambient_shards in
  ambient_shards := s;
  Fun.protect ~finally:(fun () -> ambient_shards := saved) f

(* Owner shard of a destination: contiguous blocks of the id space, with
   overflow hires (ids above n) living in the last shard and timers in
   shard 0. Pure arithmetic on (dst, n, shards) — no per-network state —
   so the same destination always lands in the same shard. *)
let shard_of ~n ~shards dst =
  if shards = 1 || dst > n then shards - 1
  else (dst - 1) * shards / n

let create ?(seed = 0xC0FFEE) ?(delay = Delay.default) ?label ?bits
    ?(fifo = false) ?(faults = Fault.none) ?corrupt ?shards ~n () =
  let shards =
    match shards with Some s -> s | None -> !ambient_shards
  in
  if shards < 1 then invalid_arg "Network.create: shards must be >= 1";
  (* More shards than processors would leave empty blocks; clamp. *)
  let shards = max 1 (min shards (max 1 n)) in
  let measure_bits = bits <> None in
  let label = match label with Some f -> f | None -> fun _ -> "msg" in
  let bits = match bits with Some f -> f | None -> fun _ -> 0 in
  (match Fault.validate faults with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Network.create: bad fault plan: " ^ e));
  (* A byzval rule promises payload corruption; without a rewriter the
     network cannot keep it (the payload type is opaque here). Refusing
     beats silently running the plan honestly. *)
  if faults.Fault.byz_rules <> [] && corrupt = None then
    invalid_arg
      "Network.create: fault plan has byzval rules but this protocol \
       supplies no ?corrupt rewriter";
  let time_events, count_crashes =
    let at, after =
      List.partition_map
        (fun (kind, { Fault.processor; trigger }) ->
          match trigger with
          | Fault.At time -> Either.Left (time, kind, processor)
          | Fault.After d -> Either.Right (d, kind, processor))
        (List.map (fun c -> (0, c)) faults.Fault.crashes
        @ List.map (fun b -> (2, b)) faults.Fault.byz)
    in
    let at =
      at
      @ List.map
          (fun ({ processor; time } : Fault.recover) -> (time, 1, processor))
          faults.Fault.recovers
    in
    (* (time, kind, proc) and (delivery-count, kind, proc) tuples, ordered
       by trigger then kind (crash before recover before Byzantine turn)
       then victim — spelled out so the tie-break is typed. *)
    let sort3 cmp_fst =
      List.sort (fun (t1, k1, p1) (t2, k2, p2) ->
          match cmp_fst t1 t2 with
          | 0 -> (
              match Int.compare k1 k2 with 0 -> Int.compare p1 p2 | c -> c)
          | c -> c)
    in
    let sort_at = sort3 Float.compare at
    and sort_after = sort3 Int.compare after in
    (Array.of_list sort_at, Array.of_list sort_after)
  in
  let t =
    {
      n;
      rng = Rng.create ~seed;
      delay;
      label;
      bits;
      measure_bits;
      queues =
        (let cap = max 16 (min (2 * n) (1 lsl 16) / shards) in
         Array.init shards (fun _ -> Heap.create ~capacity:cap ()));
      gseq = 0;
      debug =
        (match Logs.Src.level log_src with
        | Some Logs.Debug -> true
        | Some _ | None -> false);
      metrics = Metrics.create ~n;
      handler = None;
      clock = [| 0. |];
      deliveries = 0;
      trace = None;
      op_count = 0;
      total_bits = 0;
      max_message_bits = 0;
      current_event = 0;
      fifo_links = (if fifo then Some (make_fifo_links n) else None);
      faults;
      faults_active = not (Fault.is_none faults);
      crashed_tbl = [||];
      byz_tbl = [||];
      corrupt;
      recovered_tbl = [||];
      recovery_counts = [||];
      unordered_tbl = [||];
      time_events;
      time_event_idx = 0;
      count_crashes;
      count_crash_idx = 0;
      sched =
        Option.map
          (fun policy ->
            { policy; spending = []; sseq = 0;
              link_seqs = Hashtbl.create 16 })
          !ambient_policy;
    }
  in
  (* "Crashed from the start" triggers (At 0. / After 0) apply before any
     send, not lazily at the first delivery. *)
  if t.faults_active then apply_due_crashes t ~at:0.;
  t

let set_handler t h = t.handler <- Some h

let set_scheduler t policy =
  if Array.exists (fun q -> not (Heap.is_empty q)) t.queues then
    failwith "Network.set_scheduler: events already pending in the heap";
  t.sched <-
    Some { policy; spending = []; sseq = 0; link_seqs = Hashtbl.create 16 }

let has_scheduler t = t.sched <> None

let n t = t.n

let shards t = Array.length t.queues

let rng t = t.rng

let now t = t.clock.(0)

let metrics t = t.metrics

let faults t = t.faults

let pending t =
  match t.sched with
  | None -> Array.fold_left (fun acc q -> acc + Heap.size q) 0 t.queues
  | Some s -> List.length s.spending

(* Shard holding the globally next event — the argmin over shard tops of
   the canonical (arrival, gseq) pair — or -1 when every heap is drained.
   The single-shard fast path keeps the historical engine's hot loop. *)
let best_shard t =
  let qs = t.queues in
  if Array.length qs = 1 then (if Heap.is_empty qs.(0) then -1 else 0)
  else begin
    let best = ref (-1) and bp = ref infinity and bk = ref max_int in
    for s = 0 to Array.length qs - 1 do
      if not (Heap.is_empty qs.(s)) then begin
        let p = Heap.top_prio qs.(s) in
        let c = Float.compare p !bp in
        if c < 0 || (c = 0 && Heap.top_key qs.(s) < !bk) then begin
          best := s;
          bp := p;
          bk := Heap.top_key qs.(s)
        end
      end
    done;
    !best
  end

let push_event t ~dst ~prio ev =
  let key = t.gseq in
  t.gseq <- key + 1;
  let s =
    match ev with
    | Local _ -> 0
    | Deliver _ -> shard_of ~n:t.n ~shards:(Array.length t.queues) dst
  in
  Heap.push_keyed t.queues.(s) ~prio ~key ev

let deliveries t = t.deliveries

let enqueue_delivery t ~src ~dst payload =
  match t.sched with
  | Some s ->
      (* Scheduler mode: the message joins the pending pool untimed; no
         delay is sampled (the adversary, not the latency model, decides
         when it arrives). *)
      s.sseq <- s.sseq + 1;
      let plseq =
        match Hashtbl.find_opt s.link_seqs (src, dst) with
        | Some k -> k
        | None -> 0
      in
      Hashtbl.replace s.link_seqs (src, dst) (plseq + 1);
      s.spending <-
        Pend_msg
          { pseq = s.sseq; plseq; psrc = src; pdst = dst;
            ppayload = payload; pparent = t.current_event }
        :: s.spending
  | None ->
      let arrival = t.clock.(0) +. Delay.sample t.delay t.rng in
      let arrival =
        match t.fifo_links with
        | None -> arrival
        | Some links -> fifo_arrival links ~src ~dst arrival
      in
      push_event t ~dst ~prio:arrival
        (Deliver { src; dst; payload; parent = t.current_event })

let send t ~src ~dst payload =
  if src < 1 || dst < 1 then invalid_arg "Network.send: ids start at 1";
  if t.faults_active && crashed t src then begin
    (* A crash-stopped processor emits nothing: the send is suppressed
       before any charge (it never happened at the sender). This arm is
       only reachable from driver-level code and timers — the handler of
       a crashed processor never runs. *)
    Metrics.on_drop t.metrics;
    record_fault t ~src ~dst Trace.Dropped
  end
  else begin
    (* Byzantine payload rewrite: once the sender has turned and its plan
       gives it a byzval rule, every payload it emits is rewritten by the
       protocol-supplied [corrupt] — a pure function of (rule, equivocate,
       src, dst, payload), so this arm makes zero Rng draws and plans
       without byz clauses never reach it. *)
    let payload =
      if t.faults_active && byzantine t src then
        match (t.corrupt, Fault.byz_rule_of t.faults src) with
        | Some f, Some rule ->
            let rewritten =
              f ~rule
                ~equivocate:(Fault.equivocates t.faults src)
                ~src ~dst payload
            in
            if rewritten != payload then begin
              Metrics.on_corruption t.metrics;
              record_fault t ~src ~dst Trace.Corrupted
            end;
            rewritten
        | _ -> payload
      else payload
    in
    Metrics.on_send t.metrics src;
    if t.measure_bits then begin
      let size = t.bits payload in
      t.total_bits <- t.total_bits + size;
      if size > t.max_message_bits then t.max_message_bits <- size
    end;
    if
      t.faults_active
      && Fault.partitioned t.faults ~src ~dst ~at:t.clock.(0)
    then begin
      (* Deterministic loss, no Rng draw: the cut is evaluated at send
         time, so a message "enters the dead link" and vanishes. *)
      Metrics.on_drop t.metrics;
      record_fault t ~src ~dst Trace.Dropped
    end
    else begin
      (* Rng draw order is part of the determinism contract: drop test
         (only when this link has a non-zero drop probability), then the
         delay sample, then the duplication test (only when the plan
         duplicates), then the duplicate's own delay sample. *)
      let dropped =
        t.faults_active
        &&
        let p = Fault.drop_on t.faults ~src ~dst in
        p > 0. && Rng.float t.rng 1.0 < p
      in
      if dropped then begin
        Metrics.on_drop t.metrics;
        record_fault t ~src ~dst Trace.Dropped
      end
      else begin
        enqueue_delivery t ~src ~dst payload;
        if
          t.faults_active
          && t.faults.Fault.duplicate > 0.
          && Rng.float t.rng 1.0 < t.faults.Fault.duplicate
        then begin
          Metrics.on_duplicate t.metrics;
          record_fault t ~src ~dst Trace.Duplicated;
          enqueue_delivery t ~src ~dst payload
        end
      end
    end
  end

let schedule_local t ~delay callback =
  if delay < 0. then invalid_arg "Network.schedule_local: negative delay";
  match t.sched with
  | Some s ->
      s.sseq <- s.sseq + 1;
      s.spending <-
        Pend_timer { pseq = s.sseq; tparent = t.current_event; callback }
        :: s.spending
  | None ->
      push_event t ~dst:0
        ~prio:(t.clock.(0) +. delay)
        (Local (t.current_event, callback))

(* --- Scheduler-mode stepping ---------------------------------------- *)

(* Discard pending messages addressed to crashed processors before
   enumerating: a dead destination is not a real choice, and sweeping
   eagerly keeps the branching the model checker sees free of no-ops.
   Each discarded message is charged exactly as the heap path charges a
   delivery to a dead peer. *)
let sched_sweep_dead t s =
  if t.faults_active then begin
    let dead, alive =
      List.partition
        (function Pend_msg m -> crashed t m.pdst | Pend_timer _ -> false)
        s.spending
    in
    if dead <> [] then begin
      s.spending <- alive;
      List.iter
        (function
          | Pend_msg m ->
              Metrics.on_drop t.metrics;
              record_fault t ~src:m.psrc ~dst:m.pdst Trace.Dropped
          | Pend_timer _ -> ())
        (* Oldest first, so drop annotations appear in send order. *)
        (List.sort
           (fun a b ->
             let seq = function Pend_msg m -> m.pseq | Pend_timer p -> p.pseq in
             Int.compare (seq a) (seq b))
           dead)
    end
  end

(* Enabled events, canonically ordered: the oldest pending message of
   each distinct (src, dst) link — or, for a destination declared
   unordered, {e every} pending message to it — sorted by
   (src, dst, per-link ordinal), then — if any timer is armed — one
   choice for the earliest-armed timer. Returns the choices plus the
   pending entry each choice denotes. *)
let sched_enabled t s =
  sched_sweep_dead t s;
  let in_order =
    List.sort
      (fun a b ->
        let seq = function Pend_msg m -> m.pseq | Pend_timer p -> p.pseq in
        Int.compare (seq a) (seq b))
      s.spending
  in
  let links = Hashtbl.create 16 in
  let msgs = ref [] and first_timer = ref None in
  List.iter
    (fun p ->
      match p with
      | Pend_msg m ->
          if is_unordered t m.pdst then msgs := p :: !msgs
          else if not (Hashtbl.mem links (m.psrc, m.pdst)) then begin
            Hashtbl.add links (m.psrc, m.pdst) ();
            msgs := p :: !msgs
          end
      | Pend_timer _ -> if !first_timer = None then first_timer := Some p)
    in_order;
  let msgs =
    List.sort
      (fun a b ->
        match (a, b) with
        | Pend_msg x, Pend_msg y -> (
            match Int.compare x.psrc y.psrc with
            | 0 -> (
                match Int.compare x.pdst y.pdst with
                | 0 -> Int.compare x.plseq y.plseq
                | c -> c)
            | c -> c)
        | _ -> 0)
      !msgs
  in
  let picks =
    Array.of_list (msgs @ match !first_timer with None -> [] | Some p -> [ p ])
  in
  let choices =
    Array.map
      (function
        | Pend_msg m ->
            {
              link_src = m.psrc;
              link_dst = m.pdst;
              link_seq = (if is_unordered t m.pdst then m.plseq else -1);
              link_tag = t.label m.ppayload;
            }
        | Pend_timer _ ->
            { link_src = 0; link_dst = 0; link_seq = -1; link_tag = "timer" })
      picks
  in
  (choices, picks)

let sched_remove s pseq =
  s.spending <-
    List.filter
      (function Pend_msg m -> m.pseq <> pseq | Pend_timer p -> p.pseq <> pseq)
      s.spending

let rec sched_step t s =
  let choices, picks = sched_enabled t s in
  if Array.length choices = 0 then false
  else
    match s.policy choices with
    | Crash_now p ->
        crash t p;
        sched_step t s
    | Recover_now p ->
        recover t p;
        sched_step t s
    | Byz_now p ->
        make_byzantine t p;
        sched_step t s
    | Deliver_next i ->
        if i < 0 || i >= Array.length picks then
          invalid_arg "Network: scheduler chose an out-of-range event";
        t.clock.(0) <- t.clock.(0) +. 1.;
        (match picks.(i) with
        | Pend_timer { pseq; tparent; callback } ->
            sched_remove s pseq;
            let saved = t.current_event in
            t.current_event <- tparent;
            callback ();
            t.current_event <- saved
        | Pend_msg { pseq; plseq = _; psrc = src; pdst = dst;
                     ppayload = payload; pparent = parent } ->
            sched_remove s pseq;
            let handler =
              match t.handler with
              | Some h -> h
              | None -> failwith "Network.step: no handler installed"
            in
            t.deliveries <- t.deliveries + 1;
            if t.debug then
              Log.debug (fun m ->
                  m "t=%.3f deliver %d -> %d [%s] (scheduled)" t.clock.(0) src
                    dst (t.label payload));
            Metrics.on_recv t.metrics dst;
            (match t.trace with
            | Some trace ->
                Trace.record trace
                  {
                    Trace.seq = t.deliveries;
                    time = t.clock.(0);
                    src;
                    dst;
                    tag = t.label payload;
                    parent;
                  }
            | None -> ());
            let saved = t.current_event in
            t.current_event <- t.deliveries;
            handler ~self:dst ~src payload;
            t.current_event <- saved);
        true

let step t =
  match t.sched with
  | Some s -> sched_step t s
  | None ->
  let shard = best_shard t in
  if shard < 0 then false
  else begin
    let q = t.queues.(shard) in
    let at = Heap.top_prio q in
    if at > t.clock.(0) then t.clock.(0) <- at;
    if t.faults_active then apply_due_crashes t ~at;
    match Heap.pop_top q with
    | Local (parent, callback) ->
        (* The timer's effects are causal consequences of the event that
           armed it. *)
        let saved = t.current_event in
        t.current_event <- parent;
        callback ();
        t.current_event <- saved;
        true
    | Deliver { src; dst; payload = _; parent = _ }
      when t.faults_active && crashed t dst ->
        (* Crash-stop: a dead processor receives nothing. The send was
           charged when the message left [src]; the message itself is
           lost here, with no receive charge and no trace event. *)
        Metrics.on_drop t.metrics;
        record_fault t ~src ~dst Trace.Dropped;
        true
    | Deliver { src; dst; payload; parent } ->
        let handler =
          match t.handler with
          | Some h -> h
          | None -> failwith "Network.step: no handler installed"
        in
        t.deliveries <- t.deliveries + 1;
        if t.debug then
          Log.debug (fun m ->
              m "t=%.3f deliver %d -> %d [%s]" t.clock.(0) src dst
                (t.label payload));
        Metrics.on_recv t.metrics dst;
        (match t.trace with
        | Some trace ->
            Trace.record trace
              {
                Trace.seq = t.deliveries;
                time = t.clock.(0);
                src;
                dst;
                tag = t.label payload;
                parent;
              }
        | None -> ());
        let saved = t.current_event in
        t.current_event <- t.deliveries;
        handler ~self:dst ~src payload;
        t.current_event <- saved;
        true
  end

exception
  Storm of { max_steps : int; pending : int; now : float; deliveries : int }

let () =
  Printexc.register_printer (function
    | Storm { max_steps; pending; now; deliveries } ->
        Some
          (Printf.sprintf
             "Network.Storm { max_steps = %d; pending = %d; now = %g; \
              deliveries = %d } — protocol probably diverges"
             max_steps pending now deliveries)
    | _ -> None)

let run_to_quiescence ?(max_steps = 100_000_000) t =
  let rec loop count =
    if count >= max_steps then
      raise
        (Storm
           {
             max_steps;
             pending = pending t;
             now = t.clock.(0);
             deliveries = t.deliveries;
           })
    else if step t then loop (count + 1)
    else count
  in
  loop 0

let clone_quiescent t =
  if pending t > 0 then
    failwith "Network.clone_quiescent: messages pending";
  if t.trace <> None then
    failwith "Network.clone_quiescent: an operation is open";
  {
    n = t.n;
    rng = Rng.copy t.rng;
    delay = t.delay;
    label = t.label;
    bits = t.bits;
    measure_bits = t.measure_bits;
    queues = Array.map (fun _ -> Heap.create ()) t.queues;
    gseq = t.gseq;
    debug = t.debug;
    metrics = Metrics.copy t.metrics;
    handler = None;
    clock = Array.copy t.clock;
    deliveries = t.deliveries;
    trace = None;
    op_count = t.op_count;
    total_bits = t.total_bits;
    max_message_bits = t.max_message_bits;
    current_event = 0;
    fifo_links = Option.map copy_fifo_links t.fifo_links;
    faults = t.faults;
    faults_active = t.faults_active;
    crashed_tbl = Array.copy t.crashed_tbl;
    byz_tbl = Array.copy t.byz_tbl;
    corrupt = t.corrupt;
    recovered_tbl = Array.copy t.recovered_tbl;
    recovery_counts = Array.copy t.recovery_counts;
    unordered_tbl = Array.copy t.unordered_tbl;
    time_events = t.time_events;
    time_event_idx = t.time_event_idx;
    count_crashes = t.count_crashes;
    count_crash_idx = t.count_crash_idx;
    sched =
      (* Quiescence means no pending entries to copy; the clone keeps the
         same policy so its future deliveries stay adversary-driven, and
         its own ordinal table so the original's sends don't leak in. *)
      Option.map
        (fun s ->
          { s with spending = []; link_seqs = Hashtbl.copy s.link_seqs })
        t.sched;
  }

let in_op t = t.trace <> None

let begin_op t ~origin =
  if in_op t then failwith "Network.begin_op: an operation is already open";
  t.trace <-
    Some
      (Trace.create ~start_time:t.clock.(0) ~op_index:t.op_count ~origin ());
  t.op_count <- t.op_count + 1

let total_bits t = t.total_bits

let max_message_bits t = t.max_message_bits

let end_op t =
  match t.trace with
  | None -> failwith "Network.end_op: no operation open"
  | Some trace ->
      t.trace <- None;
      trace
