(** Deterministic object-store service.

    A single string-keyed blob map with the primitives durable counters
    need (see docs/DURABILITY.md): read-after-write {!Get}/{!Put},
    conditional put ({!Cas} — compare the {e whole current value}
    against [expect], [None] meaning "key must not exist"),
    lexicographically sorted {!List} by prefix, and {!Delete}. The store
    itself is pure state: {!apply} is a deterministic transition
    function with no latency and no randomness.

    Distribution concerns live in {!serve}, which a protocol calls from
    the handler of the processor hosting the store. It interprets the
    fault plan's store clauses ([sdrop]/[sdup]/[sslow]/[sout], see
    {!Fault}) per RPC {e leg} — a request lost before it applied versus
    a response lost after it applied are different failures, and the
    WAL protocol's idempotent replay exists to mask exactly that
    difference. All draws come from the hosting network's own {!Rng}
    stream in a fixed order, so runs stay bit-reproducible; plans with
    no store clauses make zero draws; under a scheduler (model
    checking) the hooks are disabled because the adversary owns
    delivery nondeterminism. *)

type request =
  | Get of string
  | Put of { key : string; value : string }
  | Cas of { key : string; expect : string option; value : string }
      (** conditional put: applies iff the current value equals
          [expect] ([None] = key absent) *)
  | List of string  (** all keys with this prefix, ascending *)
  | Delete of string

type response =
  | Value of string option  (** {!Get}: the value, or [None] if absent *)
  | Written  (** {!Put} applied, or {!Cas} condition held and applied *)
  | Conflict of string option
      (** {!Cas} condition failed; carries the actual current value *)
  | Keys of string list  (** {!List}: matching keys, ascending *)
  | Deleted  (** {!Delete} applied (idempotent: absent keys too) *)
  | Unavailable  (** the store is inside an [sout] outage window *)

type stats = {
  gets : int;
  puts : int;
  cas_ok : int;
  cas_conflict : int;
  lists : int;
  deletes : int;
  lost_requests : int;  (** RPCs lost by [sdrop] before applying *)
  lost_responses : int;  (** RPCs applied but their response lost *)
  dup_responses : int;  (** extra response copies injected by [sdup] *)
  unavailable : int;  (** RPCs answered [Unavailable] by [sout] *)
}

type monitor = key:string -> prev:string option -> next:string option -> unit
(** Observation hook invoked synchronously on every applied mutation
    (put, successful cas, delete) with the key's previous and next
    values — how {!Core.Wal.Monitor} checks the oswald safety specs
    against the store's actual history. *)

type t

val create : unit -> t
(** An empty store. *)

val copy : t -> t
(** Independent deep copy (the blob map is persistent; stats are
    copied). The monitor is shared — counter clones keep auditing. *)

val set_monitor : t -> monitor -> unit

val apply : t -> request -> response
(** Apply one request to the store state, no faults, no latency.
    Deterministic; mutations fire the monitor first. *)

val serve :
  t ->
  'msg Network.t ->
  reply:(?extra_delay:float -> response -> unit) ->
  request ->
  unit
(** [serve t net ~reply req] handles one RPC under [net]'s fault plan:
    outage check (no draw), request-leg drop draw, {!apply},
    response-leg drop draw, slow draw ([reply ~extra_delay] asks the
    caller to hold the response back that long), duplication draw (a
    second [reply] with no extra delay). [reply] may be called zero,
    one or two times. With no store clauses in the plan — or under a
    scheduler — this is exactly one {!apply} and one [reply], with zero
    draws. *)

val find : t -> string -> string option
(** Direct (test/audit) read, uncharged. *)

val bindings : t -> (string * string) list
(** All objects, ascending by key, uncharged. *)

val stats : t -> stats

val request_label : request -> string
(** Short tag for traces: ["get"], ["put"], ["cas"], ["list"], ["del"]. *)

val response_label : response -> string
(** Short tag for traces: ["value"], ["written"], ["conflict"],
    ["keys"], ["deleted"], ["unavail"]. *)
