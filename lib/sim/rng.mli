(** Deterministic, splittable pseudo-random number generator.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible bit-for-bit from a single integer seed,
    independently of the OCaml standard library's [Random] implementation
    (which has changed across compiler releases).

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    statistically solid generator whose [split] operation yields an
    independent stream, which is exactly what we need to hand separate
    streams to separate protocol components without coupling their draws. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] returns a fresh generator whose stream is statistically
    independent of [t]'s future output. [t] advances by one draw. *)

val copy : t -> t
(** [copy t] duplicates the exact current state (same future stream). *)

val keyed : seed:int -> int -> int -> t
(** [keyed ~seed a b] is a stream that is a pure function of the triple
    [(seed, a, b)] — stateless derivation, no shared generator advanced.
    The sharded engine ({!Par}) keys one on (sender, per-sender send
    index) per message so that delay draws are independent of domain
    execution order. Distinct triples give independent streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0 .. n-1]. *)
