(** Message-delivery latency models.

    The paper's model only requires that a message arrives "an unbounded but
    finite amount of time after it has been sent"; none of its results depend
    on actual latencies (they are statements about message counts). The
    delay model therefore only influences interleavings. [Constant] gives
    breadth-first, synchronous-looking executions; [Uniform] and
    [Exponential] give realistic asynchrony; [Adversarial_jitter] maximises
    reordering by sampling from a wide heavy-jitter range, which is how we
    exercise the "arbitrary finite delay" clause of the model. *)

type t =
  | Constant of float  (** Every message takes exactly this long. *)
  | Uniform of float * float  (** Uniform in [\[lo, hi)]. *)
  | Exponential of float  (** Exponential with the given mean. *)
  | Adversarial_jitter of float
      (** Mostly fast, occasionally [100 x] slower: uniform in [\[base, 2 base)]
          with probability 0.9, uniform in [\[base, 100 base)] otherwise. *)

val default : t
(** [Constant 1.0] — the unit-delay convention used for time complexity in
    the asynchronous model (and the paper's introduction). *)

val sample : t -> Rng.t -> float
(** Draw one delivery latency. Always strictly positive. *)

val lookahead : t -> float
(** Greatest lower bound of {!sample} — the per-link minimum delay the
    sharded engine ({!Par}) uses as conservative lookahead. Strictly
    positive, but degenerate (1e-9) for models that can draw arbitrarily
    small delays ([Exponential], [Uniform] with [lo <= 0]); {!Par.create}
    rejects those because a vanishing lookahead collapses the safe
    horizon to a single event per synchronization round. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parses ["constant:1.0"], ["uniform:0.5,2.0"], ["exp:1.0"],
    ["jitter:1.0"]; used by the CLI. *)

val to_string : t -> string
