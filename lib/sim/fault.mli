(** Declarative, seed-deterministic fault plans.

    The paper's model assumes "no failures whatsoever occur"; this module
    is the engine's deliberate step outside that assumption (see
    docs/FAULTS.md). A plan is pure data describing {e what goes wrong
    when}: crash-stop processor failures triggered at a virtual time or a
    delivery count, per-message drop and duplication probabilities
    (globally or per directed link), and temporary network partitions that
    heal. {!Network.create} takes a plan via [?faults]; every probabilistic
    fault decision is sampled from the network's existing {!Rng} stream, so
    a run remains a pure function of [(protocol, n, seed, delay, faults,
    schedule)] — and the empty plan {!none} makes no draw at all, keeping
    fault-free runs bit-identical to an engine without the layer.

    Plans have a compact textual form for the CLI ([dcount run --faults]),
    parsed by {!of_string} in the spirit of {!Delay.of_string}:

    {v
    none                    the empty plan
    crash:P@T               crash processor P at virtual time T
    crash:P@#D              crash processor P after D total deliveries
    recover:P@T             revive crashed processor P at virtual time T
    drop:F                  drop every message with probability F
    drop:S,D:F              drop messages on link S->D with probability F
    dup:F                   duplicate every message with probability F
    part:LO-HI@T0,T1        cut processors LO..HI off from the rest
                            during the half-open interval [T0, T1)
    sdrop:F                 lose either leg of a store RPC with probability F
    sdup:F                  duplicate a store RPC response with probability F
    sslow:F:D               delay a store RPC response by D extra time
                            units with probability F
    sout:T0,T1              store outage: the store answers Unavailable
                            during the half-open interval [T0, T1)
    v}

    Clauses combine with ['/']: ["crash:3@1.5/drop:0.01/part:1-4@2,10"].

    The [s*] clauses target the simulated object-store service
    ({!Store}): they are interpreted by {!Store.serve} at the store
    processor, not by the network, so they model RPC-level faults
    (a request lost before it was applied, a response lost after — the
    distinction idempotent recovery protocols exist for; see
    docs/DURABILITY.md). Like the network clauses they draw from the
    network's own {!Rng} stream, and make zero draws when absent. *)

type trigger =
  | At of float  (** at a virtual time *)
  | After of int  (** once total deliveries reach this count *)

type crash = { processor : int; trigger : trigger }

type recover = { processor : int; time : float }
(** Revival of a crashed processor at a virtual time. The processor
    rejoins with its protocol role already reassigned (crash-recovery
    model, see docs/FAULTS.md): failure-aware protocols return it to
    their spare-processor pool instead of letting it resume a stale
    role. A plan may re-crash a processor after it recovers. *)

type partition = {
  lo : int;
  hi : int;  (** one side of the cut: processors [lo .. hi] inclusive *)
  from_time : float;
  heal_time : float;  (** active during [[from_time, heal_time)) *)
}

type t = {
  crashes : crash list;
  recovers : recover list;
      (** revivals; {!validate} rejects a recovery for a processor the
          plan never crashes *)
  drop : float;  (** global per-message drop probability *)
  drop_links : ((int * int) * float) list;
      (** per-link overrides of [drop], keyed by (src, dst) *)
  duplicate : float;  (** per-message duplication probability *)
  partitions : partition list;
  store_drop : float;
      (** per-leg store-RPC loss probability (request and response legs
          draw independently) *)
  store_dup : float;  (** store-RPC response duplication probability *)
  store_slow : float * float;
      (** [(probability, extra delay)]: a response is held back at the
          store for the extra delay before being sent *)
  store_outages : (float * float) list;
      (** half-open [[t0, t1)) windows during which the store answers
          every request with [Unavailable] *)
}

val none : t
(** The empty plan: no crashes, no drops, no duplication, no partitions. *)

val is_none : t -> bool
(** [is_none t] iff [t] can never inject a fault. A plan with only
    zero-probability drop/duplication clauses still counts as active
    (it is not [none] structurally) — build plans from {!none}. *)

val validate : t -> (t, string) result
(** Check the plan is well-formed: probabilities within [0, 1], processor
    ids positive, partition ranges non-empty with [from_time <= heal_time],
    triggers non-negative, and every [recover] clause naming a processor
    that some [crash] clause kills (recovering a never-crashed processor
    is a typed [Error], not a silent no-op). {!of_string} validates
    automatically. *)

val drop_on : t -> src:int -> dst:int -> float
(** Effective drop probability for one message on a directed link: the
    per-link override if present, the global [drop] otherwise. *)

val partitioned : t -> src:int -> dst:int -> at:float -> bool
(** Whether a message sent at virtual time [at] crosses an active cut. *)

val store_active : t -> bool
(** Whether any store-RPC clause ([sdrop]/[sdup]/[sslow]/[sout]) is set —
    {!Store.serve} consults the fault layer only when this holds, so
    plans without store clauses make no extra draw at the store. *)

val store_down : t -> at:float -> bool
(** Whether virtual time [at] falls inside an [sout] outage window. *)

val crash_count : t -> int
(** Number of distinct processors the plan eventually crashes. *)

val crash_processors : t -> int list
(** The distinct processors the plan eventually crashes, ascending. The
    model checker reads the {e victims} from here and re-decides the
    {e when} itself, branching over every interleaving of crash events
    with deliveries. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Canonical textual form; [of_string (to_string t)] reproduces [t]. *)

val of_string : string -> (t, string) result
