(** Declarative, seed-deterministic fault plans.

    The paper's model assumes "no failures whatsoever occur"; this module
    is the engine's deliberate step outside that assumption (see
    docs/FAULTS.md). A plan is pure data describing {e what goes wrong
    when}: crash-stop processor failures triggered at a virtual time or a
    delivery count, per-message drop and duplication probabilities
    (globally or per directed link), and temporary network partitions that
    heal. {!Network.create} takes a plan via [?faults]; every probabilistic
    fault decision is sampled from the network's existing {!Rng} stream, so
    a run remains a pure function of [(protocol, n, seed, delay, faults,
    schedule)] — and the empty plan {!none} makes no draw at all, keeping
    fault-free runs bit-identical to an engine without the layer.

    Plans have a compact textual form for the CLI ([dcount run --faults]),
    parsed by {!of_string} in the spirit of {!Delay.of_string}:

    {v
    none                    the empty plan
    crash:P@T               crash processor P at virtual time T
    crash:P@#D              crash processor P after D total deliveries
    recover:P@T             revive crashed processor P at virtual time T
    drop:F                  drop every message with probability F
    drop:S,D:F              drop messages on link S->D with probability F
    dup:F                   duplicate every message with probability F
    part:LO-HI@T0,T1        cut processors LO..HI off from the rest
                            during the half-open interval [T0, T1)
    sdrop:F                 lose either leg of a store RPC with probability F
    sdup:F                  duplicate a store RPC response with probability F
    sslow:F:D               delay a store RPC response by D extra time
                            units with probability F
    sout:T0,T1              store outage: the store answers Unavailable
                            during the half-open interval [T0, T1)
    byz:P@T                 processor P turns Byzantine at virtual time T
    byz:P@#D                ... after D total deliveries
    byzval:P:RULE           payload rewrite applied to P's sends once
                            Byzantine; RULE is replay-stale, off-by-K
                            (K a non-zero integer) or max-int
    byzeq:P                 equivocate: P shows different rewritten values
                            to different receivers of the same logical send
    v}

    Clauses combine with ['/']: ["crash:3@1.5/drop:0.01/part:1-4@2,10"].

    The [s*] clauses target the simulated object-store service
    ({!Store}): they are interpreted by {!Store.serve} at the store
    processor, not by the network, so they model RPC-level faults
    (a request lost before it was applied, a response lost after — the
    distinction idempotent recovery protocols exist for; see
    docs/DURABILITY.md). Like the network clauses they draw from the
    network's own {!Rng} stream, and make zero draws when absent.

    The [byz*] clauses model Byzantine payload corruption (docs/FAULTS.md):
    a Byzantine processor keeps running the protocol code but every integer
    payload it sends is rewritten by its [byzval] rule — deterministically,
    with {e zero} Rng draws, so Byzantine plans keep runs bit-identical
    functions of [(protocol, n, seed, delay, faults, schedule)]. With
    [byzeq] the rewrite additionally depends on the receiver id (split by
    parity), which is equivocation: two receivers of the same logical
    broadcast observe different values. {!validate} requires every
    [byzval]/[byzeq] clause to name a processor some [byz] clause turns
    adversarial, at most one rule per processor, and a [byzval] rule
    behind every [byzeq]. *)

type trigger =
  | At of float  (** at a virtual time *)
  | After of int  (** once total deliveries reach this count *)

type crash = { processor : int; trigger : trigger }

type recover = { processor : int; time : float }
(** Revival of a crashed processor at a virtual time. The processor
    rejoins with its protocol role already reassigned (crash-recovery
    model, see docs/FAULTS.md): failure-aware protocols return it to
    their spare-processor pool instead of letting it resume a stale
    role. A plan may re-crash a processor after it recovers. *)

type partition = {
  lo : int;
  hi : int;  (** one side of the cut: processors [lo .. hi] inclusive *)
  from_time : float;
  heal_time : float;  (** active during [[from_time, heal_time)) *)
}

type byz_rule =
  | Replay_stale
      (** always resend the protocol's initial value (0): a replica stuck
          in the past *)
  | Off_by of int  (** add a constant non-zero offset to every payload *)
  | Max_int
      (** replace every payload with a huge sentinel (2{^30}): the
          classic poisoned-aggregate attack *)

type t = {
  crashes : crash list;
  recovers : recover list;
      (** revivals; {!validate} rejects a recovery for a processor the
          plan never crashes *)
  drop : float;  (** global per-message drop probability *)
  drop_links : ((int * int) * float) list;
      (** per-link overrides of [drop], keyed by (src, dst) *)
  duplicate : float;  (** per-message duplication probability *)
  partitions : partition list;
  store_drop : float;
      (** per-leg store-RPC loss probability (request and response legs
          draw independently) *)
  store_dup : float;  (** store-RPC response duplication probability *)
  store_slow : float * float;
      (** [(probability, extra delay)]: a response is held back at the
          store for the extra delay before being sent *)
  store_outages : (float * float) list;
      (** half-open [[t0, t1)) windows during which the store answers
          every request with [Unavailable] *)
  byz : crash list;
      (** processors that turn Byzantine when their trigger fires (same
          trigger forms as crashes; at most one clause per processor —
          there is no way back) *)
  byz_rules : (int * byz_rule) list;
      (** payload-rewrite rule per Byzantine processor; {!validate}
          rejects a rule for a processor no [byz] clause names, and more
          than one rule per processor *)
  byz_equiv : int list;
      (** processors whose rewrites equivocate (vary by receiver-id
          parity); each must have a [byz_rules] entry *)
}

val none : t
(** The empty plan: no crashes, no drops, no duplication, no partitions. *)

val is_none : t -> bool
(** [is_none t] iff [t] can never inject a fault. A plan with only
    zero-probability drop/duplication clauses still counts as active
    (it is not [none] structurally) — build plans from {!none}. *)

val validate : t -> (t, string) result
(** Check the plan is well-formed: probabilities within [0, 1], processor
    ids positive, partition ranges non-empty with [from_time <= heal_time],
    triggers non-negative, and every [recover] clause naming a processor
    that some [crash] clause kills (recovering a never-crashed processor
    is a typed [Error], not a silent no-op). {!of_string} validates
    automatically. *)

val drop_on : t -> src:int -> dst:int -> float
(** Effective drop probability for one message on a directed link: the
    per-link override if present, the global [drop] otherwise. *)

val partitioned : t -> src:int -> dst:int -> at:float -> bool
(** Whether a message sent at virtual time [at] crosses an active cut. *)

val store_active : t -> bool
(** Whether any store-RPC clause ([sdrop]/[sdup]/[sslow]/[sout]) is set —
    {!Store.serve} consults the fault layer only when this holds, so
    plans without store clauses make no extra draw at the store. *)

val store_down : t -> at:float -> bool
(** Whether virtual time [at] falls inside an [sout] outage window. *)

val crash_count : t -> int
(** Number of distinct processors the plan eventually crashes. *)

val crash_processors : t -> int list
(** The distinct processors the plan eventually crashes, ascending. The
    model checker reads the {e victims} from here and re-decides the
    {e when} itself, branching over every interleaving of crash events
    with deliveries. *)

val byz_active : t -> bool
(** Whether any [byz] clause is set — the network consults the Byzantine
    rewrite machinery only when this holds. *)

val byz_count : t -> int
(** Number of distinct processors the plan eventually turns Byzantine. *)

val byzantine_processors : t -> int list
(** The distinct processors the plan eventually turns Byzantine,
    ascending. Like {!crash_processors}, the model checker reads the
    {e corrupted} from here and re-decides the {e when} itself. *)

val byz_rule_of : t -> int -> byz_rule option
(** The payload-rewrite rule for a processor, if the plan gives it one.
    A Byzantine processor without a rule sends unmodified payloads (it
    "turned" but behaves — useful for measuring detection overhead). *)

val equivocates : t -> int -> bool
(** Whether the processor's rewrites vary by receiver. *)

val byz_sentinel : int
(** The huge payload {!Max_int} substitutes (2{^30}). *)

val apply_rule : rule:byz_rule -> equivocate:bool -> dst:int -> int -> int
(** [apply_rule ~rule ~equivocate ~dst v] is the rewritten payload a
    Byzantine sender shows receiver [dst] in place of [v]. Pure — the
    rewrite makes zero Rng draws. With [equivocate], receivers of odd id
    see a different corruption than receivers of even id ([Replay_stale]:
    true value vs 0; [Off_by k]: [v - k] vs [v + k]; [Max_int]: 0 vs the
    sentinel). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Canonical textual form; [of_string (to_string t)] reproduces [t]. *)

val of_string : string -> (t, string) result
