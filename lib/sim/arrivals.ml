type t =
  | Fixed of float
  | Poisson of float
  | Bursty of { rate : float; on_len : float; off_len : float }

let validate = function
  | Fixed r | Poisson r ->
      if not (r > 0.) then invalid_arg "Arrivals: rate must be > 0"
  | Bursty { rate; on_len; off_len } ->
      if not (rate > 0.) then invalid_arg "Arrivals: rate must be > 0";
      if not (on_len > 0.) then invalid_arg "Arrivals: on_len must be > 0";
      if not (off_len >= 0.) then invalid_arg "Arrivals: off_len must be >= 0"

let rate = function Fixed r | Poisson r | Bursty { rate = r; _ } -> r

let to_string = function
  | Fixed r -> Printf.sprintf "fixed:%g" r
  | Poisson r -> Printf.sprintf "poisson:%g" r
  | Bursty { rate; on_len; off_len } ->
      Printf.sprintf "bursty:%g:%g:%g" rate on_len off_len

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "Arrivals.of_string: %S (expected fixed:R | poisson:R | \
          bursty:R:ON:OFF)"
         s)
  in
  let float_field f = match float_of_string_opt f with
    | Some v -> v
    | None -> fail ()
  in
  let t =
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "fixed"; r ] -> Fixed (float_field r)
    | [ "poisson"; r ] -> Poisson (float_field r)
    | [ "bursty"; r; on_len; off_len ] ->
        Bursty
          {
            rate = float_field r;
            on_len = float_field on_len;
            off_len = float_field off_len;
          }
    | _ -> fail ()
  in
  (match validate t with () -> () | exception Invalid_argument _ -> fail ());
  t

(* Domain-separation tag for the keyed per-source streams, so arrival
   draws can never collide with the Par engine's (sender, send-index)
   message keys. *)
let stream_tag = 0x41525256 (* "ARRV" *)

type source = {
  rng : Rng.t;
  process : t;
  mutable next_at : float;
  mutable on_clock : float;
      (* Bursty only: cumulative ON-window time consumed so far. The
         process is Poisson(rate) on this clock; [real_of_on] maps it
         back to real time by re-inserting the OFF windows. *)
}

let exp_draw rng ~rate =
  (* Inverse-CDF exponential; 1 - u is in (0, 1], so log never sees 0. *)
  let u = Rng.float rng 1. in
  -.log (1. -. u) /. rate

let real_of_on ~on_len ~off_len on_t =
  let cycle = on_len +. off_len in
  let full = Float.of_int (int_of_float (on_t /. on_len)) in
  (full *. cycle) +. (on_t -. (full *. on_len))

let advance src =
  match src.process with
  | Fixed r -> src.next_at <- src.next_at +. (1. /. r)
  | Poisson r -> src.next_at <- src.next_at +. exp_draw src.rng ~rate:r
  | Bursty { rate; on_len; off_len } ->
      src.on_clock <- src.on_clock +. exp_draw src.rng ~rate;
      src.next_at <- real_of_on ~on_len ~off_len src.on_clock

let source t ~seed ~origin =
  validate t;
  let src =
    { rng = Rng.keyed ~seed origin stream_tag; process = t; next_at = 0.; on_clock = 0. }
  in
  advance src;
  src

let stream t ~seed ~origin ~count =
  if count < 0 then invalid_arg "Arrivals.stream: count < 0";
  let src = source t ~seed ~origin in
  Array.init count (fun _ ->
      let at = src.next_at in
      advance src;
      at)

let merge t ~seed ~n ~ops =
  if n < 1 then invalid_arg "Arrivals.merge: n < 1";
  if ops < 0 then invalid_arg "Arrivals.merge: ops < 0";
  validate t;
  let sources = Array.init n (fun i -> source t ~seed ~origin:(i + 1)) in
  Array.init ops (fun _ ->
      (* Earliest next arrival; ties broken by origin id, so the merged
         sequence is a pure function of (process, seed, n) — independent
         of any engine or shard state. *)
      let best = ref 0 in
      for i = 1 to n - 1 do
        if sources.(i).next_at < sources.(!best).next_at then best := i
      done;
      let src = sources.(!best) in
      let at = src.next_at in
      advance src;
      (at, !best + 1))
