(* Deterministic wrappers around Hashtbl iteration: snapshot, sort by
   key, then visit. See det.mli for the invariant they protect. *)

let sorted_bindings ~compare tbl =
  let bindings =
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    [@dlint.allow
      "D2: collection point for the sorted wrappers themselves; the list \
       is canonicalised by the sort on the next line"])
  in
  (* Consing reversed Hashtbl.fold's visit order; undo it so the stable
     sort keeps the most recent binding of a duplicated key first. *)
  List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) (List.rev bindings)

let sorted_iter ~compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~compare tbl)

let sorted_fold ~compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~compare tbl)
