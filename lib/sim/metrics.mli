(** Per-processor message-load accounting.

    Section 3 of the paper defines the message load [m_p] of processor [p]
    as the number of messages [p] sends or receives over an operation
    sequence, and the bottleneck processor as one maximising [m_p]. This
    module is the ground truth for every experiment: {!Network} calls
    {!on_send} and {!on_recv} for each message, attributed to *processor
    identifiers* (not protocol roles), exactly as the paper counts.

    The table auto-grows: protocols that hire replacement processors beyond
    the initial [n] (see the discussion of replacement supply in DESIGN.md)
    are still accounted for, and [overflow_processors] reports how many such
    hires occurred. *)

type t

val create : n:int -> t
(** Accounting table for processors [1 .. n] (auto-growing above [n]). *)

val n : t -> int
(** The declared number of processors. *)

val on_send : t -> int -> unit

val on_recv : t -> int -> unit

val on_drop : t -> unit
(** Charge one lost message (random drop, partition cut, delivery to or
    send from a crashed processor). Fault accounting is global, not
    per-processor: a dropped message has no receive to attribute. *)

val on_duplicate : t -> unit
(** Charge one spurious extra delivery injected by the fault layer. *)

val on_crash : t -> unit
(** Record one processor crash (a processor crashes at most once per life:
    a second crash needs an intervening {!on_recover}). *)

val on_recover : t -> unit
(** Record one crashed processor rejoining ([recover:P@T] firing). *)

val on_emergency_retirement : t -> unit
(** Record one crash-triggered role reassignment: a failure-aware protocol
    retired a dead (or deposed) worker's role to a fresh processor outside
    the normal age-triggered retirement path. Charged by the protocol, not
    the network. *)

val dropped : t -> int
(** Messages the fault layer discarded (never delivered). Their sends are
    still charged to the sender — the message left the processor. *)

val duplicated : t -> int
(** Extra copies the fault layer injected. Each copy's receive is charged
    to the destination on delivery. *)

val crashes : t -> int
(** Crash events so far (a recover-then-re-crash counts twice). *)

val recoveries : t -> int
(** Crashed processors revived so far. *)

val emergency_retirements : t -> int
(** Crash-triggered role reassignments recorded by the protocol. *)

val on_byzantine : t -> unit
(** Record one processor turning Byzantine ([byz:P@T] firing). *)

val on_corruption : t -> unit
(** Charge one payload rewritten by a Byzantine sender's [byzval] rule. *)

val byzantine : t -> int
(** Processors turned Byzantine so far. *)

val corruptions : t -> int
(** Payloads rewritten by Byzantine senders so far. *)

val sent : t -> int -> int
(** Messages sent by a processor so far. *)

val received : t -> int -> int

val load : t -> int -> int
(** [m_p = sent + received]. *)

val total_messages : t -> int
(** Total messages exchanged (each message counted once). *)

val total_load : t -> int
(** [sum_p m_p = 2 * total_messages]. *)

val average_load : t -> float
(** [total_load / n] — the quantity [2L] guaranteeing a bottleneck
    processor of load at least itself. *)

val bottleneck : t -> int * int
(** [(p, m_p)] for a processor maximising the load (smallest id wins
    ties). [(0, 0)] when no message has flowed. *)

val loads : t -> (int * int) list
(** All [(p, m_p)] with [m_p > 0], ascending processor id. *)

val load_array : t -> int array
(** Dense array of loads for processors [1 .. n] (index 0 unused);
    processors above [n] are *not* included — use {!loads} for those. *)

val overflow_processors : t -> int
(** Number of processors with id > n that exchanged at least one message. *)

val checksum : t -> int
(** Deterministic fingerprint (FNV-1a) of the full per-processor
    (sent, received) vector, including overflow hires. Two runs have equal
    checksums iff their complete load vectors are identical — the compact
    golden value the determinism regression tests pin. The fault counters
    ({!dropped}, {!duplicated}, {!crashes}) are mixed in only when one of
    them is non-zero, so fault-free runs keep their historical values; the
    recovery-era counters ({!recoveries}, {!emergency_retirements}) get the
    same treatment in their own guarded block, preserving crash-only
    checksums too, as do the Byzantine counters ({!byzantine},
    {!corruptions}). *)

val reset : t -> unit

val copy : t -> t
(** Independent deep copy of the current counts. *)

val merge_into : dst:t -> t -> unit
(** Add all counts of the source into [dst] (for aggregating repetitions). *)

val absorb_load : t -> p:int -> sent:int -> recv:int -> unit
(** Bulk equivalent of [sent] {!on_send} plus [recv] {!on_recv} calls for
    one processor — how {!Par} folds its shard-local flat counters into a
    single table after a run. *)

val absorb_faults :
  t -> dropped:int -> duplicated:int -> crashes:int -> recoveries:int -> unit
(** Bulk equivalent of the corresponding [on_*] fault charges. *)

val absorb_byz : t -> byzantine:int -> corruptions:int -> unit
(** Bulk equivalent of the corresponding Byzantine [on_*] charges. *)

val pp_summary : Format.formatter -> t -> unit
