type t = { n : int; rows : int list list; widths : int array }

let name = "crumbling-wall"

let describe = "Peleg-Wool crumbling wall (full row + representative below)"

(* Default shape: triangle widths 2, 3, 4, ... (avoiding a width-1 top row,
   which would be a universal hot spot). *)
let triangle_widths n =
  let rec go acc total w =
    if total >= n then List.rev acc
    else
      let w = min w (n - total) in
      go (w :: acc) (total + w) (w + 1)
  in
  if n <= 1 then [ 1 ] else go [] 0 2

let supported_n n = max 1 n

let build widths =
  List.iter
    (fun w -> if w < 1 then invalid_arg "Crumbling_wall: widths must be >= 1")
    widths;
  let _, rows_rev =
    List.fold_left
      (fun (next, acc) w ->
        (next + w, List.init w (fun i -> next + i) :: acc))
      (1, []) widths
  in
  let rows = List.rev rows_rev in
  let n = List.fold_left ( + ) 0 widths in
  { n; rows; widths = Array.of_list widths }

let create_rows ~widths = build widths

let create ~n =
  if n < 1 then invalid_arg "Crumbling_wall.create: n must be >= 1";
  build (triangle_widths n)

let n t = t.n

let rows t = t.rows

(* Quorum for a slot: pick the full row round-robin among rows that have
   rows below-or-equal... every row works: full row i plus one element of
   each row j > i, the representative rotating with the slot. *)
let quorum t ~slot =
  if slot < 0 then invalid_arg "Crumbling_wall.quorum: slot must be >= 0";
  let nrows = List.length t.rows in
  let full = slot mod nrows in
  let rep_seed = slot / nrows in
  let members =
    List.concat
      (List.mapi
         (fun i row ->
           if i = full then row
           else if i > full then
             [ List.nth row (rep_seed mod List.length row) ]
           else [])
         t.rows)
  in
  List.sort_uniq Int.compare members

let distinct_quorums t =
  let nrows = List.length t.rows in
  let max_width = Array.fold_left max 1 t.widths in
  nrows * max_width

let quorum_size t =
  let nrows = List.length t.rows in
  let sizes =
    List.mapi (fun i row -> List.length row + (nrows - i - 1)) t.rows
  in
  List.fold_left max 1 sizes
