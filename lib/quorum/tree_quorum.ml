type t = { n : int; levels : int }

let name = "tree"

let describe = "Agrawal-El Abbadi tree quorums (root-to-leaf paths)"

(* Universe sizes are 2^h - 1 (complete binary trees). *)
let supported_n n =
  let n = max 1 n in
  let rec grow size = if size >= n then size else grow ((2 * size) + 1) in
  grow 1

let create ~n =
  if supported_n n <> n then
    invalid_arg "Tree_quorum.create: n must be 2^h - 1 (use supported_n)";
  let rec height size acc = if size <= 0 then acc else height (size / 2) (acc + 1) in
  { n; levels = height n 0 }

let n t = t.n

let levels t = t.levels

(* Heap layout: element e (1-based) has children 2e and 2e+1; leaves are
   elements (n+1)/2 .. n. *)
let num_leaves t = (t.n + 1) / 2

let path_quorum t ~leaf =
  if leaf < 0 || leaf >= num_leaves t then
    invalid_arg "Tree_quorum.path_quorum: bad leaf";
  let rec climb acc e = if e = 0 then acc else climb (e :: acc) (e / 2) in
  climb [] (num_leaves t + leaf)

let quorum t ~slot =
  if slot < 0 then invalid_arg "Tree_quorum.quorum: slot must be >= 0";
  path_quorum t ~leaf:(slot mod num_leaves t)

let distinct_quorums t = num_leaves t

let quorum_size t = t.levels

let recovery_quorum t ~failed =
  (* quorum(e): if e alive then {e} + quorum(child) for some child, else
     quorum(left) + quorum(right); leaves: {e} if alive else None. *)
  let rec build e =
    let is_leaf = 2 * e > t.n in
    if failed e then
      if is_leaf then None
      else
        (* Replace the failed node by quorums of both children. *)
        match (build (2 * e), build ((2 * e) + 1)) with
        | Some l, Some r -> Some (l @ r)
        | _ -> None
    else if is_leaf then Some [ e ]
    else
      (* Prefer the left child's quorum, fall back to the right. *)
      match build (2 * e) with
      | Some q -> Some (e :: q)
      | None -> (
          match build ((2 * e) + 1) with
          | Some q -> Some (e :: q)
          | None -> None)
  in
  Option.map (List.sort_uniq Int.compare) (build 1)
