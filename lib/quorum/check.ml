module Int_set = Set.Make (Int)

let quorums (module Q : Quorum_intf.S) ~n ~slots =
  let n = Q.supported_n n in
  let q = Q.create ~n in
  (n, List.init slots (fun slot -> Q.quorum q ~slot))

let well_formed (module Q : Quorum_intf.S) ~n ~slots =
  let n, qs = quorums (module Q) ~n ~slots in
  List.for_all
    (fun members ->
      members <> []
      && List.sort_uniq Int.compare members = members
      && List.for_all (fun e -> e >= 1 && e <= n) members)
    qs

let first_violation (module Q : Quorum_intf.S) ~n ~slots =
  let _, qs = quorums (module Q) ~n ~slots in
  let sets = Array.of_list (List.map Int_set.of_list qs) in
  let violation = ref None in
  (try
     for i = 0 to Array.length sets - 1 do
       for j = i + 1 to Array.length sets - 1 do
         if Int_set.is_empty (Int_set.inter sets.(i) sets.(j)) then begin
           violation := Some (i, j);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !violation

let pairwise_intersecting q ~n ~slots = first_violation q ~n ~slots = None
