type t = { n : int; side : int }

let name = "grid"

let describe = "Maekawa row+column quorums on a sqrt(n) x sqrt(n) grid"

let supported_n n =
  let n = max 1 n in
  let r = int_of_float (ceil (sqrt (float_of_int n) -. 1e-9)) in
  r * r

let create ~n =
  let r = int_of_float (ceil (sqrt (float_of_int n) -. 1e-9)) in
  if r * r <> n then
    invalid_arg "Grid.create: n must be a perfect square (use supported_n)";
  { n; side = r }

let n t = t.n

let side t = t.side

(* Element ids are 1-based; element e sits at row (e-1)/side, column
   (e-1) mod side. *)
let quorum t ~slot =
  if slot < 0 then invalid_arg "Grid.quorum: slot must be >= 0";
  let e = slot mod t.n in
  let row = e / t.side and col = e mod t.side in
  let row_members = List.init t.side (fun c -> (row * t.side) + c + 1) in
  let col_members = List.init t.side (fun r -> (r * t.side) + col + 1) in
  List.sort_uniq Int.compare (row_members @ col_members)

let distinct_quorums t = t.n

let quorum_size t = (2 * t.side) - 1
