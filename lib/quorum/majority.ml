type t = { n : int; size : int }

let name = "majority"

let describe = "rotating majority blocks of size floor(n/2)+1"

let supported_n n = max 1 n

let create ~n =
  if n < 1 then invalid_arg "Majority.create: n must be >= 1";
  { n; size = (n / 2) + 1 }

let n t = t.n

let quorum t ~slot =
  if slot < 0 then invalid_arg "Majority.quorum: slot must be >= 0";
  let start = slot mod t.n in
  List.sort Int.compare
    (List.init t.size (fun i -> ((start + i) mod t.n) + 1))

let distinct_quorums t = t.n

let quorum_size t = t.size
