(** Durable WAL-backed counter on a simulated object store.

    Registry name ["durable"]. Origins [1 .. n] send increments to the
    single writer (processor 1, which doubles as origin 1); the writer
    assigns the value, makes it durable with a compare-and-swap append
    into the active WAL chunk on the {!Sim.Store} hosted at processor
    [n+1], and only then acks. Chunks roll through a CAS-guarded
    manifest, snapshots materialize count + dedup table, GC deletes
    covered objects — layout and recovery procedure in
    docs/DURABILITY.md, object codecs and the shared replay fold in
    {!Wal}.

    Unlike every other counter in the registry, [recover:P@T] revival of
    the writer is {e not} amnesia: the first delivery reaching the
    revived writer triggers WAL recovery (fence the manifest epoch,
    re-read manifest + snapshot + live chunks, {!Wal.replay}) and the
    counter resumes its exact pre-crash count. Origin retries are
    deduplicated by a per-origin [(op, value)] table, so an increment
    whose first append survived a lost ack is re-acked, never
    re-applied.

    Failure-awareness mirrors {!Retire_ft}: with {!Sim.Fault.none} no
    timers are armed and no Rng draws happen — runs are bit-identical
    across shard counts. The four ported oswald specs are checked at
    runtime by {!Wal.Monitor}; a violation surfaces as a
    ["spec: ..."]-prefixed {!Counter.Counter_intf.Stall}, which the
    model checker maps to its durability properties. *)

include Counter.Counter_intf.S

val create_raw :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?cas:bool ->
  ?chunk_records:int ->
  ?snap_every:int ->
  n:int ->
  unit ->
  t
(** Full-control constructor. [~cas:false] turns every conditional
    write into a blind put — the ["durable-no-cas"] negative control
    whose lost-update counterexample test/data pins. [chunk_records]
    (default 8) bounds records per WAL chunk before rolling;
    [snap_every] (default 16) is the count delta that triggers a
    snapshot. *)

val replays : t -> int
(** Completed WAL recoveries (writer revivals that re-read the store). *)

val live_count : t -> int
(** The writer's in-memory count — volatile state, for tests comparing
    it against the durable {!value}. *)

val store : t -> Sim.Store.t
(** The backing store, for {!Wal.audit} and direct inspection. *)

val spec_violation : t -> string option
(** First oswald-spec violation the monitor detected, if any. *)
