(* Phase-king synchronous counting (Berman–Garay–Perry style): the counter
   value is replicated at every processor, and each inc runs a multivalued
   Byzantine agreement over the current value in f + 1 phases of three
   all-to-all rounds each, tolerating f = (n - 1) / 3 corrupted processors.
   Byzantine behaviour comes from the fault layer ([byz]/[byzval]/[byzeq]
   clauses): a turned processor keeps running this (honest) code, but every
   integer payload it sends is rewritten by the network — so the adversary
   here is exactly the plan, and runs stay deterministic.

   Per phase p (king = processor p), each replica i with estimate est_i:
   - round 1: broadcast est_i; on all n votes, maj1/mult1 = most frequent
     value and its multiplicity (ties to the smallest value);
   - round 2: broadcast (maj1 if mult1 >= n - f, else BOT); on all n votes,
     maj2/mult2 = most frequent non-BOT value and its count;
   - round 3: the king broadcasts its maj2 (its own estimate when every
     vote it saw was BOT); each replica keeps maj2 if mult2 >= n - f,
     else adopts the king's value.

   The guard is what makes it safe for n > 3f: round-1 keepers agree
   pairwise (two disjoint correct cohorts of n - 2f exceed n - f correct
   processors), so all correct non-BOT round-2 votes carry one value w,
   and if any correct replica passes the round-3 guard then every correct
   replica — the king included — has maj2 = w (w holds >= n - 2f > f
   votes everywhere). An honest king therefore never splits the keepers,
   and f + 1 kings guarantee an honest one. [create_with ~guard:false]
   drops the mult2 test — the [sync-no-threshold] negative control, which
   an equivocating last king splits deterministically.

   Rounds advance on full reception (all n votes): the Byzantine model
   corrupts payloads but never silences a sender, so waiting for everyone
   is sound — and a crash mid-op simply quiesces short, surfacing as a
   typed Stall, never a wrong value. *)

type payload =
  | Start
  | Vote1 of { phase : int; v : int }
  | Vote2 of { phase : int; v : int option }
  | King of { phase : int; v : int }
  | Reply of { v : int }

let label = function
  | Start -> "start"
  | Vote1 _ -> "v1"
  | Vote2 _ -> "v2"
  | King _ -> "king"
  | Reply _ -> "val"

(* The network's Byzantine rewrite hook: delegate every integer payload
   field to the plan's rule. A value the rule maps to itself keeps the
   payload physically unchanged, so the network does not charge a
   corruption for it (Start carries nothing corruptible at all). A BOT
   round-2 vote is corrupted as if it were 0 — the adversary never
   abstains. *)
let corrupt ~rule ~equivocate ~src:_ ~dst payload =
  let rw v mk =
    let v' = Sim.Fault.apply_rule ~rule ~equivocate ~dst v in
    if v' = v then payload else mk v'
  in
  match payload with
  | Start -> payload
  | Vote1 { phase; v } -> rw v (fun v -> Vote1 { phase; v })
  | Vote2 { phase; v } ->
      let v0 = match v with Some v -> v | None -> 0 in
      let v' = Sim.Fault.apply_rule ~rule ~equivocate ~dst v0 in
      if v = Some v' then payload else Vote2 { phase; v = Some v' }
  | King { phase; v } -> rw v (fun v -> King { phase; v })
  | Reply { v } -> rw v (fun v -> Reply { v })

(* Per-replica state of the agreement instance one inc runs. Buffers are
   indexed [phase][sender] so votes arriving ahead of this replica's own
   round (full-reception pacing keeps skew small but not zero) are simply
   stored until the state machine catches up. *)
type rstate = {
  mutable est : int;
  mutable phase : int;  (* 1 .. phases; phases + 1 once decided *)
  mutable round : int;  (* 1 | 2 | 3 *)
  mutable maj2 : int;  (* current phase's round-2 majority ... *)
  mutable mult2 : int;  (* ... and its multiplicity (0 = all BOT) *)
  v1 : int array array;
  v1_seen : bool array array;
  v1_cnt : int array;
  v2 : int option array array;
  v2_seen : bool array array;
  v2_cnt : int array;
  king_v : int option array;
  mutable decided : int option;
}

type t = {
  net : payload Sim.Network.t;
  n : int;
  f : int;
  phases : int;
  guard : bool;
  count : int array;  (* replica-local counter value, index 1 .. n *)
  mutable reps : rstate array;  (* index 1 .. n, rebuilt per operation *)
  mutable origin : int;
  mutable replies : int option array;
  mutable completed : int;
  mutable traces_rev : Sim.Trace.t list;
}

let name = "sync-count"

let describe =
  "phase-king synchronous counting: replicated value, f < n/3 Byzantine \
   agreement per inc"

let resilience_of_n n = (n - 1) / 3

let supported_n n = max 4 n

let fresh_rstate t est =
  let ph = t.phases + 1 in
  {
    est;
    phase = 1;
    round = 1;
    maj2 = 0;
    mult2 = 0;
    v1 = Array.make_matrix ph (t.n + 1) 0;
    v1_seen = Array.make_matrix ph (t.n + 1) false;
    v1_cnt = Array.make ph 0;
    v2 = Array.make_matrix ph (t.n + 1) None;
    v2_seen = Array.make_matrix ph (t.n + 1) false;
    v2_cnt = Array.make ph 0;
    king_v = Array.make ph None;
    decided = None;
  }

(* Most frequent value with ties broken to the smallest value — any
   deterministic tie-break works for the agreement argument, this one is
   also schedule-independent. O(n^2), n is small. *)
let most_frequent vals =
  let best_v = ref 0 and best_c = ref 0 in
  List.iter
    (fun v ->
      let c = List.length (List.filter (Int.equal v) vals) in
      if c > !best_c || (c = !best_c && v < !best_v) then begin
        best_v := v;
        best_c := c
      end)
    vals;
  (!best_v, !best_c)

let bcast t ~self pay =
  for dst = 1 to t.n do
    if dst <> self then Sim.Network.send t.net ~src:self ~dst pay
  done

let record_v1 r ~sender ~phase v =
  if phase >= 1 && phase <= Array.length r.v1_cnt - 1 && not r.v1_seen.(phase).(sender)
  then begin
    r.v1_seen.(phase).(sender) <- true;
    r.v1.(phase).(sender) <- v;
    r.v1_cnt.(phase) <- r.v1_cnt.(phase) + 1
  end

let record_v2 r ~sender ~phase v =
  if phase >= 1 && phase <= Array.length r.v2_cnt - 1 && not r.v2_seen.(phase).(sender)
  then begin
    r.v2_seen.(phase).(sender) <- true;
    r.v2.(phase).(sender) <- v;
    r.v2_cnt.(phase) <- r.v2_cnt.(phase) + 1
  end

let decide t ~self r =
  r.decided <- Some r.est;
  t.count.(self) <- r.est + 1;
  if self = t.origin then t.replies.(self) <- Some r.est
  else Sim.Network.send t.net ~src:self ~dst:t.origin (Reply { v = r.est })

let rec advance t ~self r =
  if r.phase <= t.phases then begin
    let p = r.phase in
    match r.round with
    | 1 ->
        if r.v1_cnt.(p) = t.n then begin
          let vals = ref [] in
          for s = t.n downto 1 do
            vals := r.v1.(p).(s) :: !vals
          done;
          let maj1, mult1 = most_frequent !vals in
          let d = if mult1 >= t.n - t.f then Some maj1 else None in
          record_v2 r ~sender:self ~phase:p d;
          bcast t ~self (Vote2 { phase = p; v = d });
          r.round <- 2;
          advance t ~self r
        end
    | 2 ->
        if r.v2_cnt.(p) = t.n then begin
          let vals = ref [] in
          for s = t.n downto 1 do
            match r.v2.(p).(s) with
            | Some v -> vals := v :: !vals
            | None -> ()
          done;
          let maj2, mult2 = most_frequent !vals in
          r.maj2 <- maj2;
          r.mult2 <- mult2;
          if self = p then begin
            let kv = if mult2 > 0 then maj2 else r.est in
            if r.king_v.(p) = None then r.king_v.(p) <- Some kv;
            bcast t ~self (King { phase = p; v = kv })
          end;
          r.round <- 3;
          advance t ~self r
        end
    | _ -> (
        match r.king_v.(p) with
        | None -> ()
        | Some kv ->
            r.est <-
              (if t.guard && r.mult2 >= t.n - t.f then r.maj2 else kv);
            r.phase <- p + 1;
            r.round <- 1;
            if r.phase > t.phases then decide t ~self r
            else begin
              record_v1 r ~sender:self ~phase:r.phase r.est;
              bcast t ~self (Vote1 { phase = r.phase; v = r.est });
              advance t ~self r
            end)
  end

let start_replica t ~self =
  let r = t.reps.(self) in
  record_v1 r ~sender:self ~phase:1 r.est;
  bcast t ~self (Vote1 { phase = 1; v = r.est });
  advance t ~self r

let handle t ~self ~src = function
  | Start -> start_replica t ~self
  | Vote1 { phase; v } ->
      let r = t.reps.(self) in
      record_v1 r ~sender:src ~phase v;
      advance t ~self r
  | Vote2 { phase; v } ->
      let r = t.reps.(self) in
      record_v2 r ~sender:src ~phase v;
      advance t ~self r
  | King { phase; v } ->
      let r = t.reps.(self) in
      (* Only the phase's king may settle the tiebreaker; duplicates are
         first-delivery-wins. *)
      if
        src = phase && phase >= 1
        && phase <= Array.length r.king_v - 1
        && r.king_v.(phase) = None
      then begin
        r.king_v.(phase) <- Some v;
        advance t ~self r
      end
  | Reply { v } ->
      if self = t.origin && t.replies.(src) = None then
        t.replies.(src) <- Some v

let create_with ?(seed = 42) ?delay ?faults ?(guard = true) ~n () =
  if n < 4 then invalid_arg "Sync_counter.create: n must be >= 4 (f >= 1)";
  let net = Sim.Network.create ~seed ?delay ?faults ~corrupt ~label ~n () in
  let f = resilience_of_n n in
  let t =
    {
      net;
      n;
      f;
      phases = f + 1;
      guard;
      count = Array.make (n + 1) 0;
      reps = [||];
      origin = 0;
      replies = [||];
      completed = 0;
      traces_rev = [];
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle t ~self ~src payload);
  t

let create ?seed ?delay ?faults ~n () = create_with ?seed ?delay ?faults ~n ()

let n t = t.n

let resilience t = t.f

let phases t = t.phases

let value t = t.completed

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let crashed t p = Sim.Network.crashed t.net p

let correct t p =
  not (Sim.Network.crashed t.net p || Sim.Network.byzantine t.net p)

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Sync_counter.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.origin <- origin;
  t.replies <- Array.make (t.n + 1) None;
  t.reps <-
    Array.init (t.n + 1) (fun i ->
        fresh_rstate t (if i = 0 then 0 else t.count.(i)));
  start_replica t ~self:origin;
  for dst = 1 to t.n do
    if dst <> origin then Sim.Network.send t.net ~src:origin ~dst Start
  done;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  (* Oracle checks over the replicas the adversary does not own: first
     agreement (the spec this counter exists for), then completeness. *)
  let disagreement = ref None and incomplete = ref None in
  let witness = ref None in
  for p = 1 to t.n do
    if correct t p then
      match t.reps.(p).decided with
      | None -> if !incomplete = None then incomplete := Some p
      | Some v -> (
          match !witness with
          | None -> witness := Some (p, v)
          | Some (q, w) ->
              if v <> w && !disagreement = None then
                disagreement := Some (q, w, p, v))
  done;
  (match !disagreement with
  | Some (q, w, p, v) ->
      raise
        (Counter.Counter_intf.Stall
           (Printf.sprintf
              "spec: agreement violated: replica %d decided %d but replica \
               %d decided %d"
              q w p v))
  | None -> ());
  (match !incomplete with
  | Some p ->
      raise
        (Counter.Counter_intf.Stall
           (Printf.sprintf
              "sync round incomplete: replica %d never decided (crashed \
               participant?)"
              p))
  | None -> ());
  (* The operation's value: majority of the replies the origin collected
     (>= n - f of them agree once agreement holds, so corrupted replies
     cannot outvote them). *)
  let replies = ref [] in
  for p = t.n downto 1 do
    match t.replies.(p) with
    | Some v -> replies := v :: !replies
    | None -> ()
  done;
  match !replies with
  | [] ->
      raise
        (Counter.Counter_intf.Stall "sync-count: origin collected no reply")
  | vs ->
      let v, _ = most_frequent vs in
      t.completed <- t.completed + 1;
      v

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let t' =
    {
      t with
      net;
      count = Array.copy t.count;
      replies = Array.copy t.replies;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle t' ~self ~src payload);
  t'
