(** WAL object layout, replay, and the oswald spec monitor.

    The durable counter ({!Durable_counter}) persists its state in a
    {!Sim.Store} as three kinds of objects — a [manifest], numbered
    [chunk.*] WAL segments, and [snap.*] snapshots — with the layout and
    recovery procedure described in docs/DURABILITY.md. This module owns
    the deterministic ASCII codecs, the pure {!replay} fold shared by
    live recovery and the offline {!audit} oracle, and {!Monitor}, the
    runtime checker for the ported oswald safety specs. *)

type record = { lsn : int; origin : int; op : int }
(** One logged increment: [lsn] is the counter value the operation
    returned (LSNs {e are} values), [origin]/[op] identify the request
    for idempotent replay — an origin's [op] sequence numbers are issued
    in order, so "last op per origin" suffices to dedup retries. *)

type chunk = { base : int; recs : record list }
(** WAL segment holding the consecutive LSNs
    [base .. base + length recs - 1]. *)

type manifest = { epoch : int; snap : int; low : int; active : int }
(** Root metadata: [epoch] fences superseded writer incarnations (every
    manifest CAS from a pre-crash incarnation fails once recovery bumps
    it), [snap] is the LSN count covered by the latest snapshot (0 =
    none), [low .. active] the live chunk index range. *)

type snapshot = { covered : int; table : (int * (int * int)) list }
(** Materialized state at LSN [covered]: count plus the per-origin
    [(op, value)] dedup table, ascending by origin. *)

val manifest_key : string

val chunk_prefix : string

val snap_prefix : string

val chunk_key : int -> string
(** [chunk_key k] = ["chunk.%06d"] — zero-padded so {!Sim.Store.List}'s
    lexicographic order is numeric order. *)

val snap_key : int -> string

val initial_manifest : manifest
(** [{epoch = 0; snap = 0; low = 0; active = 0}] — what a fresh writer
    CAS-creates when the store has no manifest yet. *)

val record_equal : record -> record -> bool

val encode_chunk : chunk -> string

val encode_manifest : manifest -> string

val encode_snapshot : snapshot -> string

val decode_chunk : string -> (chunk, string) result

val decode_manifest : string -> (manifest, string) result

val decode_snapshot : string -> (snapshot, string) result

val chunk_index_of_key : string -> int option
(** Parse ["chunk.%06d"] back to the index; [None] for other keys. *)

val table_set :
  (int * (int * int)) list -> int -> int * int -> (int * (int * int)) list
(** Replace origin's dedup entry. *)

val replay :
  manifest ->
  snapshot option ->
  chunk list ->
  (int * (int * (int * int)) list, string) result
(** Fold a snapshot and the live chunks back into
    [(count, dedup table)]. Checks LSN continuity (a gap or a
    snapshot/manifest mismatch is a typed [Error], not a wrong count);
    records below the snapshot's coverage are skipped, so re-reading an
    overlapping chunk is harmless. This is the one recovery code path:
    the live writer runs it over fetched objects, {!audit} over direct
    store reads. *)

val audit : Sim.Store.t -> (int * (int * (int * int)) list, string) result
(** Offline recovery oracle: read manifest + snapshot + live chunks
    straight out of the store (uncharged) and {!replay} them — what a
    freshly recovered writer {e would} reconstruct. Tests compare this
    against the live counter's value after every chaos plan: equal
    means zero completed increments were lost. *)

(** Runtime checker for the four ported oswald specs (the safety three
    here; liveness — CounterProgress — is an {!Mc.Explore} property).
    Attach to the store with {!Monitor.attach}; every mutation is
    checked synchronously and the first violation sticks, surfacing as
    a ["spec: ..."] stall at the end of the operation that caused it:

    - {b SafetyLsnConsistency} — chunks only ever extend (append-only
      prefix rule) with consecutive LSNs from their base; snapshots are
      immutable; GC deletes only covered objects.
    - {b SafetyManifestMonotonicity} — epoch/snap/low/active never
      regress, [low <= active], the manifest is never deleted.
    - {b SafetyCounterMonotonicity} — ghost check: after recovery the
      reconstructed count must exceed every value already acked to an
      origin ({!Monitor.note_ack} / {!Monitor.note_recovered_count}). *)
module Monitor : sig
  type t

  val create : unit -> t

  val copy : t -> t
  (** Independent copy, for counter clones — branches must not pollute
      each other's ghost state. *)

  val attach : t -> Sim.Store.t -> unit

  val violation : t -> string option
  (** First violation detected, e.g.
      ["lsn-consistency: chunk.000001 rewritten non-append"]. *)

  val note_ack : t -> int -> unit
  (** A counter value was returned to an origin. *)

  val note_recovered_count : t -> int -> unit
  (** Recovery reconstructed this count; must exceed every acked
      value. *)

  val observe :
    t -> key:string -> prev:string option -> next:string option -> unit
  (** The raw {!Sim.Store.monitor} entry point (exposed for tests). *)
end
