type stats = {
  orders : int;
  all_correct : bool;
  all_hotspot : bool;
  all_bound : bool;
  min_bottleneck : int;
  max_bottleneck : int;
  min_messages : int;
  max_messages : int;
}

(* Lazy lexicographic permutations: standard next-permutation on an
   int array, wrapped in a Seq. Unguarded — callers that only take a
   bounded prefix (verify_counter ~limit) may exceed the public cap. *)
let perm_seq n =
  if n < 0 then invalid_arg "Exhaustive.permutations: negative n";
  let next a =
    let len = Array.length a in
    (* Find the longest non-increasing suffix. *)
    let rec pivot i = if i <= 0 then -1 else if a.(i - 1) < a.(i) then i - 1 else pivot (i - 1) in
    let p = pivot (len - 1) in
    if p < 0 then None
    else begin
      let a = Array.copy a in
      (* Rightmost element greater than the pivot. *)
      let rec successor i = if a.(i) > a.(p) then i else successor (i - 1) in
      let s = successor (len - 1) in
      let tmp = a.(p) in
      a.(p) <- a.(s);
      a.(s) <- tmp;
      (* Reverse the suffix. *)
      let lo = ref (p + 1) and hi = ref (len - 1) in
      while !lo < !hi do
        let tmp = a.(!lo) in
        a.(!lo) <- a.(!hi);
        a.(!hi) <- tmp;
        incr lo;
        decr hi
      done;
      Some a
    end
  in
  let rec seq a () =
    Seq.Cons
      ( Array.to_list a,
        match next a with None -> Seq.empty | Some a' -> seq a' )
  in
  if n = 0 then Seq.return []
  else seq (Array.init n (fun i -> i + 1))

(* 10! = 3.6M lists of 10 ints: forcing the whole Seq would allocate
   gigabytes and run for hours. The public entry point refuses outright
   rather than letting a caller discover that the hard way. *)
let max_permutation_n = 9

let permutations n =
  if n > max_permutation_n then
    invalid_arg
      (Printf.sprintf
         "Exhaustive.permutations: n = %d exceeds the cap of %d (n! blows \
          up); use verify_counter ~limit for sampled sweeps"
         n max_permutation_n);
  perm_seq n

let verify_counter ?(seed = 42) ?limit (module C : Counter.Counter_intf.S) ~n =
  let n = C.supported_n n in
  (if n > 9 && limit = None then
     invalid_arg "Exhaustive.verify_counter: n! too large; pass ~limit");
  let k = Lower_bound.k_of_n n in
  let stats =
    ref
      {
        orders = 0;
        all_correct = true;
        all_hotspot = true;
        all_bound = true;
        min_bottleneck = max_int;
        max_bottleneck = 0;
        min_messages = max_int;
        max_messages = 0;
      }
  in
  let check order =
    let counter = C.create ~seed ~n () in
    let correct =
      List.for_all2
        (fun origin expected -> C.inc counter ~origin = expected)
        order
        (List.init n Fun.id)
    in
    let hotspot = Counter.Hotspot.holds (C.traces counter) in
    let metrics = C.metrics counter in
    let _, bottleneck = Sim.Metrics.bottleneck metrics in
    let messages = Sim.Metrics.total_messages metrics in
    let s = !stats in
    stats :=
      {
        orders = s.orders + 1;
        all_correct = s.all_correct && correct;
        all_hotspot = s.all_hotspot && hotspot;
        all_bound = s.all_bound && bottleneck >= k;
        min_bottleneck = min s.min_bottleneck bottleneck;
        max_bottleneck = max s.max_bottleneck bottleneck;
        min_messages = min s.min_messages messages;
        max_messages = max s.max_messages messages;
      }
  in
  let orders = perm_seq n in
  (match limit with
  | None -> Seq.iter check orders
  | Some l -> Seq.iter check (Seq.take l orders));
  !stats

let pp_stats ppf s =
  Format.fprintf ppf
    "orders=%d correct=%b hotspot=%b bound=%b bottleneck=[%d..%d] \
     messages=[%d..%d]"
    s.orders s.all_correct s.all_hotspot s.all_bound s.min_bottleneck
    s.max_bottleneck s.min_messages s.max_messages
