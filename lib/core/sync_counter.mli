(** Phase-king synchronous counting under Byzantine corruption.

    The counter value is replicated at all [n] processors; every [inc]
    runs a multivalued Berman–Garay–Perry agreement over the current
    value — [f + 1] phases of three all-to-all rounds with rotating
    kings — and tolerates [f = (n - 1) / 3] Byzantine processors
    ([n > 3f]). The adversary is the fault layer: [byz]/[byzval]/[byzeq]
    clauses rewrite a turned processor's payloads at the network (this
    module supplies the [?corrupt] hook delegating to
    {!Sim.Fault.apply_rule}), so runs stay bit-deterministic and
    [Fault.none] behaviour is identical to a crash-only counter.

    This is the repo's price tag for Byzantine resilience: per operation
    every processor sends and receives Θ((f + 1)·n) messages — an
    {e inherently flat} load profile (docs/FAULTS.md), the far end of the
    bottleneck spectrum from the paper's retirement tree. Kept out of
    {!Baselines.Registry.all} for exactly that cost; resolve it by name.

    After each operation an oracle checks the replicas the plan does not
    own (neither crashed nor Byzantine): disagreement raises
    {!Counter.Counter_intf.Stall} with a ["spec: agreement violated"]
    reason — the model checker's [agreement-violated] property — and an
    undecided correct replica (a crashed participant starves the
    full-reception rounds) raises an ordinary non-spec stall. *)

type t

val create_with :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?guard:bool ->
  n:int ->
  unit ->
  t
(** [create] with the round-3 threshold guard exposed. [guard] (default
    true) is the [mult2 >= n - f] test deciding whether a replica keeps
    its round-2 majority or adopts the king's tiebreaker; [~guard:false]
    adopts the king unconditionally — the deliberately broken
    [sync-no-threshold] baseline, split by any equivocating last king. *)

val resilience : t -> int
(** [f = (n - 1) / 3], the number of Byzantine processors every
    operation provably survives (with the guard on). *)

val phases : t -> int
(** [f + 1] — phases per operation, one rotating king each. *)

val correct : t -> int -> bool
(** Whether a processor is currently neither crashed nor Byzantine —
    the population the agreement oracle quantifies over. *)

include Counter.Counter_intf.S with type t := t
(** [create ~n] requires [n >= 4] (so [f >= 1]; use [supported_n]).
    [inc] raises {!Counter.Counter_intf.Stall} on an agreement violation
    (["spec: agreement violated"], impossible with the guard at
    [b <= f] turned processors), on a starved round (a crashed
    participant), or when no reply reaches the origin. *)
