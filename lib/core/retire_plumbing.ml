(* Shared machinery of the retirement-tree counters: configuration, the
   message vocabulary, per-node state, the age/retire/handoff engine and
   the sequential-operation driver. Retire_counter is the paper's exact
   protocol over this state; Retire_ft layers the failure-aware client
   (timeout + audit + emergency retirement) on top of the same record.

   The failure-aware fields are inert whenever [failure_aware] is false:
   every branch that consults them is guarded, so a plumbing-backed
   counter under Fault.none makes exactly the sends — in exactly the
   order — it made before the refactor (the determinism goldens pin
   this). *)

type config = { arity : int; depth : int; retire_threshold : int }

let min_threshold arity = arity + 2

let paper_config ~k =
  if k < 1 then invalid_arg "Retire_counter.paper_config: k must be >= 1";
  { arity = k; depth = k; retire_threshold = max (2 * k) (min_threshold k) }

let config_n cfg = Params.pow cfg.arity (cfg.depth + 1)

let validate_config ~who cfg =
  if cfg.arity < 1 then invalid_arg (who ^ ": arity must be >= 1");
  if cfg.depth < 0 then invalid_arg (who ^ ": depth must be >= 0");
  if cfg.retire_threshold < min_threshold cfg.arity then
    invalid_arg
      (Printf.sprintf
         "%s: retire_threshold must be >= arity+2 = %d (or the retirement \
          cascade need not terminate)"
         who (min_threshold cfg.arity))

(* Protocol messages. Every message is addressed to a processor but tagged
   with the inner node (flat id) it concerns, because one processor can work
   for the root and for one other inner node at the same time. All payloads
   are O(log n) bits, as in the paper. *)
type dest = To_node of int | To_leaf of int

type payload =
  | Inc of { origin : int; node : int }
      (* an inc request travelling up; [node] is the intended handler *)
  | Value of { value : int }  (* the root's answer to the origin leaf *)
  | Handoff of { node : int; piece : piece }
      (* one unit-sized piece of a retiring worker's job description *)
  | New_worker of { about : int; worker : int; dest : dest }
      (* "node [about] is now served by processor [worker]" *)
  | Ping of { node : int; round : int }
      (* failure-aware audit probe: "are you still working for [node]?" *)
  | Pong of { node : int; round : int }
      (* audit reply, addressed straight back to the auditing origin *)

and piece =
  | Parent_id of int
  | Child_id of int * int  (* child slot, processor id *)
  | Counter_value of int  (* root handoff only *)

let label = function
  | Inc _ -> "inc"
  | Value _ -> "val"
  | Handoff _ -> "handoff"
  | New_worker _ -> "new-worker"
  | Ping _ -> "ping"
  | Pong _ -> "pong"

(* Message-length accounting, for the paper's "we are able to keep the
   length of messages as short as O(log n) bits" claim. Two tag bits plus
   the binary size of each field. *)
let bits_needed v =
  let v = max v 1 in
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let payload_bits = function
  | Inc { origin; node } -> 2 + bits_needed origin + bits_needed node
  | Value { value } -> 2 + bits_needed (value + 1)
  | Handoff { node; piece } -> (
      2 + bits_needed node
      +
      match piece with
      | Parent_id p -> bits_needed p
      | Child_id (slot, w) -> bits_needed (slot + 1) + bits_needed w
      | Counter_value v -> bits_needed (v + 1))
  | New_worker { about; worker; dest } -> (
      2 + bits_needed about + bits_needed worker
      + match dest with To_node n -> bits_needed n | To_leaf l -> bits_needed l)
  | Ping { node; round } | Pong { node; round } ->
      2 + bits_needed node + bits_needed round

type node_state = {
  flat : int;
  level : int;
  mutable worker : int;
  mutable age : int;
  mutable retirements : int;
  mutable believed_parent_worker : int;  (* 0 for the root *)
  believed_child_workers : int array;
      (* processor ids; for bottom-level nodes these are the (fixed) leaf
         ids themselves *)
  interval_hi : int;  (* last reserved processor id; root: max_int *)
}

type t = {
  cfg : config;
  tree : Tree.t;
  net : payload Sim.Network.t;
  nodes : node_state array;
  leaf_believed_parent : int array;  (* leaf-1 -> believed worker of parent *)
  failure_aware : bool;
      (* armed by Retire_ft when a fault plan is given; every field below
         the marker is dead state while this is false *)
  emergency_handoff : bool;
      (* false only in the deliberately-broken negative control: emergency
         retirement then reinstalls the role without the job description,
         losing the root's counter value *)
  overflow_pool : int;  (* emergency hire budget (overflow ids only) *)
  mutable value : int;
  mutable completed_rev : (int * int * float) list;
      (* (origin, value, completion time) for the current op/batch *)
  mutable overflow_next : int;  (* next virtual processor id to hire *)
  mutable traces_rev : Sim.Trace.t list;
  mutable total_retirements : int;
  mutable stale_forwards : int;
  mutable open_completed_rev : (int * int * float) list;
      (* (op, value, completion time) of open-loop operations served by
         the serialising client in Retire_counter.launch_at *)
  (* --- failure-aware operation state (Retire_ft) --- *)
  mutable round : int;  (* monotone stamp guarding every armed timer *)
  mutable attempts : int;
  mutable cur_timeout : float;
  mutable cur_origin : int;
  mutable op_served : bool;
      (* the root already answered the operation in flight: retried [Inc]s
         that race the original are ignored, keeping values gap-free *)
  mutable stall_reason : string option;
  mutable audit_pending : (int * int) list;
      (* (node, worker) pairs still owing a Pong for the current audit *)
  mutable emergency_hires : int;
  mutable emergency_nodes_rev : int list;  (* emergency-retired this op *)
  mutable rejoin_pool : int list;  (* recovered processors awaiting rehire *)
  mutable rejoin_seen : int list;
  mutable fresh_hires : int list;
      (* recovered processors re-hired since their crash: their state is
         current again, so audits stop deposing them *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let make_nodes tree =
  let inner = Tree.inner_count tree in
  Array.init inner (fun flat ->
      let level = Tree.level_of tree flat in
      let worker, interval_hi =
        if flat = Tree.root then (Ids.root_initial_worker, max_int)
        else
          let lo, hi =
            Ids.interval tree ~level ~index:(Tree.index_of tree flat)
          in
          (lo, hi)
      in
      let believed_parent_worker =
        match Tree.parent tree flat with
        | None -> 0
        | Some p ->
            if p = Tree.root then Ids.root_initial_worker
            else fst (Ids.interval_of_flat tree p)
      in
      let believed_child_workers =
        if level = Tree.depth tree then
          Array.of_list (Tree.leaf_children tree flat)
        else
          Array.of_list
            (List.map
               (fun c -> fst (Ids.interval_of_flat tree c))
               (Tree.children tree flat))
      in
      {
        flat;
        level;
        worker;
        age = 0;
        retirements = 0;
        believed_parent_worker;
        believed_child_workers;
        interval_hi;
      })

let create_state ?(seed = 42) ?delay ?faults ?(failure_aware = false)
    ?(emergency_handoff = true) ?overflow_pool ~who cfg =
  validate_config ~who cfg;
  let tree = Tree.create ~arity:cfg.arity ~depth:cfg.depth in
  let n = Tree.n tree in
  let net =
    Sim.Network.create ~seed ?delay ?faults ~label ~bits:payload_bits ~n ()
  in
  let nodes = make_nodes tree in
  let leaf_believed_parent =
    Array.init n (fun i ->
        let p = Tree.leaf_parent tree ~leaf:(i + 1) in
        nodes.(p).worker)
  in
  {
    cfg;
    tree;
    net;
    nodes;
    leaf_believed_parent;
    failure_aware;
    emergency_handoff;
    overflow_pool = (match overflow_pool with Some p -> p | None -> 2 * n);
    value = 0;
    completed_rev = [];
    overflow_next = n + 1;
    traces_rev = [];
    total_retirements = 0;
    stale_forwards = 0;
    open_completed_rev = [];
    round = 0;
    attempts = 0;
    cur_timeout = 0.;
    cur_origin = 0;
    op_served = false;
    stall_reason = None;
    audit_pending = [];
    emergency_hires = 0;
    emergency_nodes_rev = [];
    rejoin_pool = [];
    rejoin_seen = [];
    fresh_hires = [];
  }

(* ------------------------------------------------------------------ *)
(* Handoff and announcements, shared by age-triggered retirement (sent
   by the retiring worker) and emergency retirement (sent by the origin
   that detected the crash, reconstructing the description from the
   surviving parent/children state). *)

let send_job_description st nd ~src ~successor =
  (* Arity+1 unit messages: the children ids, plus the parent id
     (non-root) or the counter value (root, which "saves the message
     that would inform the parent"). *)
  Array.iteri
    (fun slot child_worker ->
      Sim.Network.send st.net ~src ~dst:successor
        (Handoff { node = nd.flat; piece = Child_id (slot, child_worker) }))
    nd.believed_child_workers;
  if nd.flat = Tree.root then
    Sim.Network.send st.net ~src ~dst:successor
      (Handoff { node = nd.flat; piece = Counter_value st.value })
  else
    Sim.Network.send st.net ~src ~dst:successor
      (Handoff { node = nd.flat; piece = Parent_id nd.believed_parent_worker })

let send_announcements st nd ~src ~successor =
  (* The parent (non-root) and every child learn the new worker id.
     Bottom-level nodes announce to their leaf children. *)
  (if nd.flat <> Tree.root then
     match Tree.parent st.tree nd.flat with
     | Some p ->
         Sim.Network.send st.net ~src ~dst:nd.believed_parent_worker
           (New_worker { about = nd.flat; worker = successor; dest = To_node p })
     | None -> assert false);
  if nd.level = Tree.depth st.tree then
    List.iter
      (fun leaf ->
        Sim.Network.send st.net ~src ~dst:leaf
          (New_worker { about = nd.flat; worker = successor; dest = To_leaf leaf }))
      (Tree.leaf_children st.tree nd.flat)
  else
    List.iteri
      (fun slot c ->
        Sim.Network.send st.net ~src ~dst:nd.believed_child_workers.(slot)
          (New_worker { about = nd.flat; worker = successor; dest = To_node c }))
      (Tree.children st.tree nd.flat)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let rec handle st ~self ~src payload =
  match payload with
  | Value { value } ->
      st.completed_rev <-
        (self, value, Sim.Network.now st.net) :: st.completed_rev
  | Handoff _ ->
      (* The job description for a fresh worker. State is already current
         (the node record was updated when the retirement was issued); the
         message exists so its cost is charged faithfully. Handoff pieces
         do not age the fresh worker. *)
      ()
  | Ping { node; round } ->
      (* Audit handshake: a live recipient answers immediately. Pings and
         pongs do not age workers — they are the failure detector's
         bookkeeping, not counter traffic (the grow-old bound stays
         about protocol messages). *)
      Sim.Network.send st.net ~src:self ~dst:src (Pong { node; round })
  | Pong _ ->
      (* Only the failure-aware layer sends pings; its handler intercepts
         the pongs before delegating here. *)
      ()
  | Inc { origin; node } ->
      let nd = st.nodes.(node) in
      if nd.worker <> self then begin
        (* We retired while this message was in flight: forward it to the
           current worker (the paper's constant-cost handshake). *)
        st.stale_forwards <- st.stale_forwards + 1;
        Sim.Network.send st.net ~src:self ~dst:nd.worker payload
      end
      else if nd.level = 0 then begin
        (if st.failure_aware && st.op_served then
           (* A retried copy of the operation the root already answered
              (the original was merely slow, not lost): ignore it, so the
              counter hands out each value exactly once. *)
           ()
         else begin
           if st.failure_aware then st.op_served <- true;
           Sim.Network.send st.net ~src:self ~dst:origin
             (Value { value = st.value });
           st.value <- st.value + 1
         end);
        nd.age <- nd.age + 2;
        maybe_retire st nd
      end
      else begin
        let parent =
          match Tree.parent st.tree node with
          | Some p -> p
          | None -> assert false
        in
        Sim.Network.send st.net ~src:self ~dst:nd.believed_parent_worker
          (Inc { origin; node = parent });
        nd.age <- nd.age + 2;
        maybe_retire st nd
      end
  | New_worker { about; worker; dest } -> (
      match dest with
      | To_leaf leaf -> st.leaf_believed_parent.(leaf - 1) <- worker
      | To_node node ->
          let nd = st.nodes.(node) in
          if nd.worker <> self then begin
            st.stale_forwards <- st.stale_forwards + 1;
            Sim.Network.send st.net ~src:self ~dst:nd.worker payload
          end
          else begin
            (if nd.believed_parent_worker <> 0 then
               match Tree.parent st.tree node with
               | Some p when p = about -> nd.believed_parent_worker <- worker
               | _ -> ());
            (if nd.level < Tree.depth st.tree then
               let children = Tree.children st.tree node in
               List.iteri
                 (fun slot c ->
                   if c = about then nd.believed_child_workers.(slot) <- worker)
                 children);
            nd.age <- nd.age + 1;
            maybe_retire st nd
          end)

and maybe_retire st nd =
  if nd.age >= st.cfg.retire_threshold then retire st nd

and retire st nd =
  let old_worker = nd.worker in
  let successor =
    if not st.failure_aware then
      if nd.flat = Tree.root then
        (* The root walks 1, 2, 3, ...; beyond the processor universe it
           hires overflow workers like everyone else. *)
        if old_worker + 1 <= Tree.n st.tree then old_worker + 1
        else begin
          let v = st.overflow_next in
          st.overflow_next <- v + 1;
          v
        end
      else if old_worker + 1 <= nd.interval_hi then old_worker + 1
      else begin
        let v = st.overflow_next in
        st.overflow_next <- v + 1;
        v
      end
    else begin
      (* Failure-aware: the same walk, skipping corpses so a normal
         retirement never installs a dead worker. *)
      let hi = if nd.flat = Tree.root then Tree.n st.tree else nd.interval_hi in
      let rec walk v =
        if v > hi then overflow ()
        else if Sim.Network.crashed st.net v then walk (v + 1)
        else v
      and overflow () =
        let rec first_alive v =
          if Sim.Network.crashed st.net v then first_alive (v + 1) else v
        in
        let v = first_alive st.overflow_next in
        st.overflow_next <- v + 1;
        v
      in
      let s = walk (old_worker + 1) in
      if Sim.Network.recovered st.net s && not (List.mem s st.fresh_hires)
      then st.fresh_hires <- s :: st.fresh_hires;
      s
    end
  in
  nd.worker <- successor;
  nd.age <- 0;
  nd.retirements <- nd.retirements + 1;
  st.total_retirements <- st.total_retirements + 1;
  send_job_description st nd ~src:old_worker ~successor;
  send_announcements st nd ~src:old_worker ~successor

(* ------------------------------------------------------------------ *)
(* Sequential-operation driver                                         *)

let n t = Tree.n t.tree

let check_origin ~who t origin =
  if origin < 1 || origin > n t then
    invalid_arg (who ^ ": origin out of range")

let launch t ~origin =
  let parent = Tree.leaf_parent t.tree ~leaf:origin in
  Sim.Network.send t.net ~src:origin
    ~dst:t.leaf_believed_parent.(origin - 1)
    (Inc { origin; node = parent })

let believed_consistent t =
  let ok = ref true in
  Array.iter
    (fun nd ->
      (match Tree.parent t.tree nd.flat with
      | None -> ()
      | Some p ->
          if nd.believed_parent_worker <> t.nodes.(p).worker then ok := false);
      if nd.level < Tree.depth t.tree then
        List.iteri
          (fun slot c ->
            if nd.believed_child_workers.(slot) <> t.nodes.(c).worker then
              ok := false)
          (Tree.children t.tree nd.flat))
    t.nodes;
  Array.iteri
    (fun i believed ->
      let p = Tree.leaf_parent t.tree ~leaf:(i + 1) in
      if believed <> t.nodes.(p).worker then ok := false)
    t.leaf_believed_parent;
  !ok

let retirements_by_level t =
  let acc = Array.make (Tree.depth t.tree + 1) 0 in
  Array.iter (fun nd -> acc.(nd.level) <- acc.(nd.level) + nd.retirements) t.nodes;
  acc

let max_retirements_at_level t level =
  Array.fold_left
    (fun best nd -> if nd.level = level then max best nd.retirements else best)
    0 t.nodes

(* Accessors shared verbatim by both counters. *)
let config t = t.cfg
let tree t = t.tree
let value t = t.value
let metrics t = Sim.Network.metrics t.net
let traces t = List.rev t.traces_rev
let node_worker t flat = t.nodes.(flat).worker
let node_age t flat = t.nodes.(flat).age
let retirements_of_node t flat = t.nodes.(flat).retirements
let total_retirements t = t.total_retirements
let stale_forwards t = t.stale_forwards
let max_message_bits t = Sim.Network.max_message_bits t.net
let total_bits t = Sim.Network.total_bits t.net
let crashed t p = Sim.Network.crashed t.net p
let emergency_nodes t = List.rev t.emergency_nodes_rev

let inc ~who t ~origin =
  check_origin ~who t origin;
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  launch t ~origin;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  (* First completion for this origin: under duplication faults the value
     can arrive twice; without faults there is exactly one. *)
  match
    List.find_opt (fun (o, _, _) -> o = origin) (List.rev t.completed_rev)
  with
  | Some (_, value, _) -> value
  | None ->
      raise
        (Counter.Counter_intf.Stall
           (who
          ^ ".inc: no value returned (a worker on the path crashed or a \
             message was lost)"))

let run_batch ~who t ~origins =
  List.iter (check_origin ~who t) origins;
  (match origins with
  | [] -> invalid_arg (who ^ ".run_batch: empty batch")
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  List.iter (fun origin -> launch t ~origin) origins;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  List.rev_map (fun (o, v, _) -> (o, v)) t.completed_rev

let run_batch_timed ~who t ?(stagger = 0.) ~origins () =
  List.iter (check_origin ~who t) origins;
  (match origins with
  | [] -> invalid_arg (who ^ ".run_batch_timed: empty batch")
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  let start = Sim.Network.now t.net in
  let invoked = Hashtbl.create (List.length origins) in
  List.iteri
    (fun i origin ->
      let at = start +. (float_of_int i *. stagger) in
      Hashtbl.replace invoked origin at;
      if Float.equal stagger 0. then launch t ~origin
      else
        Sim.Network.schedule_local t.net
          ~delay:(float_of_int i *. stagger)
          (fun () -> launch t ~origin))
    origins;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  List.rev_map
    (fun (origin, value, completed_at) ->
      {
        Counter.History.origin;
        value;
        invoked_at = Hashtbl.find invoked origin;
        completed_at;
      })
    t.completed_rev

(* Copy of the quiescent state, without a handler: each counter re-installs
   its own over the fresh record. *)
let clone_state t =
  let net = Sim.Network.clone_quiescent t.net in
  {
    t with
    net;
    nodes =
      Array.map
        (fun nd ->
          {
            nd with
            believed_child_workers = Array.copy nd.believed_child_workers;
          })
        t.nodes;
    leaf_believed_parent = Array.copy t.leaf_believed_parent;
  }
