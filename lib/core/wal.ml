(* Write-ahead-log object layout for the durable counter, plus the pure
   replay function shared by live recovery and the offline audit, and
   the runtime monitor that checks the oswald safety specs against the
   store's actual mutation history (see docs/DURABILITY.md).

   Objects (all plain ASCII, deterministic encodings):

     manifest          epoch=E;snap=S;low=L;active=A
     chunk.%06d        base=B;recs=lsn:origin:op,...
     snap.%09d         lsn=S;table=origin:op:value|...

   LSNs are the counter values themselves: record [lsn] is the value the
   increment returned, so "count" and "next LSN" are the same number.
   Chunk K holds the consecutive LSNs [base .. base + |recs| - 1];
   [manifest.snap] is the number of increments covered by the latest
   snapshot (0 = none), [low .. active] the live chunk range. *)

type record = { lsn : int; origin : int; op : int }

type chunk = { base : int; recs : record list }

type manifest = { epoch : int; snap : int; low : int; active : int }

type snapshot = { covered : int; table : (int * (int * int)) list }

let manifest_key = "manifest"

let chunk_prefix = "chunk."

let snap_prefix = "snap."

let chunk_key k = Printf.sprintf "chunk.%06d" k

let snap_key s = Printf.sprintf "snap.%09d" s

let initial_manifest = { epoch = 0; snap = 0; low = 0; active = 0 }

let record_equal a b = a.lsn = b.lsn && a.origin = b.origin && a.op = b.op

(* ------------------------------------------------------------------ *)
(* Codecs *)

let encode_record r = Printf.sprintf "%d:%d:%d" r.lsn r.origin r.op

let encode_chunk c =
  Printf.sprintf "base=%d;recs=%s" c.base
    (String.concat "," (List.map encode_record c.recs))

let encode_manifest m =
  Printf.sprintf "epoch=%d;snap=%d;low=%d;active=%d" m.epoch m.snap m.low
    m.active

let encode_snapshot s =
  Printf.sprintf "lsn=%d;table=%s" s.covered
    (String.concat "|"
       (List.map
          (fun (origin, (op, value)) ->
            Printf.sprintf "%d:%d:%d" origin op value)
          s.table))

let split2 c x =
  match String.index_opt x c with
  | None -> None
  | Some i ->
      Some (String.sub x 0 i, String.sub x (i + 1) (String.length x - i - 1))

(* "name=value" field with the expected name, or Error. *)
let field name x =
  match split2 '=' x with
  | Some (n, v) when String.equal n name -> Ok v
  | Some _ | None -> Error (Printf.sprintf "expected field %s= in %S" name x)

let int_field name x =
  match field name x with
  | Error _ as e -> e
  | Ok v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %s: not an integer: %S" name v))

let ( let* ) = Result.bind

let decode_record x =
  match String.split_on_char ':' x with
  | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some lsn, Some origin, Some op -> Ok { lsn; origin; op }
      | _ -> Error (Printf.sprintf "bad record %S" x))
  | _ -> Error (Printf.sprintf "bad record %S" x)

let decode_chunk x =
  match String.split_on_char ';' x with
  | [ b; r ] ->
      let* base = int_field "base" b in
      let* recs_s = field "recs" r in
      let* recs =
        if String.equal recs_s "" then Ok []
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              let* r = decode_record s in
              Ok (r :: acc))
            (Ok [])
            (String.split_on_char ',' recs_s)
      in
      Ok { base; recs = List.rev recs }
  | _ -> Error (Printf.sprintf "bad chunk %S" x)

let decode_manifest x =
  match String.split_on_char ';' x with
  | [ e; s; l; a ] ->
      let* epoch = int_field "epoch" e in
      let* snap = int_field "snap" s in
      let* low = int_field "low" l in
      let* active = int_field "active" a in
      Ok { epoch; snap; low; active }
  | _ -> Error (Printf.sprintf "bad manifest %S" x)

let decode_snapshot x =
  match String.split_on_char ';' x with
  | [ l; t ] ->
      let* covered = int_field "lsn" l in
      let* table_s = field "table" t in
      let* table =
        if String.equal table_s "" then Ok []
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match String.split_on_char ':' s with
              | [ a; b; c ] -> (
                  match
                    ( int_of_string_opt a,
                      int_of_string_opt b,
                      int_of_string_opt c )
                  with
                  | Some origin, Some op, Some value ->
                      Ok ((origin, (op, value)) :: acc)
                  | _ -> Error (Printf.sprintf "bad table entry %S" s))
              | _ -> Error (Printf.sprintf "bad table entry %S" s))
            (Ok [])
            (String.split_on_char '|' table_s)
      in
      Ok { covered; table = List.rev table }
  | _ -> Error (Printf.sprintf "bad snapshot %S" x)

let chunk_index_of_key k =
  let pl = String.length chunk_prefix in
  if String.length k > pl && String.equal (String.sub k 0 pl) chunk_prefix then
    int_of_string_opt (String.sub k pl (String.length k - pl))
  else None

(* ------------------------------------------------------------------ *)
(* Replay: fold snapshot + live chunks back into (count, dedup table).
   Shared by the counter's live recovery (over fetched objects) and the
   offline [audit] (over direct store reads): one code path, so the
   recovery a crashed writer performs is exactly the oracle tests check
   against. *)

let table_set table origin entry =
  (origin, entry) :: List.filter (fun (o, _) -> o <> origin) table

let replay (m : manifest) (snap : snapshot option) (chunks : chunk list) =
  let* count0, table0 =
    match snap with
    | None ->
        if m.snap = 0 then Ok (0, [])
        else Error "manifest names a snapshot that was not supplied"
    | Some s ->
        if s.covered = m.snap then Ok (s.covered, s.table)
        else Error "snapshot coverage disagrees with manifest"
  in
  let chunks = List.sort (fun a b -> Int.compare a.base b.base) chunks in
  let* count, table =
    List.fold_left
      (fun acc (c : chunk) ->
        let* acc = acc in
        List.fold_left
          (fun acc (r : record) ->
            let* count, table = acc in
            if r.lsn < count then Ok (count, table)
              (* covered by the snapshot (or an overlapping re-read) *)
            else if r.lsn > count then
              Error
                (Printf.sprintf "lsn gap: expected %d, found %d" count r.lsn)
            else Ok (count + 1, table_set table r.origin (r.op, r.lsn)))
          (Ok acc) c.recs)
      (Ok (count0, table0))
      chunks
  in
  Ok (count, List.sort (fun (a, _) (b, _) -> Int.compare a b) table)

let audit store =
  let* m =
    match Sim.Store.find store manifest_key with
    | None -> Ok initial_manifest
    | Some enc -> decode_manifest enc
  in
  let* snap =
    if m.snap = 0 then Ok None
    else
      match Sim.Store.find store (snap_key m.snap) with
      | None -> Error "manifest names a missing snapshot object"
      | Some enc ->
          let* s = decode_snapshot enc in
          Ok (Some s)
  in
  let* chunks =
    List.fold_left
      (fun acc (k, enc) ->
        let* acc = acc in
        match chunk_index_of_key k with
        | None -> Ok acc
        | Some idx ->
            if idx < m.low || idx > m.active then Ok acc
            else
              let* c = decode_chunk enc in
              Ok (c :: acc))
      (Ok [])
      (Sim.Store.bindings store)
  in
  replay m snap chunks

(* ------------------------------------------------------------------ *)
(* Spec monitor: the oswald safety specs checked against every store
   mutation, via {!Sim.Store.set_monitor}. A violation sticks (first one
   wins) and surfaces as a ["spec: ..."] stall at the end of the
   operation that caused it. *)

module Monitor = struct
  type t = {
    mutable violation : string option;
    mutable acked_max : int;
        (* ghost: highest counter value acked to any origin *)
    mutable last_manifest : manifest;
        (* shadow of the manifest as actually stored *)
  }

  let create () =
    { violation = None; acked_max = -1; last_manifest = initial_manifest }

  let copy m = { m with violation = m.violation }

  let violation m = m.violation

  let flag m reason = if m.violation = None then m.violation <- Some reason

  let note_ack m v = if v > m.acked_max then m.acked_max <- v

  let note_recovered_count m count =
    if count <= m.acked_max then
      flag m
        (Printf.sprintf
           "counter-monotonicity: recovered count %d loses acked value %d"
           count m.acked_max)

  let is_prefix p s =
    String.length s >= String.length p
    && String.equal (String.sub s 0 (String.length p)) p

  let check_consecutive m ~key (c : chunk) =
    List.iteri
      (fun i (r : record) ->
        if r.lsn <> c.base + i then
          flag m
            (Printf.sprintf
               "lsn-consistency: %s holds lsn %d at offset %d (base %d)" key
               r.lsn i c.base))
      c.recs

  let check_chunk m ~key ~prev ~next =
    match next with
    | None -> (
        (* GC: deleting a chunk is only safe once a snapshot covers it. *)
        match Option.map decode_chunk prev with
        | Some (Ok c) ->
            if c.base + List.length c.recs > m.last_manifest.snap then
              flag m
                (Printf.sprintf
                   "lsn-consistency: %s deleted while uncovered (snap=%d)" key
                   m.last_manifest.snap)
        | Some (Error e) -> flag m ("lsn-consistency: " ^ e)
        | None -> ())
    | Some next_enc -> (
        match decode_chunk next_enc with
        | Error e -> flag m ("lsn-consistency: " ^ e)
        | Ok c -> (
            check_consecutive m ~key c;
            match Option.map decode_chunk prev with
            | None -> ()
            | Some (Error e) -> flag m ("lsn-consistency: " ^ e)
            | Some (Ok p) ->
                let rec prefix = function
                  | [], _ -> true
                  | _ :: _, [] -> false
                  | a :: ra, b :: rb ->
                      record_equal a b && prefix (ra, rb)
                in
                if c.base <> p.base || not (prefix (p.recs, c.recs)) then
                  flag m
                    (Printf.sprintf
                       "lsn-consistency: %s rewritten non-append (%d->%d \
                        records)"
                       key (List.length p.recs) (List.length c.recs))))

  let check_manifest m ~prev ~next =
    match next with
    | None -> flag m "manifest-monotonicity: manifest deleted"
    | Some next_enc -> (
        match decode_manifest next_enc with
        | Error e -> flag m ("manifest-monotonicity: " ^ e)
        | Ok nm ->
            (match Option.map decode_manifest prev with
            | None -> ()
            | Some (Error e) -> flag m ("manifest-monotonicity: " ^ e)
            | Some (Ok pm) ->
                if
                  nm.epoch < pm.epoch || nm.snap < pm.snap || nm.low < pm.low
                  || nm.active < pm.active
                then
                  flag m
                    (Printf.sprintf
                       "manifest-monotonicity: %s regressed to %s"
                       (encode_manifest pm) (encode_manifest nm)));
            if nm.low > nm.active then
              flag m
                (Printf.sprintf "manifest-monotonicity: low %d > active %d"
                   nm.low nm.active);
            m.last_manifest <- nm)

  let check_snapshot m ~key ~prev ~next =
    match next with
    | None -> (
        (* Deleting an old snapshot is GC; deleting the one the manifest
           still points to loses the covered prefix. *)
        match Option.map decode_snapshot prev with
        | Some (Ok s) ->
            if s.covered >= m.last_manifest.snap && m.last_manifest.snap > 0
            then flag m (Printf.sprintf "lsn-consistency: %s deleted live" key)
        | Some (Error e) -> flag m ("lsn-consistency: " ^ e)
        | None -> ())
    | Some next_enc -> (
        match decode_snapshot next_enc with
        | Error e -> flag m ("lsn-consistency: " ^ e)
        | Ok _ -> (
            (* Snapshot objects are immutable once written. *)
            match prev with
            | Some prev_enc when not (String.equal prev_enc next_enc) ->
                flag m (Printf.sprintf "lsn-consistency: %s rewritten" key)
            | Some _ | None -> ()))

  let observe m ~key ~prev ~next =
    if String.equal key manifest_key then check_manifest m ~prev ~next
    else if is_prefix chunk_prefix key then check_chunk m ~key ~prev ~next
    else if is_prefix snap_prefix key then check_snapshot m ~key ~prev ~next

  let attach m store =
    Sim.Store.set_monitor store (fun ~key ~prev ~next ->
        observe m ~key ~prev ~next)
end
