(** The paper's bottleneck-optimal distributed counter (Section 4).

    The counter is a communication tree ({!Tree}) whose root holds the
    counter value and whose leaves are the [n] processors. An [inc]
    initiated at processor [p] travels from leaf [p] up to the root, which
    replies with the current value and increments it. What makes the
    construction bottleneck-optimal is {b retirement}: every inner node
    tracks its {e age} — the number of messages its current processor sent
    or received since taking the job (+2 for receiving-and-forwarding an
    [inc], +2 at the root for receiving an [inc] and sending the value, +1
    for receiving a colleague's retirement announcement) — and when the age
    reaches the retirement threshold (the paper's [2k]), the processor
    {e retires}: it hands the node to the next processor of the node's
    reserved identifier interval ([id_new = id_old + 1], see {!Ids}),
    sending

    - [arity + 1] unit-sized handoff messages to the successor (the ids of
      its children and of its parent; the root sends the counter value in
      place of the parent id, "saving the message that would inform the
      parent"), and
    - a [New_worker] announcement to its parent and each of its children
      (the root only to its children), so they re-address future messages.

    Announcements age their recipients and can cascade further
    retirements; the paper's Retirement Lemma bounds the cascade (no node
    retires twice within one [inc] once the threshold is at least [2k],
    [k >= 4]). The Bottleneck Theorem then gives every processor O(k)
    load over the full each-processor-once sequence, matching the lower
    bound.

    Faithfulness notes (also in DESIGN.md):
    - The paper keeps every message O(log n) bits; we therefore send the
      handoff as [arity + 1] unit messages, matching its counts.
    - The paper resolves in-flight messages that cross a retirement "by a
      proper handshaking protocol with a constant number of extra
      messages"; we implement the equivalent: a processor receiving a
      message for a node it no longer works for forwards it to the node's
      current worker, paying one extra message ({!stale_forwards} counts
      these — they are rare).
    - Replacement intervals have the paper's exact sizes; if a node
      exhausts its interval (the lemmas' constants are conservative) it
      hires an overflow processor with identifier above [n], reported via
      {!Sim.Metrics.overflow_processors}. *)

type config = Retire_plumbing.config = {
  arity : int;  (** Children per inner node; the paper's [k]. *)
  depth : int;  (** Deepest inner level; the paper's [k]. *)
  retire_threshold : int;
      (** Age at which a node retires. The paper's value is [2k]; pass
          [max_int] for the no-retirement ablation (a static tree). *)
}

val paper_config : k:int -> config
(** [{ arity = k; depth = k; retire_threshold = 2k }] (threshold floored
    at [arity + 2] so that tiny trees cannot cascade forever). *)

val config_n : config -> int
(** Number of processors the configuration serves: [arity^(depth+1)]. *)

type t

val create_with :
  ?seed:int -> ?delay:Sim.Delay.t -> ?faults:Sim.Fault.t -> config -> t
(** Build a counter with an explicit configuration (for the threshold and
    arity ablations). *)

(** {1 Inspection} *)

val config : t -> config

val tree : t -> Tree.t

val node_worker : t -> int -> int
(** Current processor of an inner node (flat id). *)

val node_age : t -> int -> int

val retirements_of_node : t -> int -> int
(** How often the node given by flat id has retired so far. *)

val retirements_by_level : t -> int array
(** Total retirements per level, index [0 .. depth]. *)

val max_retirements_at_level : t -> int -> int
(** Largest per-node retirement count on a level — the quantity bounded by
    the Number of Retirements Lemma ([<= capacity - 1] if no overflow hire
    was needed). *)

val total_retirements : t -> int

val stale_forwards : t -> int
(** Messages that arrived at a just-retired processor and were forwarded
    to the successor (the handshake cost the paper treats as O(1)). *)

val max_message_bits : t -> int
(** Largest message payload so far, in bits (two tag bits plus binary
    field sizes) — the paper keeps every message O(log n) bits, which
    experiment E13 verifies against this. *)

val total_bits : t -> int
(** Total payload bits sent. *)

val believed_consistent : t -> bool
(** At quiescence: every node's believed parent/child worker ids match the
    actual current workers, and every leaf's believed parent worker is
    current. The protocol's re-addressing invariant. *)

val run_batch : t -> origins:int list -> (int * int) list
(** Extension beyond the paper's sequential model: launch all origins'
    increments concurrently and run to quiescence; returns
    [(origin, value)] pairs in completion order. The root serialises
    arrivals, so values across a batch are distinct and contiguous (but
    an individual origin may observe them out of request order — the
    batch is quiescently consistent, not linearizable). One traced
    operation. Used by experiment E15. *)

val run_batch_timed :
  t -> ?stagger:float -> origins:int list -> unit -> Counter.History.op list
(** Like {!run_batch} but injects operation [i] at virtual time
    [i * stagger] (via a local timer) and reports full
    invocation/completion intervals, for the linearizability analysis of
    experiment E20. [stagger = 0] (default) launches everything at once. *)

(** {1 The counter interface} *)

include Counter.Counter_intf.CONCURRENT with type t := t
(** [create ~n] requires [n = k^(k+1)] for some [k] (use [supported_n] to
    round up); it uses {!paper_config}.

    The open-loop path ([launch_at]/[run_open]) serialises: the paper's
    protocol holds the client until the grant descends, so each arrival
    is served at its arrival instant or as soon as the previous operation
    finishes, whichever is later. Queueing delay appears in completion
    times and the history is trivially linearizable (zero overlap). *)
