type config = { arity : int; depth : int; retire_threshold : int }

let min_threshold arity = arity + 2

let paper_config ~k =
  if k < 1 then invalid_arg "Retire_counter.paper_config: k must be >= 1";
  { arity = k; depth = k; retire_threshold = max (2 * k) (min_threshold k) }

let config_n cfg = Params.pow cfg.arity (cfg.depth + 1)

(* Protocol messages. Every message is addressed to a processor but tagged
   with the inner node (flat id) it concerns, because one processor can work
   for the root and for one other inner node at the same time. All payloads
   are O(log n) bits, as in the paper. *)
type dest = To_node of int | To_leaf of int

type payload =
  | Inc of { origin : int; node : int }
      (* an inc request travelling up; [node] is the intended handler *)
  | Value of { value : int }  (* the root's answer to the origin leaf *)
  | Handoff of { node : int; piece : piece }
      (* one unit-sized piece of a retiring worker's job description *)
  | New_worker of { about : int; worker : int; dest : dest }
      (* "node [about] is now served by processor [worker]" *)

and piece =
  | Parent_id of int
  | Child_id of int * int  (* child slot, processor id *)
  | Counter_value of int  (* root handoff only *)

let label = function
  | Inc _ -> "inc"
  | Value _ -> "val"
  | Handoff _ -> "handoff"
  | New_worker _ -> "new-worker"

(* Message-length accounting, for the paper's "we are able to keep the
   length of messages as short as O(log n) bits" claim. Two tag bits plus
   the binary size of each field. *)
let bits_needed v =
  let v = max v 1 in
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let payload_bits = function
  | Inc { origin; node } -> 2 + bits_needed origin + bits_needed node
  | Value { value } -> 2 + bits_needed (value + 1)
  | Handoff { node; piece } -> (
      2 + bits_needed node
      +
      match piece with
      | Parent_id p -> bits_needed p
      | Child_id (slot, w) -> bits_needed (slot + 1) + bits_needed w
      | Counter_value v -> bits_needed (v + 1))
  | New_worker { about; worker; dest } -> (
      2 + bits_needed about + bits_needed worker
      + match dest with To_node n -> bits_needed n | To_leaf l -> bits_needed l)

type node_state = {
  flat : int;
  level : int;
  mutable worker : int;
  mutable age : int;
  mutable retirements : int;
  mutable believed_parent_worker : int;  (* 0 for the root *)
  believed_child_workers : int array;
      (* processor ids; for bottom-level nodes these are the (fixed) leaf
         ids themselves *)
  interval_hi : int;  (* last reserved processor id; root: max_int *)
}

type t = {
  cfg : config;
  tree : Tree.t;
  net : payload Sim.Network.t;
  nodes : node_state array;
  leaf_believed_parent : int array;  (* leaf-1 -> believed worker of parent *)
  mutable value : int;
  mutable completed_rev : (int * int * float) list;
      (* (origin, value, completion time) for the current op/batch *)
  mutable overflow_next : int;  (* next virtual processor id to hire *)
  mutable traces_rev : Sim.Trace.t list;
  mutable total_retirements : int;
  mutable stale_forwards : int;
}

let name = "retire-tree"

let describe =
  "the paper's communication tree with processor retirement (Section 4); \
   O(k) bottleneck where k*k^k = n"

let supported_n n = Params.round_up_n (max 1 n)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let make_nodes tree =
  let inner = Tree.inner_count tree in
  Array.init inner (fun flat ->
      let level = Tree.level_of tree flat in
      let worker, interval_hi =
        if flat = Tree.root then (Ids.root_initial_worker, max_int)
        else
          let lo, hi =
            Ids.interval tree ~level ~index:(Tree.index_of tree flat)
          in
          (lo, hi)
      in
      let believed_parent_worker =
        match Tree.parent tree flat with
        | None -> 0
        | Some p ->
            if p = Tree.root then Ids.root_initial_worker
            else fst (Ids.interval_of_flat tree p)
      in
      let believed_child_workers =
        if level = Tree.depth tree then
          Array.of_list (Tree.leaf_children tree flat)
        else
          Array.of_list
            (List.map
               (fun c -> fst (Ids.interval_of_flat tree c))
               (Tree.children tree flat))
      in
      {
        flat;
        level;
        worker;
        age = 0;
        retirements = 0;
        believed_parent_worker;
        believed_child_workers;
        interval_hi;
      })

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let rec handle st ~self ~src:_ payload =
  match payload with
  | Value { value } ->
      st.completed_rev <-
        (self, value, Sim.Network.now st.net) :: st.completed_rev
  | Handoff _ ->
      (* The job description for a fresh worker. State is already current
         (the node record was updated when the retirement was issued); the
         message exists so its cost is charged faithfully. Handoff pieces
         do not age the fresh worker. *)
      ()
  | Inc { origin; node } ->
      let nd = st.nodes.(node) in
      if nd.worker <> self then begin
        (* We retired while this message was in flight: forward it to the
           current worker (the paper's constant-cost handshake). *)
        st.stale_forwards <- st.stale_forwards + 1;
        Sim.Network.send st.net ~src:self ~dst:nd.worker payload
      end
      else if nd.level = 0 then begin
        Sim.Network.send st.net ~src:self ~dst:origin
          (Value { value = st.value });
        st.value <- st.value + 1;
        nd.age <- nd.age + 2;
        maybe_retire st nd
      end
      else begin
        let parent =
          match Tree.parent st.tree node with
          | Some p -> p
          | None -> assert false
        in
        Sim.Network.send st.net ~src:self ~dst:nd.believed_parent_worker
          (Inc { origin; node = parent });
        nd.age <- nd.age + 2;
        maybe_retire st nd
      end
  | New_worker { about; worker; dest } -> (
      match dest with
      | To_leaf leaf -> st.leaf_believed_parent.(leaf - 1) <- worker
      | To_node node ->
          let nd = st.nodes.(node) in
          if nd.worker <> self then begin
            st.stale_forwards <- st.stale_forwards + 1;
            Sim.Network.send st.net ~src:self ~dst:nd.worker payload
          end
          else begin
            (if nd.believed_parent_worker <> 0 then
               match Tree.parent st.tree node with
               | Some p when p = about -> nd.believed_parent_worker <- worker
               | _ -> ());
            (if nd.level < Tree.depth st.tree then
               let children = Tree.children st.tree node in
               List.iteri
                 (fun slot c ->
                   if c = about then nd.believed_child_workers.(slot) <- worker)
                 children);
            nd.age <- nd.age + 1;
            maybe_retire st nd
          end)

and maybe_retire st nd =
  if nd.age >= st.cfg.retire_threshold then retire st nd

and retire st nd =
  let old_worker = nd.worker in
  let successor =
    if nd.flat = Tree.root then
      (* The root walks 1, 2, 3, ...; beyond the processor universe it
         hires overflow workers like everyone else. *)
      if old_worker + 1 <= Tree.n st.tree then old_worker + 1
      else begin
        let v = st.overflow_next in
        st.overflow_next <- v + 1;
        v
      end
    else if old_worker + 1 <= nd.interval_hi then old_worker + 1
    else begin
      let v = st.overflow_next in
      st.overflow_next <- v + 1;
      v
    end
  in
  nd.worker <- successor;
  nd.age <- 0;
  nd.retirements <- nd.retirements + 1;
  st.total_retirements <- st.total_retirements + 1;
  (* Handoff: arity+1 unit messages to the successor — the children ids,
     plus the parent id (non-root) or the counter value (root, which
     "saves the message that would inform the parent"). *)
  Array.iteri
    (fun slot child_worker ->
      Sim.Network.send st.net ~src:old_worker ~dst:successor
        (Handoff { node = nd.flat; piece = Child_id (slot, child_worker) }))
    nd.believed_child_workers;
  if nd.flat = Tree.root then
    Sim.Network.send st.net ~src:old_worker ~dst:successor
      (Handoff { node = nd.flat; piece = Counter_value st.value })
  else
    Sim.Network.send st.net ~src:old_worker ~dst:successor
      (Handoff { node = nd.flat; piece = Parent_id nd.believed_parent_worker });
  (* Announcements: the parent (non-root) and every child learn the new
     worker id. Bottom-level nodes announce to their leaf children. *)
  (if nd.flat <> Tree.root then
     match Tree.parent st.tree nd.flat with
     | Some p ->
         Sim.Network.send st.net ~src:old_worker
           ~dst:nd.believed_parent_worker
           (New_worker { about = nd.flat; worker = successor; dest = To_node p })
     | None -> assert false);
  if nd.level = Tree.depth st.tree then
    List.iter
      (fun leaf ->
        Sim.Network.send st.net ~src:old_worker ~dst:leaf
          (New_worker { about = nd.flat; worker = successor; dest = To_leaf leaf }))
      (Tree.leaf_children st.tree nd.flat)
  else
    List.iteri
      (fun slot c ->
        Sim.Network.send st.net ~src:old_worker
          ~dst:nd.believed_child_workers.(slot)
          (New_worker { about = nd.flat; worker = successor; dest = To_node c }))
      (Tree.children st.tree nd.flat)

(* ------------------------------------------------------------------ *)
(* Public construction                                                 *)

let create_with ?(seed = 42) ?delay ?faults cfg =
  if cfg.arity < 1 then invalid_arg "Retire_counter: arity must be >= 1";
  if cfg.depth < 0 then invalid_arg "Retire_counter: depth must be >= 0";
  if cfg.retire_threshold < min_threshold cfg.arity then
    invalid_arg
      (Printf.sprintf
         "Retire_counter: retire_threshold must be >= arity+2 = %d (or the \
          retirement cascade need not terminate)"
         (min_threshold cfg.arity));
  let tree = Tree.create ~arity:cfg.arity ~depth:cfg.depth in
  let n = Tree.n tree in
  let net =
    Sim.Network.create ~seed ?delay ?faults ~label ~bits:payload_bits ~n ()
  in
  let nodes = make_nodes tree in
  let leaf_believed_parent =
    Array.init n (fun i ->
        let p = Tree.leaf_parent tree ~leaf:(i + 1) in
        nodes.(p).worker)
  in
  let st =
    {
      cfg;
      tree;
      net;
      nodes;
      leaf_believed_parent;
      value = 0;
      completed_rev = [];
      overflow_next = n + 1;
      traces_rev = [];
      total_retirements = 0;
      stale_forwards = 0;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st

let create ?seed ?delay ?faults ~n () =
  match Params.k_of_n_exact n with
  | Some k -> create_with ?seed ?delay ?faults (paper_config ~k)
  | None ->
      invalid_arg
        (Printf.sprintf
           "Retire_counter.create: n = %d is not of the form k^(k+1); use \
            supported_n"
           n)

let n t = Tree.n t.tree

let config t = t.cfg

let tree t = t.tree

let value t = t.value

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let node_worker t flat = t.nodes.(flat).worker

let node_age t flat = t.nodes.(flat).age

let retirements_of_node t flat = t.nodes.(flat).retirements

let retirements_by_level t =
  let acc = Array.make (Tree.depth t.tree + 1) 0 in
  Array.iter (fun nd -> acc.(nd.level) <- acc.(nd.level) + nd.retirements) t.nodes;
  acc

let max_retirements_at_level t level =
  Array.fold_left
    (fun best nd -> if nd.level = level then max best nd.retirements else best)
    0 t.nodes

let total_retirements t = t.total_retirements

let stale_forwards t = t.stale_forwards

let max_message_bits t = Sim.Network.max_message_bits t.net

let total_bits t = Sim.Network.total_bits t.net

let believed_consistent t =
  let ok = ref true in
  Array.iter
    (fun nd ->
      (match Tree.parent t.tree nd.flat with
      | None -> ()
      | Some p ->
          if nd.believed_parent_worker <> t.nodes.(p).worker then ok := false);
      if nd.level < Tree.depth t.tree then
        List.iteri
          (fun slot c ->
            if nd.believed_child_workers.(slot) <> t.nodes.(c).worker then
              ok := false)
          (Tree.children t.tree nd.flat))
    t.nodes;
  Array.iteri
    (fun i believed ->
      let p = Tree.leaf_parent t.tree ~leaf:(i + 1) in
      if believed <> t.nodes.(p).worker then ok := false)
    t.leaf_believed_parent;
  !ok

let check_origin t origin =
  if origin < 1 || origin > n t then
    invalid_arg "Retire_counter: origin out of range"

let launch t ~origin =
  let parent = Tree.leaf_parent t.tree ~leaf:origin in
  Sim.Network.send t.net ~src:origin
    ~dst:t.leaf_believed_parent.(origin - 1)
    (Inc { origin; node = parent })

let inc t ~origin =
  check_origin t origin;
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  launch t ~origin;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  (* First completion for this origin: under duplication faults the value
     can arrive twice; without faults there is exactly one. *)
  match
    List.find_opt (fun (o, _, _) -> o = origin) (List.rev t.completed_rev)
  with
  | Some (_, value, _) -> value
  | None ->
      raise
        (Counter.Counter_intf.Stall
           "Retire_counter.inc: no value returned (a worker on the path \
            crashed or a message was lost)")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let run_batch t ~origins =
  List.iter (check_origin t) origins;
  (match origins with
  | [] -> invalid_arg "Retire_counter.run_batch: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  List.iter (fun origin -> launch t ~origin) origins;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  List.rev_map (fun (o, v, _) -> (o, v)) t.completed_rev

let run_batch_timed t ?(stagger = 0.) ~origins () =
  List.iter (check_origin t) origins;
  (match origins with
  | [] -> invalid_arg "Retire_counter.run_batch_timed: empty batch"
  | o :: _ -> Sim.Network.begin_op t.net ~origin:o);
  t.completed_rev <- [];
  let start = Sim.Network.now t.net in
  let invoked = Hashtbl.create (List.length origins) in
  List.iteri
    (fun i origin ->
      let at = start +. (float_of_int i *. stagger) in
      Hashtbl.replace invoked origin at;
      if Float.equal stagger 0. then launch t ~origin
      else
        Sim.Network.schedule_local t.net
          ~delay:(float_of_int i *. stagger)
          (fun () -> launch t ~origin))
    origins;
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  List.rev_map
    (fun (origin, value, completed_at) ->
      {
        Counter.History.origin;
        value;
        invoked_at = Hashtbl.find invoked origin;
        completed_at;
      })
    t.completed_rev

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let st =
    {
      cfg = t.cfg;
      tree = t.tree;
      net;
      nodes =
        Array.map
          (fun nd ->
            {
              nd with
              believed_child_workers = Array.copy nd.believed_child_workers;
            })
          t.nodes;
      leaf_believed_parent = Array.copy t.leaf_believed_parent;
      value = t.value;
      completed_rev = t.completed_rev;
      overflow_next = t.overflow_next;
      traces_rev = t.traces_rev;
      total_retirements = t.total_retirements;
      stale_forwards = t.stale_forwards;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
