(* The paper's exact protocol, as a thin veneer over the shared engine in
   Retire_plumbing (Retire_ft layers the failure-aware client over the
   same engine). With no fault plan the plumbing's failure-aware fields
   are inert and this module is observably identical — send for send —
   to the pre-refactor implementation; the determinism goldens pin it. *)

module P = Retire_plumbing

type config = P.config = { arity : int; depth : int; retire_threshold : int }

let paper_config = P.paper_config
let config_n = P.config_n

type t = P.t

let name = "retire-tree"

let describe =
  "the paper's communication tree with processor retirement (Section 4); \
   O(k) bottleneck where k*k^k = n"

let supported_n n = Params.round_up_n (max 1 n)

let who = "Retire_counter"

let install st =
  Sim.Network.set_handler st.P.net (fun ~self ~src payload ->
      P.handle st ~self ~src payload);
  st

let create_with ?seed ?delay ?faults cfg =
  install (P.create_state ?seed ?delay ?faults ~who cfg)

let create ?seed ?delay ?faults ~n () =
  match Params.k_of_n_exact n with
  | Some k -> create_with ?seed ?delay ?faults (paper_config ~k)
  | None ->
      invalid_arg
        (Printf.sprintf
           "Retire_counter.create: n = %d is not of the form k^(k+1); use \
            supported_n"
           n)

let n = P.n
let config = P.config
let tree = P.tree
let value = P.value
let metrics = P.metrics
let traces = P.traces
let node_worker = P.node_worker
let node_age = P.node_age
let retirements_of_node = P.retirements_of_node
let retirements_by_level = P.retirements_by_level
let max_retirements_at_level = P.max_retirements_at_level
let total_retirements = P.total_retirements
let stale_forwards = P.stale_forwards
let max_message_bits = P.max_message_bits
let total_bits = P.total_bits
let believed_consistent = P.believed_consistent
let crashed = P.crashed
let inc t ~origin = P.inc ~who t ~origin

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let run_batch t ~origins = P.run_batch ~who t ~origins

let run_batch_timed t ?stagger ~origins () =
  P.run_batch_timed ~who t ?stagger ~origins ()

(* Open-loop path. The paper's protocol is inherently serialising — an
   operation holds the client until its grant descends — so arrivals are
   served strictly in order: each op starts at its arrival instant or as
   soon as the previous op finishes, whichever is later. Queueing delay
   therefore shows up honestly in completion times, and the resulting
   history is trivially linearizable (zero overlap by construction). *)
let launch_at t ~op ~origin ~at =
  if op < 0 then invalid_arg "Retire_counter.launch_at: op must be >= 0";
  let now = Sim.Network.now t.P.net in
  if at > now then begin
    (* Idle until the arrival: a no-op timer advances the clock without
       charging any processor load. *)
    Sim.Network.schedule_local t.P.net ~delay:(at -. now) (fun () -> ());
    ignore (Sim.Network.run_to_quiescence t.P.net)
  end;
  match inc_result t ~origin with
  | Counter.Counter_intf.Completed v ->
      t.P.open_completed_rev <-
        (op, v, Sim.Network.now t.P.net) :: t.P.open_completed_rev
  | Counter.Counter_intf.Stalled _ -> ()

let run_open _t = ()

let completions t = List.rev t.P.open_completed_rev

let clone t = install (P.clone_state t)
