type violation = {
  op_index : int;
  origin : int;
  node : int;
  age_before : int;
  age_after : int;
}

type report = {
  k : int;
  n : int;
  ops : int;
  bound : int;
  max_delta : int;
  violations : violation list;
}

let bound = 4

let check ?(seed = 42) ~k () =
  let t = Retire_counter.create_with ~seed (Retire_counter.paper_config ~k) in
  let tree = Retire_counter.tree t in
  let inner = Tree.inner_count tree in
  let n = Tree.n tree in
  let snapshot () =
    Array.init inner (fun id ->
        (Retire_counter.retirements_of_node t id, Retire_counter.node_age t id))
  in
  let violations = ref [] in
  let max_delta = ref 0 in
  for origin = 1 to n do
    let before = snapshot () in
    ignore (Retire_counter.inc t ~origin);
    let after = snapshot () in
    for id = 0 to inner - 1 do
      let retired_before, age_before = before.(id) in
      let retired_after, age_after = after.(id) in
      (* A node that retired during this inc reset its age (possibly more
         than once under a cascade); the lemma only speaks about nodes
         that kept their processor for the whole operation. *)
      if retired_before = retired_after then begin
        let delta = age_after - age_before in
        if delta > !max_delta then max_delta := delta;
        if delta > bound then
          violations :=
            { op_index = origin - 1; origin; node = id; age_before; age_after }
            :: !violations
      end
    done
  done;
  {
    k;
    n;
    ops = n;
    bound;
    max_delta = !max_delta;
    violations = List.rev !violations;
  }

type ft_report = {
  base : report;
  emergency_ops : int;
  max_attempts : int;
  max_retire_delta : int;
  retire_violations : int;
}

let check_ft ?(seed = 42) ?faults ~k () =
  let t = Retire_ft.create_with ~seed ?faults (Retire_ft.paper_config ~k) in
  let tree = Retire_ft.tree t in
  let inner = Tree.inner_count tree in
  let n = Tree.n tree in
  let snapshot () =
    Array.init inner (fun id ->
        (Retire_ft.retirements_of_node t id, Retire_ft.node_age t id))
  in
  let violations = ref [] in
  let max_delta = ref 0 in
  let emergency_ops = ref 0 in
  let max_attempts = ref 1 in
  let max_retire_delta = ref 0 in
  let retire_violations = ref 0 in
  for origin = 1 to n do
    if not (Retire_ft.crashed t origin) then begin
      let before = snapshot () in
      ignore (Retire_ft.inc_result t ~origin);
      let after = snapshot () in
      (* Every attempt re-walks the request path, so the lemma's
         constants hold per attempt: a non-retiring node ages at most
         [bound] units per attempt, and no node retires more than once
         per attempt (the Retirement Lemma) — with one attempt these are
         exactly the fault-free statements. *)
      let attempts = Retire_ft.last_attempts t in
      if attempts > !max_attempts then max_attempts := attempts;
      if Retire_ft.emergency_nodes t <> [] then incr emergency_ops;
      for id = 0 to inner - 1 do
        let retired_before, age_before = before.(id) in
        let retired_after, age_after = after.(id) in
        let retire_delta = retired_after - retired_before in
        if retire_delta > !max_retire_delta then
          max_retire_delta := retire_delta;
        if retire_delta > attempts then incr retire_violations;
        if retired_before = retired_after then begin
          let delta = age_after - age_before in
          if delta > !max_delta then max_delta := delta;
          if delta > bound * attempts then
            violations :=
              {
                op_index = origin - 1;
                origin;
                node = id;
                age_before;
                age_after;
              }
              :: !violations
        end
      done
    end
  done;
  {
    base =
      {
        k;
        n;
        ops = n;
        bound;
        max_delta = !max_delta;
        violations = List.rev !violations;
      };
    emergency_ops = !emergency_ops;
    max_attempts = !max_attempts;
    max_retire_delta = !max_retire_delta;
    retire_violations = !retire_violations;
  }

let holds r = r.violations = []

let holds_ft r = r.base.violations = [] && r.retire_violations = 0

let pp_report ppf r =
  Format.fprintf ppf "grow-old k=%d n=%d ops=%d bound=%d max_delta=%d %s" r.k
    r.n r.ops r.bound r.max_delta
    (if holds r then "holds"
     else Printf.sprintf "VIOLATED (%d nodes)" (List.length r.violations))
