type violation = {
  op_index : int;
  origin : int;
  node : int;
  age_before : int;
  age_after : int;
}

type report = {
  k : int;
  n : int;
  ops : int;
  bound : int;
  max_delta : int;
  violations : violation list;
}

let bound = 4

let check ?(seed = 42) ~k () =
  let t = Retire_counter.create_with ~seed (Retire_counter.paper_config ~k) in
  let tree = Retire_counter.tree t in
  let inner = Tree.inner_count tree in
  let n = Tree.n tree in
  let snapshot () =
    Array.init inner (fun id ->
        (Retire_counter.retirements_of_node t id, Retire_counter.node_age t id))
  in
  let violations = ref [] in
  let max_delta = ref 0 in
  for origin = 1 to n do
    let before = snapshot () in
    ignore (Retire_counter.inc t ~origin);
    let after = snapshot () in
    for id = 0 to inner - 1 do
      let retired_before, age_before = before.(id) in
      let retired_after, age_after = after.(id) in
      (* A node that retired during this inc reset its age (possibly more
         than once under a cascade); the lemma only speaks about nodes
         that kept their processor for the whole operation. *)
      if retired_before = retired_after then begin
        let delta = age_after - age_before in
        if delta > !max_delta then max_delta := delta;
        if delta > bound then
          violations :=
            { op_index = origin - 1; origin; node = id; age_before; age_after }
            :: !violations
      end
    done
  done;
  {
    k;
    n;
    ops = n;
    bound;
    max_delta = !max_delta;
    violations = List.rev !violations;
  }

let holds r = r.violations = []

let pp_report ppf r =
  Format.fprintf ppf "grow-old k=%d n=%d ops=%d bound=%d max_delta=%d %s" r.k
    r.n r.ops r.bound r.max_delta
    (if holds r then "holds"
     else Printf.sprintf "VIOLATED (%d nodes)" (List.length r.violations))
