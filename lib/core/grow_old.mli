(** Checker for the paper's Grow Old Lemma.

    The lemma (Section 4): during a single [inc] operation, an inner node
    that does not retire handles at most a constant number of messages —
    it ages by at most {!bound} units. (+2 if the operation's request path
    passes through it, and at most one [New_worker] announcement from a
    retiring neighbour on each side.) The lemma is what keeps a retirement
    cascade from revisiting a node within one operation and so underpins
    the Retirement Lemma's bound.

    This module replays the each-processor-once schedule against the
    paper's counter and checks the age delta of every non-retiring inner
    node across every operation — a direct regression test for the
    lemma's constant, independent of the aggregate load assertions in the
    test suite. *)

type violation = {
  op_index : int;  (** 0-based operation number. *)
  origin : int;  (** The operation's initiating processor. *)
  node : int;  (** Flat id of the offending inner node. *)
  age_before : int;
  age_after : int;
}

type report = {
  k : int;
  n : int;  (** [k^(k+1)] processors. *)
  ops : int;
  bound : int;  (** The checked constant, {!bound}. *)
  max_delta : int;
      (** Largest single-operation age increase observed on any
          non-retiring node — the lemma says this never exceeds
          [bound]. *)
  violations : violation list;
}

val bound : int
(** The lemma's constant: [4]. *)

val check : ?seed:int -> k:int -> unit -> report
(** Run the paper's counter ({!Retire_counter.paper_config}[ ~k]) over
    each-once, snapshotting every inner node's (retirement count, age)
    around each [inc]. Nodes whose retirement count changed during the
    operation are skipped — retirement resets the age, so the delta is
    meaningless for them and the lemma does not constrain them. *)

val holds : report -> bool

val pp_report : Format.formatter -> report -> unit

(** {1 Under faults}

    The failure-aware counter may need several request attempts per
    operation (timeout, audit, retry), and every attempt re-walks the
    path — so the lemma's constants are per attempt: a non-retiring node
    ages at most [bound * attempts] within one operation, and no node
    retires more than [attempts] times (the Retirement Lemma, crash- or
    age-triggered alike). With one attempt both reduce to the fault-free
    statements. *)

type ft_report = {
  base : report;  (** Age-bound verdict, [bound] scaled per attempt. *)
  emergency_ops : int;
      (** Operations during which an emergency retirement fired — assert
          this is positive or the fault plan never exercised the
          machinery. *)
  max_attempts : int;  (** Most attempts any single operation needed. *)
  max_retire_delta : int;
      (** Most retirements of a single node within one operation. *)
  retire_violations : int;
      (** Node-operation pairs where retirements exceeded attempts. *)
}

val check_ft : ?seed:int -> ?faults:Sim.Fault.t -> k:int -> unit -> ft_report
(** Like {!check} but over {!Retire_ft} under [faults], skipping origins
    that are dead when their turn comes (their operations cannot be
    issued). *)

val holds_ft : ft_report -> bool
