(** The retirement-tree counter with {e strictly processor-local state} —
    the reference implementation of Section 4 as a real distributed
    protocol.

    {!Retire_counter} keeps each tree node's state in one shared record
    and lets the message handler consult ground truth (e.g. the node's
    current worker) — convenient for simulation, but a shortcut a real
    deployment does not have. This module re-implements the protocol so
    that a processor's handler reads and writes {e only that processor's
    own state}:

    - a processor's knowledge of a node it works for (its {e role}: age,
      believed parent/children workers, and at the root the counter
      value) is assembled exclusively from the handoff pieces its
      predecessor sent;
    - messages that reach a processor before its role is fully assembled
      (the handshake races the paper waves off as "a proper handshaking
      protocol") are buffered inside the pending role and replayed on
      activation;
    - a retired processor remembers only its own successor per node and
      forwards strays one hop — so a message can chase a fast-retiring
      node through several hops, each a real charged message;
    - initial knowledge is exactly what the paper grants: "all the
      processors can compute all initial identifiers locally".

    The one remaining non-local operation is the overflow allocator that
    hands out replacement identifiers beyond a node's reserved interval
    (in a deployment this would be a pre-partitioned spare pool; see
    DESIGN.md on interval sizing).

    The test suite checks this implementation against {!Retire_counter}:
    identical values on identical schedules, the same O(k) bottleneck,
    and near-identical message counts (they differ only through
    multi-hop stale forwarding and handshake buffering). *)

include Counter.Counter_intf.S

val create_with :
  ?seed:int -> ?delay:Sim.Delay.t -> ?faults:Sim.Fault.t -> Retire_counter.config -> t

val total_retirements : t -> int

val stale_forwards : t -> int
(** Messages that had to chase a retired worker (each hop counted). *)

val buffered_messages : t -> int
(** Messages that arrived before their target role was assembled and
    were replayed on activation — the handshake the paper abstracts
    away, made visible. *)

val active_roles : t -> int
(** Current number of (processor, node) role assignments — equals the
    tree's inner-node count at quiescence. *)
