(** Failure-aware retirement-tree counter (the paper's Section 4 protocol
    made crash-tolerant; see docs/FAULTS.md).

    Runs the exact {!Retire_counter} engine, plus a failure-aware client
    at each operation's origin that reuses the round-stamped attempt
    machinery of the quorum counters: timeouts (doubling from 32 virtual
    time units, at most 8 attempts per operation) trigger an {e audit} —
    a ping to the current worker of every inner node on the origin's root
    path — and workers that stay silent, or that answer from a
    post-recovery identity that was never re-hired, are {e deposed}: the
    role is emergency-retired to a fresh processor, with the lost job
    description reconstructed from the surviving parent/children state
    instead of the normal handoff from the (dead) incumbent.

    Replacement processors come first from the {e rejoin pool} —
    processors that crashed and later recovered ([recover:P@T] in the
    fault plan) re-enter the allocator here rather than resuming their
    stale roles — and then from the overflow allocator, bounded by an
    emergency budget (default [2n]). A crashed processor holds at most
    two roles, so f crashes force at most 2f emergency hires: the counter
    completes every live-origin inc when crashes < overflow-pool size.

    With no fault plan the client is disarmed and the counter is
    observably identical — send for send — to {!Retire_counter}
    (pinned by the goldens in test_retire_ft.ml). *)

type config = Retire_counter.config = {
  arity : int;
  depth : int;
  retire_threshold : int;
}

val paper_config : k:int -> config

val config_n : config -> int

type t

val create_with :
  ?seed:int ->
  ?delay:Sim.Delay.t ->
  ?faults:Sim.Fault.t ->
  ?emergency_handoff:bool ->
  ?overflow_pool:int ->
  config ->
  t
(** Build a counter with an explicit configuration. The failure-aware
    client is armed iff [faults] is given and not {!Sim.Fault.is_none}.
    [emergency_handoff] (default true) — setting it false yields the
    deliberately-broken negative control used by the model-check suite
    ({!name} ["ft-no-handoff"] in the baselines registry): emergency
    retirement re-staffs the role without reconstructing the job
    description, so a replaced root restarts the count at zero.
    [overflow_pool] (default [2n]) bounds emergency overflow hires. *)

(** {1 Inspection} *)

val config : t -> config

val tree : t -> Tree.t

val node_worker : t -> int -> int

val node_age : t -> int -> int

val retirements_of_node : t -> int -> int

val total_retirements : t -> int
(** Includes emergency retirements (also counted separately in
    {!Sim.Metrics.emergency_retirements}). *)

val stale_forwards : t -> int

val max_message_bits : t -> int

val total_bits : t -> int

val believed_consistent : t -> bool

val failure_aware : t -> bool
(** Whether the client machinery is armed (a non-empty fault plan was
    supplied at creation). *)

val emergency_nodes : t -> int list
(** Flat ids of the nodes emergency-retired during the most recent
    operation, in retirement order (empty when the last inc needed no
    emergency action) — the per-op data the Retirement Lemma checker in
    test_retire.ml consumes. *)

val emergency_hires : t -> int
(** Overflow processors consumed by emergency retirement so far (bounded
    by [overflow_pool]; rejoin-pool hires are free). *)

val rejoin_pool : t -> int list
(** Recovered processors currently waiting to be re-hired. *)

val last_attempts : t -> int
(** How many request attempts the most recent operation needed (1 on the
    fast path; each timeout-audit-retry cycle adds one). Always 1 when
    the counter is not failure-aware. The Grow Old checker scales its
    per-op age bound by this, since every attempt re-walks the path. *)

(** {1 The counter interface} *)

include Counter.Counter_intf.S with type t := t
(** [create ~n] requires [n = k^(k+1)] for some [k] (use [supported_n] to
    round up); it uses {!paper_config}. [inc] raises
    {!Counter.Counter_intf.Stall} — with the stalling reason — when the
    origin itself is crashed, the emergency pool is exhausted, or 8
    attempts expire without an answer. *)
