type dest = To_node of int | To_leaf of int

type payload =
  | Inc of { origin : int; node : int }
  | Value of { value : int }
  | Handoff of { node : int; piece : piece }
  | New_worker of { about : int; worker : int; dest : dest }

and piece =
  | Parent_id of int
  | Child_id of int * int  (* slot, worker *)
  | Counter_value of int

let label = function
  | Inc _ -> "inc"
  | Value _ -> "val"
  | Handoff _ -> "handoff"
  | New_worker _ -> "new-worker"

(* A processor's knowledge about one node it currently works for. *)
type role = {
  node : int;
  level : int;
  mutable age : int;
  mutable believed_parent : int;  (* worker id; 0 at the root *)
  believed_children : int array;
  mutable counter_value : int;  (* meaningful at the root only *)
}

(* A role being assembled from the predecessor's handoff pieces. *)
type pending = {
  p_node : int;
  pieces_needed : int;
  mutable pieces_received : int;
  mutable p_parent : int;
  p_children : int array;
  mutable p_value : int;
  mutable buffered_rev : payload list;
}

(* Everything processor [pid] knows. The handler may touch no other
   processor's record. *)
type proc = {
  pid : int;
  mutable roles : role list;
  mutable pending : pending list;
  mutable handed_over : (int * int) list;  (* node -> my successor *)
  mutable leaf_parent_worker : int;  (* 0 for non-leaf (overflow) procs *)
}

type t = {
  cfg : Retire_counter.config;
  tree : Tree.t;
  net : payload Sim.Network.t;
  procs : (int, proc) Hashtbl.t;
  mutable completed_rev : (int * int) list;
  mutable overflow_next : int;
      (* the one non-local helper: allocates replacement ids beyond a
         node's reserved interval (a deployment would pre-partition a
         spare pool) *)
  mutable traces_rev : Sim.Trace.t list;
  (* Observer-only tallies (never read by the protocol): *)
  retire_tally : (int, int) Hashtbl.t;
  mutable total_retirements : int;
  mutable stale_forwards : int;
  mutable buffered_messages : int;
  mutable value_issued : int;  (* observer: ops completed, for [value] *)
}

let name = "retire-tree-local"

let describe =
  "Section 4 with strictly processor-local state: roles assembled from \
   handoff pieces, handshake buffering, hop-by-hop stale forwarding"

let supported_n n = Params.round_up_n (max 1 n)

(* ------------------------------------------------------------------ *)
(* Initial local knowledge ("all the processors can compute all initial
   identifiers locally"). *)

let initial_role tree flat =
  let level = Tree.level_of tree flat in
  let believed_parent =
    match Tree.parent tree flat with
    | None -> 0
    | Some p ->
        if p = Tree.root then Ids.root_initial_worker
        else fst (Ids.interval_of_flat tree p)
  in
  let believed_children =
    if level = Tree.depth tree then Array.of_list (Tree.leaf_children tree flat)
    else
      Array.of_list
        (List.map
           (fun c -> fst (Ids.interval_of_flat tree c))
           (Tree.children tree flat))
  in
  { node = flat; level; age = 0; believed_parent; believed_children; counter_value = 0 }

let proc_of t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
      (* An overflow hire: starts knowing nothing; it learns its job from
         handoff pieces. *)
      let p =
        { pid; roles = []; pending = []; handed_over = []; leaf_parent_worker = 0 }
      in
      Hashtbl.replace t.procs pid p;
      p

(* ------------------------------------------------------------------ *)
(* Protocol *)

let interval_hi t flat =
  if flat = Tree.root then Tree.n t.tree else snd (Ids.interval_of_flat t.tree flat)

let pieces_needed t = t.cfg.Retire_counter.arity + 1

let rec handle t ~self ~src:_ payload = process t (proc_of t self) payload

and process t proc payload =
  match payload with
  | Value { value } -> t.completed_rev <- (proc.pid, value) :: t.completed_rev
  | Inc { node; _ } -> route t proc ~node payload
  | New_worker { dest = To_leaf leaf; worker; _ } ->
      assert (leaf = proc.pid);
      proc.leaf_parent_worker <- worker
  | New_worker { dest = To_node node; _ } -> route t proc ~node payload
  | Handoff { node; piece } -> (
      let pending = get_pending t proc node in
      (match piece with
      | Parent_id p -> pending.p_parent <- p
      | Child_id (slot, w) -> pending.p_children.(slot) <- w
      | Counter_value v -> pending.p_value <- v);
      pending.pieces_received <- pending.pieces_received + 1;
      if pending.pieces_received = pending.pieces_needed then begin
        (* Role assembled: activate and replay anything that arrived
           early. *)
        proc.pending <- List.filter (fun p -> p.p_node <> node) proc.pending;
        let role =
          {
            node;
            level = Tree.level_of t.tree node;
            age = 0;
            believed_parent = pending.p_parent;
            believed_children = pending.p_children;
            counter_value = pending.p_value;
          }
        in
        proc.roles <- role :: proc.roles;
        List.iter (fun m -> process t proc m) (List.rev pending.buffered_rev)
      end)

(* Dispatch a node-addressed message according to what [proc] knows about
   [node]: act on it, forward to a successor, or buffer until the role is
   assembled. *)
and route t proc ~node payload =
  match List.find_opt (fun r -> r.node = node) proc.roles with
  | Some role -> act t proc role payload
  | None -> (
      match List.assoc_opt node proc.handed_over with
      | Some successor ->
          t.stale_forwards <- t.stale_forwards + 1;
          Sim.Network.send t.net ~src:proc.pid ~dst:successor payload
      | None ->
          (* The handoff pieces are still in flight: buffer. *)
          let pending = get_pending t proc node in
          pending.buffered_rev <- payload :: pending.buffered_rev;
          t.buffered_messages <- t.buffered_messages + 1)

and get_pending t proc node =
  match List.find_opt (fun p -> p.p_node = node) proc.pending with
  | Some p -> p
  | None ->
      let p =
        {
          p_node = node;
          pieces_needed = pieces_needed t;
          pieces_received = 0;
          p_parent = 0;
          p_children = Array.make t.cfg.Retire_counter.arity 0;
          p_value = 0;
          buffered_rev = [];
        }
      in
      proc.pending <- p :: proc.pending;
      p

and act t proc role payload =
  match payload with
  | Inc { origin; node } ->
      assert (node = role.node);
      if role.level = 0 then begin
        Sim.Network.send t.net ~src:proc.pid ~dst:origin
          (Value { value = role.counter_value });
        role.counter_value <- role.counter_value + 1;
        t.value_issued <- t.value_issued + 1;
        role.age <- role.age + 2;
        maybe_retire t proc role
      end
      else begin
        let parent =
          match Tree.parent t.tree node with
          | Some p -> p
          | None -> assert false
        in
        Sim.Network.send t.net ~src:proc.pid ~dst:role.believed_parent
          (Inc { origin; node = parent });
        role.age <- role.age + 2;
        maybe_retire t proc role
      end
  | New_worker { about; worker; dest = To_node node } ->
      assert (node = role.node);
      (if role.believed_parent <> 0 then
         match Tree.parent t.tree node with
         | Some p when p = about -> role.believed_parent <- worker
         | _ -> ());
      (if role.level < Tree.depth t.tree then
         List.iteri
           (fun slot c ->
             if c = about then role.believed_children.(slot) <- worker)
           (Tree.children t.tree node));
      role.age <- role.age + 1;
      maybe_retire t proc role
  | Value _ | Handoff _ | New_worker { dest = To_leaf _; _ } ->
      assert false

and maybe_retire t proc role =
  if role.age >= t.cfg.Retire_counter.retire_threshold then retire t proc role

and retire t proc role =
  let node = role.node in
  let successor =
    if proc.pid + 1 <= interval_hi t node && proc.pid <= Tree.n t.tree then
      proc.pid + 1
    else begin
      let v = t.overflow_next in
      t.overflow_next <- v + 1;
      v
    end
  in
  proc.roles <- List.filter (fun r -> r.node <> node) proc.roles;
  proc.handed_over <- (node, successor) :: proc.handed_over;
  t.total_retirements <- t.total_retirements + 1;
  Hashtbl.replace t.retire_tally node
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.retire_tally node));
  Array.iteri
    (fun slot child_worker ->
      Sim.Network.send t.net ~src:proc.pid ~dst:successor
        (Handoff { node; piece = Child_id (slot, child_worker) }))
    role.believed_children;
  if node = Tree.root then
    Sim.Network.send t.net ~src:proc.pid ~dst:successor
      (Handoff { node; piece = Counter_value role.counter_value })
  else
    Sim.Network.send t.net ~src:proc.pid ~dst:successor
      (Handoff { node; piece = Parent_id role.believed_parent });
  (if node <> Tree.root then
     match Tree.parent t.tree node with
     | Some p ->
         Sim.Network.send t.net ~src:proc.pid ~dst:role.believed_parent
           (New_worker { about = node; worker = successor; dest = To_node p })
     | None -> assert false);
  if role.level = Tree.depth t.tree then
    List.iter
      (fun leaf ->
        Sim.Network.send t.net ~src:proc.pid ~dst:leaf
          (New_worker { about = node; worker = successor; dest = To_leaf leaf }))
      (Tree.leaf_children t.tree node)
  else
    List.iteri
      (fun slot c ->
        Sim.Network.send t.net ~src:proc.pid
          ~dst:role.believed_children.(slot)
          (New_worker { about = node; worker = successor; dest = To_node c }))
      (Tree.children t.tree node)

(* ------------------------------------------------------------------ *)
(* Construction *)

let create_with ?(seed = 42) ?delay ?faults (cfg : Retire_counter.config) =
  let arity = cfg.Retire_counter.arity in
  if cfg.Retire_counter.retire_threshold < arity + 2 then
    invalid_arg "Retire_local: retire_threshold must be >= arity + 2";
  let tree = Tree.create ~arity ~depth:cfg.Retire_counter.depth in
  let n = Tree.n tree in
  let net = Sim.Network.create ~seed ?delay ?faults ~label ~n () in
  let procs = Hashtbl.create (n * 2) in
  let t =
    {
      cfg;
      tree;
      net;
      procs;
      completed_rev = [];
      overflow_next = n + 1;
      traces_rev = [];
      retire_tally = Hashtbl.create 64;
      total_retirements = 0;
      stale_forwards = 0;
      buffered_messages = 0;
      value_issued = 0;
    }
  in
  (* Seed initial local knowledge: leaf roles for everyone, inner-node
     roles for the initial workers, the root role (with the counter) for
     processor 1. *)
  for pid = 1 to n do
    Hashtbl.replace procs pid
      {
        pid;
        roles = [];
        pending = [];
        handed_over = [];
        leaf_parent_worker =
          (let p = Tree.leaf_parent tree ~leaf:pid in
           if p = Tree.root then Ids.root_initial_worker
           else fst (Ids.interval_of_flat tree p));
      }
  done;
  for flat = 0 to Tree.inner_count tree - 1 do
    let worker =
      if flat = Tree.root then Ids.root_initial_worker
      else fst (Ids.interval_of_flat tree flat)
    in
    let proc = Hashtbl.find procs worker in
    proc.roles <- initial_role tree flat :: proc.roles
  done;
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle t ~self ~src payload);
  t

let create ?seed ?delay ?faults ~n () =
  match Params.k_of_n_exact n with
  | Some k -> create_with ?seed ?delay ?faults (Retire_counter.paper_config ~k)
  | None ->
      invalid_arg
        (Printf.sprintf
           "Retire_local.create: n = %d is not of the form k^(k+1)" n)

let n t = Tree.n t.tree

let value t = t.value_issued

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let total_retirements t = t.total_retirements

let stale_forwards t = t.stale_forwards

let buffered_messages t = t.buffered_messages

let active_roles t =
  Sim.Det.sorted_fold ~compare:Int.compare
    (fun _ proc acc -> acc + List.length proc.roles)
    t.procs 0

let inc t ~origin =
  if origin < 1 || origin > n t then
    invalid_arg "Retire_local: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.completed_rev <- [];
  let origin_proc = Hashtbl.find t.procs origin in
  let parent = Tree.leaf_parent t.tree ~leaf:origin in
  Sim.Network.send t.net ~src:origin ~dst:origin_proc.leaf_parent_worker
    (Inc { origin; node = parent });
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  match List.find_opt (fun (o, _) -> o = origin) (List.rev t.completed_rev) with
  | Some (_, value) -> value
  | None ->
      raise
        (Counter.Counter_intf.Stall
           "Retire_local.inc: no value returned (a worker on the path \
            crashed or a message was lost)")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let crashed t p = Sim.Network.crashed t.net p

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let procs = Hashtbl.create (Hashtbl.length t.procs) in
  Sim.Det.sorted_iter ~compare:Int.compare
    (fun pid proc ->
      Hashtbl.replace procs pid
        {
          pid;
          roles =
            List.map
              (fun r ->
                { r with believed_children = Array.copy r.believed_children })
              proc.roles;
          pending =
            List.map
              (fun p -> { p with p_children = Array.copy p.p_children })
              proc.pending;
          handed_over = proc.handed_over;
          leaf_parent_worker = proc.leaf_parent_worker;
        })
    t.procs;
  let st =
    {
      cfg = t.cfg;
      tree = t.tree;
      net;
      procs;
      completed_rev = t.completed_rev;
      overflow_next = t.overflow_next;
      traces_rev = t.traces_rev;
      retire_tally = Hashtbl.copy t.retire_tally;
      total_retirements = t.total_retirements;
      stale_forwards = t.stale_forwards;
      buffered_messages = t.buffered_messages;
      value_issued = t.value_issued;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
