(** Exhaustive verification over operation orders.

    For the paper's smallest non-trivial configuration (k = 2, n = 8) the
    space of each-processor-once operation orders is small enough to
    enumerate completely: all [8! = 40320] permutations. Under a
    deterministic delay model each order determines the entire execution,
    so checking every permutation turns the test suite's sampled claims
    into exhaustive ones for that configuration:

    - the counter returns [0 .. n-1] in order on {e every} schedule;
    - the Hot Spot Lemma holds between {e all} consecutive operations of
      {e every} schedule;
    - the Lower Bound Theorem's [m_b >= k] holds on {e every} schedule
      (not only the adversary's);
    - and the worst/best bottleneck over all orders brackets what any
      adversary — including the paper's — can extract.

    The module enumerates permutations in lexicographic order with a
    checker callback; {!verify_counter} packages the standard checks. *)

type stats = {
  orders : int;  (** Permutations checked. *)
  all_correct : bool;
  all_hotspot : bool;
  all_bound : bool;  (** [m_b >= k] everywhere. *)
  min_bottleneck : int;
  max_bottleneck : int;
  min_messages : int;
  max_messages : int;
}

val max_permutation_n : int
(** The largest [n] {!permutations} accepts (9). *)

val permutations : int -> int list Seq.t
(** Lazy lexicographic permutations of [1 .. n] ([n!] elements). Raises
    [Invalid_argument] when [n < 0] or [n > ]{!max_permutation_n}: 10!
    forced list-of-int elements is past the point of politeness, and
    every in-repo caller that genuinely wants a bounded prefix goes
    through {!verify_counter}[ ~limit] instead. *)

val verify_counter :
  ?seed:int ->
  ?limit:int ->
  Counter.Counter_intf.counter ->
  n:int ->
  stats
(** Run every each-once order (or the first [limit], default all) against
    a fresh counter and aggregate the checks. Raises [Invalid_argument]
    if [n > 9] with no limit (10! executions is past the point of
    politeness). *)

val pp_stats : Format.formatter -> stats -> unit
