(* WAL-backed durable counter on the simulated object store.

   Topology: processors [1 .. n] are origins; processor 1 doubles as the
   single writer; processor n+1 hosts the {!Sim.Store} (an overflow
   processor in the metrics, like a hired helper — the store is a
   service you pay message load to talk to). Origins send their
   increment to the writer; the writer assigns the value (= LSN),
   appends a record to the active WAL chunk with a compare-and-swap,
   and only acks the origin once the append is durable. Chunks roll via
   a CAS-guarded manifest, snapshots materialize count + dedup table,
   and GC deletes covered chunks — the oswald decomposition (Counter /
   LogChunk / Manifest / Snapshot / GarbageCollector); layout and
   recovery procedure in docs/DURABILITY.md.

   Crash-recovery without amnesia: when the writer is revived by
   [recover:1@T], the first delivery that reaches it detects the
   revival ({!Sim.Network.recoveries_of}), wipes the (lost) volatile
   state, fences older incarnations by CAS-bumping the manifest epoch,
   and re-reads manifest + snapshot + live chunks to resume the exact
   pre-crash count. Origin retries replay idempotently through the
   per-origin (op, value) dedup table, so a retried increment whose
   first append survived is re-acked, never re-applied.

   Failure-awareness mirrors Retire_ft: with [Fault.none] the client is
   disarmed — straight-line RPCs, no timers, zero Rng draws, runs
   bit-identical across shard counts. Under a plan, origins retry with
   doubling timeouts and the writer retries store RPCs the same way;
   every timer is round-stamped and fires into nothing once the round
   moves on. [~cas:false] is the deliberately broken negative control
   ([durable-no-cas] in the registry): every conditional write becomes
   a blind put, and a delayed duplicate of a stale append can overwrite
   a newer chunk — the lost update the stored counterexample in
   test/data/ pins. *)

type payload =
  | Inc_req of { origin : int; oseq : int }
  | Inc_ack of { oseq : int; value : int }
  | S_req of { rid : int; req : Sim.Store.request }
  | S_resp of { rid : int; resp : Sim.Store.response }

let label = function
  | Inc_req _ -> "inc"
  | Inc_ack _ -> "ack"
  | S_req { req; _ } -> "s:" ^ Sim.Store.request_label req
  | S_resp { resp; _ } -> "r:" ^ Sim.Store.response_label resp

type phase = Ready | Recovering

type t = {
  net : payload Sim.Network.t;
  store : Sim.Store.t;
  monitor : Wal.Monitor.t;
  n : int;
  writer : int;
  store_id : int;
  cas : bool;
  chunk_records : int;
  snap_every : int;
  armed : bool;
  max_attempts : int;
  (* --- writer state (conceptually volatile: wiped on recovery) --- *)
  mutable phase : phase;
  mutable round : int;  (* writer incarnation; bumped by recovery *)
  mutable count : int;  (* next value = next LSN *)
  mutable table : (int * (int * int)) list;  (* origin -> (op, value) *)
  mutable manifest : Wal.manifest;
  mutable manifest_exists : bool;
  mutable active_chunk : Wal.chunk option;  (* None = object absent *)
  mutable inc_queue : (int * int) list;  (* (origin, oseq), FIFO *)
  mutable busy : bool;
  mutable rid : int;  (* never reset: stale responses must not collide *)
  mutable inflight :
    (int * Sim.Store.request * (Sim.Store.response -> unit)) option;
  mutable rpc_attempts : int;
  mutable rpc_timeout : float;
  mutable known_recoveries : int;
  mutable wedged : string option;
  (* --- origin / driver state --- *)
  oseqs : int array;  (* per-origin op sequence, index = origin *)
  mutable op_round : int;  (* bumped at op end; stamps origin timers *)
  mutable cur_origin : int;
  mutable op_served : bool;
  mutable op_value : int;
  mutable op_attempts : int;
  mutable op_timeout : float;
  mutable stall_reason : string option;
  (* --- bookkeeping --- *)
  mutable replays : int;  (* completed WAL recoveries *)
  mutable traces_rev : Sim.Trace.t list;
}

let name = "durable"

let describe =
  "WAL-backed writer on a simulated object store; recovers its exact \
   count from manifest+snapshot+chunks after crash"

let supported_n n = max 1 n

let initial_timeout = 32.

let default_chunk_records = 8

let default_snap_every = 16

let stall reason = raise (Counter.Counter_intf.Stall ("Durable_counter.inc: " ^ reason))

let wedge st reason =
  if st.wedged = None then st.wedged <- Some reason;
  if st.stall_reason = None then st.stall_reason <- Some reason;
  st.busy <- false

(* ------------------------------------------------------------------ *)
(* Store RPC layer: one request in flight at a time, retried with
   doubling timeouts when armed. Responses are matched by rid; stale or
   duplicated responses fall through. An [Unavailable] during an outage
   window is deliberately not dispatched — the armed retry timer
   re-sends until the window closes or attempts run out. *)

let rec send_rpc st rid req =
  st.rpc_attempts <- st.rpc_attempts + 1;
  Sim.Network.send st.net ~src:st.writer ~dst:st.store_id (S_req { rid; req });
  if st.armed then begin
    let r = st.round in
    let timeout = st.rpc_timeout in
    st.rpc_timeout <- st.rpc_timeout *. 2.;
    Sim.Network.schedule_local st.net ~delay:timeout (fun () ->
        if r = st.round && not (Sim.Network.crashed st.net st.writer) then
          match st.inflight with
          | Some (rid', req', _) when rid' = rid ->
              if st.rpc_attempts >= st.max_attempts then begin
                (* Abandon this pipeline, not the counter: the popped
                   increment was never acked (so nothing is lost) and
                   the origin's own retry re-enqueues it. An abandoned
                   recovery re-arms the revival detector so the next
                   delivery restarts it from scratch. *)
                st.inflight <- None;
                st.busy <- false;
                if st.stall_reason = None then
                  st.stall_reason <-
                    Some
                      (Printf.sprintf
                         "gave up: store unreachable after %d attempts"
                         st.rpc_attempts);
                match st.phase with
                | Recovering -> st.known_recoveries <- st.known_recoveries - 1
                | Ready -> ()
              end
              else send_rpc st rid req'
          | Some _ | None -> ())
  end

let rpc st req k =
  st.rid <- st.rid + 1;
  st.inflight <- Some (st.rid, req, k);
  st.rpc_attempts <- 0;
  st.rpc_timeout <- initial_timeout;
  send_rpc st st.rid req

(* ------------------------------------------------------------------ *)
(* Manifest writes: advance to a monotone target (computed against the
   current cached manifest by a join function [f], so retries after a
   conflict adoption stay idempotent). A CAS conflict means our cache is
   stale — adopt the store's actual content and re-check; if the target
   is already satisfied (our own lost-response retry landed) the write
   is done. Without CAS this is a blind put — the negative control. *)

let manifest_geq (a : Wal.manifest) (b : Wal.manifest) =
  a.epoch >= b.epoch && a.snap >= b.snap && a.low >= b.low
  && a.active >= b.active

let rec manifest_advance st f k =
  let m' = f st.manifest in
  if st.manifest_exists && manifest_geq st.manifest m' then k ()
  else begin
    let value = Wal.encode_manifest m' in
    let req =
      if st.cas then
        Sim.Store.Cas
          {
            key = Wal.manifest_key;
            expect =
              (if st.manifest_exists then
                 Some (Wal.encode_manifest st.manifest)
               else None);
            value;
          }
      else Sim.Store.Put { key = Wal.manifest_key; value }
    in
    rpc st req (function
      | Sim.Store.Written ->
          st.manifest_exists <- true;
          st.manifest <- m';
          k ()
      | Sim.Store.Conflict None ->
          st.manifest_exists <- false;
          manifest_advance st f k
      | Sim.Store.Conflict (Some enc) -> (
          match Wal.decode_manifest enc with
          | Ok cm ->
              st.manifest_exists <- true;
              st.manifest <- cm;
              manifest_advance st f k
          | Error e -> wedge st ("manifest corrupt: " ^ e))
      | _ -> wedge st "unexpected store response to manifest write")
  end

(* ------------------------------------------------------------------ *)
(* Append pipeline. One increment at a time: roll the chunk if full,
   CAS the record in, reconcile conflicts (a conflict is always our own
   earlier write — a retried append whose response was lost, or a
   pre-crash append landing late), then ack, then snapshot/GC
   maintenance, then the next queued increment. *)

let merge_record st (r : Wal.record) =
  let newer =
    match List.assoc_opt r.origin st.table with
    | Some (op, _) -> r.op > op
    | None -> true
  in
  if newer then st.table <- Wal.table_set st.table r.origin (r.op, r.lsn)

let adopt_chunk st (c : Wal.chunk) =
  st.active_chunk <- Some c;
  st.count <- max st.count (c.base + List.length c.recs);
  List.iter (fun r -> merge_record st r) c.recs

let rec do_append st ~origin ~oseq k =
  match List.assoc_opt origin st.table with
  | Some (op, v) when op >= oseq -> k v  (* already durable: replay ack *)
  | _ -> (
      match st.active_chunk with
      | Some c when List.length c.recs >= st.chunk_records ->
          (* Roll before appending; also heals a crash that died between
             filling a chunk and advancing the manifest. *)
          let desired = st.manifest.active + 1 in
          manifest_advance st
            (fun m -> { m with Wal.active = max m.Wal.active desired })
            (fun () ->
              st.active_chunk <- None;
              do_append st ~origin ~oseq k)
      | cur ->
          let base =
            match cur with
            | Some c -> c.Wal.base
            | None -> st.manifest.Wal.active * st.chunk_records
          in
          let lsn = st.count in
          let rec_ = { Wal.lsn; origin; op = oseq } in
          let recs = match cur with Some c -> c.Wal.recs | None -> [] in
          let next = { Wal.base; recs = recs @ [ rec_ ] } in
          let key = Wal.chunk_key st.manifest.Wal.active in
          let value = Wal.encode_chunk next in
          let req =
            if st.cas then
              Sim.Store.Cas
                {
                  key;
                  expect = Option.map Wal.encode_chunk cur;
                  value;
                }
            else Sim.Store.Put { key; value }
          in
          rpc st req (function
            | Sim.Store.Written ->
                st.active_chunk <- Some next;
                st.count <- lsn + 1;
                st.table <- Wal.table_set st.table origin (oseq, lsn);
                k lsn
            | Sim.Store.Conflict None ->
                (* Expected content, found nothing: resync and retry. *)
                st.active_chunk <- None;
                do_append st ~origin ~oseq k
            | Sim.Store.Conflict (Some enc) -> (
                match Wal.decode_chunk enc with
                | Ok c ->
                    (* Adopt what actually landed; the dedup re-check at
                       the top treats our own lost-response write as
                       done instead of applying it twice. *)
                    adopt_chunk st c;
                    do_append st ~origin ~oseq k
                | Error e -> wedge st ("chunk corrupt: " ^ e))
            | _ -> wedge st "unexpected store response to append"))

let ack_origin st ~origin ~oseq ~value =
  Wal.Monitor.note_ack st.monitor value;
  if origin = st.writer then begin
    if
      st.cur_origin = origin
      && oseq = st.oseqs.(origin)
      && not st.op_served
    then begin
      st.op_served <- true;
      st.op_value <- value
    end
  end
  else Sim.Network.send st.net ~src:st.writer ~dst:origin (Inc_ack { oseq; value })

let rec maybe_snapshot st k =
  if st.count - st.manifest.Wal.snap >= st.snap_every then begin
    let s = { Wal.covered = st.count; table = st.table } in
    rpc st
      (Sim.Store.Put
         { key = Wal.snap_key st.count; value = Wal.encode_snapshot s })
      (function
        | Sim.Store.Written ->
            let prev_snap = st.manifest.Wal.snap in
            manifest_advance st
              (fun m -> { m with Wal.snap = max m.Wal.snap s.Wal.covered })
              (fun () ->
                if prev_snap > 0 then
                  rpc st (Sim.Store.Delete (Wal.snap_key prev_snap)) (function
                    | Sim.Store.Deleted -> k ()
                    | _ -> wedge st "unexpected store response to snap GC")
                else k ())
        | _ -> wedge st "unexpected store response to snapshot")
  end
  else k ()

and maybe_gc st k =
  (* Chunk j is fully covered once (j+1) * chunk_records <= snap. *)
  let new_low =
    min (st.manifest.Wal.snap / st.chunk_records) st.manifest.Wal.active
  in
  if new_low > st.manifest.Wal.low then begin
    let old_low = st.manifest.Wal.low in
    manifest_advance st
      (fun m -> { m with Wal.low = max m.Wal.low new_low })
      (fun () -> delete_chunks st old_low (new_low - 1) k)
  end
  else k ()

and delete_chunks st idx last k =
  if idx > last then k ()
  else
    rpc st (Sim.Store.Delete (Wal.chunk_key idx)) (function
      | Sim.Store.Deleted -> delete_chunks st (idx + 1) last k
      | _ -> wedge st "unexpected store response to chunk GC")

let rec process_next st =
  match st.phase with
  | Recovering -> ()
  | Ready -> (
      if not st.busy then
        match st.inc_queue with
        | [] -> ()
        | (origin, oseq) :: rest ->
            st.inc_queue <- rest;
            st.busy <- true;
            do_append st ~origin ~oseq (fun value ->
                ack_origin st ~origin ~oseq ~value;
                maybe_snapshot st (fun () ->
                    maybe_gc st (fun () ->
                        st.busy <- false;
                        process_next st))))

let enqueue st ~origin ~oseq =
  if
    not
      (List.exists (fun (o, s) -> o = origin && s = oseq) st.inc_queue)
  then st.inc_queue <- st.inc_queue @ [ (origin, oseq) ]

(* ------------------------------------------------------------------ *)
(* Recovery: triggered by the first delivery reaching the writer after
   a revival. Wipe the volatile state, bump the incarnation round (every
   armed writer timer dies), then over RPCs: read the manifest
   (CAS-creating it if the store is virgin), fence older incarnations by
   bumping the epoch, fetch the snapshot, list-and-fetch the live
   chunks, and replay — the same {!Wal.replay} the offline audit uses.
   Increments that arrive meanwhile queue behind the recovery. *)

let recovery_failed st e =
  wedge st ("recovery failed: " ^ e)

let rec start_recovery st =
  st.round <- st.round + 1;
  st.phase <- Recovering;
  st.busy <- false;
  st.inflight <- None;
  st.inc_queue <- [];
  st.count <- 0;
  st.table <- [];
  st.manifest <- Wal.initial_manifest;
  st.manifest_exists <- false;
  st.active_chunk <- None;
  rpc st (Sim.Store.Get Wal.manifest_key) (function
    | Sim.Store.Value None ->
        st.manifest_exists <- false;
        st.manifest <- Wal.initial_manifest;
        recover_fence st
    | Sim.Store.Value (Some enc) -> (
        match Wal.decode_manifest enc with
        | Ok m ->
            st.manifest_exists <- true;
            st.manifest <- m;
            recover_fence st
        | Error e -> recovery_failed st e)
    | _ -> recovery_failed st "unexpected response to manifest read")

and recover_fence st =
  let desired = st.manifest.Wal.epoch + 1 in
  manifest_advance st
    (fun m -> { m with Wal.epoch = max m.Wal.epoch desired })
    (fun () -> recover_snapshot st)

and recover_snapshot st =
  if st.manifest.Wal.snap = 0 then recover_list st None
  else
    rpc st (Sim.Store.Get (Wal.snap_key st.manifest.Wal.snap)) (function
      | Sim.Store.Value None ->
          recovery_failed st "manifest names a missing snapshot"
      | Sim.Store.Value (Some enc) -> (
          match Wal.decode_snapshot enc with
          | Ok s -> recover_list st (Some s)
          | Error e -> recovery_failed st e)
      | _ -> recovery_failed st "unexpected response to snapshot read")

and recover_list st snap =
  rpc st (Sim.Store.List Wal.chunk_prefix) (function
    | Sim.Store.Keys keys ->
        let live =
          List.filter_map
            (fun k ->
              match Wal.chunk_index_of_key k with
              | Some idx
                when idx >= st.manifest.Wal.low && idx <= st.manifest.Wal.active
                ->
                  Some idx
              | Some _ | None -> None)
            keys
        in
        recover_chunks st snap live []
    | _ -> recovery_failed st "unexpected response to chunk listing")

and recover_chunks st snap idxs acc =
  match idxs with
  | [] -> recover_finish st snap (List.rev acc)
  | idx :: rest ->
      rpc st (Sim.Store.Get (Wal.chunk_key idx)) (function
        | Sim.Store.Value None ->
            (* Deleted between listing and read: GC'd, hence covered. *)
            recover_chunks st snap rest acc
        | Sim.Store.Value (Some enc) -> (
            match Wal.decode_chunk enc with
            | Ok c -> recover_chunks st snap rest ((idx, c) :: acc)
            | Error e -> recovery_failed st e)
        | _ -> recovery_failed st "unexpected response to chunk read")

and recover_finish st snap fetched =
  match Wal.replay st.manifest snap (List.map snd fetched) with
  | Error e -> recovery_failed st e
  | Ok (count, table) ->
      st.count <- count;
      st.table <- table;
      st.active_chunk <-
        List.assoc_opt st.manifest.Wal.active fetched;
      st.phase <- Ready;
      st.replays <- st.replays + 1;
      Wal.Monitor.note_recovered_count st.monitor count;
      process_next st

let maybe_detect_recovery st =
  let recs = Sim.Network.recoveries_of st.net st.writer in
  if recs > st.known_recoveries then begin
    st.known_recoveries <- recs;
    start_recovery st
  end

(* ------------------------------------------------------------------ *)
(* Message handler and origin-side retry machinery. *)

let handle st ~self ~src:_ payload =
  match payload with
  | S_req { rid; req } ->
      if self = st.store_id then
        Sim.Store.serve st.store st.net req
          ~reply:(fun ?extra_delay resp ->
            let send () =
              Sim.Network.send st.net ~src:st.store_id ~dst:st.writer
                (S_resp { rid; resp })
            in
            match extra_delay with
            | Some d -> Sim.Network.schedule_local st.net ~delay:d send
            | None -> send ())
  | S_resp { rid; resp } ->
      if self = st.writer then begin
        maybe_detect_recovery st;
        match st.inflight with
        | Some (rid', _, k) when rid' = rid -> (
            match resp with
            | Sim.Store.Unavailable when st.armed ->
                (* Outage window: leave the RPC in flight, the armed
                   retry timer re-sends after backoff. *)
                ()
            | _ ->
                st.inflight <- None;
                k resp)
        | Some _ | None -> ()  (* stale or duplicated response *)
      end
  | Inc_req { origin; oseq } ->
      if self = st.writer then begin
        maybe_detect_recovery st;
        enqueue st ~origin ~oseq;
        process_next st
      end
  | Inc_ack { oseq; value } ->
      if
        self = st.cur_origin
        && self >= 1 && self <= st.n
        && oseq = st.oseqs.(self)
        && not st.op_served
      then begin
        st.op_served <- true;
        st.op_value <- value
      end

let rec origin_attempt st ~origin ~oseq =
  if st.armed && st.op_attempts >= st.max_attempts then begin
    if st.stall_reason = None then
      st.stall_reason <-
        Some (Printf.sprintf "gave up after %d attempts" st.op_attempts)
  end
  else begin
    st.op_attempts <- st.op_attempts + 1;
    Sim.Network.send st.net ~src:origin ~dst:st.writer (Inc_req { origin; oseq });
    if st.armed then begin
      let r = st.op_round in
      let timeout = st.op_timeout in
      st.op_timeout <- st.op_timeout *. 2.;
      Sim.Network.schedule_local st.net ~delay:timeout (fun () ->
          if
            r = st.op_round && (not st.op_served)
            && not (Sim.Network.crashed st.net origin)
          then origin_attempt st ~origin ~oseq)
    end
  end

(* ------------------------------------------------------------------ *)

let create_raw ?seed ?delay ?faults ?(cas = true)
    ?(chunk_records = default_chunk_records) ?(snap_every = default_snap_every)
    ~n () =
  if n < 1 then invalid_arg "Durable_counter.create_raw: n must be >= 1";
  if chunk_records < 1 then
    invalid_arg "Durable_counter.create_raw: chunk_records must be >= 1";
  if snap_every < 1 then
    invalid_arg "Durable_counter.create_raw: snap_every must be >= 1";
  let net = Sim.Network.create ?seed ?delay ?faults ~n ~label () in
  let store = Sim.Store.create () in
  let monitor = Wal.Monitor.create () in
  Wal.Monitor.attach monitor store;
  let armed =
    match faults with Some f -> not (Sim.Fault.is_none f) | None -> false
  in
  let max_attempts = if Sim.Network.has_scheduler net then 24 else 8 in
  let st =
    {
      net;
      store;
      monitor;
      n;
      writer = 1;
      store_id = n + 1;
      cas;
      chunk_records;
      snap_every;
      armed;
      max_attempts;
      phase = Ready;
      round = 0;
      count = 0;
      table = [];
      manifest = Wal.initial_manifest;
      manifest_exists = false;
      active_chunk = None;
      inc_queue = [];
      busy = false;
      rid = 0;
      inflight = None;
      rpc_attempts = 0;
      rpc_timeout = initial_timeout;
      known_recoveries = 0;
      wedged = None;
      oseqs = Array.make (n + 1) 0;
      op_round = 0;
      cur_origin = 0;
      op_served = false;
      op_value = -1;
      op_attempts = 0;
      op_timeout = initial_timeout;
      stall_reason = None;
      replays = 0;
      traces_rev = [];
    }
  in
  (* Store RPCs are retried; FIFO delivery into the store would shield
     the CAS from ever seeing a reordered stale request, so the model
     checker gets every interleaving of pending store traffic. *)
  Sim.Network.declare_unordered net st.store_id;
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st

let create ?seed ?delay ?faults ~n () = create_raw ?seed ?delay ?faults ~n ()

let n t = t.n

let crashed t p = Sim.Network.crashed t.net p

let value t =
  (* The durable truth: what a fresh recovery would reconstruct. With
     no faults this equals the number of completed increments. *)
  match Wal.audit t.store with Ok (count, _) -> count | Error _ -> t.count

let metrics t = Sim.Network.metrics t.net

let traces t = List.rev t.traces_rev

let replays t = t.replays

let live_count t = t.count

let store t = t.store

let spec_violation t = Wal.Monitor.violation t.monitor

let inc t ~origin =
  if origin < 1 || origin > t.n then
    invalid_arg "Durable_counter.inc: origin out of range";
  Sim.Network.begin_op t.net ~origin;
  t.cur_origin <- origin;
  t.op_served <- false;
  t.op_value <- -1;
  t.op_attempts <- 0;
  t.op_timeout <- initial_timeout;
  t.stall_reason <- None;
  t.oseqs.(origin) <- t.oseqs.(origin) + 1;
  let oseq = t.oseqs.(origin) in
  (match t.wedged with
  | Some r -> if t.stall_reason = None then t.stall_reason <- Some r
  | None ->
      if Sim.Network.crashed t.net origin then
        t.stall_reason <-
          Some (Printf.sprintf "origin processor %d is crashed" origin)
      else if origin = t.writer then begin
        maybe_detect_recovery t;
        enqueue t ~origin ~oseq;
        process_next t
      end
      else origin_attempt t ~origin ~oseq);
  ignore (Sim.Network.run_to_quiescence t.net);
  let trace = Sim.Network.end_op t.net in
  t.traces_rev <- trace :: t.traces_rev;
  t.op_round <- t.op_round + 1;
  (match Wal.Monitor.violation t.monitor with
  | Some v -> stall ("spec: " ^ v)
  | None -> ());
  if t.op_served then t.op_value
  else
    stall
      (match t.stall_reason with
      | Some r -> r
      | None ->
          if Sim.Network.crashed t.net origin then
            "origin crashed mid-operation"
          else if t.phase = Recovering then "writer still recovering"
          else "no value returned")

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let clone t =
  let net = Sim.Network.clone_quiescent t.net in
  let store = Sim.Store.copy t.store in
  let monitor = Wal.Monitor.copy t.monitor in
  Wal.Monitor.attach monitor store;
  let st =
    {
      t with
      net;
      store;
      monitor;
      oseqs = Array.copy t.oseqs;
      traces_rev = t.traces_rev;
    }
  in
  Sim.Network.set_handler net (fun ~self ~src payload ->
      handle st ~self ~src payload);
  st
