(* Failure-aware retirement-tree counter.

   Same engine as Retire_counter (Retire_plumbing) plus a failure-aware
   client at the operation's origin, reusing the round-stamped attempt
   machinery of the quorum counters' client: every armed timer carries the
   round it was armed in and fires into nothing if the round has moved on.

   One inc under faults runs:

     attempt:  (re)send the Inc up the tree, arm a timeout (doubling,
               initial 32 virtual-time units, at most 8 attempts);
     audit:    on timeout, ping the current worker of every inner node on
               the origin's root path and arm a second timer;
     conclude: workers still silent — or answering from a post-recovery
               identity that was never re-hired (their pre-crash role
               state is stale) — are deposed: each suspect role is
               emergency-retired to a fresh processor, reconstructing the
               lost job description from the parent/children state the
               origin can still reach instead of the normal Handoff from
               the (dead) incumbent; then a fresh attempt starts.

   Replacement processors come first from the rejoin pool (processors
   that crashed and later recovered re-enter the allocator here — they
   never resume their stale roles) and then from the overflow allocator,
   up to an emergency budget of [overflow_pool] hires (default 2n). A
   crashed processor can hold at most two roles (root plus one inner
   node), so f crashes force at most 2f emergency hires: every
   live-origin inc completes whenever crashes < overflow-pool size (see
   docs/FAULTS.md).

   With no fault plan ([Fault.none]) the failure-aware client is disarmed
   and this counter is observably identical — send for send — to
   Retire_counter; the goldens in test_retire_ft.ml pin that. *)

module P = Retire_plumbing

type config = P.config = { arity : int; depth : int; retire_threshold : int }

let paper_config = P.paper_config
let config_n = P.config_n

type t = P.t

let name = "retire-ft"

let describe =
  "failure-aware retirement tree: timeouts audit the inc path, \
   emergency-retire dead workers, rehire recovered processors (Section 4 \
   + docs/FAULTS.md)"

let supported_n n = Params.round_up_n (max 1 n)
let who = "Retire_ft"

(* Virtual-time budget for the first attempt; doubled on every retry. *)
let initial_timeout = 32.
let max_attempts = 8

let next_round st =
  st.P.round <- st.P.round + 1;
  st.P.round

(* Inner nodes on the origin's path, leaf parent first, root last. *)
let path_nodes st origin =
  let rec up node acc =
    let acc = node :: acc in
    match Tree.parent st.P.tree node with
    | None -> List.rev acc
    | Some p -> up p acc
  in
  up (Tree.leaf_parent st.P.tree ~leaf:origin) []

(* Pull processors that recovered since we last looked into the rejoin
   pool, exactly once each ([rejoin_seen] remembers them even after they
   are hired or crash again). *)
let refresh_rejoin_pool st =
  let fresh =
    List.filter
      (fun p -> not (List.mem p st.P.rejoin_seen))
      (Sim.Network.recovered_processors st.P.net)
  in
  match fresh with
  | [] -> ()
  | _ :: _ ->
      st.P.rejoin_seen <- fresh @ st.P.rejoin_seen;
      st.P.rejoin_pool <- st.P.rejoin_pool @ fresh

(* Rejoin pool first (free — those processors already exist), then the
   overflow allocator against the emergency budget. *)
let rec hire_replacement st =
  match st.P.rejoin_pool with
  | p :: rest ->
      st.P.rejoin_pool <- rest;
      if Sim.Network.crashed st.P.net p then hire_replacement st
      else begin
        st.P.fresh_hires <- p :: st.P.fresh_hires;
        Some p
      end
  | [] ->
      if st.P.emergency_hires >= st.P.overflow_pool then None
      else begin
        st.P.emergency_hires <- st.P.emergency_hires + 1;
        let rec first_alive v =
          if Sim.Network.crashed st.P.net v then first_alive (v + 1) else v
        in
        let v = first_alive st.P.overflow_next in
        st.P.overflow_next <- v + 1;
        Some v
      end

(* Depose a (presumed-dead) worker: re-staff the role and reconstruct its
   job description from the node record — the parent/children state the
   origin can still consult — because the incumbent cannot hand anything
   off. The messages are sent by the detecting origin. Returns false when
   the emergency budget is exhausted (the op will stall). *)
let emergency_retire st node =
  match hire_replacement st with
  | None ->
      st.P.stall_reason <- Some "emergency overflow pool exhausted";
      false
  | Some successor ->
      let nd = st.P.nodes.(node) in
      (* Part of the reconstruction: the corpse's parent pointer may be
         stale (the corpse could even have been its own parent's worker),
         so the origin re-derives it from the node records. Suspects are
         deposed root-first, so a deposed parent's fresh worker is already
         in place here. *)
      (match Tree.parent st.P.tree node with
      | Some p -> nd.P.believed_parent_worker <- st.P.nodes.(p).P.worker
      | None -> ());
      nd.P.worker <- successor;
      nd.P.age <- 0;
      nd.P.retirements <- nd.P.retirements + 1;
      st.P.total_retirements <- st.P.total_retirements + 1;
      st.P.emergency_nodes_rev <- node :: st.P.emergency_nodes_rev;
      Sim.Metrics.on_emergency_retirement (Sim.Network.metrics st.P.net);
      let src = st.P.cur_origin in
      if st.P.emergency_handoff then begin
        P.send_job_description st nd ~src ~successor;
        P.send_announcements st nd ~src ~successor
      end
      else begin
        (* The deliberately-broken negative control (Baselines.ft-no-handoff):
           the role is re-staffed but the job description is never
           reconstructed — a fresh root worker restarts the count at zero,
           which the model checker catches as a duplicate value. *)
        if node = Tree.root then st.P.value <- 0;
        P.send_announcements st nd ~src ~successor
      end;
      true

let rec start_attempt st =
  if st.P.attempts >= max_attempts then begin
    ignore (next_round st);
    if st.P.stall_reason = None then
      st.P.stall_reason <-
        Some (Printf.sprintf "gave up after %d attempts" st.P.attempts)
  end
  else begin
    st.P.attempts <- st.P.attempts + 1;
    let r = next_round st in
    let origin = st.P.cur_origin in
    (* Re-read the leaf's parent worker from the node record: the
       New_worker announcement correcting a stale belief may have died
       with its sender, and re-sending into a corpse's mailbox would
       waste the whole attempt. *)
    let lp = Tree.leaf_parent st.P.tree ~leaf:origin in
    st.P.leaf_believed_parent.(origin - 1) <- st.P.nodes.(lp).P.worker;
    P.launch st ~origin;
    let timeout = st.P.cur_timeout in
    st.P.cur_timeout <- st.P.cur_timeout *. 2.;
    Sim.Network.schedule_local st.P.net ~delay:timeout (fun () ->
        if st.P.round = r && not st.P.op_served then start_audit st)
  end

and start_audit st =
  if Sim.Network.crashed st.P.net st.P.cur_origin then begin
    ignore (next_round st);
    st.P.stall_reason <- Some "origin crashed mid-operation"
  end
  else begin
    let r = next_round st in
    let origin = st.P.cur_origin in
    let pend =
      List.map
        (fun node -> (node, st.P.nodes.(node).P.worker))
        (path_nodes st origin)
    in
    st.P.audit_pending <- pend;
    List.iter
      (fun (node, w) ->
        Sim.Network.send st.P.net ~src:origin ~dst:w
          (P.Ping { node; round = r }))
      pend;
    Sim.Network.schedule_local st.P.net ~delay:st.P.cur_timeout (fun () ->
        if st.P.round = r then conclude_audit st)
  end

and conclude_audit st =
  if Sim.Network.crashed st.P.net st.P.cur_origin then begin
    ignore (next_round st);
    st.P.stall_reason <- Some "origin crashed mid-operation"
  end
  else begin
    ignore (next_round st);
    refresh_rejoin_pool st;
    (* Depose root-first: a node's emergency handoff reads its parent's
       current worker, so parents must be re-staffed before children. *)
    let suspects = List.rev st.P.audit_pending in
    st.P.audit_pending <- [];
    let ok =
      List.fold_left
        (fun ok (node, w) ->
          (* Depose only the worker we actually pinged: if the role was
             re-staffed while the audit was out (a normal retirement
             overtook it), the new worker is innocent. *)
          if ok && st.P.nodes.(node).P.worker = w then emergency_retire st node
          else ok)
        true suspects
    in
    if ok then begin
      (* Repair dead-stale route pointers along the path: a live path
         node may still believe its parent is served by a corpse (the
         announcement that would have re-addressed it died with its
         sender — stale-forwarding only helps when the old worker is
         alive to forward). One New_worker message per broken link,
         sent by the auditing origin, re-addresses the route. *)
      let origin = st.P.cur_origin in
      List.iter
        (fun node ->
          match Tree.parent st.P.tree node with
          | None -> ()
          | Some parent ->
              let nd = st.P.nodes.(node) in
              let current = st.P.nodes.(parent).P.worker in
              if
                nd.P.believed_parent_worker <> current
                && Sim.Network.crashed st.P.net nd.P.believed_parent_worker
              then
                Sim.Network.send st.P.net ~src:origin ~dst:nd.P.worker
                  (P.New_worker
                     { about = parent; worker = current; dest = P.To_node node }))
        (path_nodes st origin);
      start_attempt st
    end
  end

let install st =
  Sim.Network.set_handler st.P.net (fun ~self ~src payload ->
      match payload with
      | P.Pong { node; round } ->
          if st.P.failure_aware && round = st.P.round then begin
            (* A pong from a processor that crashed and recovered but was
               never re-hired is tainted: its role state predates the
               crash. Leave it on the suspect list — the audit deposes it
               and the allocator re-hires it into a fresh role instead. *)
            let tainted =
              Sim.Network.recovered st.P.net src
              && not (List.mem src st.P.fresh_hires)
            in
            if not tainted then
              st.P.audit_pending <-
                List.filter (fun (nd, _) -> nd <> node) st.P.audit_pending
          end
      | P.Value _ ->
          P.handle st ~self ~src payload;
          (* Operation complete: invalidate every armed timer. *)
          if st.P.failure_aware && self = st.P.cur_origin then
            ignore (next_round st)
      | _ -> P.handle st ~self ~src payload);
  st

let create_with ?seed ?delay ?faults ?(emergency_handoff = true)
    ?overflow_pool cfg =
  let failure_aware =
    match faults with Some f -> not (Sim.Fault.is_none f) | None -> false
  in
  install
    (P.create_state ?seed ?delay ?faults ~failure_aware ~emergency_handoff
       ?overflow_pool ~who cfg)

let create ?seed ?delay ?faults ~n () =
  match Params.k_of_n_exact n with
  | Some k -> create_with ?seed ?delay ?faults (paper_config ~k)
  | None ->
      invalid_arg
        (Printf.sprintf
           "Retire_ft.create: n = %d is not of the form k^(k+1); use \
            supported_n"
           n)

let n = P.n
let config = P.config
let tree = P.tree
let value = P.value
let metrics = P.metrics
let traces = P.traces
let node_worker = P.node_worker
let node_age = P.node_age
let retirements_of_node = P.retirements_of_node
let total_retirements = P.total_retirements
let stale_forwards = P.stale_forwards
let max_message_bits = P.max_message_bits
let total_bits = P.total_bits
let believed_consistent = P.believed_consistent
let crashed = P.crashed
let emergency_nodes = P.emergency_nodes
let failure_aware t = t.P.failure_aware
let emergency_hires t = t.P.emergency_hires
let rejoin_pool t = t.P.rejoin_pool
let last_attempts t = max 1 t.P.attempts

let inc t ~origin =
  if not t.P.failure_aware then P.inc ~who t ~origin
  else begin
    P.check_origin ~who t origin;
    Sim.Network.begin_op t.P.net ~origin;
    t.P.completed_rev <- [];
    t.P.cur_origin <- origin;
    t.P.op_served <- false;
    t.P.stall_reason <- None;
    t.P.attempts <- 0;
    t.P.cur_timeout <- initial_timeout;
    t.P.emergency_nodes_rev <- [];
    t.P.audit_pending <- [];
    refresh_rejoin_pool t;
    (if Sim.Network.crashed t.P.net origin then
       t.P.stall_reason <- Some "origin processor is crashed"
     else start_attempt t);
    ignore (Sim.Network.run_to_quiescence t.P.net);
    let trace = Sim.Network.end_op t.P.net in
    t.P.traces_rev <- trace :: t.P.traces_rev;
    ignore (next_round t);
    match
      List.find_opt (fun (o, _, _) -> o = origin) (List.rev t.P.completed_rev)
    with
    | Some (_, value, _) -> value
    | None ->
        let reason =
          match t.P.stall_reason with
          | Some r -> r
          | None ->
              (* The audit machinery only records a reason when it runs;
                 an origin that dies after being served (its value message
                 dropped on delivery) leaves no reason behind. *)
              if Sim.Network.crashed t.P.net origin then
                "origin crashed mid-operation"
              else "no value returned"
        in
        raise (Counter.Counter_intf.Stall ("Retire_ft.inc: " ^ reason))
  end

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)

let clone t = install (P.clone_state t)
