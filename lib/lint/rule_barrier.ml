(* R2 — barrier publication.

   The sharded engine's happens-before edge is the Mutex-guarded round
   handshake: workers publish results (mail outboxes, per-shard stats),
   then take ctrl.m, bump the done-count and Condition.signal the
   coordinator. A worker write that happens *after* its signal — and
   outside any mutex bracket — races the coordinator, which may already
   be reading the round's results. Position relative to the signal is
   resolved textually within the function, the same way a reviewer
   checks the handshake. *)

let check ctx str =
  let info = Dataflow.analyse str in
  List.iter
    (fun (a : Dataflow.access) ->
      let fires =
        (match a.Dataflow.side with Worker -> true | Coordinator -> false)
        && (match a.Dataflow.kind with Write -> true | Read -> false)
        && a.Dataflow.post_signal
        && not a.Dataflow.locked
      in
      if fires then
        Rule.emit ctx ~loc:a.Dataflow.loc ~rule:"R2"
          ~message:
            (Printf.sprintf
               "worker writes '%s' after the barrier handshake \
                (Condition.signal) — the coordinator may already be \
                reading it"
               a.Dataflow.key)
          ~hint:
            "publish every worker result before signalling round \
             completion, or take the round mutex around the late write")
    info.Dataflow.accesses

let rule =
  {
    Rule.id = "R2";
    name = "barrier-publication";
    summary =
      "worker results must be published before the round-barrier \
       signal; no post-barrier mutation";
    check;
  }
