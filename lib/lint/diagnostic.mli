(** One [dlint] finding: a rule violation anchored at a source location.

    Diagnostics are plain data; the driver sorts, filters (suppression)
    and renders them. [offset] is the byte offset of the anchor within
    the file — suppression ranges are byte ranges, so filtering does not
    have to re-derive positions. *)

type t = {
  file : string;  (** path as scanned, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  offset : int;  (** byte offset of the anchor in the file *)
  rule : string;  (** rule id, e.g. "D1" *)
  message : string;  (** what is wrong, one sentence *)
  hint : string;  (** how to fix it, one sentence *)
}

val v :
  file:string ->
  loc:Ppxlib.Location.t ->
  rule:string ->
  message:string ->
  hint:string ->
  t
(** Build a diagnostic anchored at [loc]'s start position. *)

val family_of_rule : string -> string
(** Rule family carried by the id scheme: D* → "determinism", P* →
    "protocol", R* → "drace", anything else → "parse" (the E0 parse
    pseudo-rule). *)

val family : t -> string
(** [family_of_rule] of this diagnostic's rule id. *)

val order : t -> t -> int
(** Sort key: file, then line, then column, then rule id. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [RULE] message (hint: ...)] on one line. *)

val to_json : t -> Analysis.Json.t
