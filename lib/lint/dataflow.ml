(* Mechanism behind the drace rules (R1–R3): spawn-context discovery and
   mutable-access collection. The model and its documented blind spots
   live in dataflow.mli and docs/LINT.md.

   The file is cut into "chunks": every named function binding is one
   chunk, every literal [Domain.spawn] argument is one chunk, and the
   residue of the structure is one more. A chunk is Worker if it is a
   spawn argument or a binding transitively referenced from one
   (call-graph over bare names, intra-file), else Coordinator. Lock
   brackets, join points and barrier signals are resolved per chunk by
   byte offset — the same approximation a reviewer makes reading the
   function top to bottom. *)

type side = Worker | Coordinator

type kind = Read | Write

type access = {
  root : string;
  key : string;
  kind : kind;
  indexed : bool;
  side : side;
  locked : bool;
  post_join : bool;
  post_signal : bool;
  loc : Ppxlib.Location.t;
  offset : int;
}

type info = {
  spawns : int;
  accesses : access list;
  worker_bodies : Ppxlib.expression list;
}

(* ------------------------------------------------------------------ *)
(* Identifier paths *)

let rec path_of (lid : Ppxlib.Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> ( match path_of l with [] -> [] | p -> p @ [ s ])
  | Lapply _ -> []

let last_of p = List.fold_left (fun _ x -> x) "" p

(* (enclosing module component, member): [Sim.Rng.int] -> ("Rng", "int"),
   bare [ref] -> ("", "ref"). *)
let mod_member (lid : Ppxlib.Longident.t) =
  match List.rev (path_of lid) with
  | [] -> None
  | [ x ] -> Some ("", x)
  | x :: m :: _ -> Some (m, x)

let rec root_of (e : Ppxlib.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } -> Some (x, [])
  | Pexp_ident { txt; _ } -> (
      (* module-qualified value: global state, keyed by its full path *)
      match path_of txt with
      | [] -> None
      | p -> Some (String.concat "." p, []))
  | Pexp_field (b, { txt; _ }) -> (
      match root_of b with
      | Some (r, fs) -> Some (r, fs @ [ last_of (path_of txt) ])
      | None -> None)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, b) :: _)
    when (match mod_member txt with
         | Some
             ( ("Array" | "Bytes" | "String"),
               ("get" | "set" | "unsafe_get" | "unsafe_set") ) ->
             true
         | Some _ | None -> false) ->
      root_of b
  | Pexp_constraint (b, _) -> root_of b
  | _ -> None

let key_of (r, fs) = match fs with [] -> r | f :: _ -> r ^ "." ^ f

(* ------------------------------------------------------------------ *)
(* Syntactic tables *)

(* (module, member, kind, indexed, index of the state operand among the
   unlabelled arguments). Pseudo-module "" covers bare operators. *)
let call_table =
  [
    ("", ":=", Write, false, 0);
    ("", "!", Read, false, 0);
    ("", "incr", Write, false, 0);
    ("", "decr", Write, false, 0);
    ("Array", "set", Write, true, 0);
    ("Array", "unsafe_set", Write, true, 0);
    ("Array", "get", Read, true, 0);
    ("Array", "unsafe_get", Read, true, 0);
    ("Array", "fill", Write, false, 0);
    ("Array", "blit", Write, false, 2);
    ("Array", "sort", Write, false, 1);
    ("Array", "iter", Read, false, 1);
    ("Array", "iteri", Read, false, 1);
    ("Array", "map", Read, false, 1);
    ("Array", "mapi", Read, false, 1);
    ("Array", "exists", Read, false, 1);
    ("Array", "for_all", Read, false, 1);
    ("Array", "fold_left", Read, false, 2);
    ("Array", "length", Read, false, 0);
    ("Array", "to_list", Read, false, 0);
    ("Array", "copy", Read, false, 0);
    ("Array", "to_seq", Read, false, 0);
    ("Array", "sub", Read, false, 0);
    ("Bytes", "set", Write, true, 0);
    ("Bytes", "unsafe_set", Write, true, 0);
    ("Bytes", "get", Read, true, 0);
    ("Bytes", "unsafe_get", Read, true, 0);
    ("Bytes", "fill", Write, false, 0);
    ("Bytes", "blit", Write, false, 2);
    ("String", "get", Read, true, 0);
    ("Hashtbl", "add", Write, false, 0);
    ("Hashtbl", "replace", Write, false, 0);
    ("Hashtbl", "remove", Write, false, 0);
    ("Hashtbl", "reset", Write, false, 0);
    ("Hashtbl", "clear", Write, false, 0);
    ("Hashtbl", "filter_map_inplace", Write, false, 1);
    ("Hashtbl", "find", Read, false, 0);
    ("Hashtbl", "find_opt", Read, false, 0);
    ("Hashtbl", "find_all", Read, false, 0);
    ("Hashtbl", "mem", Read, false, 0);
    ("Hashtbl", "length", Read, false, 0);
    ("Hashtbl", "iter", Read, false, 1);
    ("Hashtbl", "fold", Read, false, 1);
    ("Hashtbl", "copy", Read, false, 0);
    ("Buffer", "add_string", Write, false, 0);
    ("Buffer", "add_char", Write, false, 0);
    ("Buffer", "add_bytes", Write, false, 0);
    ("Buffer", "add_substring", Write, false, 0);
    ("Buffer", "add_buffer", Write, false, 0);
    ("Buffer", "clear", Write, false, 0);
    ("Buffer", "reset", Write, false, 0);
    ("Buffer", "truncate", Write, false, 0);
    ("Buffer", "contents", Read, false, 0);
    ("Buffer", "length", Read, false, 0);
    ("Queue", "push", Write, false, 1);
    ("Queue", "add", Write, false, 1);
    ("Queue", "pop", Write, false, 0);
    ("Queue", "take", Write, false, 0);
    ("Queue", "clear", Write, false, 0);
    ("Queue", "peek", Read, false, 0);
    ("Queue", "length", Read, false, 0);
    ("Queue", "is_empty", Read, false, 0);
    ("Stack", "push", Write, false, 1);
    ("Stack", "pop", Write, false, 0);
    ("Stack", "top", Read, false, 0);
    ("Stack", "clear", Write, false, 0);
  ]

let classify_call lid =
  match mod_member lid with
  | None -> None
  | Some (m, x) ->
      List.find_opt
        (fun (m', x', _, _, _) -> String.equal m m' && String.equal x x')
        call_table

(* RHS shapes that build a value this chunk owns: accesses through a
   name bound to one of these are private until deliberately shared. *)
let creator_table =
  [
    ("", "ref");
    ("Array", "make");
    ("Array", "init");
    ("Array", "copy");
    ("Array", "of_list");
    ("Array", "append");
    ("Array", "sub");
    ("Array", "map");
    ("Array", "mapi");
    ("Hashtbl", "create");
    ("Buffer", "create");
    ("Bytes", "create");
    ("Bytes", "make");
    ("Bytes", "copy");
    ("Bytes", "of_string");
    ("Queue", "create");
    ("Stack", "create");
    ("Atomic", "make");
    ("Mutex", "create");
    ("Condition", "create");
    ("Rng", "create");
    ("Rng", "keyed");
    ("Rng", "split");
    ("Rng", "copy");
    ("Heap", "create");
    ("List", "init");
    ("List", "map");
    ("List", "filter");
    ("List", "filter_map");
    ("List", "rev");
    ("List", "sort");
    ("List", "append");
    ("List", "concat");
    ("List", "of_seq");
  ]

let rec is_creation (e : Ppxlib.expression) =
  match e.pexp_desc with
  | Pexp_constant _ | Pexp_construct _ | Pexp_variant _ | Pexp_tuple _
  | Pexp_record _ | Pexp_array _ | Pexp_function _ ->
      true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) | Pexp_lazy e ->
      is_creation e
  | Pexp_sequence (_, e) -> is_creation e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match mod_member txt with
      | Some (m, x) ->
          List.exists
            (fun (m', x') -> String.equal m m' && String.equal x x')
            creator_table
      | None -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Whole-file indices *)

let rec binder_name (p : Ppxlib.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binder_name p
  | _ -> None

let rec is_function (e : Ppxlib.expression) =
  match e.pexp_desc with
  | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function e
  | _ -> false

let is_spawn_ident (e : Ppxlib.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match mod_member txt with
      | Some ("Domain", "spawn") -> true
      | Some _ | None -> false)
  | _ -> false

(* Field names that can change after construction: targets of [<-]
   anywhere in the file, plus labels declared [mutable] in it. Reads of
   any other field are reads of immutable structure and never recorded. *)
let mutable_fields str =
  let acc = ref [] in
  let add f = if not (List.mem f !acc) then acc := f :: !acc in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_setfield (_, { txt; _ }, _) -> add (last_of (path_of txt))
        | _ -> ());
        super#expression e

      method! label_declaration ld =
        (match ld.pld_mutable with
        | Mutable -> add ld.pld_name.txt
        | Immutable -> ());
        super#label_declaration ld
    end
  in
  v#structure str;
  !acc

let function_bindings str =
  let acc = ref [] in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! value_binding vb =
        (match binder_name vb.pvb_pat with
        | Some name when is_function vb.pvb_expr ->
            acc := (name, vb.pvb_expr) :: !acc
        | Some _ | None -> ());
        super#value_binding vb
    end
  in
  v#structure str;
  List.rev !acc

let spawn_args str =
  let acc = ref [] in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply (f, args) when is_spawn_ident f ->
            List.iter
              (fun ((lbl : Ppxlib.arg_label), a) ->
                match lbl with
                | Nolabel -> acc := a :: !acc
                | Labelled _ | Optional _ -> ())
              args
        | _ -> ());
        super#expression e
    end
  in
  v#structure str;
  List.rev !acc

let referenced_names (e : Ppxlib.expression) =
  let acc = ref [] in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident x; _ } ->
            if not (List.mem x !acc) then acc := x :: !acc
        | _ -> ());
        super#expression e
    end
  in
  v#expression e;
  !acc

(* Names reachable from the seeds through binding bodies: the intra-file
   call-graph closure that makes "spawn context" cover helpers like
   Par.worker_loop -> run_job -> drain/process. *)
let reachable bindings seeds =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | name :: rest ->
        if List.mem name seen then go seen rest
        else
          let next =
            List.concat_map
              (fun (n, body) ->
                if String.equal n name then referenced_names body else [])
              bindings
          in
          let next = List.filter (fun n -> List.mem_assoc n bindings) next in
          go (name :: seen) (next @ rest)
  in
  go [] seeds

(* ------------------------------------------------------------------ *)
(* Per-chunk collection *)

type raw = {
  r_root : string;
  r_key : string;
  r_kind : kind;
  r_indexed : bool;
  r_loc : Ppxlib.Location.t;
  r_off : int;
}

let nth_nolabel args n =
  let rec go i = function
    | [] -> None
    | ((lbl : Ppxlib.arg_label), a) :: rest -> (
        match lbl with
        | Nolabel -> if i = n then Some a else go (i + 1) rest
        | Labelled _ | Optional _ -> go i rest)
  in
  go 0 args

(* One traversal gathers raw accesses, creation-bound local names and the
   offsets of the synchronization idents; flags are resolved after. The
   walker does not descend into nested chunk bodies (indexed function
   bindings, spawn arguments) — those are collected on their own. *)
let collect_chunk ~fbs ~mutflds node =
  let raws = ref [] in
  let fresh = ref [] in
  let locks = ref [] in
  let unlocks = ref [] in
  let joins = ref [] in
  let signals = ref [] in
  let off (l : Ppxlib.Location.t) = l.loc_start.pos_cnum in
  let add_raw ~root ~key ~kind ~indexed (loc : Ppxlib.Location.t) =
    raws :=
      {
        r_root = root;
        r_key = key;
        r_kind = kind;
        r_indexed = indexed;
        r_loc = loc;
        r_off = off loc;
      }
      :: !raws
  in
  let record (e : Ppxlib.expression) =
    match e.pexp_desc with
    | Pexp_setfield (b, { txt; _ }, _) -> (
        match root_of b with
        | Some (r, fs) ->
            add_raw ~root:r
              ~key:(key_of (r, fs @ [ last_of (path_of txt) ]))
              ~kind:Write ~indexed:false e.pexp_loc
        | None -> ())
    | Pexp_field (b, { txt; _ }) -> (
        let f = last_of (path_of txt) in
        if List.mem f mutflds then
          match root_of b with
          | Some (r, fs) ->
              add_raw ~root:r
                ~key:(key_of (r, fs @ [ f ]))
                ~kind:Read ~indexed:false e.pexp_loc
          | None -> ())
    | Pexp_ident { txt; loc } -> (
        match mod_member txt with
        | Some ("Mutex", "lock") -> locks := off loc :: !locks
        | Some ("Mutex", "unlock") -> unlocks := off loc :: !unlocks
        | Some ("Domain", "join") -> joins := off loc :: !joins
        | Some ("Condition", ("signal" | "broadcast")) ->
            signals := off loc :: !signals
        | Some _ | None -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        match classify_call txt with
        | Some (_, _, k, indexed, argn) -> (
            match nth_nolabel args argn with
            | Some a -> (
                match root_of a with
                | Some rf ->
                    add_raw ~root:(fst rf) ~key:(key_of rf) ~kind:k ~indexed
                      a.pexp_loc
                | None -> ())
            | None -> ())
        | None -> ())
    | _ -> ()
  in
  let v =
    object (self_)
      inherit Ppxlib.Ast_traverse.iter as super

      method! value_binding vb =
        match binder_name vb.pvb_pat with
        | Some name
          when is_function vb.pvb_expr && List.mem_assoc name fbs ->
            (* a chunk of its own; don't cross into it *)
            self_#pattern vb.pvb_pat
        | b ->
            (match b with
            | Some name when is_creation vb.pvb_expr ->
                if not (List.mem name !fresh) then fresh := name :: !fresh
            | Some _ | None -> ());
            super#value_binding vb

      method! expression e =
        match e.pexp_desc with
        | Pexp_apply (f, _) when is_spawn_ident f ->
            (* spawn arguments are their own Worker chunks *)
            self_#expression f
        | _ ->
            record e;
            super#expression e
    end
  in
  (match node with
  | `Structure str -> v#structure str
  | `Expression e -> v#expression e);
  ( List.rev !raws,
    !fresh,
    (!locks, !unlocks, !joins, !signals) )

let finalize ~side (raws, fresh, (locks, unlocks, joins, signals)) =
  let last_join = List.fold_left (fun a b -> if b > a then b else a) (-1) joins in
  List.filter_map
    (fun r ->
      let drop =
        match side with Worker -> List.mem r.r_root fresh | Coordinator -> false
      in
      if drop then None
      else
        Some
          {
            root = r.r_root;
            key = r.r_key;
            kind = r.r_kind;
            indexed = r.r_indexed;
            side;
            locked =
              List.exists (fun l -> l < r.r_off) locks
              && List.exists (fun u -> u > r.r_off) unlocks;
            post_join =
              (match side with
              | Coordinator -> last_join >= 0 && r.r_off > last_join
              | Worker -> false);
            post_signal =
              (match side with
              | Worker -> List.exists (fun s -> s < r.r_off) signals
              | Coordinator -> false);
            loc = r.r_loc;
            offset = r.r_off;
          })
    raws

(* ------------------------------------------------------------------ *)

let count_spawns str =
  let n = ref 0 in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        if is_spawn_ident e then incr n;
        super#expression e
    end
  in
  v#structure str;
  !n

let analyse str =
  let spawns = count_spawns str in
  if spawns = 0 then { spawns = 0; accesses = []; worker_bodies = [] }
  else begin
    let mutflds = mutable_fields str in
    let fbs = function_bindings str in
    let args = spawn_args str in
    let seeds =
      List.filter
        (fun n -> List.mem_assoc n fbs)
        (List.concat_map referenced_names args)
    in
    let workers = reachable fbs seeds in
    let worker_bodies =
      args
      @ List.filter_map
          (fun (n, b) -> if List.mem n workers then Some b else None)
          fbs
    in
    let chunk side node = finalize ~side (collect_chunk ~fbs ~mutflds node) in
    let accesses =
      chunk Coordinator (`Structure str)
      @ List.concat_map
          (fun (n, b) ->
            let side =
              if List.mem n workers then Worker else Coordinator
            in
            chunk side (`Expression b))
          fbs
      @ List.concat_map (fun a -> chunk Worker (`Expression a)) args
    in
    { spawns; accesses; worker_bodies }
  end
