(* D3 — polymorphic comparison.

   Bare [compare] (and [Stdlib.compare]/[Pervasives.compare]) compares
   whatever representation the operands happen to have. On abstract
   types — processor ids, messages, priorities — that couples sort
   orders and tie-breaks to representation details that are none of the
   protocol's business, and it breaks silently the day the type gains a
   constructor or a mutable field. Comparators must name their type:
   [Int.compare], [Float.compare], or the module's own [compare].

   A file that binds the name [compare] itself — a module-level
   definition or an explicit [~compare] parameter — is skipped entirely:
   the bare name then refers to a local, deliberately-chosen comparator,
   which is the idiom the rule is steering towards.

   [Hashtbl.Make] over an inline [struct ... end] is flagged for the
   same reason: it defaults hashing/equality decisions into an
   anonymous module where nobody will look for them. *)

let binds_compare str =
  let found = ref false in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt = "compare"; _ } -> found := true
        | _ -> ());
        super#pattern p
    end
  in
  v#structure str;
  !found

let check ctx str =
  if not (binds_compare str) then begin
    let v =
      object
        inherit Ppxlib.Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_ident
              {
                txt =
                  ( Lident "compare"
                  | Ldot (Lident ("Stdlib" | "Pervasives"), "compare") );
                loc;
              } ->
              Rule.emit ctx ~loc ~rule:"D3"
                ~message:
                  "polymorphic compare orders values by representation, not \
                   by type"
                ~hint:
                  "use a type-specific comparator (Int.compare, \
                   Float.compare, the module's own compare)"
          | _ -> ());
          super#expression e

        method! module_expr m =
          (match m.pmod_desc with
          | Pmod_apply
              ( {
                  pmod_desc =
                    Pmod_ident { txt = Ldot (Lident "Hashtbl", "Make"); _ };
                  _;
                },
                { pmod_desc = Pmod_structure _; pmod_loc; _ } ) ->
              Rule.emit ctx ~loc:pmod_loc ~rule:"D3"
                ~message:
                  "Hashtbl.Make over an inline struct hides the hash/equal \
                   choices for an abstract key"
                ~hint:
                  "pass a named module whose equal/hash are written against \
                   the key's declared representation"
          | _ -> ());
          super#module_expr m
      end
    in
    v#structure str
  end

let rule =
  {
    Rule.id = "D3";
    name = "polymorphic-compare";
    summary =
      "no bare compare / Stdlib.compare / inline Hashtbl.Make — comparators \
       must name their type";
    check;
  }
