(** Intra-file domain dataflow shared by the drace family (R1–R3).

    [analyse] finds every [Domain.spawn] site in a parsed implementation,
    computes the {e spawn context} — the closure arguments themselves plus
    every binding transitively reachable from them by name, intra-file —
    and collects mutable-state accesses on both sides of the domain
    boundary, each tagged with the syntactic protection evidence the rules
    reason about (mutex bracket, join publication, barrier signal).

    The analysis is deliberately name-based and file-local: roots are
    surface identifiers plus their first field ("sh.min_pub", "box"), so
    the same state reached through two aliases in different functions
    pairs up by name, not by points-to facts. What it cannot see —
    cross-module aliasing, first-class modules, index-disjointness of
    array slots, calls through opaque function parameters — is documented
    in docs/LINT.md; rules compensate with conservatism plus the
    [@dlint.allow] ledger. *)

type side = Worker | Coordinator

type kind = Read | Write

type access = {
  root : string;  (** surface root identifier, e.g. "sh" *)
  key : string;  (** root plus first field, e.g. "sh.min_pub" *)
  kind : kind;
  indexed : bool;  (** via [Array.set]/[get]-style indexed sugar *)
  side : side;
  locked : bool;
      (** a [Mutex.lock] precedes and a [Mutex.unlock] follows it in the
          same chunk *)
  post_join : bool;
      (** coordinator side: after the last [Domain.join] of its chunk *)
  post_signal : bool;
      (** worker side: after a [Condition.signal]/[broadcast] in its
          chunk — past the barrier handshake *)
  loc : Ppxlib.Location.t;
  offset : int;  (** byte offset, the deterministic sort/anchor key *)
}

type info = {
  spawns : int;  (** [Domain.spawn] occurrences in the file *)
  accesses : access list;  (** in traversal order *)
  worker_bodies : Ppxlib.expression list;
      (** spawn-argument expressions and the bodies of bindings reachable
          from them — the scope R3 walks directly *)
}

val analyse : Ppxlib.structure -> info
(** Empty ([spawns = 0]) for files that never spawn a domain, so rules
    short-circuit on the overwhelmingly common case. *)
