(* R1 — domain escape.

   Mutable state captured by a closure handed to Domain.spawn and also
   touched outside it is a data race unless every access carries
   syntactic protection evidence: an Atomic (never recorded as mutable
   access), a Mutex bracket in the same function (the ctrl.m pattern in
   lib/sim/par.ml), or the join-publication discipline (workers write,
   the coordinator reads only after Domain.join — Analysis.Replicate).
   Anything else needs its ownership argument written down in the
   [@dlint.allow "R1: ..."] ledger. One diagnostic per root per file,
   listing the racy fields, anchored at the earliest unprotected
   access. *)

let is_worker (a : Dataflow.access) =
  match a.Dataflow.side with Worker -> true | Coordinator -> false

let is_write (a : Dataflow.access) =
  match a.Dataflow.kind with Write -> true | Read -> false

let line (l : Ppxlib.Location.t) = l.loc_start.pos_lnum

let earliest l =
  match l with
  | [] -> None
  | a :: rest ->
      Some
        (List.fold_left
           (fun (best : Dataflow.access) (x : Dataflow.access) ->
             if x.Dataflow.offset < best.Dataflow.offset then x else best)
           a rest)

(* A key is racy when it is written at all and either (a) an unprotected
   coordinator access coexists with any worker access, or (b) a worker
   performs an unprotected non-indexed write — the shared-accumulator
   shape, racy between sibling workers even if the coordinator waits for
   the join. Indexed worker writes are exempt from (b): per-index
   ownership (worker w owns slot w) is the engine's sanctioned sharding
   pattern, and (a) still catches a coordinator reading too early. *)
let racy_key accesses k =
  let of_key =
    List.filter (fun (a : Dataflow.access) -> String.equal a.Dataflow.key k)
      accesses
  in
  let w = List.filter is_worker of_key in
  let c = List.filter (fun a -> not (is_worker a)) of_key in
  let w_un = List.filter (fun (a : Dataflow.access) -> not a.Dataflow.locked) w in
  let c_un =
    List.filter
      (fun (a : Dataflow.access) ->
        (not a.Dataflow.locked) && not a.Dataflow.post_join)
      c
  in
  let direct_write =
    List.exists
      (fun (a : Dataflow.access) -> is_write a && not a.Dataflow.indexed)
      w_un
  in
  let both_sides =
    match (w, c_un) with _ :: _, _ :: _ -> true | _, _ -> false
  in
  if List.exists is_write of_key && (both_sides || direct_write) then
    Some (k, of_key, w_un, c_un)
  else None

let check ctx str =
  let info = Dataflow.analyse str in
  if info.Dataflow.spawns > 0 then begin
    let accesses = info.Dataflow.accesses in
    let keys =
      List.sort_uniq String.compare
        (List.map (fun (a : Dataflow.access) -> a.Dataflow.key) accesses)
    in
    let racy = List.filter_map (racy_key accesses) keys in
    let root_of (_, l, _, _) = (List.hd l : Dataflow.access).Dataflow.root in
    let roots = List.sort_uniq String.compare (List.map root_of racy) in
    List.iter
      (fun root ->
        let mine =
          List.filter (fun r -> String.equal (root_of r) root) racy
        in
        let keys_s =
          String.concat ", " (List.map (fun (k, _, _, _) -> k) mine)
        in
        let anchors =
          match List.concat_map (fun (_, _, w_un, _) -> w_un) mine with
          | [] -> List.concat_map (fun (_, _, _, c_un) -> c_un) mine
          | w -> w
        in
        match earliest anchors with
        | None -> ()
        | Some anchor ->
            let all = List.concat_map (fun (_, l, _, _) -> l) mine in
            let side_s, other =
              match anchor.Dataflow.side with
              | Dataflow.Worker ->
                  ( "inside the spawned closure",
                    earliest (List.filter (fun a -> not (is_worker a)) all) )
              | Dataflow.Coordinator ->
                  ( "outside the spawned closure",
                    earliest (List.filter is_worker all) )
            in
            let other_s =
              match other with
              | Some o ->
                  Printf.sprintf "; the other side touches it at line %d"
                    (line o.Dataflow.loc)
              | None -> ""
            in
            Rule.emit ctx ~loc:anchor.Dataflow.loc ~rule:"R1"
              ~message:
                (Printf.sprintf
                   "mutable state '%s' crosses the Domain.spawn boundary \
                    without protection (%s) — accessed %s%s"
                   root keys_s side_s other_s)
              ~hint:
                "wrap it in Atomic.t, bracket both sides with the shared \
                 Mutex, publish only through writes-before-join / \
                 reads-after-join, or record the ownership argument in \
                 [@dlint.allow \"R1: ...\"]")
      roots
  end

let rule =
  {
    Rule.id = "R1";
    name = "domain-escape";
    summary =
      "mutable state shared across Domain.spawn must be protected \
       (Atomic, the shared Mutex bracket, or join publication) or \
       ledgered";
    check;
  }
