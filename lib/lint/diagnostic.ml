type t = {
  file : string;
  line : int;
  col : int;
  offset : int;
  rule : string;
  message : string;
  hint : string;
}

let v ~file ~(loc : Ppxlib.Location.t) ~rule ~message ~hint =
  let p = loc.loc_start in
  {
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    offset = p.pos_cnum;
    rule;
    message;
    hint;
  }

(* Families are carried by the id scheme, not stored per diagnostic:
   D* determinism, P* protocol, R* drace; anything else (the E0 parse
   pseudo-rule) reports as "parse". *)
let family_of_rule rule =
  if String.length rule = 0 then "parse"
  else
    match rule.[0] with
    | 'D' -> "determinism"
    | 'P' -> "protocol"
    | 'R' -> "drace"
    | _ -> "parse"

let family d = family_of_rule d.rule

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s (hint: %s)" d.file d.line d.col d.rule
    d.message d.hint

let to_json d =
  Analysis.Json.Obj
    [
      ("file", Analysis.Json.Str d.file);
      ("line", Analysis.Json.int d.line);
      ("col", Analysis.Json.int d.col);
      ("rule", Analysis.Json.Str d.rule);
      ("family", Analysis.Json.Str (family d));
      ("message", Analysis.Json.Str d.message);
      ("hint", Analysis.Json.Str d.hint);
    ]
