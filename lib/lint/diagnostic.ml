type t = {
  file : string;
  line : int;
  col : int;
  offset : int;
  rule : string;
  message : string;
  hint : string;
}

let v ~file ~(loc : Ppxlib.Location.t) ~rule ~message ~hint =
  let p = loc.loc_start in
  {
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    offset = p.pos_cnum;
    rule;
    message;
    hint;
  }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s (hint: %s)" d.file d.line d.col d.rule
    d.message d.hint

let to_json d =
  Analysis.Json.Obj
    [
      ("file", Analysis.Json.Str d.file);
      ("line", Analysis.Json.int d.line);
      ("col", Analysis.Json.int d.col);
      ("rule", Analysis.Json.Str d.rule);
      ("message", Analysis.Json.Str d.message);
      ("hint", Analysis.Json.Str d.hint);
    ]
