(** Justified suppression of dlint findings.

    Grammar (payload of a [dlint.allow] attribute): a single string
    ["ID[,ID...]: justification"] — rule ids (case-insensitive, names
    accepted too), a colon, and a non-empty human justification.

    - [(expr [@dlint.allow "D2: why"])] silences the listed rules inside
      that expression;
    - [let[@dlint.allow "..."] x = ...] covers the whole binding;
    - a floating [[@@@dlint.allow "..."]] covers the rest of the file.

    Compiler-warning suppressions ([[@warning "-..."]]) are not dlint
    suppressions but must likewise be justified — with a sibling
    [[@dlint.why "..."]] attribute; rule P2 enforces both grammars and
    the driver reports every directive in the run summary, so silenced
    findings stay visible. *)

type directive = {
  dfile : string;
  rules : string list;  (** normalized rule ids, e.g. ["D2"] *)
  justification : string;
  line : int;  (** line of the attribute, for the summary *)
  range : int * int;  (** byte range suppressed; [max_int] = to EOF *)
}

val allow_attr : string -> bool
(** Is this attribute name a dlint.allow spelling? *)

val why_attr : string -> bool
(** Is this attribute name a dlint.why spelling? *)

val parse_payload : string -> (string list * string, string) result
(** Split ["D1,D2: reason"] into ids and justification; [Error]
    explains which part is malformed (P1 quotes it). Ids are validated
    against {!Registry} by the caller. *)

val collect : file:string -> Ppxlib.structure -> directive list
(** All well-formed [dlint.allow] directives in the file, with the byte
    range of the node each one is attached to. Malformed directives are
    skipped here — rule P2 reports them. *)

val apply :
  directives:directive list ->
  Diagnostic.t list ->
  Diagnostic.t list * (Diagnostic.t * directive) list
(** Partition diagnostics into (kept, suppressed): a diagnostic is
    suppressed when some directive in the same file lists its rule and
    its byte offset falls inside the directive's range. *)
