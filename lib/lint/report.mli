(** Rendering: the text report humans read in CI logs, the JSON report
    tools consume, and the rule catalogue behind [--list]. *)

val pp_text : Format.formatter -> Driver.outcome -> unit
(** One line per finding ([file:line:col: [RULE] ...]), the suppression
    ledger, and a final one-line verdict. *)

val pp_json : Format.formatter -> Driver.outcome -> unit
(** Stable machine-readable shape (see docs/LINT.md):
    [{version; files; findings; suppressed; directives}]. *)

val pp_rules : Format.formatter -> Rule.t list -> unit
(** The catalogue: id, name, one-line summary per rule. *)
