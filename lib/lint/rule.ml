(** The rule signature and the small AST toolkit rules share.

    A rule is a named static check over one parsed implementation file.
    Rules only {e emit} diagnostics; selection, suppression and
    presentation belong to {!Driver}. Rules must themselves satisfy
    every rule in the registry — [dcount lint lib] scans [lib/lint]
    too, so no polymorphic compares, no wildcard handlers, no ambient
    state in here. *)

type ctx = {
  file : string;  (** normalized path of the file being scanned *)
  emit : Diagnostic.t -> unit;
}

type t = {
  id : string;  (** stable short id: "D1".."D4", "P1", "P2" *)
  name : string;  (** kebab-case mnemonic, accepted by --rules too *)
  summary : string;  (** one line for --list and docs/LINT.md *)
  check : ctx -> Ppxlib.structure -> unit;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let ident_name (lid : Ppxlib.Longident.t) =
  String.concat "." (Ppxlib.Longident.flatten_exn lid)

let last_component (lid : Ppxlib.Longident.t) =
  match lid with
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply _ -> ""

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let path_ends_with ~suffix file =
  (* Suffix match on '/'-separated path components, so exemptions hold
     however the scan root was spelled ("lib", "./lib", absolute). *)
  let f = String.length file and s = String.length suffix in
  f >= s
  && String.sub file (f - s) s = suffix
  && (f = s || file.[f - s - 1] = '/')

let emit ctx ~(loc : Ppxlib.Location.t) ~rule ~message ~hint =
  ctx.emit (Diagnostic.v ~file:ctx.file ~loc ~rule ~message ~hint)

(* Attribute payloads: every dlint directive carries a single string
   constant; [@warning]'s payload is also a string. *)
let payload_string (p : Ppxlib.payload) =
  match p with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let attr_name (a : Ppxlib.attribute) = a.attr_name.txt

(* [body_reraises e] — does [e] contain a bare [raise]/[reraise]
   application? Used by P1 to tell "caught, cleaned up, re-raised"
   (fine) from "caught and dropped" (finding). *)
let body_reraises (e : Ppxlib.expression) =
  let found = ref false in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident ("raise" | "raise_notrace" | "reraise"); _ }
          ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  v#expression e;
  !found
