(* R3 — spawn-context hygiene.

   Code running inside a spawned domain (the spawn closure plus every
   binding reachable from it, intra-file) must not: draw from an Rng
   stream (per-domain draws interleave nondeterministically with the
   seeded stream — derive a keyed stream outside the closure instead),
   mutate the sequential Sim.Network engine (single-domain state; cross-
   domain traffic goes through Par's mail/outbox discipline), or swallow
   exceptions (a silently dead worker deadlocks the barrier). The one
   sanctioned exception shape is Par's propagation channel: catch, park
   the exception in shared state for the coordinator, keep the handshake
   alive — recognized as a handler that binds the exception and stores
   it with a mutation. *)

let rng_draws =
  [
    "bits64";
    "int";
    "int_in";
    "float";
    "bool";
    "shuffle";
    "pick";
    "pick_list";
    "permutation";
  ]

let network_mutators =
  [
    "create";
    "send";
    "schedule_local";
    "step";
    "run_to_quiescence";
    "crash";
    "recover";
    "set_handler";
    "set_scheduler";
    "declare_unordered";
    "begin_op";
    "end_op";
    "with_scheduler";
    "with_shards";
  ]

let rec components (lid : Ppxlib.Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> components l @ [ s ]
  | Lapply _ -> []

let member_of ~m ~table lid =
  match List.rev (components lid) with
  | x :: m' :: _ -> String.equal m m' && List.mem x table
  | _ -> false

(* Mirrors Dataflow's chunk indexing so nested named helpers aren't
   walked twice: a reachable nested binding appears in worker_bodies on
   its own. *)
let rec binder_name (p : Ppxlib.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binder_name p
  | _ -> None

let rec is_function (e : Ppxlib.expression) =
  match e.pexp_desc with
  | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function e
  | _ -> false

let rec case_var (p : Ppxlib.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_alias (_, { txt; _ }) -> Some txt
  | Ppat_constraint (p, _) -> case_var p
  | _ -> None

let mentions v (e : Ppxlib.expression) =
  let found = ref false in
  let it =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident x; _ } when String.equal x v ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  !found

let has_mutation (e : Ppxlib.expression) =
  let found = ref false in
  let it =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_setfield _ -> found := true
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt = Lident ":="; _ }; _ }, _) ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  !found

(* Par's worker-exception channel: [with e -> ctrl.failure <- Some e;
   keep the handshake alive]. The handler must bind the exception and
   visibly store it. *)
let parks (c : Ppxlib.case) =
  match case_var c.pc_lhs with
  | Some v -> mentions v c.pc_rhs && has_mutation c.pc_rhs
  | None -> false

let check_case ctx (c : Ppxlib.case) =
  if
    Rule_stall.pattern_is_wildcard c.pc_lhs
    && (not (Rule.body_reraises c.pc_rhs))
    && not (parks c)
  then
    Rule.emit ctx ~loc:c.pc_lhs.ppat_loc ~rule:"R3"
      ~message:
        "exception swallowed inside a spawned domain context — a silent \
         worker death deadlocks the barrier"
      ~hint:
        "re-raise, or park the exception for the coordinator the way \
         Par's worker-exception channel does (bind it and store it in \
         shared failure state)"

let walk_body ctx (body : Ppxlib.expression) =
  let it =
    object (self_)
      inherit Ppxlib.Ast_traverse.iter as super

      method! value_binding vb =
        match binder_name vb.pvb_pat with
        | Some _ when is_function vb.pvb_expr ->
            (* its own worker body if reachable; never walked here *)
            self_#pattern vb.pvb_pat
        | Some _ | None -> super#value_binding vb

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
            if member_of ~m:"Rng" ~table:rng_draws txt then
              Rule.emit ctx ~loc ~rule:"R3"
                ~message:
                  "Rng draw inside a spawned domain context — per-domain \
                   draws race the seeded stream and break replay"
                ~hint:
                  "derive a keyed stream (Rng.keyed) outside the closure \
                   and hand it in, or draw before spawning"
            else if member_of ~m:"Network" ~table:network_mutators txt then
              Rule.emit ctx ~loc ~rule:"R3"
                ~message:
                  "Sim.Network mutation inside a spawned domain context — \
                   the sequential engine is single-domain state"
                ~hint:
                  "route cross-domain events through Par's mail/outbox \
                   discipline instead of touching the engine directly"
        | Pexp_try (_, cases) -> List.iter (check_case ctx) cases
        | Pexp_match (_, cases) ->
            List.iter
              (fun (c : Ppxlib.case) ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception p -> check_case ctx { c with pc_lhs = p }
                | _ -> ())
              cases
        | _ -> ());
        super#expression e
    end
  in
  it#expression body

let check ctx str =
  let info = Dataflow.analyse str in
  List.iter (walk_body ctx) info.Dataflow.worker_bodies

let rule =
  {
    Rule.id = "R3";
    name = "spawn-hygiene";
    summary =
      "spawned domain contexts: no Rng draws, no Sim.Network mutation, \
       no exception swallowing outside the worker-exception channel";
    check;
  }
