type outcome = {
  findings : Diagnostic.t list;
  suppressed : (Diagnostic.t * Suppress.directive) list;
  directives : Suppress.directive list;
  files : int;
}

let loc_of_position (p : Lexing.position) : Ppxlib.Location.t =
  { loc_start = p; loc_end = p; loc_ghost = false }

let syntax_diag ~file ~(pos : Lexing.position) msg =
  Diagnostic.v ~file ~loc:(loc_of_position pos) ~rule:"E0"
    ~message:("does not parse: " ^ msg)
    ~hint:"dlint vouches only for files it can read; fix the syntax first"

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Ppxlib.Parse.implementation lexbuf with
  | str -> Ok str
  | exception Syntaxerr.Error e ->
      let loc = Syntaxerr.location_of_error e in
      Error (syntax_diag ~file ~pos:loc.Location.loc_start "syntax error")
  | exception Lexer.Error (_, loc) ->
      Error (syntax_diag ~file ~pos:loc.Location.loc_start "lexer error")

let scan_source ~rules ~file source =
  match parse ~file source with
  | Error d -> ([ d ], [])
  | Ok str ->
      let acc = ref [] in
      let ctx = { Rule.file; emit = (fun d -> acc := d :: !acc) } in
      List.iter (fun r -> r.Rule.check ctx str) rules;
      (List.rev !acc, Suppress.collect ~file str)

(* ------------------------------------------------------------------ *)
(* Path expansion: deterministic (sorted) recursive walk; hidden and
   underscore-prefixed entries (_build, .git) are skipped. *)

let normalize path =
  if Rule.has_prefix ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

let rec walk acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
        else walk acc (Filename.concat path entry))
      acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let expand paths =
  let rec go acc = function
    | [] -> Ok (List.sort_uniq String.compare acc)
    | p :: rest ->
        let p = normalize p in
        if not (Sys.file_exists p) then
          Error (Printf.sprintf "dcount lint: no such path: %s" p)
        else if Sys.is_directory p then go (walk acc p) rest
        else if Filename.check_suffix p ".ml" then go (p :: acc) rest
        else
          Error
            (Printf.sprintf
               "dcount lint: %s is not an OCaml implementation (.ml)" p)
  in
  go [] paths

let run ~rules ~paths =
  match expand paths with
  | Error e -> Error e
  | Ok files ->
      let findings = ref [] and directives = ref [] in
      List.iter
        (fun file ->
          let source = In_channel.with_open_bin file In_channel.input_all in
          let diags, dirs = scan_source ~rules ~file source in
          findings := List.rev_append diags !findings;
          directives := List.rev_append dirs !directives)
        files;
      let directives = List.rev !directives in
      let kept, suppressed = Suppress.apply ~directives !findings in
      Ok
        {
          findings = List.sort Diagnostic.order kept;
          suppressed;
          directives;
          files = List.length files;
        }
