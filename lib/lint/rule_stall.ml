(* P1 — stall hygiene.

   Under a fault plan an operation that cannot complete must surface as
   the typed Counter_intf.Stall / Stalled outcome (docs/FAULTS.md): a
   handler that catches Stall without re-raising, or a wildcard
   exception handler anywhere on the inc/handle path, converts "the
   protocol failed" into "the protocol silently returned something",
   and every completion guarantee measured on top is fiction. The one
   sanctioned conversion point is Counter_intf.result_of_inc, so
   counter_intf.ml itself is exempt. *)

let exempt file = Rule.path_ends_with ~suffix:"counter/counter_intf.ml" file

let rec pattern_is_wildcard (p : Ppxlib.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_is_wildcard p
  | Ppat_or (a, b) -> pattern_is_wildcard a || pattern_is_wildcard b
  | _ -> false

let pattern_catches_stall (p : Ppxlib.pattern) =
  let found = ref false in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_construct ({ txt; _ }, _)
          when Rule.last_component txt = "Stall" ->
            found := true
        | _ -> ());
        super#pattern p
    end
  in
  v#pattern p;
  !found

let check_case ctx ~(loc : Ppxlib.Location.t) (c : Ppxlib.case) =
  if pattern_is_wildcard c.pc_lhs && not (Rule.body_reraises c.pc_rhs) then
    Rule.emit ctx ~loc ~rule:"P1"
      ~message:
        "wildcard exception handler swallows every failure, including \
         Counter_intf.Stall"
      ~hint:
        "match the specific exceptions this code can raise; Stall must \
         propagate to inc_result"
  else if pattern_catches_stall c.pc_lhs && not (Rule.body_reraises c.pc_rhs)
  then
    Rule.emit ctx ~loc ~rule:"P1"
      ~message:"Counter_intf.Stall caught and dropped"
      ~hint:
        "let Stall propagate (Counter_intf.result_of_inc is the one \
         conversion point); re-raise after any cleanup"

let check ctx str =
  if not (exempt ctx.Rule.file) then begin
    let v =
      object
        inherit Ppxlib.Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_try (_, cases) ->
              List.iter
                (fun (c : Ppxlib.case) ->
                  check_case ctx ~loc:c.pc_lhs.ppat_loc c)
                cases
          | Pexp_match (_, cases) ->
              List.iter
                (fun (c : Ppxlib.case) ->
                  match c.pc_lhs.ppat_desc with
                  | Ppat_exception p ->
                      check_case ctx ~loc:p.ppat_loc
                        { c with pc_lhs = p }
                  | _ -> ())
                cases
          | _ -> ());
          super#expression e
      end
    in
    v#structure str
  end

let rule =
  {
    Rule.id = "P1";
    name = "stall-hygiene";
    summary =
      "no wildcard exception handlers, no catch-and-drop of \
       Counter_intf.Stall — failures stay typed";
    check;
  }
