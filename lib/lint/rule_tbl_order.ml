(* D2 — hash-order iteration.

   [Hashtbl.iter]/[fold] visit bindings in unspecified hash order; when
   the visited data feeds a trace, a metric or any output the goldens
   snapshot, the result depends on the table's internal layout (and
   hence on insertion history and the compiler's hash function) rather
   than on its contents. Sim.Det provides sorted wrappers; genuinely
   order-independent uses (a commutative fold) can carry a justified
   [@dlint.allow "D2: ..."] instead. *)

let order_dependent =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let check ctx str =
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Ldot (Lident "Hashtbl", fn); loc }
          when List.mem fn order_dependent ->
            Rule.emit ctx ~loc ~rule:"D2"
              ~message:
                (Printf.sprintf
                   "Hashtbl.%s visits bindings in unspecified hash order" fn)
              ~hint:
                "iterate in key order (Sim.Det.sorted_iter / sorted_fold \
                 ~compare), or justify with [@dlint.allow \"D2: why the \
                 order cannot matter\"]"
        | _ -> ());
        super#expression e
    end
  in
  v#structure str

let rule =
  {
    Rule.id = "D2";
    name = "hashtbl-iteration-order";
    summary =
      "no order-dependent Hashtbl.iter/fold/to_seq — iterate sorted or \
       justify order-independence";
    check;
  }
