(** The rule catalogue.

    Order is presentation order ([--list], docs); selection by id or
    name is case-insensitive. Adding a rule = write the module, append
    it to [core] in registry.ml, document it in docs/LINT.md, and add a
    bad + good fixture pair under test/lint/fixtures/. *)

val all : Rule.t list
(** Every registered rule, P2 wired with the full known-id list. *)

val find : string -> Rule.t option
(** Look up by id ("d2") or name ("hashtbl-iteration-order"). *)

val resolve : string list -> (Rule.t list, string) result
(** Map a [--rules] selection to rules; [Error] names the first unknown
    id (a usage error — exit 2). Empty list resolves to {!all}. *)
