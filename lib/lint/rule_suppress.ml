(* P2 — justified suppressions only.

   A suppression with no recorded reason is a determinism hazard wearing
   a silencer: six months later nobody knows whether it was reviewed or
   expedient. Every [@dlint.allow] payload must parse as
   "ID[,ID...]: justification"; every compiler-warning disable
   ([@warning "-..."], [@@@warning "-..."]) must carry a sibling
   [@dlint.why "..."]; unknown dlint.* attributes (typos never fire) and
   unknown rule ids are findings too. The driver prints every directive
   in the run summary, so what is silenced stays reviewable. *)

let warning_attr name = name = "warning" || name = "ocaml.warning"

let is_disable payload = String.contains payload '-'

let dlint_prefixed name = Rule.has_prefix ~prefix:"dlint." name

let known_rule_id ~known id =
  List.exists (fun r -> r.Rule.id = id || String.uppercase_ascii r.Rule.name = id) known

(* The rule validates attributes; [known] lets it reject ids that no
   registered rule carries (filled in by Registry to avoid a cycle). *)
let check_with ~known ctx str =
  let check_allow (attr : Ppxlib.attribute) =
    match Rule.payload_string attr.attr_payload with
    | None ->
        Rule.emit ctx ~loc:attr.attr_loc ~rule:"P2"
          ~message:"[@dlint.allow] payload must be a single string constant"
          ~hint:"write [@dlint.allow \"ID[,ID...]: justification\"]"
    | Some payload -> (
        match Suppress.parse_payload payload with
        | Error e ->
            Rule.emit ctx ~loc:attr.attr_loc ~rule:"P2"
              ~message:("malformed [@dlint.allow]: " ^ e)
              ~hint:"write [@dlint.allow \"ID[,ID...]: justification\"]"
        | Ok (ids, _) ->
            List.iter
              (fun id ->
                if not (known_rule_id ~known id) then
                  Rule.emit ctx ~loc:attr.attr_loc ~rule:"P2"
                    ~message:
                      (Printf.sprintf
                         "[@dlint.allow] names unknown rule %S — it \
                          suppresses nothing"
                         id)
                    ~hint:"see dcount lint --list for valid rule ids")
              ids)
  in
  let check_dlint_spelling (attr : Ppxlib.attribute) =
    let name = Rule.attr_name attr in
    if
      dlint_prefixed name
      && not (Suppress.allow_attr name || Suppress.why_attr name)
    then
      Rule.emit ctx ~loc:attr.attr_loc ~rule:"P2"
        ~message:(Printf.sprintf "unknown dlint attribute [@%s]" name)
        ~hint:"the recognised attributes are dlint.allow and dlint.why"
  in
  let warning_needs_why ~justified (attr : Ppxlib.attribute) =
    if warning_attr (Rule.attr_name attr) then
      match Rule.payload_string attr.attr_payload with
      | Some payload when is_disable payload && not justified ->
          Rule.emit ctx ~loc:attr.attr_loc ~rule:"P2"
            ~message:
              (Printf.sprintf "warning suppression %S has no justification"
                 payload)
            ~hint:
              "attach [@dlint.why \"reason\"] next to the [@warning] \
               attribute (adjacent [@@@dlint.why] for floating ones)"
      | _ -> ()
  in
  let has_why attrs =
    List.exists (fun a -> Suppress.why_attr (Rule.attr_name a)) attrs
  in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      (* Fires on every attribute list in the tree: the sibling set for
         the dlint.why adjacency requirement. *)
      method! attributes attrs =
        let justified = has_why attrs in
        List.iter
          (fun (attr : Ppxlib.attribute) ->
            let name = Rule.attr_name attr in
            check_dlint_spelling attr;
            if Suppress.allow_attr name then check_allow attr;
            warning_needs_why ~justified attr)
          attrs;
        super#attributes attrs

      (* Floating attributes arrive one structure item at a time; a
         disable is justified by a floating dlint.why in the same run
         of consecutive floating attributes. *)
      method! structure items =
        let floating =
          List.filter_map
            (fun (si : Ppxlib.structure_item) ->
              match si.pstr_desc with
              | Pstr_attribute a -> Some a
              | _ -> None)
            items
        in
        let justified = has_why floating in
        List.iter
          (fun (attr : Ppxlib.attribute) ->
            check_dlint_spelling attr;
            if Suppress.allow_attr (Rule.attr_name attr) then check_allow attr;
            warning_needs_why ~justified attr)
          floating;
        super#structure items
    end
  in
  v#structure str

(* Placeholder check so the record can exist before Registry ties the
   knot; Registry replaces it with [check_with ~known:all]. *)
let rule =
  {
    Rule.id = "P2";
    name = "suppression-justification";
    summary =
      "every [@dlint.allow] / [@warning \"-...\"] suppression carries a \
       justification and names real rules";
    check = check_with ~known:[];
  }
