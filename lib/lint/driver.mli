(** Scan orchestration: expand paths, parse, run rules, apply
    suppressions.

    The scan itself obeys the determinism rules it enforces: directory
    walks are sorted, so the same tree always yields the same report in
    the same order. Files that fail to parse become findings under the
    pseudo-rule [E0] (they gate the exit code like any finding — a
    file the linter cannot read is a file the linter cannot vouch
    for). *)

type outcome = {
  findings : Diagnostic.t list;  (** sorted; empty = clean tree *)
  suppressed : (Diagnostic.t * Suppress.directive) list;
      (** findings silenced by a justified [@dlint.allow] *)
  directives : Suppress.directive list;
      (** every well-formed directive seen, fired or not *)
  files : int;  (** implementation files scanned *)
}

val scan_source :
  rules:Rule.t list -> file:string -> string -> Diagnostic.t list * Suppress.directive list
(** Lint one implementation from source text (tests drive this
    directly). Returns raw findings (pre-suppression) and the file's
    directives. *)

val run : rules:Rule.t list -> paths:string list -> (outcome, string) result
(** Scan every [.ml] under [paths] (files or directories). [Error] is a
    usage problem — a missing path, or an explicit file argument that
    is not an [.ml] — and maps to exit 2. *)
