(* D4 — unsafe representation tricks.

   [Marshal] round-trips break across compiler versions and silently
   accept type-incorrect data, [Obj.magic]/[Obj.repr] defeat the type
   system outright, and [=]/[<>] against a float literal is an exact
   bit comparison in disguise — in the checkers (linearizability,
   hotspot, growth fits) any of these turns "proved on every
   interleaving" into "happened to hold on this build". Explicit
   [Float.equal]/[Float.compare] is accepted: it states the intent. *)

let float_literal (e : Ppxlib.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let check ctx str =
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match Ppxlib.Longident.flatten_exn txt with
            | "Marshal" :: _ ->
                Rule.emit ctx ~loc ~rule:"D4"
                  ~message:
                    (Printf.sprintf
                       "%s bypasses the type system and is not stable across \
                        compiler versions"
                       (Rule.ident_name txt))
                  ~hint:
                    "serialise through an explicit, versioned format (see \
                     Mc.Replay / Analysis.Json)"
            | [ "Obj"; ("magic" | "repr" | "obj") ] ->
                Rule.emit ctx ~loc ~rule:"D4"
                  ~message:
                    (Printf.sprintf "%s defeats the type system"
                       (Rule.ident_name txt))
                  ~hint:"restructure the types instead of casting through Obj"
            | _ -> ())
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc };
                _;
              },
              [ (_, a); (_, b) ] )
          when float_literal a || float_literal b ->
            Rule.emit ctx ~loc ~rule:"D4"
              ~message:
                (Printf.sprintf
                   "(%s) against a float literal compares exact bit patterns"
                   op)
              ~hint:
                "state the intent with Float.equal / Float.compare (exact \
                 sentinel) or compare against a tolerance"
        | _ -> ());
        super#expression e
    end
  in
  v#structure str

let rule =
  {
    Rule.id = "D4";
    name = "unsafe-ops";
    summary =
      "no Marshal, Obj.magic or float-literal (=) — checker verdicts must \
       not ride on representation accidents";
    check;
  }
