(* D1 — ambient nondeterminism.

   Every random draw, clock read and hash in the simulator must flow
   through the seeded Sim.Rng stream (or the simulated Network clock):
   one call to the process-global [Random], to a wall clock, or to the
   layout-dependent [Hashtbl.hash] and two runs with the same seed stop
   being bit-identical, which silently invalidates the Hot Spot Lemma
   measurements, the determinism goldens and every stored .mcs
   counterexample. [lib/sim/rng.ml] is the sanctioned home of raw
   randomness and is exempt. *)

let banned =
  [
    ("Sys.time", "process CPU clock");
    ("Unix.gettimeofday", "wall clock");
    ("Unix.time", "wall clock");
    ("Unix.localtime", "wall clock");
    ("Unix.gmtime", "wall clock");
    ("Hashtbl.hash", "layout- and version-dependent structural hash");
    ("Hashtbl.seeded_hash", "layout- and version-dependent structural hash");
    ("Hashtbl.hash_param", "layout- and version-dependent structural hash");
    ("Hashtbl.randomize", "per-process hash randomization");
  ]

let exempt file = Rule.path_ends_with ~suffix:"sim/rng.ml" file

let check ctx str =
  if not (exempt ctx.Rule.file) then begin
    let v =
      object
        inherit Ppxlib.Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              let name = Rule.ident_name txt in
              match Ppxlib.Longident.flatten_exn txt with
              | "Random" :: _ ->
                  Rule.emit ctx ~loc ~rule:"D1"
                    ~message:
                      (Printf.sprintf
                         "%s draws from the process-global RNG, outside the \
                          seeded simulation stream"
                         name)
                    ~hint:
                      "draw from Sim.Rng (create ~seed, split) so runs stay \
                       bit-identical under a seed"
              | _ -> (
                  match List.assoc_opt name banned with
                  | Some what ->
                      Rule.emit ctx ~loc ~rule:"D1"
                        ~message:
                          (Printf.sprintf
                             "%s is ambient nondeterminism (%s)" name what)
                        ~hint:
                          "use the simulated clock / Sim.Rng, or an explicit \
                           per-type hash; seeded runs must not observe the \
                           environment"
                  | None -> ()))
          | _ -> ());
          super#expression e
      end
    in
    v#structure str
  end

let rule =
  {
    Rule.id = "D1";
    name = "ambient-nondeterminism";
    summary =
      "no Random.*, wall clocks or Hashtbl.hash outside Sim.Rng — seeded \
       runs must be bit-identical";
    check;
  }
