type directive = {
  dfile : string;
  rules : string list;
  justification : string;
  line : int;
  range : int * int;
}

let allow_attr name = name = "dlint.allow"
let why_attr name = name = "dlint.why"

let parse_payload s =
  match String.index_opt s ':' with
  | None ->
      Error
        (Printf.sprintf
           "missing \": justification\" — expected \"ID[,ID...]: why\", got %S"
           s)
  | Some i ->
      let ids =
        String.split_on_char ',' (String.sub s 0 i)
        |> List.map String.trim
        |> List.filter (fun id -> id <> "")
        |> List.map String.uppercase_ascii
      in
      let justification =
        String.trim (String.sub s (i + 1) (String.length s - i - 1))
      in
      if ids = [] then Error (Printf.sprintf "no rule ids before ':' in %S" s)
      else if justification = "" then
        Error (Printf.sprintf "empty justification in %S" s)
      else Ok (ids, justification)

(* A directive's scope is the node its attribute is attached to. The
   collector recognises the attachment points that matter in practice:
   expressions, value bindings, module bindings, and floating
   structure-level attributes (which scope to end-of-file). *)
let collect ~file str =
  let acc = ref [] in
  let add ~(attr : Ppxlib.attribute) ~range =
    if allow_attr (Rule.attr_name attr) then
      match Rule.payload_string attr.attr_payload with
      | None -> ()
      | Some payload -> (
          match parse_payload payload with
          | Error _ -> ()
          | Ok (rules, justification) ->
              acc :=
                {
                  dfile = file;
                  rules;
                  justification;
                  line = attr.attr_loc.loc_start.pos_lnum;
                  range;
                }
                :: !acc)
  in
  let node_range (loc : Ppxlib.Location.t) =
    (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)
  in
  let v =
    object
      inherit Ppxlib.Ast_traverse.iter as super

      method! expression e =
        List.iter
          (fun attr -> add ~attr ~range:(node_range e.pexp_loc))
          e.pexp_attributes;
        super#expression e

      method! value_binding vb =
        List.iter
          (fun attr -> add ~attr ~range:(node_range vb.pvb_loc))
          vb.pvb_attributes;
        super#value_binding vb

      method! module_binding mb =
        List.iter
          (fun attr -> add ~attr ~range:(node_range mb.pmb_loc))
          mb.pmb_attributes;
        super#module_binding mb

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_attribute attr ->
            add ~attr ~range:(si.pstr_loc.loc_start.pos_cnum, max_int)
        | _ -> ());
        super#structure_item si
    end
  in
  v#structure str;
  List.rev !acc

let covers d (diag : Diagnostic.t) =
  d.dfile = diag.file
  && List.mem diag.rule d.rules
  && fst d.range <= diag.offset
  && diag.offset <= snd d.range

let apply ~directives diags =
  let kept = ref [] and suppressed = ref [] in
  List.iter
    (fun diag ->
      match List.find_opt (fun d -> covers d diag) directives with
      | Some d -> suppressed := (diag, d) :: !suppressed
      | None -> kept := diag :: !kept)
    diags;
  (List.rev !kept, List.rev !suppressed)
