let core =
  [
    Rule_ambient.rule;
    Rule_tbl_order.rule;
    Rule_poly_compare.rule;
    Rule_unsafe_ops.rule;
    Rule_stall.rule;
  ]

(* P2 validates rule ids inside [@dlint.allow] payloads, so it needs
   the final id list — including its own — before its check exists.
   The stub record carries id/name; only its check is replaced. *)
let all =
  let stub = Rule_suppress.rule in
  let known = core @ [ stub ] in
  core @ [ { stub with Rule.check = Rule_suppress.check_with ~known } ]

let find key =
  let k = String.lowercase_ascii (String.trim key) in
  List.find_opt
    (fun r ->
      String.lowercase_ascii r.Rule.id = k
      || String.lowercase_ascii r.Rule.name = k)
    all

let resolve keys =
  match keys with
  | [] -> Ok all
  | _ ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | k :: rest -> (
            match find k with
            | Some r -> go (r :: acc) rest
            | None ->
                Error
                  (Printf.sprintf
                     "unknown lint rule %S (known: %s; names work too)" k
                     (String.concat ", " (List.map (fun r -> r.Rule.id) all))))
      in
      go [] keys
