let core =
  [
    Rule_ambient.rule;
    Rule_tbl_order.rule;
    Rule_poly_compare.rule;
    Rule_unsafe_ops.rule;
    Rule_stall.rule;
    Rule_domain_escape.rule;
    Rule_barrier.rule;
    Rule_spawn_hygiene.rule;
  ]

(* Family names accepted by --rules alongside ids and rule names; a
   family expands to its members in registry order. *)
let families =
  [
    ("determinism", [ "D1"; "D2"; "D3"; "D4" ]);
    ("protocol", [ "P1"; "P2" ]);
    ("drace", [ "R1"; "R2"; "R3" ]);
  ]

(* P2 validates rule ids inside [@dlint.allow] payloads, so it needs
   the final id list — including its own — before its check exists.
   The stub record carries id/name; only its check is replaced. *)
let all =
  let stub = Rule_suppress.rule in
  let known = core @ [ stub ] in
  core @ [ { stub with Rule.check = Rule_suppress.check_with ~known } ]

let find key =
  let k = String.lowercase_ascii (String.trim key) in
  List.find_opt
    (fun r ->
      String.lowercase_ascii r.Rule.id = k
      || String.lowercase_ascii r.Rule.name = k)
    all

let resolve keys =
  match keys with
  | [] -> Ok all
  | _ ->
      let expand k =
        match List.assoc_opt (String.lowercase_ascii (String.trim k)) families with
        | Some ids -> ids
        | None -> [ k ]
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | k :: rest -> (
            match find k with
            | Some r ->
                if List.exists (fun r' -> String.equal r'.Rule.id r.Rule.id) acc
                then go acc rest
                else go (r :: acc) rest
            | None ->
                Error
                  (Printf.sprintf
                     "unknown lint rule %S (known: %s; rule names and \
                      families %s work too)"
                     k
                     (String.concat ", " (List.map (fun r -> r.Rule.id) all))
                     (String.concat ", " (List.map fst families))))
      in
      go [] (List.concat_map expand keys)
