let pp_text ppf (o : Driver.outcome) =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) o.findings;
  if o.suppressed <> [] then begin
    Format.fprintf ppf "suppressed (justified, see [@dlint.allow]):@.";
    List.iter
      (fun ((d : Diagnostic.t), (dir : Suppress.directive)) ->
        Format.fprintf ppf "  %s:%d: [%s] allowed at line %d: %s@." d.file
          d.line d.rule dir.line dir.justification)
      o.suppressed
  end;
  let n = List.length o.findings in
  Format.fprintf ppf "dlint: %s — %d finding%s in %d file%s, %d suppressed@."
    (if n = 0 then "clean" else "FINDINGS")
    n
    (if n = 1 then "" else "s")
    o.files
    (if o.files = 1 then "" else "s")
    (List.length o.suppressed)

let directive_json (d : Suppress.directive) =
  Analysis.Json.Obj
    [
      ("file", Analysis.Json.Str d.dfile);
      ("line", Analysis.Json.int d.line);
      ( "rules",
        Analysis.Json.List (List.map (fun r -> Analysis.Json.Str r) d.rules) );
      ("justification", Analysis.Json.Str d.justification);
    ]

let pp_json ppf (o : Driver.outcome) =
  let suppressed_json ((d : Diagnostic.t), (dir : Suppress.directive)) =
    match Diagnostic.to_json d with
    | Analysis.Json.Obj fields ->
        Analysis.Json.Obj
          (fields
          @ [
              ("justification", Analysis.Json.Str dir.justification);
              ("directive_line", Analysis.Json.int dir.line);
            ])
    | other -> other
  in
  let doc =
    Analysis.Json.Obj
      [
        ("schema", Analysis.Json.Str "dcount-lint/2");
        ("version", Analysis.Json.int 2);
        ("files", Analysis.Json.int o.files);
        ( "findings",
          Analysis.Json.List (List.map Diagnostic.to_json o.findings) );
        ( "suppressed",
          Analysis.Json.List (List.map suppressed_json o.suppressed) );
        ( "directives",
          Analysis.Json.List (List.map directive_json o.directives) );
      ]
  in
  Format.fprintf ppf "%s@." (Analysis.Json.to_string doc)

let pp_rules ppf rules =
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf ppf "%-4s %-12s %-26s %s@." r.Rule.id
        (Diagnostic.family_of_rule r.Rule.id)
        r.Rule.name r.Rule.summary)
    rules
