# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-big examples doc clean outputs

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-big:
	dune exec bench/main.exe -- --big

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ticket_service.exe
	dune exec examples/adversary_demo.exe
	dune exec examples/quorum_failover.exe
	dune exec examples/concurrent_batches.exe
	dune exec examples/job_queue.exe

doc:
	dune build @doc

# The artefacts EXPERIMENTS.md numbers were taken from.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
